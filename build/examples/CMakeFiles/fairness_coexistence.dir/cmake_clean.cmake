file(REMOVE_RECURSE
  "CMakeFiles/fairness_coexistence.dir/fairness_coexistence.cpp.o"
  "CMakeFiles/fairness_coexistence.dir/fairness_coexistence.cpp.o.d"
  "fairness_coexistence"
  "fairness_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
