# Empty compiler generated dependencies file for fairness_coexistence.
# This may be replaced when dependencies are built.
