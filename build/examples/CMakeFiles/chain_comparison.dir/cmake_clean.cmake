file(REMOVE_RECURSE
  "CMakeFiles/chain_comparison.dir/chain_comparison.cpp.o"
  "CMakeFiles/chain_comparison.dir/chain_comparison.cpp.o.d"
  "chain_comparison"
  "chain_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
