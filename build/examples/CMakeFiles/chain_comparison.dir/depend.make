# Empty dependencies file for chain_comparison.
# This may be replaced when dependencies are built.
