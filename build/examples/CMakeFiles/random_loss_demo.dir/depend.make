# Empty dependencies file for random_loss_demo.
# This may be replaced when dependencies are built.
