file(REMOVE_RECURSE
  "CMakeFiles/random_loss_demo.dir/random_loss_demo.cpp.o"
  "CMakeFiles/random_loss_demo.dir/random_loss_demo.cpp.o.d"
  "random_loss_demo"
  "random_loss_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_loss_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
