# Empty compiler generated dependencies file for muzha_cli.
# This may be replaced when dependencies are built.
