file(REMOVE_RECURSE
  "CMakeFiles/muzha_cli.dir/muzha_cli.cpp.o"
  "CMakeFiles/muzha_cli.dir/muzha_cli.cpp.o.d"
  "muzha_cli"
  "muzha_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
