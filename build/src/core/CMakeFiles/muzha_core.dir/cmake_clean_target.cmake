file(REMOVE_RECURSE
  "libmuzha_core.a"
)
