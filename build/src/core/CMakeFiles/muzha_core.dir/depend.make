# Empty dependencies file for muzha_core.
# This may be replaced when dependencies are built.
