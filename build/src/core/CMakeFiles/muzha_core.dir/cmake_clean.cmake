file(REMOVE_RECURSE
  "CMakeFiles/muzha_core.dir/bandwidth_estimator.cc.o"
  "CMakeFiles/muzha_core.dir/bandwidth_estimator.cc.o.d"
  "CMakeFiles/muzha_core.dir/drai.cc.o"
  "CMakeFiles/muzha_core.dir/drai.cc.o.d"
  "CMakeFiles/muzha_core.dir/tcp_muzha.cc.o"
  "CMakeFiles/muzha_core.dir/tcp_muzha.cc.o.d"
  "libmuzha_core.a"
  "libmuzha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
