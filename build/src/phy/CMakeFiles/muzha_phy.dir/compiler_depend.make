# Empty compiler generated dependencies file for muzha_phy.
# This may be replaced when dependencies are built.
