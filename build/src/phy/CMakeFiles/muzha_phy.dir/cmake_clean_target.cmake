file(REMOVE_RECURSE
  "libmuzha_phy.a"
)
