file(REMOVE_RECURSE
  "CMakeFiles/muzha_phy.dir/channel.cc.o"
  "CMakeFiles/muzha_phy.dir/channel.cc.o.d"
  "CMakeFiles/muzha_phy.dir/error_model.cc.o"
  "CMakeFiles/muzha_phy.dir/error_model.cc.o.d"
  "CMakeFiles/muzha_phy.dir/wireless_phy.cc.o"
  "CMakeFiles/muzha_phy.dir/wireless_phy.cc.o.d"
  "libmuzha_phy.a"
  "libmuzha_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
