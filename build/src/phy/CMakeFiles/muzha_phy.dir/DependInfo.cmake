
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cc" "src/phy/CMakeFiles/muzha_phy.dir/channel.cc.o" "gcc" "src/phy/CMakeFiles/muzha_phy.dir/channel.cc.o.d"
  "/root/repo/src/phy/error_model.cc" "src/phy/CMakeFiles/muzha_phy.dir/error_model.cc.o" "gcc" "src/phy/CMakeFiles/muzha_phy.dir/error_model.cc.o.d"
  "/root/repo/src/phy/wireless_phy.cc" "src/phy/CMakeFiles/muzha_phy.dir/wireless_phy.cc.o" "gcc" "src/phy/CMakeFiles/muzha_phy.dir/wireless_phy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
