# Empty compiler generated dependencies file for muzha_mac.
# This may be replaced when dependencies are built.
