
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/mac80211.cc" "src/mac/CMakeFiles/muzha_mac.dir/mac80211.cc.o" "gcc" "src/mac/CMakeFiles/muzha_mac.dir/mac80211.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
