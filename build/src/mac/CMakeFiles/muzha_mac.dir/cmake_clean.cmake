file(REMOVE_RECURSE
  "CMakeFiles/muzha_mac.dir/mac80211.cc.o"
  "CMakeFiles/muzha_mac.dir/mac80211.cc.o.d"
  "libmuzha_mac.a"
  "libmuzha_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
