file(REMOVE_RECURSE
  "libmuzha_mac.a"
)
