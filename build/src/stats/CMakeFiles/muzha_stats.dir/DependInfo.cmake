
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/export.cc" "src/stats/CMakeFiles/muzha_stats.dir/export.cc.o" "gcc" "src/stats/CMakeFiles/muzha_stats.dir/export.cc.o.d"
  "/root/repo/src/stats/fairness.cc" "src/stats/CMakeFiles/muzha_stats.dir/fairness.cc.o" "gcc" "src/stats/CMakeFiles/muzha_stats.dir/fairness.cc.o.d"
  "/root/repo/src/stats/time_series.cc" "src/stats/CMakeFiles/muzha_stats.dir/time_series.cc.o" "gcc" "src/stats/CMakeFiles/muzha_stats.dir/time_series.cc.o.d"
  "/root/repo/src/stats/trace_sinks.cc" "src/stats/CMakeFiles/muzha_stats.dir/trace_sinks.cc.o" "gcc" "src/stats/CMakeFiles/muzha_stats.dir/trace_sinks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/muzha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/muzha_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/muzha_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
