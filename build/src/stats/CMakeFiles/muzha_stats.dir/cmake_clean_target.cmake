file(REMOVE_RECURSE
  "libmuzha_stats.a"
)
