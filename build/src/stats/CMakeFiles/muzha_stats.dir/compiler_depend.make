# Empty compiler generated dependencies file for muzha_stats.
# This may be replaced when dependencies are built.
