file(REMOVE_RECURSE
  "CMakeFiles/muzha_stats.dir/export.cc.o"
  "CMakeFiles/muzha_stats.dir/export.cc.o.d"
  "CMakeFiles/muzha_stats.dir/fairness.cc.o"
  "CMakeFiles/muzha_stats.dir/fairness.cc.o.d"
  "CMakeFiles/muzha_stats.dir/time_series.cc.o"
  "CMakeFiles/muzha_stats.dir/time_series.cc.o.d"
  "CMakeFiles/muzha_stats.dir/trace_sinks.cc.o"
  "CMakeFiles/muzha_stats.dir/trace_sinks.cc.o.d"
  "libmuzha_stats.a"
  "libmuzha_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
