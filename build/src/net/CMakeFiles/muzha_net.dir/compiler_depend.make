# Empty compiler generated dependencies file for muzha_net.
# This may be replaced when dependencies are built.
