
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/muzha_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/muzha_net.dir/node.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/net/CMakeFiles/muzha_net.dir/trace.cc.o" "gcc" "src/net/CMakeFiles/muzha_net.dir/trace.cc.o.d"
  "/root/repo/src/net/wireless_device.cc" "src/net/CMakeFiles/muzha_net.dir/wireless_device.cc.o" "gcc" "src/net/CMakeFiles/muzha_net.dir/wireless_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/muzha_mac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
