file(REMOVE_RECURSE
  "CMakeFiles/muzha_net.dir/node.cc.o"
  "CMakeFiles/muzha_net.dir/node.cc.o.d"
  "CMakeFiles/muzha_net.dir/trace.cc.o"
  "CMakeFiles/muzha_net.dir/trace.cc.o.d"
  "CMakeFiles/muzha_net.dir/wireless_device.cc.o"
  "CMakeFiles/muzha_net.dir/wireless_device.cc.o.d"
  "libmuzha_net.a"
  "libmuzha_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
