file(REMOVE_RECURSE
  "libmuzha_net.a"
)
