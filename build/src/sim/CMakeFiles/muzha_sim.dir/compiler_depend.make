# Empty compiler generated dependencies file for muzha_sim.
# This may be replaced when dependencies are built.
