file(REMOVE_RECURSE
  "CMakeFiles/muzha_sim.dir/log.cc.o"
  "CMakeFiles/muzha_sim.dir/log.cc.o.d"
  "CMakeFiles/muzha_sim.dir/scheduler.cc.o"
  "CMakeFiles/muzha_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/muzha_sim.dir/sim_time.cc.o"
  "CMakeFiles/muzha_sim.dir/sim_time.cc.o.d"
  "libmuzha_sim.a"
  "libmuzha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
