file(REMOVE_RECURSE
  "libmuzha_sim.a"
)
