file(REMOVE_RECURSE
  "libmuzha_routing.a"
)
