file(REMOVE_RECURSE
  "CMakeFiles/muzha_routing.dir/aodv.cc.o"
  "CMakeFiles/muzha_routing.dir/aodv.cc.o.d"
  "libmuzha_routing.a"
  "libmuzha_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
