# Empty compiler generated dependencies file for muzha_routing.
# This may be replaced when dependencies are built.
