# Empty compiler generated dependencies file for muzha_relwork.
# This may be replaced when dependencies are built.
