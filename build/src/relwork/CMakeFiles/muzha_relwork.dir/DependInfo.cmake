
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relwork/adtcp.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/adtcp.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/adtcp.cc.o.d"
  "/root/repo/src/relwork/ecn.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/ecn.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/ecn.cc.o.d"
  "/root/repo/src/relwork/tcp_door.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_door.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_door.cc.o.d"
  "/root/repo/src/relwork/tcp_jersey.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_jersey.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_jersey.cc.o.d"
  "/root/repo/src/relwork/tcp_rovegas.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_rovegas.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_rovegas.cc.o.d"
  "/root/repo/src/relwork/tcp_westwood.cc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_westwood.cc.o" "gcc" "src/relwork/CMakeFiles/muzha_relwork.dir/tcp_westwood.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/muzha_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/muzha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/muzha_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
