file(REMOVE_RECURSE
  "libmuzha_relwork.a"
)
