file(REMOVE_RECURSE
  "CMakeFiles/muzha_relwork.dir/adtcp.cc.o"
  "CMakeFiles/muzha_relwork.dir/adtcp.cc.o.d"
  "CMakeFiles/muzha_relwork.dir/ecn.cc.o"
  "CMakeFiles/muzha_relwork.dir/ecn.cc.o.d"
  "CMakeFiles/muzha_relwork.dir/tcp_door.cc.o"
  "CMakeFiles/muzha_relwork.dir/tcp_door.cc.o.d"
  "CMakeFiles/muzha_relwork.dir/tcp_jersey.cc.o"
  "CMakeFiles/muzha_relwork.dir/tcp_jersey.cc.o.d"
  "CMakeFiles/muzha_relwork.dir/tcp_rovegas.cc.o"
  "CMakeFiles/muzha_relwork.dir/tcp_rovegas.cc.o.d"
  "CMakeFiles/muzha_relwork.dir/tcp_westwood.cc.o"
  "CMakeFiles/muzha_relwork.dir/tcp_westwood.cc.o.d"
  "libmuzha_relwork.a"
  "libmuzha_relwork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_relwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
