file(REMOVE_RECURSE
  "libmuzha_scenario.a"
)
