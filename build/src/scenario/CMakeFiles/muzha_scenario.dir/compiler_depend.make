# Empty compiler generated dependencies file for muzha_scenario.
# This may be replaced when dependencies are built.
