file(REMOVE_RECURSE
  "CMakeFiles/muzha_scenario.dir/experiment.cc.o"
  "CMakeFiles/muzha_scenario.dir/experiment.cc.o.d"
  "CMakeFiles/muzha_scenario.dir/mobility.cc.o"
  "CMakeFiles/muzha_scenario.dir/mobility.cc.o.d"
  "CMakeFiles/muzha_scenario.dir/network.cc.o"
  "CMakeFiles/muzha_scenario.dir/network.cc.o.d"
  "libmuzha_scenario.a"
  "libmuzha_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
