file(REMOVE_RECURSE
  "CMakeFiles/muzha_pkt.dir/packet.cc.o"
  "CMakeFiles/muzha_pkt.dir/packet.cc.o.d"
  "libmuzha_pkt.a"
  "libmuzha_pkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
