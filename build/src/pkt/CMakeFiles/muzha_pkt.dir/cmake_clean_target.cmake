file(REMOVE_RECURSE
  "libmuzha_pkt.a"
)
