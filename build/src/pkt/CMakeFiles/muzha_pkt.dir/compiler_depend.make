# Empty compiler generated dependencies file for muzha_pkt.
# This may be replaced when dependencies are built.
