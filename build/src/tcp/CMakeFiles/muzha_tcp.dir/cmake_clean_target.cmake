file(REMOVE_RECURSE
  "libmuzha_tcp.a"
)
