
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/rto_estimator.cc" "src/tcp/CMakeFiles/muzha_tcp.dir/rto_estimator.cc.o" "gcc" "src/tcp/CMakeFiles/muzha_tcp.dir/rto_estimator.cc.o.d"
  "/root/repo/src/tcp/tcp_agent.cc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_agent.cc.o" "gcc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_agent.cc.o.d"
  "/root/repo/src/tcp/tcp_sink.cc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_sink.cc.o" "gcc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_sink.cc.o.d"
  "/root/repo/src/tcp/tcp_variants.cc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_variants.cc.o" "gcc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_variants.cc.o.d"
  "/root/repo/src/tcp/tcp_vegas.cc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_vegas.cc.o" "gcc" "src/tcp/CMakeFiles/muzha_tcp.dir/tcp_vegas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/muzha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/muzha_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
