# Empty dependencies file for muzha_tcp.
# This may be replaced when dependencies are built.
