file(REMOVE_RECURSE
  "CMakeFiles/muzha_tcp.dir/rto_estimator.cc.o"
  "CMakeFiles/muzha_tcp.dir/rto_estimator.cc.o.d"
  "CMakeFiles/muzha_tcp.dir/tcp_agent.cc.o"
  "CMakeFiles/muzha_tcp.dir/tcp_agent.cc.o.d"
  "CMakeFiles/muzha_tcp.dir/tcp_sink.cc.o"
  "CMakeFiles/muzha_tcp.dir/tcp_sink.cc.o.d"
  "CMakeFiles/muzha_tcp.dir/tcp_variants.cc.o"
  "CMakeFiles/muzha_tcp.dir/tcp_variants.cc.o.d"
  "CMakeFiles/muzha_tcp.dir/tcp_vegas.cc.o"
  "CMakeFiles/muzha_tcp.dir/tcp_vegas.cc.o.d"
  "libmuzha_tcp.a"
  "libmuzha_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muzha_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
