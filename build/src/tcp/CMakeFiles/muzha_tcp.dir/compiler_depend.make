# Empty compiler generated dependencies file for muzha_tcp.
# This may be replaced when dependencies are built.
