file(REMOVE_RECURSE
  "CMakeFiles/ablation_marking.dir/ablation_marking.cc.o"
  "CMakeFiles/ablation_marking.dir/ablation_marking.cc.o.d"
  "ablation_marking"
  "ablation_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
