# Empty dependencies file for ablation_marking.
# This may be replaced when dependencies are built.
