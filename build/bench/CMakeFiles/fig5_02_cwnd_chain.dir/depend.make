# Empty dependencies file for fig5_02_cwnd_chain.
# This may be replaced when dependencies are built.
