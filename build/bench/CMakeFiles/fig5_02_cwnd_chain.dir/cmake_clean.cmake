file(REMOVE_RECURSE
  "CMakeFiles/fig5_02_cwnd_chain.dir/fig5_02_cwnd_chain.cc.o"
  "CMakeFiles/fig5_02_cwnd_chain.dir/fig5_02_cwnd_chain.cc.o.d"
  "fig5_02_cwnd_chain"
  "fig5_02_cwnd_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_02_cwnd_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
