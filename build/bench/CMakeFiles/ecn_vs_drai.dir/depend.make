# Empty dependencies file for ecn_vs_drai.
# This may be replaced when dependencies are built.
