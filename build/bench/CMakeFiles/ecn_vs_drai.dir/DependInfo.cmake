
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ecn_vs_drai.cc" "bench/CMakeFiles/ecn_vs_drai.dir/ecn_vs_drai.cc.o" "gcc" "bench/CMakeFiles/ecn_vs_drai.dir/ecn_vs_drai.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/muzha_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/muzha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relwork/CMakeFiles/muzha_relwork.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/muzha_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/muzha_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/muzha_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/muzha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/muzha_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/muzha_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/pkt/CMakeFiles/muzha_pkt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/muzha_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
