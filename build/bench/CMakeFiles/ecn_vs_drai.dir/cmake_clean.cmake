file(REMOVE_RECURSE
  "CMakeFiles/ecn_vs_drai.dir/ecn_vs_drai.cc.o"
  "CMakeFiles/ecn_vs_drai.dir/ecn_vs_drai.cc.o.d"
  "ecn_vs_drai"
  "ecn_vs_drai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecn_vs_drai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
