file(REMOVE_RECURSE
  "CMakeFiles/fig5_19_dynamics.dir/fig5_19_dynamics.cc.o"
  "CMakeFiles/fig5_19_dynamics.dir/fig5_19_dynamics.cc.o.d"
  "fig5_19_dynamics"
  "fig5_19_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_19_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
