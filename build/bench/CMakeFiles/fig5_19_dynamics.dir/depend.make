# Empty dependencies file for fig5_19_dynamics.
# This may be replaced when dependencies are built.
