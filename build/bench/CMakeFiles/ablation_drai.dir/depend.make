# Empty dependencies file for ablation_drai.
# This may be replaced when dependencies are built.
