file(REMOVE_RECURSE
  "CMakeFiles/ablation_drai.dir/ablation_drai.cc.o"
  "CMakeFiles/ablation_drai.dir/ablation_drai.cc.o.d"
  "ablation_drai"
  "ablation_drai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
