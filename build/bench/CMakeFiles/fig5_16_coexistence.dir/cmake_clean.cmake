file(REMOVE_RECURSE
  "CMakeFiles/fig5_16_coexistence.dir/fig5_16_coexistence.cc.o"
  "CMakeFiles/fig5_16_coexistence.dir/fig5_16_coexistence.cc.o.d"
  "fig5_16_coexistence"
  "fig5_16_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_16_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
