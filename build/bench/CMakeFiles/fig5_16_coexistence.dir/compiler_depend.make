# Empty compiler generated dependencies file for fig5_16_coexistence.
# This may be replaced when dependencies are built.
