file(REMOVE_RECURSE
  "CMakeFiles/mobility_bench.dir/mobility_bench.cc.o"
  "CMakeFiles/mobility_bench.dir/mobility_bench.cc.o.d"
  "mobility_bench"
  "mobility_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
