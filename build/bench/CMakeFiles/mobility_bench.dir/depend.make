# Empty dependencies file for mobility_bench.
# This may be replaced when dependencies are built.
