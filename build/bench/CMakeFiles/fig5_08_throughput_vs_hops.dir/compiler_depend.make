# Empty compiler generated dependencies file for fig5_08_throughput_vs_hops.
# This may be replaced when dependencies are built.
