file(REMOVE_RECURSE
  "CMakeFiles/relwork_shootout.dir/relwork_shootout.cc.o"
  "CMakeFiles/relwork_shootout.dir/relwork_shootout.cc.o.d"
  "relwork_shootout"
  "relwork_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relwork_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
