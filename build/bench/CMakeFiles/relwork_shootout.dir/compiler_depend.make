# Empty compiler generated dependencies file for relwork_shootout.
# This may be replaced when dependencies are built.
