# Empty compiler generated dependencies file for fig5_11_retx_vs_hops.
# This may be replaced when dependencies are built.
