file(REMOVE_RECURSE
  "CMakeFiles/fig5_11_retx_vs_hops.dir/fig5_11_retx_vs_hops.cc.o"
  "CMakeFiles/fig5_11_retx_vs_hops.dir/fig5_11_retx_vs_hops.cc.o.d"
  "fig5_11_retx_vs_hops"
  "fig5_11_retx_vs_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_11_retx_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
