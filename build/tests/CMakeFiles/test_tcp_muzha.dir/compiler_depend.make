# Empty compiler generated dependencies file for test_tcp_muzha.
# This may be replaced when dependencies are built.
