file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_muzha.dir/test_tcp_muzha.cc.o"
  "CMakeFiles/test_tcp_muzha.dir/test_tcp_muzha.cc.o.d"
  "test_tcp_muzha"
  "test_tcp_muzha.pdb"
  "test_tcp_muzha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_muzha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
