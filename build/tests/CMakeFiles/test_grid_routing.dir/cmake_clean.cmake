file(REMOVE_RECURSE
  "CMakeFiles/test_grid_routing.dir/test_grid_routing.cc.o"
  "CMakeFiles/test_grid_routing.dir/test_grid_routing.cc.o.d"
  "test_grid_routing"
  "test_grid_routing.pdb"
  "test_grid_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
