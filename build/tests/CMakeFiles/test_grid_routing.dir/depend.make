# Empty dependencies file for test_grid_routing.
# This may be replaced when dependencies are built.
