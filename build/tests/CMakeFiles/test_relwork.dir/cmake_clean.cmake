file(REMOVE_RECURSE
  "CMakeFiles/test_relwork.dir/test_relwork.cc.o"
  "CMakeFiles/test_relwork.dir/test_relwork.cc.o.d"
  "test_relwork"
  "test_relwork.pdb"
  "test_relwork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relwork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
