# Empty compiler generated dependencies file for test_relwork.
# This may be replaced when dependencies are built.
