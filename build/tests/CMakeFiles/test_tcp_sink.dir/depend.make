# Empty dependencies file for test_tcp_sink.
# This may be replaced when dependencies are built.
