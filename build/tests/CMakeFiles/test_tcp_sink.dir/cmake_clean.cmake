file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_sink.dir/test_tcp_sink.cc.o"
  "CMakeFiles/test_tcp_sink.dir/test_tcp_sink.cc.o.d"
  "test_tcp_sink"
  "test_tcp_sink.pdb"
  "test_tcp_sink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_sink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
