file(REMOVE_RECURSE
  "CMakeFiles/test_delayed_ack.dir/test_delayed_ack.cc.o"
  "CMakeFiles/test_delayed_ack.dir/test_delayed_ack.cc.o.d"
  "test_delayed_ack"
  "test_delayed_ack.pdb"
  "test_delayed_ack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delayed_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
