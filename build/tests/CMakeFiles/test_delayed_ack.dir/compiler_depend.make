# Empty compiler generated dependencies file for test_delayed_ack.
# This may be replaced when dependencies are built.
