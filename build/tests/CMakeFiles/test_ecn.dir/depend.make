# Empty dependencies file for test_ecn.
# This may be replaced when dependencies are built.
