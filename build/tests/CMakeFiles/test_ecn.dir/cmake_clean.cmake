file(REMOVE_RECURSE
  "CMakeFiles/test_ecn.dir/test_ecn.cc.o"
  "CMakeFiles/test_ecn.dir/test_ecn.cc.o.d"
  "test_ecn"
  "test_ecn.pdb"
  "test_ecn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
