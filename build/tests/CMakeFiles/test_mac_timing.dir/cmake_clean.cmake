file(REMOVE_RECURSE
  "CMakeFiles/test_mac_timing.dir/test_mac_timing.cc.o"
  "CMakeFiles/test_mac_timing.dir/test_mac_timing.cc.o.d"
  "test_mac_timing"
  "test_mac_timing.pdb"
  "test_mac_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
