# Empty dependencies file for test_mac_timing.
# This may be replaced when dependencies are built.
