file(REMOVE_RECURSE
  "CMakeFiles/test_device_delay.dir/test_device_delay.cc.o"
  "CMakeFiles/test_device_delay.dir/test_device_delay.cc.o.d"
  "test_device_delay"
  "test_device_delay.pdb"
  "test_device_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
