# Empty dependencies file for test_device_delay.
# This may be replaced when dependencies are built.
