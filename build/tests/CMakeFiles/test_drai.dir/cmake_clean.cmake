file(REMOVE_RECURSE
  "CMakeFiles/test_drai.dir/test_drai.cc.o"
  "CMakeFiles/test_drai.dir/test_drai.cc.o.d"
  "test_drai"
  "test_drai.pdb"
  "test_drai[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
