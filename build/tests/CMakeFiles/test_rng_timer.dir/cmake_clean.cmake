file(REMOVE_RECURSE
  "CMakeFiles/test_rng_timer.dir/test_rng_timer.cc.o"
  "CMakeFiles/test_rng_timer.dir/test_rng_timer.cc.o.d"
  "test_rng_timer"
  "test_rng_timer.pdb"
  "test_rng_timer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
