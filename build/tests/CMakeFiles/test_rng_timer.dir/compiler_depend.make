# Empty compiler generated dependencies file for test_rng_timer.
# This may be replaced when dependencies are built.
