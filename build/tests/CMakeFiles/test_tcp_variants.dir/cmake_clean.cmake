file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_variants.dir/test_tcp_variants.cc.o"
  "CMakeFiles/test_tcp_variants.dir/test_tcp_variants.cc.o.d"
  "test_tcp_variants"
  "test_tcp_variants.pdb"
  "test_tcp_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
