# Empty compiler generated dependencies file for test_tcp_variants.
# This may be replaced when dependencies are built.
