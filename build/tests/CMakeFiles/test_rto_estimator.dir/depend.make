# Empty dependencies file for test_rto_estimator.
# This may be replaced when dependencies are built.
