file(REMOVE_RECURSE
  "CMakeFiles/test_rto_estimator.dir/test_rto_estimator.cc.o"
  "CMakeFiles/test_rto_estimator.dir/test_rto_estimator.cc.o.d"
  "test_rto_estimator"
  "test_rto_estimator.pdb"
  "test_rto_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rto_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
