// Packet model with stacked protocol headers.
//
// Like NS-2, a Packet carries every layer's header at once; layers read and
// write only their own header. Packets move through the stack as
// std::unique_ptr<Packet> (exactly one owner at a time); broadcast fan-out
// clones one copy per receiver.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <variant>

#include "pkt/aodv_messages.h"
#include "sim/assert.h"
#include "sim/sim_time.h"

namespace muzha {

using NodeId = std::uint32_t;
inline constexpr NodeId kBroadcastId = 0xFFFFFFFFu;
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFEu;

using FlowId = std::uint32_t;

// ---------------------------------------------------------------------------
// MAC header (IEEE 802.11 style)
// ---------------------------------------------------------------------------

enum class MacFrameType : std::uint8_t { kData, kRts, kCts, kAck };

struct MacHeader {
  MacFrameType type = MacFrameType::kData;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  // Remaining medium reservation after this frame ends (NAV duration).
  SimTime duration;
  std::uint16_t seq = 0;
  bool retry = false;
};

// On-air MAC overhead in bytes (802.11 header + FCS; control frame sizes).
inline constexpr std::uint32_t kMacDataOverheadBytes = 28;  // 24 hdr + 4 FCS
inline constexpr std::uint32_t kMacRtsBytes = 20;
inline constexpr std::uint32_t kMacCtsBytes = 14;
inline constexpr std::uint32_t kMacAckBytes = 14;

// ---------------------------------------------------------------------------
// IP header, including TCP Muzha's AVBW-S option
// ---------------------------------------------------------------------------

enum class IpProto : std::uint8_t { kNone, kTcp, kAodv };

// DRAI (Data Rate Adjustment Index) levels, Table 5.2 of the paper.
inline constexpr std::uint8_t kDraiAggressiveDecel = 1;
inline constexpr std::uint8_t kDraiModerateDecel = 2;
inline constexpr std::uint8_t kDraiStabilize = 3;
inline constexpr std::uint8_t kDraiModerateAccel = 4;
inline constexpr std::uint8_t kDraiAggressiveAccel = 5;

struct IpHeader {
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  IpProto proto = IpProto::kNone;
  std::uint8_t ttl = 64;
  // AVBW-S option: path-minimum DRAI. The sender initialises it to the
  // maximum level; every node on the path (source included) lowers it to its
  // own DRAI if smaller. At the receiver it is the MRAI.
  std::uint8_t avbw_s = kDraiAggressiveAccel;
  // Congestion mark set by routers whose DRAI is in the deceleration region.
  bool congestion_marked = false;
  // RoVegas-style option: queueing delay accumulated hop by hop on the
  // forward path (each device adds the time the packet sat in its IFQ).
  SimTime accum_queue_delay;
};

// ---------------------------------------------------------------------------
// TCP header (packet-based, NS-2 "one-way TCP" style)
// ---------------------------------------------------------------------------

struct SackBlock {
  std::int64_t begin = 0;  // first seqno in block
  std::int64_t end = 0;    // one past last seqno in block
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

// Fixed-capacity SACK block list. The real option carries at most 3 blocks
// (RFC 2018); storing them inline keeps TcpHeader — and therefore Packet —
// free of heap-owning members, which is what lets the packet arena clone and
// recycle packets without touching the allocator. push_back saturates at
// capacity (the sink already honours TcpSink::Config::max_sack_blocks).
inline constexpr int kMaxSackBlocks = 4;

class SackList {
 public:
  SackList() = default;
  SackList(std::initializer_list<SackBlock> blocks) {
    for (const SackBlock& b : blocks) push_back(b);
  }

  void push_back(const SackBlock& b) {
    MUZHA_DCHECK(count_ < kMaxSackBlocks,
                 "SackList overflow: more blocks than the option carries");
    if (count_ < kMaxSackBlocks) blocks_[static_cast<std::size_t>(count_++)] = b;
  }
  void clear() { count_ = 0; }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return static_cast<std::size_t>(count_); }
  const SackBlock& operator[](std::size_t i) const { return blocks_[i]; }
  SackBlock& operator[](std::size_t i) { return blocks_[i]; }
  const SackBlock* begin() const { return blocks_.data(); }
  const SackBlock* end() const { return blocks_.data() + count_; }

  friend bool operator==(const SackList& a, const SackList& b) {
    if (a.count_ != b.count_) return false;
    for (int i = 0; i < a.count_; ++i) {
      if (!(a.blocks_[static_cast<std::size_t>(i)] ==
            b.blocks_[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<SackBlock, kMaxSackBlocks> blocks_{};
  std::int8_t count_ = 0;
};

// Network-state classification piggybacked on ACKs by an ADTCP receiver.
enum class AdtcpState : std::uint8_t {
  kNormal,
  kCongestion,
  kChannelError,
  kRouteChange,
};

struct TcpHeader {
  FlowId flow = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  bool is_ack = false;
  std::int64_t seqno = 0;  // data: segment number; ack: cumulative ack
  // Timestamp echo for RTT sampling (Karn-safe: sender ignores echoes of
  // retransmitted segments).
  SimTime ts;
  SimTime ts_echo;
  // Muzha fields echoed by the receiver.
  std::uint8_t mrai = kDraiAggressiveAccel;
  bool marked = false;  // marked duplicate ACK => congestion loss
  // SACK blocks (most recent first, at most 3 like the real option).
  SackList sacks;
  // TCP-DOOR one-byte option: duplicate-ACK stream sequence, so the sender
  // can detect out-of-order delivery among otherwise identical dup ACKs.
  std::uint32_t dup_seq = 0;
  // ADTCP receiver-side network-state classification.
  AdtcpState net_state = AdtcpState::kNormal;
  // RoVegas: forward-path accumulated queueing delay echoed back.
  SimTime qdelay_echo;
  // ECN/CW-style echo: the data packet that triggered this ACK carried a
  // router congestion mark (set on *every* ACK, unlike `marked`, which only
  // applies to duplicates — TCP Jersey consumes this one).
  bool ce_echo = false;
};

// ---------------------------------------------------------------------------
// Packet
// ---------------------------------------------------------------------------

struct Packet {
  std::uint64_t uid = 0;
  // Size of the IP datagram in bytes (payload + transport/IP headers). MAC
  // framing overhead is added by the MAC when computing airtime.
  std::uint32_t size_bytes = 0;
  MacHeader mac;
  IpHeader ip;
  std::variant<std::monostate, TcpHeader, AodvMessage> l4;

  // Layer discipline (debug builds): a layer must only read the header it
  // negotiated — std::get would throw eventually, but the DCHECK names the
  // violating call site instead of unwinding to a generic handler.
  TcpHeader& tcp() {
    MUZHA_DCHECK(has_tcp(), "layer discipline: packet carries no TCP header");
    return std::get<TcpHeader>(l4);
  }
  const TcpHeader& tcp() const {
    MUZHA_DCHECK(has_tcp(), "layer discipline: packet carries no TCP header");
    return std::get<TcpHeader>(l4);
  }
  bool has_tcp() const { return std::holds_alternative<TcpHeader>(l4); }

  AodvMessage& aodv() {
    MUZHA_DCHECK(has_aodv(), "layer discipline: packet carries no AODV message");
    return std::get<AodvMessage>(l4);
  }
  const AodvMessage& aodv() const {
    MUZHA_DCHECK(has_aodv(), "layer discipline: packet carries no AODV message");
    return std::get<AodvMessage>(l4);
  }
  bool has_aodv() const { return std::holds_alternative<AodvMessage>(l4); }
};

// Packets are pool-allocated: the deleter returns the object to the calling
// thread's PacketArena (src/pkt/packet_arena.h) instead of the heap, so the
// clone-per-receiver channel path and the MAC retransmit path recycle
// storage through a free list. The deleter is stateless, so PacketPtr stays
// pointer-sized and inline-callback captures are unaffected.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;  // defined in packet_arena.cc
};
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Allocates a default-initialised packet (uid 0) from the thread's arena —
// the MAC uses this for control frames; tests use it for hand-built frames.
PacketPtr alloc_packet();

// Allocates a packet with a fresh uid. `uid_counter` is owned by the caller
// (normally the Node or test); there is no global counter.
PacketPtr make_packet(std::uint64_t& uid_counter);

// Deep copy with the same uid (a broadcast's copies are "the same packet").
PacketPtr clone_packet(const Packet& p);

// Human-readable one-line summary for tracing.
const char* mac_frame_name(MacFrameType t);

}  // namespace muzha
