#include "pkt/packet_arena.h"

#include <new>

#include "pkt/packet.h"
#include "sim/assert.h"

namespace muzha {

PacketArena& PacketArena::local() {
  thread_local PacketArena arena;
  return arena;
}

PacketArena::~PacketArena() {
  // Slots still outstanding at thread exit would be destroyed twice (once by
  // their PacketPtr, once here) — leak the chunk storage instead of guessing.
  // In practice every PacketPtr dies before its simulator, which dies before
  // the worker thread, so live_ is 0 and the chunks free cleanly.
  MUZHA_DCHECK(live_ == 0, "PacketArena destroyed with packets outstanding");
}

Packet* PacketArena::allocate() {
  Packet* slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
#if MUZHA_DCHECK_ENABLED
    free_set_.erase(slot);
#endif
  } else {
    slot = grow();
  }
  ++live_;
  return new (slot) Packet();
}

void PacketArena::release(Packet* p) noexcept {
#if MUZHA_DCHECK_ENABLED
  MUZHA_DCHECK(owns(p), "PacketArena::release: pointer not from this arena "
                        "(cross-thread free or stray pointer)");
  MUZHA_DCHECK(free_set_.insert(p).second,
               "PacketArena::release: double free of pooled packet");
#endif
  p->~Packet();
  free_.push_back(p);
  --live_;
}

void PacketArena::trim() {
  MUZHA_ASSERT(live_ == 0, "PacketArena::trim with packets outstanding");
  free_.clear();
  free_.shrink_to_fit();
  chunks_.clear();
  chunks_.shrink_to_fit();
#if MUZHA_DCHECK_ENABLED
  free_set_.clear();
#endif
}

Packet* PacketArena::grow() {
  auto chunk = std::make_unique<std::byte[]>(kChunkPackets * sizeof(Packet));
  std::byte* base = chunk.get();
  chunks_.push_back(std::move(chunk));
  // Slot 0 is handed to the caller; the rest go on the free list in reverse
  // so allocation order walks the chunk front to back (cache-friendly and
  // deterministic, though no simulation state depends on slot addresses).
  free_.reserve(free_.size() + kChunkPackets - 1);
  for (std::size_t i = kChunkPackets; i-- > 1;) {
    Packet* slot = reinterpret_cast<Packet*>(base + i * sizeof(Packet));
    free_.push_back(slot);
#if MUZHA_DCHECK_ENABLED
    free_set_.insert(slot);
#endif
  }
  return reinterpret_cast<Packet*>(base);
}

#if MUZHA_DCHECK_ENABLED
bool PacketArena::owns(const Packet* p) const {
  const std::byte* q = reinterpret_cast<const std::byte*>(p);
  for (const auto& chunk : chunks_) {
    const std::byte* base = chunk.get();
    if (q >= base && q < base + kChunkPackets * sizeof(Packet)) {
      return (q - base) % sizeof(Packet) == 0;
    }
  }
  return false;
}
#endif

// ---------------------------------------------------------------------------
// PacketPtr factories
// ---------------------------------------------------------------------------

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr) PacketArena::local().release(p);
}

PacketPtr alloc_packet() { return PacketPtr(PacketArena::local().allocate()); }

PacketPtr make_packet(std::uint64_t& uid_counter) {
  PacketPtr p = alloc_packet();
  p->uid = ++uid_counter;
  return p;
}

PacketPtr clone_packet(const Packet& src) {
  PacketPtr p = alloc_packet();
  *p = src;  // Packet has no heap-owning members; copy-assign is memberwise
  return p;
}

}  // namespace muzha
