#include "pkt/packet.h"

namespace muzha {

// make_packet / clone_packet / alloc_packet live in packet_arena.cc so the
// pool and its factories share a translation unit.

const char* mac_frame_name(MacFrameType t) {
  switch (t) {
    case MacFrameType::kData:
      return "DATA";
    case MacFrameType::kRts:
      return "RTS";
    case MacFrameType::kCts:
      return "CTS";
    case MacFrameType::kAck:
      return "ACK";
  }
  return "?";
}

}  // namespace muzha
