#include "pkt/packet.h"

namespace muzha {

PacketPtr make_packet(std::uint64_t& uid_counter) {
  auto p = std::make_unique<Packet>();
  p->uid = ++uid_counter;
  return p;
}

PacketPtr clone_packet(const Packet& p) { return std::make_unique<Packet>(p); }

const char* mac_frame_name(MacFrameType t) {
  switch (t) {
    case MacFrameType::kData:
      return "DATA";
    case MacFrameType::kRts:
      return "RTS";
    case MacFrameType::kCts:
      return "CTS";
    case MacFrameType::kAck:
      return "ACK";
  }
  return "?";
}

}  // namespace muzha
