// AODV control message formats (RFC 3561 subset).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

namespace muzha {

struct AodvRreq {
  std::uint32_t rreq_id = 0;
  std::uint32_t origin = 0;       // originator NodeId
  std::uint32_t origin_seq = 0;   // originator sequence number
  std::uint32_t dest = 0;         // destination NodeId
  std::uint32_t dest_seq = 0;     // last known destination sequence number
  bool unknown_dest_seq = true;   // U flag
  std::uint8_t hop_count = 0;
};

struct AodvRrep {
  std::uint32_t origin = 0;  // node the reply travels back to
  std::uint32_t dest = 0;    // destination the route leads to
  std::uint32_t dest_seq = 0;
  std::uint8_t hop_count = 0;
};

struct AodvRerr {
  struct Unreachable {
    std::uint32_t dest = 0;
    std::uint32_t dest_seq = 0;
  };
  std::vector<Unreachable> unreachable;
};

struct AodvMessage {
  std::variant<AodvRreq, AodvRrep, AodvRerr> body;

  bool is_rreq() const { return std::holds_alternative<AodvRreq>(body); }
  bool is_rrep() const { return std::holds_alternative<AodvRrep>(body); }
  bool is_rerr() const { return std::holds_alternative<AodvRerr>(body); }
  AodvRreq& rreq() { return std::get<AodvRreq>(body); }
  const AodvRreq& rreq() const { return std::get<AodvRreq>(body); }
  AodvRrep& rrep() { return std::get<AodvRrep>(body); }
  const AodvRrep& rrep() const { return std::get<AodvRrep>(body); }
  AodvRerr& rerr() { return std::get<AodvRerr>(body); }
  const AodvRerr& rerr() const { return std::get<AodvRerr>(body); }
};

// Wire sizes used for airtime accounting (RFC 3561 message sizes + IP hdr).
inline constexpr std::uint32_t kAodvRreqBytes = 24 + 20;
inline constexpr std::uint32_t kAodvRrepBytes = 20 + 20;
inline constexpr std::uint32_t kAodvRerrBytes = 12 + 20;

}  // namespace muzha
