// Thread-local free-list pool for Packet objects.
//
// The channel clones one packet per decodable receiver and the MAC clones
// one per transmission attempt; at city scale that is millions of operator
// new/delete round trips per simulated second. The arena recycles Packet
// storage through chunks of 256 slots threaded on a free list — the same
// chunked-pool pattern as the scheduler's callback storage — so the warm
// allocate/clone/release path never touches the heap: allocation pops a
// slot and placement-constructs, release destroys and pushes the slot back.
// Chunk addresses never change while the arena lives.
//
// One arena per thread (PacketArena::local()): the BatchRunner runs each
// experiment on its own worker thread and a packet never crosses threads
// (each Simulator is confined to one thread), so pooling needs no locks and
// the pool stays warm across the runs that share a worker. Releasing a
// packet on a thread other than the one that allocated it is a bug; with
// MUZHA_DCHECKs on, release() verifies the pointer belongs to this arena's
// chunks and would catch the stray free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#if MUZHA_DCHECK_ENABLED
#include <set>
#endif

#include "pkt/packet.h"
#include "sim/assert.h"

namespace muzha {

class PacketArena {
 public:
  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;
  ~PacketArena();

  // The calling thread's arena (constructed on first use).
  static PacketArena& local();

  // Pops a slot and placement-constructs a default Packet in it.
  Packet* allocate();

  // Destroys the packet and recycles its slot. With MUZHA_DCHECKs on,
  // catches double-free and pointers that were never handed out by this
  // arena (including packets allocated on another thread).
  void release(Packet* p) noexcept;

  // Introspection (tests and stats).
  std::size_t outstanding() const { return live_; }
  std::size_t pooled_free() const { return free_.size(); }
  std::size_t capacity() const { return kChunkPackets * chunks_.size(); }

  // Returns every chunk to the heap. Only legal when nothing is
  // outstanding; the next allocate() grows a fresh chunk.
  void trim();

 private:
  static constexpr std::size_t kChunkPackets = 256;

  Packet* grow();  // cold path: appends a chunk, returns its first slot

#if MUZHA_DCHECK_ENABLED
  bool owns(const Packet* p) const;
#endif

  std::vector<std::unique_ptr<std::byte[]>> chunks_;  // raw slot storage
  std::vector<Packet*> free_;                         // recycled raw slots
  std::size_t live_ = 0;
#if MUZHA_DCHECK_ENABLED
  // Debug shadow of the free list for O(log n) double-free detection.
  // muzha-lint: allow(pointer-key): membership queries only, never iterated
  std::set<const Packet*> free_set_;
#endif
};

}  // namespace muzha
