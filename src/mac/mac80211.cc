#include "mac/mac80211.h"

#include <algorithm>

#include "mac/mac_params.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

Mac80211::Mac80211(Simulator& sim, WirelessPhy& phy, MacParams params)
    : sim_(sim),
      phy_(phy),
      params_(params),
      cw_(params.cw_min),
      response_timer_(sim, [this] {
        if (awaiting_ == Await::kCts) {
          on_cts_timeout();
        } else if (awaiting_ == Await::kAck) {
          on_ack_timeout();
        }
      }) {
  phy_.set_channel_state_callback(
      [this](bool busy) { on_phy_channel_state(busy); });
  phy_.set_rx_callback(
      [this](PacketPtr pkt, bool corrupted) { on_phy_rx(std::move(pkt), corrupted); });
  phy_.set_tx_done_callback([this] { on_phy_tx_done(); });
}

SimTime Mac80211::cumulative_busy_time() const {
  SimTime t = busy_accum_;
  if (medium_busy_) t += sim_.now() - busy_since_;
  return t;
}

SimTime Mac80211::frame_airtime(MacFrameType type,
                                std::uint32_t payload_bytes) const {
  switch (type) {
    case MacFrameType::kRts:
      return phy_.tx_duration(Bytes(kMacRtsBytes), /*basic_rate=*/true);
    case MacFrameType::kCts:
      return phy_.tx_duration(Bytes(kMacCtsBytes), true);
    case MacFrameType::kAck:
      return phy_.tx_duration(Bytes(kMacAckBytes), true);
    case MacFrameType::kData:
      return phy_.tx_duration(Bytes(payload_bytes + kMacDataOverheadBytes),
                              /*basic_rate=*/false);
  }
  return SimTime::zero();
}

void Mac80211::transmit(PacketPtr pkt, NodeId next_hop) {
  MUZHA_ASSERT(idle(), "MAC already holds a packet; wait for tx-done");
  MUZHA_ASSERT(pkt != nullptr, "cannot transmit a null packet");
  pending_ = std::move(pkt);
  pending_dest_ = next_hop;
  pending_->mac.type = MacFrameType::kData;
  pending_->mac.src = addr();
  pending_->mac.dst = next_hop;
  pending_->mac.seq = ++tx_seq_;
  pending_->mac.retry = false;
  pending_uses_rts_ = next_hop != kBroadcastId &&
                      Bytes(pending_->size_bytes) >= params_.rts_threshold;
  short_retries_ = 0;
  long_retries_ = 0;
  resume_contention();
}

bool Mac80211::medium_idle() const {
  return !phy_.carrier_busy() && sim_.now() >= nav_until_;
}

void Mac80211::resume_contention() {
  if (!pending_ || contention_event_ != kInvalidEventId ||
      awaiting_ != Await::kNone || forced_tx_in_flight_) {
    return;
  }
  if (phy_.carrier_busy()) return;  // idle transition will resume us
  if (sim_.now() < nav_until_) {
    // Virtual carrier busy: re-check at NAV expiry.
    contention_event_ = sim_.schedule_at(nav_until_, [this] {
      contention_event_ = kInvalidEventId;
      resume_contention();
    });
    return;
  }
  in_backoff_phase_ = false;
  SimTime ifs = params_.difs;
  if (next_ifs_is_eifs_) {
    // EIFS = SIFS + ACK airtime + DIFS (802.11-1999 9.2.10).
    ifs = params_.sifs + frame_airtime(MacFrameType::kAck, 0) + params_.difs;
  }
  contention_event_ = sim_.schedule_in(ifs, [this] { on_ifs_elapsed(); });
}

void Mac80211::cancel_contention() {
  if (contention_event_ != kInvalidEventId) {
    sim_.cancel(contention_event_);
    contention_event_ = kInvalidEventId;
  }
}

void Mac80211::on_ifs_elapsed() {
  contention_event_ = kInvalidEventId;
  if (!medium_idle()) {
    resume_contention();
    return;
  }
  in_backoff_phase_ = true;
  if (backoff_slots_ == 0) {
    start_attempt();
  } else {
    contention_event_ = sim_.schedule_in(params_.slot, [this] { on_slot_elapsed(); });
  }
}

void Mac80211::on_slot_elapsed() {
  contention_event_ = kInvalidEventId;
  if (!medium_idle()) {
    resume_contention();
    return;
  }
  MUZHA_ASSERT(backoff_slots_ > 0, "slot tick with no backoff remaining");
  --backoff_slots_;
  if (backoff_slots_ == 0) {
    start_attempt();
  } else {
    contention_event_ = sim_.schedule_in(params_.slot, [this] { on_slot_elapsed(); });
  }
}

void Mac80211::start_attempt() {
  in_backoff_phase_ = false;
  MUZHA_ASSERT(pending_ != nullptr, "attempt with no pending packet");
  if (pending_dest_ != kBroadcastId && pending_uses_rts_) {
    send_rts();
  } else {
    send_data();
  }
}

void Mac80211::send_rts() {
  SimTime cts_air = frame_airtime(MacFrameType::kCts, 0);
  SimTime ack_air = frame_airtime(MacFrameType::kAck, 0);
  SimTime data_air = frame_airtime(MacFrameType::kData, pending_->size_bytes);
  SimTime remaining = params_.sifs * 3 + cts_air + data_air + ack_air;

  PacketPtr rts = alloc_packet();
  rts->uid = pending_->uid;
  rts->size_bytes = 0;
  rts->mac.type = MacFrameType::kRts;
  rts->mac.src = addr();
  rts->mac.dst = pending_dest_;
  rts->mac.duration = remaining;
  last_tx_type_ = MacFrameType::kRts;
  ++rts_sent_;
  phy_.start_tx(std::move(rts), /*basic_rate=*/true);
}

void Mac80211::send_data() {
  bool broadcast = pending_dest_ == kBroadcastId;
  SimTime ack_air = frame_airtime(MacFrameType::kAck, 0);
  pending_->mac.duration =
      broadcast ? SimTime::zero() : params_.sifs + ack_air;
  last_tx_type_ = MacFrameType::kData;
  ++data_sent_;
  phy_.start_tx(clone_packet(*pending_), /*basic_rate=*/broadcast);
}

void Mac80211::send_control(MacFrameType type, NodeId dst, SimTime duration) {
  PacketPtr pkt = alloc_packet();
  pkt->size_bytes = 0;
  pkt->mac.type = type;
  pkt->mac.src = addr();
  pkt->mac.dst = dst;
  pkt->mac.duration = duration;
  phy_.start_tx(std::move(pkt), /*basic_rate=*/true);
}

void Mac80211::on_phy_channel_state(bool busy) {
  // Utilization accounting.
  if (busy && !medium_busy_) {
    medium_busy_ = true;
    busy_since_ = sim_.now();
  } else if (!busy && medium_busy_) {
    medium_busy_ = false;
    busy_accum_ += sim_.now() - busy_since_;
  }

  if (busy) {
    cancel_contention();
  } else {
    resume_contention();
  }
}

void Mac80211::on_phy_rx(PacketPtr pkt, bool corrupted) {
  if (corrupted) {
    // Defer EIFS after an undecodable frame so the (unheard) ACK exchange it
    // may belong to is protected.
    next_ifs_is_eifs_ = true;
    return;
  }
  next_ifs_is_eifs_ = false;
  const MacHeader& mh = pkt->mac;
  SimTime now = sim_.now();

  if (mh.dst != addr() && mh.dst != kBroadcastId) {
    // Virtual carrier sense: honor the reservation.
    nav_until_ = std::max(nav_until_, now + mh.duration);
    return;
  }

  switch (mh.type) {
    case MacFrameType::kRts: {
      if (awaiting_ != Await::kNone || forced_tx_in_flight_) return;
      if (now < nav_until_) return;  // reserved medium: do not answer
      SimTime cts_air = frame_airtime(MacFrameType::kCts, 0);
      SimTime cts_duration = mh.duration - params_.sifs - cts_air;
      if (cts_duration < SimTime::zero()) cts_duration = SimTime::zero();
      NodeId dst = mh.src;
      forced_tx_in_flight_ = true;
      cancel_contention();
      sim_.schedule_in(params_.sifs, [this, dst, cts_duration] {
        send_control(MacFrameType::kCts, dst, cts_duration);
      });
      break;
    }
    case MacFrameType::kCts: {
      if (awaiting_ != Await::kCts) return;
      response_timer_.cancel();
      awaiting_ = Await::kNone;
      short_retries_ = 0;  // CTS received: reset the short retry counter
      forced_tx_in_flight_ = true;  // data follows at SIFS, no contention
      cancel_contention();
      sim_.schedule_in(params_.sifs, [this] {
        forced_tx_in_flight_ = false;
        send_data();
      });
      break;
    }
    case MacFrameType::kData: {
      if (mh.dst == kBroadcastId) {
        if (on_rx_) on_rx_(std::move(pkt));
        return;
      }
      // Always acknowledge, even duplicates (the sender missed our ACK).
      NodeId dst = mh.src;
      if (!forced_tx_in_flight_) {
        forced_tx_in_flight_ = true;
        cancel_contention();
        sim_.schedule_in(params_.sifs, [this, dst] {
          send_control(MacFrameType::kAck, dst, SimTime::zero());
        });
      }
      auto [it, inserted] = rx_dedup_.try_emplace(mh.src, mh.seq);
      if (!inserted) {
        if (it->second == mh.seq && mh.retry) return;  // duplicate
        it->second = mh.seq;
      }
      if (on_rx_) on_rx_(std::move(pkt));
      break;
    }
    case MacFrameType::kAck: {
      if (awaiting_ != Await::kAck) return;
      response_timer_.cancel();
      awaiting_ = Await::kNone;
      tx_complete(true);
      break;
    }
  }
}

void Mac80211::on_phy_tx_done() {
  if (forced_tx_in_flight_) {
    // A CTS or MAC-ACK response finished.
    forced_tx_in_flight_ = false;
    resume_contention();
    return;
  }
  switch (last_tx_type_) {
    case MacFrameType::kRts: {
      cancel_contention();
      awaiting_ = Await::kCts;
      SimTime cts_air = frame_airtime(MacFrameType::kCts, 0);
      response_timer_.schedule_in(params_.sifs + cts_air +
                                  params_.timeout_guard);
      break;
    }
    case MacFrameType::kData: {
      if (pending_dest_ == kBroadcastId) {
        tx_complete(true);
      } else {
        cancel_contention();
        awaiting_ = Await::kAck;
        SimTime ack_air = frame_airtime(MacFrameType::kAck, 0);
        response_timer_.schedule_in(params_.sifs + ack_air +
                                    params_.timeout_guard);
      }
      break;
    }
    default:
      break;
  }
}

void Mac80211::on_cts_timeout() {
  awaiting_ = Await::kNone;
  retry_failed(/*short_frame=*/true);
}

void Mac80211::on_ack_timeout() {
  awaiting_ = Await::kNone;
  retry_failed(/*short_frame=*/false);
}

void Mac80211::retry_failed(bool short_frame) {
  ++retries_;
  std::uint32_t count = short_frame ? ++short_retries_ : ++long_retries_;
  std::uint32_t limit =
      short_frame ? params_.short_retry_limit : params_.long_retry_limit;
  if (count >= limit) {
    ++drops_retry_limit_;
    PacketPtr failed = std::move(pending_);
    NodeId dst = pending_dest_;
    tx_complete(false);
    if (on_link_failure_) on_link_failure_(dst, std::move(failed));
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  backoff_slots_ = static_cast<std::uint32_t>(
      sim_.rng().uniform_int(0, static_cast<std::int64_t>(cw_)));
  pending_->mac.retry = true;
  resume_contention();
}

void Mac80211::tx_complete(bool success) {
  cancel_contention();
  pending_.reset();
  pending_dest_ = kInvalidNodeId;
  short_retries_ = 0;
  long_retries_ = 0;
  cw_ = params_.cw_min;
  draw_backoff();
  if (on_tx_done_) on_tx_done_(success);
}

void Mac80211::draw_backoff() {
  // Post-transmission backoff: contend fairly for the next frame.
  backoff_slots_ = static_cast<std::uint32_t>(
      sim_.rng().uniform_int(0, static_cast<std::int64_t>(cw_)));
}

}  // namespace muzha
