// IEEE 802.11 DCF timing and retry parameters (DSSS PHY, 2 Mbps).
#pragma once

#include <cstdint>

#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

struct MacParams {
  SimTime slot = SimTime::from_us(20);
  SimTime sifs = SimTime::from_us(10);
  SimTime difs = SimTime::from_us(50);  // SIFS + 2 * slot
  std::uint32_t cw_min = 31;
  std::uint32_t cw_max = 1023;
  // Station Short Retry Count limit: RTS attempts.
  std::uint32_t short_retry_limit = 7;
  // Station Long Retry Count limit: DATA attempts after CTS.
  std::uint32_t long_retry_limit = 4;
  // Frames whose MAC payload exceeds this use RTS/CTS. 0 = always (the NS-2
  // default the paper inherited).
  Bytes rts_threshold = Bytes(0);
  // Guard added to CTS/ACK timeouts on top of SIFS + response airtime.
  SimTime timeout_guard = SimTime::from_us(25);
};

}  // namespace muzha
