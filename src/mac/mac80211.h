// IEEE 802.11 DCF MAC.
//
// Implements the distributed coordination function the paper's evaluation
// runs over: CSMA/CA with physical carrier sense (from the PHY) and virtual
// carrier sense (NAV), DIFS/EIFS deferral, slotted binary-exponential
// backoff, the RTS/CTS/DATA/ACK exchange, per-frame retries with short/long
// retry counters, and duplicate filtering. Retry exhaustion is surfaced as a
// link-failure callback, which AODV converts into a route error — exactly
// the "link failure under contention" loss source the paper discusses.
//
// Layering: the MAC holds at most one outgoing packet; the interface queue
// (IFQ) above feeds it the next packet on the tx-done callback. The MAC
// depends only on the PHY and the packet model.
#pragma once

#include <cstdint>
#include <map>

#include "mac/mac_params.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "sim/inline_callback.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace muzha {

class Mac80211 {
 public:
  // Fires when the current packet leaves the MAC: delivered (success) or
  // dropped after retries (failure). The device feeds the next packet here.
  using TxDoneCallback = InlineFunction<void(bool success)>;
  // Fires on retry exhaustion, with the unreachable next hop and the failed
  // packet (for salvaging / RERR generation).
  using LinkFailureCallback = InlineFunction<void(NodeId next_hop, PacketPtr)>;
  // Received unicast-to-us or broadcast data frames, deduplicated.
  using RxCallback = InlineFunction<void(PacketPtr)>;

  Mac80211(Simulator& sim, WirelessPhy& phy, MacParams params);
  Mac80211(const Mac80211&) = delete;
  Mac80211& operator=(const Mac80211&) = delete;

  NodeId addr() const { return phy_.id(); }
  const MacParams& params() const { return params_; }

  void set_tx_done_callback(TxDoneCallback cb) { on_tx_done_ = std::move(cb); }
  void set_link_failure_callback(LinkFailureCallback cb) {
    on_link_failure_ = std::move(cb);
  }
  void set_rx_callback(RxCallback cb) { on_rx_ = std::move(cb); }

  // True when the MAC can accept a packet from the IFQ.
  bool idle() const { return pending_ == nullptr; }

  // Hands one network-layer packet to the MAC. `next_hop` may be
  // kBroadcastId. Must only be called when idle().
  void transmit(PacketPtr pkt, NodeId next_hop);

  // Cumulative time the medium has been sensed busy at this station
  // (includes our own transmissions). The Muzha bandwidth estimator diffs
  // this to compute utilization.
  SimTime cumulative_busy_time() const;

  // Statistics.
  std::uint64_t data_frames_sent() const { return data_sent_; }
  std::uint64_t rts_sent() const { return rts_sent_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t drops_retry_limit() const { return drops_retry_limit_; }

 private:
  enum class Await { kNone, kCts, kAck };

  bool medium_idle() const;
  // Restarts deferral if a transmission is pending and nothing is scheduled.
  void resume_contention();
  void cancel_contention();
  void on_ifs_elapsed();
  void on_slot_elapsed();
  void start_attempt();  // medium won: send RTS or DATA

  void send_rts();
  void send_data();
  void send_control(MacFrameType type, NodeId dst, SimTime duration);

  void on_phy_channel_state(bool busy);
  void on_phy_rx(PacketPtr pkt, bool corrupted);
  void on_phy_tx_done();

  void on_cts_timeout();
  void on_ack_timeout();
  void retry_failed(bool short_frame);
  void tx_complete(bool success);
  void draw_backoff() ;

  SimTime frame_airtime(MacFrameType type, std::uint32_t payload_bytes) const;

  Simulator& sim_;
  WirelessPhy& phy_;
  MacParams params_;

  TxDoneCallback on_tx_done_;
  LinkFailureCallback on_link_failure_;
  RxCallback on_rx_;

  // Outgoing packet state.
  PacketPtr pending_;
  NodeId pending_dest_ = kInvalidNodeId;
  bool pending_uses_rts_ = false;
  std::uint32_t short_retries_ = 0;
  std::uint32_t long_retries_ = 0;
  std::uint32_t cw_;
  std::uint32_t backoff_slots_ = 0;
  std::uint16_t tx_seq_ = 0;

  // Contention progress.
  EventId contention_event_ = kInvalidEventId;
  bool in_backoff_phase_ = false;  // IFS passed, counting slots
  bool next_ifs_is_eifs_ = false;
  SimTime nav_until_;

  // Response state.
  Await awaiting_ = Await::kNone;
  Timer response_timer_;
  MacFrameType last_tx_type_ = MacFrameType::kData;
  bool forced_tx_in_flight_ = false;  // CTS/ACK response being sent

  // Duplicate filtering: last sequence number seen per transmitter. Ordered
  // map so any future iteration (stats, aging) is deterministic by
  // construction; the table holds a handful of neighbors, lookup cost is
  // equivalent.
  std::map<NodeId, std::uint16_t> rx_dedup_;

  // Medium utilization accounting.
  bool medium_busy_ = false;
  SimTime busy_since_;
  SimTime busy_accum_;

  // Statistics.
  std::uint64_t data_sent_ = 0;
  std::uint64_t rts_sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t drops_retry_limit_ = 0;
};

}  // namespace muzha
