#include "relwork/adtcp.h"

#include <algorithm>
#include <cmath>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"

namespace muzha {

AdtcpSink::AdtcpSink(Simulator& sim, Node& node, Config cfg,
                     AdtcpConfig acfg)
    : TcpSink(sim, node, cfg), acfg_(acfg) {}

void AdtcpSink::receive(PacketPtr pkt) {
  if (pkt->has_tcp() && !pkt->tcp().is_ack) {
    update_metrics(*pkt);
    classify();
  }
  TcpSink::receive(std::move(pkt));
}

void AdtcpSink::update_metrics(const Packet& data) {
  SimTime now = sim().now();
  samples_.push_back({now, data.tcp().seqno, data.tcp().ts});
  max_seq_seen_ = std::max(max_seq_seen_, data.tcp().seqno);

  // Evict samples outside the sliding window.
  while (!samples_.empty() &&
         now - samples_.front().arrival > acfg_.window) {
    samples_.pop_front();
  }
  if (samples_.size() < 2) return;

  // IDD: mean |arrival spacing - send spacing| over the window.
  double idd_sum = 0.0;
  int ooo = 0;
  std::int64_t min_seq = samples_.front().seq;
  std::int64_t max_seq = samples_.front().seq;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    double da = (samples_[i].arrival - samples_[i - 1].arrival).to_seconds();
    double ds = (samples_[i].sent - samples_[i - 1].sent).to_seconds();
    idd_sum += std::abs(da - ds);
    if (samples_[i].seq < samples_[i - 1].seq) ++ooo;
    min_seq = std::min(min_seq, samples_[i].seq);
    max_seq = std::max(max_seq, samples_[i].seq);
  }
  idd_short_ = idd_sum / static_cast<double>(samples_.size() - 1);

  // STT: packets per second over the window.
  double span =
      (samples_.back().arrival - samples_.front().arrival).to_seconds();
  stt_short_ = span > 0 ? static_cast<double>(samples_.size()) / span : 0.0;

  // POR: fraction of arrivals that went backwards in sequence.
  por_ = static_cast<double>(ooo) / static_cast<double>(samples_.size() - 1);

  // PLR: gap fraction in the window's sequence span.
  std::int64_t span_seqs = max_seq - min_seq + 1;
  plr_ = span_seqs > 0
             ? 1.0 - static_cast<double>(samples_.size()) /
                         static_cast<double>(span_seqs)
             : 0.0;
  if (plr_ < 0) plr_ = 0;

  // Long-term baselines.
  if (idd_long_ == 0.0) idd_long_ = idd_short_;
  if (stt_long_ == 0.0) stt_long_ = stt_short_;
  idd_long_ = acfg_.ewma_alpha * idd_short_ + (1 - acfg_.ewma_alpha) * idd_long_;
  stt_long_ = acfg_.ewma_alpha * stt_short_ + (1 - acfg_.ewma_alpha) * stt_long_;
}

void AdtcpSink::classify() {
  bool idd_high = idd_long_ > 0 && idd_short_ > acfg_.idd_high_factor * idd_long_;
  bool stt_low = stt_long_ > 0 && stt_short_ < acfg_.stt_low_factor * stt_long_;
  if (idd_high && stt_low) {
    state_ = AdtcpState::kCongestion;
  } else if (por_ > acfg_.por_high) {
    state_ = AdtcpState::kRouteChange;
  } else if (plr_ > acfg_.plr_high) {
    state_ = AdtcpState::kChannelError;
  } else {
    state_ = AdtcpState::kNormal;
  }
}

void AdtcpSink::customize_ack(TcpHeader& ack, const Packet&, bool) {
  ack.net_state = state_;
}

// ---------------------------------------------------------------------------

void AdtcpSender::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  last_state_ = h.net_state;
  TcpNewReno::on_new_ack(h, newly_acked);
}

void AdtcpSender::on_dup_ack(const TcpHeader& h) {
  last_state_ = h.net_state;
  if (!in_recovery() && dupacks() == config().dupack_threshold &&
      h.net_state != AdtcpState::kCongestion) {
    // Loss without congestion evidence: retransmit at the current rate.
    ++non_congestion_losses_;
    enter_recovery_bookkeeping();
    retransmit(highest_ack() + 1);
    return;
  }
  TcpNewReno::on_dup_ack(h);
}

void AdtcpSender::on_timeout() {
  if (last_state_ == AdtcpState::kRouteChange) {
    // Freeze through the route change: keep the window, just probe.
    ++non_congestion_losses_;
    exit_recovery_bookkeeping();
    go_back_n();
    return;
  }
  TcpNewReno::on_timeout();
}

}  // namespace muzha
