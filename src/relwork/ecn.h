// RED + ECN: the standardized single-bit router-assisted mechanisms the
// paper contrasts DRAI against (Sec. 3.2: "these two mechanisms provide only
// ... single-bit congestion-status information ... their performance gain is
// limited").
//
// RedEcnMarker implements the RED averaging/marking rules (Floyd & Jacobson
// 1993) as a DraiSource whose rate recommendation is always "maximum" — it
// conveys no multi-level advice, only the probabilistic single-bit mark.
// TcpNewRenoEcn is NewReno plus the standard ECN reaction: at most once per
// RTT, an echoed mark halves the window as if a packet had been lost, but
// without the loss.
//
// bench/ecn_vs_drai pits NewReno+RED/ECN against Muzha's DRAI to reproduce
// the paper's argument for richer feedback.
#pragma once

#include "net/agent.h"
#include "net/wireless_device.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "tcp/tcp_variants.h"

namespace muzha {

// Defaults are calibrated for low-rate 802.11 forwarders, whose IFQs hold a
// handful of packets on average with transient bursts (the wired-Internet
// defaults wq=0.002 / 5 / 15 average out those bursts and never mark).
struct RedParams {
  double weight = 0.05;   // EWMA weight w_q
  double min_th = 3.0;    // packets
  double max_th = 10.0;   // packets
  double max_p = 0.2;     // marking probability at max_th
};

class RedEcnMarker final : public DraiSource {
 public:
  RedEcnMarker(Simulator& sim, WirelessDevice& device, RedParams params = {});

  // Single-bit router: never gives rate advice.
  std::uint8_t current_drai() override { return kDraiAggressiveAccel; }
  bool should_mark() override;

  double avg_queue() const { return avg_; }
  std::uint64_t marks() const { return marks_; }

 private:
  Simulator& sim_;
  WirelessDevice& device_;
  RedParams params_;
  double avg_ = 0.0;
  int count_since_mark_ = -1;  // RED's "count" for uniformized marking
  std::uint64_t marks_ = 0;
};

// NewReno with the RFC 3168 congestion response to echoed ECN marks.
class TcpNewRenoEcn : public TcpNewReno {
 public:
  using TcpNewReno::TcpNewReno;

  std::uint64_t ecn_reductions() const { return ecn_reductions_; }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;

 private:
  SimTime next_reaction_allowed_;
  std::uint64_t ecn_reductions_ = 0;
};

}  // namespace muzha
