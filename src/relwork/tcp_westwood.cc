#include "relwork/tcp_westwood.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

TcpWestwood::TcpWestwood(Simulator& sim, Node& node, TcpConfig cfg,
                         double filter_alpha)
    : TcpNewReno(sim, node, cfg), filter_alpha_(filter_alpha) {}

Segments TcpWestwood::eligible_window() const {
  if (bwe_ <= SegmentsPerSecond(0.0) || min_rtt_ <= Seconds(0.0)) {
    return Segments(2.0);
  }
  return std::max(Segments(2.0), bwe_ * min_rtt_);
}

void TcpWestwood::update_bwe(std::int64_t newly_acked) {
  SimTime now = sim().now();
  if (last_ack_time_ > SimTime::zero()) {
    Seconds dt = to_seconds(now - last_ack_time_);
    if (dt > Seconds(0.0)) {
      SegmentsPerSecond sample =
          Segments(static_cast<double>(newly_acked)) / dt;
      bwe_ = filter_alpha_ * bwe_ +
             (1.0 - filter_alpha_) * 0.5 * (sample + prev_sample_);
      prev_sample_ = sample;
    }
  }
  last_ack_time_ = now;
}

void TcpWestwood::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  update_bwe(newly_acked);
  if (h.ts_echo > SimTime::zero() && !seq_was_retransmitted(h.seqno)) {
    Seconds rtt = to_seconds(sim().now() - h.ts_echo);
    if (min_rtt_ == Seconds(0.0) || rtt < min_rtt_) min_rtt_ = rtt;
  }
  TcpNewReno::on_new_ack(h, newly_acked);
}

void TcpWestwood::on_dup_ack(const TcpHeader& h) {
  if (!in_recovery() && dupacks() == config().dupack_threshold) {
    // Faster recovery: set the window from the measured rate, not half.
    Segments eligible = eligible_window();
    set_ssthresh(eligible);
    enter_recovery_bookkeeping();
    set_cwnd(std::min(cwnd(), eligible));
    retransmit(highest_ack() + 1);
    return;
  }
  TcpNewReno::on_dup_ack(h);
}

void TcpWestwood::on_timeout() {
  set_ssthresh(eligible_window());
  set_cwnd(Segments(1.0));
  exit_recovery_bookkeeping();
  go_back_n();
}

}  // namespace muzha
