#include "relwork/tcp_westwood.h"

#include <algorithm>

namespace muzha {

TcpWestwood::TcpWestwood(Simulator& sim, Node& node, TcpConfig cfg,
                         double filter_alpha)
    : TcpNewReno(sim, node, cfg), filter_alpha_(filter_alpha) {}

double TcpWestwood::eligible_window() const {
  if (bwe_pps_ <= 0.0 || min_rtt_s_ <= 0.0) return 2.0;
  return std::max(2.0, bwe_pps_ * min_rtt_s_);
}

void TcpWestwood::update_bwe(std::int64_t newly_acked) {
  SimTime now = sim().now();
  if (last_ack_time_ > SimTime::zero()) {
    double dt = (now - last_ack_time_).to_seconds();
    if (dt > 0) {
      double sample = static_cast<double>(newly_acked) / dt;
      bwe_pps_ = filter_alpha_ * bwe_pps_ +
                 (1.0 - filter_alpha_) * 0.5 * (sample + prev_sample_pps_);
      prev_sample_pps_ = sample;
    }
  }
  last_ack_time_ = now;
}

void TcpWestwood::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  update_bwe(newly_acked);
  if (h.ts_echo > SimTime::zero() && !seq_was_retransmitted(h.seqno)) {
    double rtt = (sim().now() - h.ts_echo).to_seconds();
    if (min_rtt_s_ == 0.0 || rtt < min_rtt_s_) min_rtt_s_ = rtt;
  }
  TcpNewReno::on_new_ack(h, newly_acked);
}

void TcpWestwood::on_dup_ack(const TcpHeader& h) {
  if (!in_recovery() && dupacks() == config().dupack_threshold) {
    // Faster recovery: set the window from the measured rate, not half.
    double eligible = eligible_window();
    set_ssthresh(eligible);
    enter_recovery_bookkeeping();
    set_cwnd(std::min(cwnd(), eligible));
    retransmit(highest_ack() + 1);
    return;
  }
  TcpNewReno::on_dup_ack(h);
}

void TcpWestwood::on_timeout() {
  set_ssthresh(eligible_window());
  set_cwnd(1.0);
  exit_recovery_bookkeeping();
  go_back_n();
}

}  // namespace muzha
