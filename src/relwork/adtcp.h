// ADTCP (Fu, Greenstein et al., ICNP 2002) — the multi-metric end-to-end
// approach of Sec. 3.1.
//
// The receiver measures four signals on every arrival and classifies the
// network state, which rides back to the sender on each ACK:
//
//   IDD — inter-packet delay difference (send-spacing vs arrival-spacing):
//         rises with queueing; insensitive to random channel error.
//   STT — short-term throughput: falls under congestion.
//   POR — packet out-of-order ratio: rises across route changes.
//   PLR — packet loss ratio (sequence gaps): rises with channel error.
//
// Joint identification (high/low judged against long-term EWMAs):
//   IDD high AND STT low           -> CONGESTION
//   else POR high                  -> ROUTE_CHANGE
//   else PLR high                  -> CHANNEL_ERROR
//   else                           -> NORMAL
//
// The AdtcpSender reacts: congestion -> Reno-style decrease; channel error
// -> retransmit at the same rate; route change -> freeze (no decrease, no
// RTO collapse on the next timeout).
#pragma once

#include <deque>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"

namespace muzha {

struct AdtcpConfig {
  // Sliding sample window for the receiver metrics.
  SimTime window = SimTime::from_seconds(1.0);
  double ewma_alpha = 0.1;   // long-term baselines
  double idd_high_factor = 2.0;
  double stt_low_factor = 0.5;
  double por_high = 0.15;
  double plr_high = 0.10;
};

class AdtcpSink final : public TcpSink {
 public:
  AdtcpSink(Simulator& sim, Node& node, Config cfg, AdtcpConfig acfg = {});

  AdtcpState state() const { return state_; }
  double idd() const { return idd_short_; }
  double stt() const { return stt_short_; }
  double por() const { return por_; }
  double plr() const { return plr_; }

  void receive(PacketPtr pkt) override;

 protected:
  void customize_ack(TcpHeader& ack, const Packet& data, bool is_dup) override;

 private:
  void update_metrics(const Packet& data);
  void classify();

  AdtcpConfig acfg_;

  // Arrival history within the sliding window: (arrival time, seqno,
  // sender timestamp).
  struct Sample {
    SimTime arrival;
    std::int64_t seq;
    SimTime sent;
  };
  std::deque<Sample> samples_;

  double idd_short_ = 0.0, idd_long_ = 0.0;
  double stt_short_ = 0.0, stt_long_ = 0.0;
  double por_ = 0.0;
  double plr_ = 0.0;
  std::int64_t max_seq_seen_ = -1;
  AdtcpState state_ = AdtcpState::kNormal;
};

class AdtcpSender : public TcpNewReno {
 public:
  using TcpNewReno::TcpNewReno;

  std::uint64_t non_congestion_losses() const { return non_congestion_losses_; }
  AdtcpState last_state() const { return last_state_; }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

 private:
  AdtcpState last_state_ = AdtcpState::kNormal;
  std::uint64_t non_congestion_losses_ = 0;
};

}  // namespace muzha
