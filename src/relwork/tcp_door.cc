#include "relwork/tcp_door.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

TcpDoor::TcpDoor(Simulator& sim, Node& node, TcpConfig cfg, DoorConfig door)
    : TcpNewReno(sim, node, cfg), door_(door) {}

bool TcpDoor::cc_disabled() { return sim().now() < cc_disabled_until_; }

void TcpDoor::on_ooo_detected() {
  ++ooo_events_;
  cc_disabled_until_ = sim().now() + door_.t1_disable_cc;
  // Instant recovery: undo a recent congestion response that the
  // (now-evident) route change most likely caused.
  if (have_snapshot_ &&
      sim().now() - snap_time_ <= door_.t2_instant_recovery) {
    ++instant_recoveries_;
    set_ssthresh(snap_ssthresh_);
    set_cwnd(snap_cwnd_);
    exit_recovery_bookkeeping();
    have_snapshot_ = false;
  }
}

void TcpDoor::on_old_ack(const TcpHeader&) {
  // A regressed non-duplicate ACK can only arrive via reordering.
  on_ooo_detected();
}

void TcpDoor::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  last_dup_seq_ = 0;
  TcpNewReno::on_new_ack(h, newly_acked);
}

void TcpDoor::on_dup_ack(const TcpHeader& h) {
  // Reordered duplicate ACKs: the stream sequence runs backwards.
  if (h.dup_seq != 0 && last_dup_seq_ != 0 && h.dup_seq < last_dup_seq_) {
    on_ooo_detected();
  }
  if (h.dup_seq != 0) last_dup_seq_ = std::max(last_dup_seq_, h.dup_seq);

  if (cc_disabled() && !in_recovery() &&
      dupacks() == config().dupack_threshold) {
    // Congestion response suppressed: retransmit, keep the window.
    enter_recovery_bookkeeping();
    retransmit(highest_ack() + 1);
    return;
  }
  if (!in_recovery() && dupacks() == config().dupack_threshold) {
    // About to take a congestion action: snapshot so a subsequent OOO event
    // can undo it.
    have_snapshot_ = true;
    snap_cwnd_ = cwnd();
    snap_ssthresh_ = ssthresh();
    snap_time_ = sim().now();
  }
  TcpNewReno::on_dup_ack(h);
}

}  // namespace muzha
