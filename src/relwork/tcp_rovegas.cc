#include "relwork/tcp_rovegas.h"

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_vegas.h"

namespace muzha {

TcpRoVegas::TcpRoVegas(Simulator& sim, Node& node, TcpConfig cfg,
                       VegasConfig vcfg)
    : TcpVegas(sim, node, cfg, vcfg) {}

void TcpRoVegas::note_ack(const TcpHeader& h) {
  Seconds q = to_seconds(h.qdelay_echo);
  if (!have_epoch_qdelay_ || q < epoch_qdelay_) {
    have_epoch_qdelay_ = true;
    epoch_qdelay_ = q;
  }
}

double TcpRoVegas::compute_diff() const {
  if (!have_epoch_qdelay_) return TcpVegas::compute_diff();
  Seconds base = base_rtt();
  if (base <= Seconds(0.0)) return 0.0;
  return cwnd().value() * epoch_qdelay_.value() /
         (base.value() + epoch_qdelay_.value());
}

void TcpRoVegas::on_epoch_reset() {
  have_epoch_qdelay_ = false;
  epoch_qdelay_ = Seconds(0.0);
}

}  // namespace muzha
