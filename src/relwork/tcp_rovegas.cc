#include "relwork/tcp_rovegas.h"

namespace muzha {

TcpRoVegas::TcpRoVegas(Simulator& sim, Node& node, TcpConfig cfg,
                       VegasConfig vcfg)
    : TcpVegas(sim, node, cfg, vcfg) {}

void TcpRoVegas::note_ack(const TcpHeader& h) {
  double q = h.qdelay_echo.to_seconds();
  if (epoch_qdelay_s_ < 0.0 || q < epoch_qdelay_s_) epoch_qdelay_s_ = q;
}

double TcpRoVegas::compute_diff() const {
  if (epoch_qdelay_s_ < 0.0) return TcpVegas::compute_diff();
  double base = base_rtt();
  if (base <= 0.0) return 0.0;
  return cwnd() * epoch_qdelay_s_ / (base + epoch_qdelay_s_);
}

void TcpRoVegas::on_epoch_reset() { epoch_qdelay_s_ = -1.0; }

}  // namespace muzha
