// TCP Westwood (Gerla, Sanadidi et al., GLOBECOM 2001) — paper reference
// [24]: end-to-end bandwidth estimation from the ACK stream, used to set
// ssthresh after loss ("faster recovery") instead of blind halving.
//
//   per ACK:  b_k = acked_segments / (t_k - t_{k-1})
//   BWE      low-pass (Tustin) filtered: bwe = a*bwe + (1-a)/2*(b_k + b_{k-1})
//   on 3 dup ACKs:  ssthresh = BWE * RTT_min;  cwnd = min(cwnd, ssthresh)
//   on timeout:     ssthresh = BWE * RTT_min;  cwnd = 1
//
// Unlike TCP Jersey (which shares the estimation idea), Westwood needs no
// router support at all.
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

class TcpWestwood : public TcpNewReno {
 public:
  TcpWestwood(Simulator& sim, Node& node, TcpConfig cfg,
              double filter_alpha = 0.9);

  SegmentsPerSecond bandwidth_estimate() const { return bwe_; }
  Segments eligible_window() const;

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

 private:
  void update_bwe(std::int64_t newly_acked);

  double filter_alpha_;
  SegmentsPerSecond bwe_;
  SegmentsPerSecond prev_sample_;
  SimTime last_ack_time_;
  Seconds min_rtt_;  // zero = no sample yet
};

}  // namespace muzha
