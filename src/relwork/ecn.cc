#include "relwork/ecn.h"

#include <algorithm>

#include "net/wireless_device.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_variants.h"

namespace muzha {

RedEcnMarker::RedEcnMarker(Simulator& sim, WirelessDevice& device,
                           RedParams params)
    : sim_(sim), device_(device), params_(params) {}

bool RedEcnMarker::should_mark() {
  // Per-packet average update (idle-period compensation omitted: in a
  // saturated wireless forwarder the queue is rarely idle long).
  double q = static_cast<double>(device_.queue().size());
  avg_ = (1.0 - params_.weight) * avg_ + params_.weight * q;

  if (avg_ < params_.min_th) {
    count_since_mark_ = -1;
    return false;
  }
  if (avg_ >= params_.max_th) {
    count_since_mark_ = 0;
    ++marks_;
    return true;
  }
  // Linear marking probability, uniformized by the inter-mark count.
  ++count_since_mark_;
  double pb = params_.max_p * (avg_ - params_.min_th) /
              (params_.max_th - params_.min_th);
  double pa = pb / std::max(1e-9, 1.0 - count_since_mark_ * pb);
  if (pa >= 1.0 || sim_.rng().chance(pa)) {
    count_since_mark_ = 0;
    ++marks_;
    return true;
  }
  return false;
}

void TcpNewRenoEcn::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  if (h.ce_echo && !in_recovery() && sim().now() >= next_reaction_allowed_) {
    // RFC 3168: react to marks as to loss, at most once per RTT, but
    // without retransmitting anything.
    ++ecn_reductions_;
    set_ssthresh(std::max(cwnd() / 2.0, Segments(2.0)));
    set_cwnd(ssthresh());
    double rtt = rto_estimator().has_sample()
                     ? rto_estimator().srtt().to_seconds()
                     : 0.1;
    next_reaction_allowed_ = sim().now() + SimTime::from_seconds(rtt);
    return;
  }
  TcpNewReno::on_new_ack(h, newly_acked);
}

}  // namespace muzha
