// TCP-DOOR: Detection of Out-of-Order and Response (Wang & Zhang, MobiHoc
// 2002) — the pure end-to-end related-work approach of Sec. 3.1.
//
// Out-of-order packet delivery is interpreted as evidence of a route change
// (not congestion). Detection:
//   * ACK regression: a non-duplicate ACK older than the cumulative point.
//   * Dup-ACK stream reordering, via the one-byte option the receiver
//     increments on each duplicate ACK (TcpHeader::dup_seq).
// Response:
//   * Temporarily disable congestion-control decreases for `t1` after an
//     out-of-order event (losses during a route change are not congestion).
//   * Instant recovery: if a congestion decrease happened within `t2`
//     before the event, restore the pre-decrease window state.
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

struct DoorConfig {
  SimTime t1_disable_cc = SimTime::from_seconds(1.0);
  SimTime t2_instant_recovery = SimTime::from_seconds(2.0);
};

class TcpDoor : public TcpNewReno {
 public:
  TcpDoor(Simulator& sim, Node& node, TcpConfig cfg, DoorConfig door = {});

  std::uint64_t ooo_events() const { return ooo_events_; }
  std::uint64_t instant_recoveries() const { return instant_recoveries_; }
  bool cc_disabled();

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_old_ack(const TcpHeader& h) override;

 private:
  void on_ooo_detected();

  DoorConfig door_;
  std::uint32_t last_dup_seq_ = 0;
  SimTime cc_disabled_until_;

  // Snapshot of the window state before the most recent decrease.
  bool have_snapshot_ = false;
  Segments snap_cwnd_;
  Segments snap_ssthresh_;
  SimTime snap_time_;

  std::uint64_t ooo_events_ = 0;
  std::uint64_t instant_recoveries_ = 0;
};

}  // namespace muzha
