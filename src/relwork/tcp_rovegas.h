// TCP RoVegas (Chan, Chan & Chen, Computer Communications 2004) — the
// router-assisted Vegas enhancement of Sec. 3.2.
//
// Plain Vegas infers queueing from RTT, so backward-path (ACK-path)
// congestion falsely shrinks its window. RoVegas has routers accumulate the
// actual per-hop queueing delay of each *data* packet in an IP option
// (IpHeader::accum_queue_delay, filled by every device on the forward
// path); the receiver echoes it (TcpHeader::qdelay_echo). The sender then
// estimates the queue backlog from forward-path delay only:
//
//   diff = cwnd * q_fwd / (baseRTT + q_fwd)
//
// which is immune to ACK-path queueing and delayed ACKs.
#pragma once

#include "tcp/tcp_vegas.h"

namespace muzha {

class TcpRoVegas : public TcpVegas {
 public:
  TcpRoVegas(Simulator& sim, Node& node, TcpConfig cfg,
             VegasConfig vcfg = {});

  double epoch_forward_qdelay_s() const { return epoch_qdelay_s_; }

 protected:
  void note_ack(const TcpHeader& h) override;
  double compute_diff() const override;
  void on_epoch_reset() override;

 private:
  double epoch_qdelay_s_ = -1.0;  // min forward queueing delay this epoch
};

}  // namespace muzha
