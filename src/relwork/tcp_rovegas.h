// TCP RoVegas (Chan, Chan & Chen, Computer Communications 2004) — the
// router-assisted Vegas enhancement of Sec. 3.2.
//
// Plain Vegas infers queueing from RTT, so backward-path (ACK-path)
// congestion falsely shrinks its window. RoVegas has routers accumulate the
// actual per-hop queueing delay of each *data* packet in an IP option
// (IpHeader::accum_queue_delay, filled by every device on the forward
// path); the receiver echoes it (TcpHeader::qdelay_echo). The sender then
// estimates the queue backlog from forward-path delay only:
//
//   diff = cwnd * q_fwd / (baseRTT + q_fwd)
//
// which is immune to ACK-path queueing and delayed ACKs.
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_vegas.h"

namespace muzha {

class TcpRoVegas : public TcpVegas {
 public:
  TcpRoVegas(Simulator& sim, Node& node, TcpConfig cfg,
             VegasConfig vcfg = {});

  Seconds epoch_forward_qdelay() const { return epoch_qdelay_; }

 protected:
  void note_ack(const TcpHeader& h) override;
  double compute_diff() const override;
  void on_epoch_reset() override;

 private:
  // Min forward queueing delay this epoch; valid only when the flag is set
  // (a sentinel negative duration would be a unit-system abuse).
  bool have_epoch_qdelay_ = false;
  Seconds epoch_qdelay_;
};

}  // namespace muzha
