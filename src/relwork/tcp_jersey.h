// TCP Jersey (Xu, Tian & Ansari, JSAC 2004) — the router-assisted
// related-work approach of Sec. 3.2.
//
// Two components:
//   ABE — available bandwidth estimation at the sender from the ACK stream:
//         RE <- (RTT * RE + L) / (dt + RTT), with L the newly acknowledged
//         payload and dt the ACK inter-arrival time. The "optimal" window is
//         ownd = RE * RTT_min / segment_size.
//   CW  — congestion warning: routers mark *all* packets while their queue
//         exceeds a threshold (non-probabilistic, unlike ECN/RED); the
//         receiver echoes the mark on every ACK (TcpHeader::ce_echo).
//
// Reaction: on a CW-echo ACK, clamp cwnd to ownd (at most once per RTT); on
// three duplicate ACKs, retransmit and set cwnd = ownd (rate-based fast
// recovery); on timeout, classic slow-start restart with ssthresh = ownd.
//
// In this reproduction the router marking comes from the same per-node load
// estimator Muzha uses (a node marks when its DRAI enters the deceleration
// region), which matches CW's "mark everything when the queue crosses a
// threshold" semantics.
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

class TcpJersey : public TcpNewReno {
 public:
  TcpJersey(Simulator& sim, Node& node, TcpConfig cfg);

  SegmentsPerSecond rate_estimate() const { return re_; }
  Segments abe_window() const;
  std::uint64_t cw_clamps() const { return cw_clamps_; }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

 private:
  void update_rate_estimate(std::int64_t newly_acked);

  SegmentsPerSecond re_;  // ABE rate estimate
  SimTime last_ack_time_;
  Seconds min_rtt_;  // zero = no sample yet
  SimTime next_clamp_allowed_;
  std::uint64_t cw_clamps_ = 0;
};

}  // namespace muzha
