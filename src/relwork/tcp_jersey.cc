#include "relwork/tcp_jersey.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_variants.h"

namespace muzha {

TcpJersey::TcpJersey(Simulator& sim, Node& node, TcpConfig cfg)
    : TcpNewReno(sim, node, cfg) {}

Segments TcpJersey::abe_window() const {
  if (re_ <= SegmentsPerSecond(0.0) || min_rtt_ <= Seconds(0.0)) {
    return Segments(2.0);
  }
  return std::max(Segments(2.0), re_ * min_rtt_);
}

void TcpJersey::update_rate_estimate(std::int64_t newly_acked) {
  SimTime now = sim().now();
  double rtt = rto_estimator().has_sample()
                   ? rto_estimator().srtt().to_seconds()
                   : 0.1;
  if (last_ack_time_ > SimTime::zero()) {
    double dt = (now - last_ack_time_).to_seconds();
    re_ = SegmentsPerSecond(
        (rtt * re_.value() + static_cast<double>(newly_acked)) / (dt + rtt));
  } else {
    re_ = SegmentsPerSecond(static_cast<double>(newly_acked) / rtt);
  }
  last_ack_time_ = now;
}

void TcpJersey::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  update_rate_estimate(newly_acked);
  if (h.ts_echo > SimTime::zero() && !seq_was_retransmitted(h.seqno)) {
    Seconds rtt = to_seconds(sim().now() - h.ts_echo);
    if (min_rtt_ == Seconds(0.0) || rtt < min_rtt_) min_rtt_ = rtt;
  }
  if (h.ce_echo && !in_recovery() && sim().now() >= next_clamp_allowed_) {
    // Congestion warning from a router: proactively fall back to the ABE
    // window, at most once per RTT.
    Segments ownd = abe_window();
    if (ownd < cwnd()) {
      ++cw_clamps_;
      set_ssthresh(ownd);
      set_cwnd(ownd);
    }
    double rtt = rto_estimator().has_sample()
                     ? rto_estimator().srtt().to_seconds()
                     : 0.1;
    next_clamp_allowed_ = sim().now() + SimTime::from_seconds(rtt);
    return;
  }
  TcpNewReno::on_new_ack(h, newly_acked);
}

void TcpJersey::on_dup_ack(const TcpHeader& h) {
  if (!in_recovery() && dupacks() == config().dupack_threshold) {
    // Rate-based fast recovery: window jumps to the ABE estimate instead of
    // blindly halving.
    Segments ownd = abe_window();
    set_ssthresh(ownd);
    enter_recovery_bookkeeping();
    set_cwnd(ownd);
    retransmit(highest_ack() + 1);
    return;
  }
  TcpNewReno::on_dup_ack(h);
}

void TcpJersey::on_timeout() {
  set_ssthresh(abe_window());
  set_cwnd(Segments(1.0));
  exit_recovery_bookkeeping();
  go_back_n();
}

}  // namespace muzha
