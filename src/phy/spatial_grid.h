// Uniform-grid spatial index over attached PHY positions.
//
// Cells are squares of side `cell_size` (the channel uses the 550 m
// carrier-sense range). Because the cell side equals the maximum delivery
// radius, every receiver within range of a transmitter sits in the 3x3 cell
// neighborhood of the transmitter's cell: two points within `cell_size` of
// each other have per-axis deltas <= cell_size, so their cell coordinates
// differ by at most 1 per axis. gather() therefore visits at most 9 cells —
// O(neighbors) instead of O(attached PHYs) per transmission.
//
// Determinism contract: gather() returns candidates in an unspecified order;
// the channel sorts them by their monotonically increasing attach-order key,
// which restores exactly the brute-force scan order (the phys_ vector is in
// attach order and detach preserves relative order). Entries cache the
// owner's exact position doubles, so distance() computes bit-identically to
// a scan that calls phy->position().
//
// The cell table is open-addressed with linear probing and never deletes a
// cell (an emptied cell keeps its slot), so probe chains stay valid without
// tombstones. The table is only ever accessed by key lookup — iteration
// order never reaches simulation state.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/position.h"
#include "sim/units.h"

namespace muzha {

class WirelessPhy;

class SpatialGrid {
 public:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  // Backpointer from an indexed PHY to its entry, held by the owner and
  // kept current by the grid across swap-and-pop removals and rehashes.
  struct Item {
    std::uint32_t cell = kNoCell;
    std::uint32_t slot = 0;
    bool valid() const { return cell != kNoCell; }
  };

  struct Entry {
    Position pos;          // exact copy of the owner's position doubles
    std::uint64_t order;   // channel attach-order key (monotonic, unique)
    WirelessPhy* phy;
    Item* backref;         // -> the owner's Item, rewritten when we move it
  };

  explicit SpatialGrid(Meters cell_size);

  // Inserts `phy` and records its location in *backref.
  void insert(WirelessPhy* phy, Position pos, std::uint64_t order,
              Item* backref);

  // Removes the entry *backref points at (no-op when invalid) and
  // invalidates *backref.
  void remove(Item* backref);

  // Repositions the entry, migrating it between cells when the new position
  // crosses a cell boundary.
  void move(Item* backref, Position pos);

  // Appends every entry in the 3x3 cell neighborhood of `center` to `out`
  // (which is not cleared). Order is unspecified — sort by Entry::order.
  void gather(Position center, std::vector<Entry>& out) const;

  // Drops every entry and cell. Outstanding Items are NOT invalidated; the
  // caller (the channel, on a mode rebuild) owns that bookkeeping.
  void clear();

  std::size_t size() const { return entries_; }

 private:
  struct Cell {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    bool used = false;
    std::vector<Entry> entries;
  };

  std::int64_t coord_of(double v) const;
  // Linear-probe lookup; returns kNoCell when the cell does not exist.
  std::uint32_t find_cell(std::int64_t cx, std::int64_t cy) const;
  // Lookup-or-create; may rehash (which rewrites every entry backref).
  std::uint32_t obtain_cell(std::int64_t cx, std::int64_t cy);
  void rehash(std::size_t new_buckets);
  static std::size_t bucket_hash(std::int64_t cx, std::int64_t cy);

  double cell_size_;
  std::vector<Cell> cells_;  // power-of-two bucket count
  std::size_t used_cells_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace muzha
