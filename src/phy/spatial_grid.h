// Uniform-grid spatial index over attached PHY positions.
//
// Cells are squares of side `cell_size` (the channel uses the 550 m
// carrier-sense range). Because the cell side equals the maximum delivery
// radius, every receiver within range of a transmitter sits in the 3x3 cell
// neighborhood of the transmitter's cell: two points within `cell_size` of
// each other have per-axis deltas <= cell_size, so their cell coordinates
// differ by at most 1 per axis. gather() therefore visits at most 9 cells —
// O(neighbors) instead of O(attached PHYs) per transmission.
//
// Determinism contract: gather() returns candidates in an unspecified order;
// the channel sorts them by their monotonically increasing attach-order key,
// which restores exactly the brute-force scan order (the phys_ vector is in
// attach order and detach preserves relative order). gather() copies each
// owner's live position() doubles into the output entries — the same loads a
// brute-force scan performs — so distance() computes bit-identically to it.
//
// Mobility contract: a move that stays inside its current cell requires NO
// grid update at all. The owner's Item caches the cell coordinates it is
// bucketed under plus the cell's interior bounding box, so same_cell()
// answers "would this move re-bucket?" from the Item alone — four compares
// in the common case, falling back to the exact floor-divide only near a
// cell edge, and never touching grid memory. Only cell-crossing moves call
// move(). Stored entry positions may therefore be stale — only the
// bucketing is authoritative, which is why gather() reads live positions.
//
// The cell table is open-addressed with linear probing and never deletes a
// cell (an emptied cell keeps its slot), so probe chains stay valid without
// tombstones. The table is only ever accessed by key lookup — iteration
// order never reaches simulation state.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "phy/position.h"
#include "sim/units.h"

namespace muzha {

class WirelessPhy;

class SpatialGrid {
 public:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  // Interior-box shrink in meters for Item's divide-free same_cell() fast
  // path. Must exceed the combined rounding error of coord_of()'s division
  // and the cx*cell_size bound computation — for cell coordinates up to
  // ~2e4 (a 10,000 km field at 550 m cells) that error is < 1e-11 m, so
  // 1e-6 m leaves four orders of magnitude of headroom while excluding a
  // vanishing sliver of each cell from the fast path.
  static constexpr double kEdgeSlack = 1e-6;

  // Backpointer from an indexed PHY to its entry, held by the owner and
  // kept current by the grid across swap-and-pop removals and rehashes.
  // Caches the cell *coordinates* plus a conservative interior bounding box
  // so the owner can test same_cell() without touching grid memory — and,
  // in the common case, without a divide.
  struct Item {
    std::uint32_t cell = kNoCell;
    std::uint32_t slot = 0;
    std::int64_t cx = 0;  // cell coordinates this item is bucketed under
    std::int64_t cy = 0;
    // Strict interior of the cell, shrunk by kEdgeSlack on every side: a
    // position inside this box is provably in cell (cx, cy) under
    // coord_of()'s floating-point rounding (the slack dwarfs the division's
    // 1-ulp error at any coordinate the simulator produces). Positions at or
    // near the edge fall back to the exact coord_of() test.
    double x_lo = 0.0, x_hi = -1.0;
    double y_lo = 0.0, y_hi = -1.0;
    bool valid() const { return cell != kNoCell; }
  };

  struct Entry {
    Position pos;          // owner's position doubles; may be STALE in
                           // storage (see mobility contract above) — gather()
                           // emits entries refreshed from phy->position()
    std::uint64_t order;   // channel attach-order key (monotonic, unique)
    WirelessPhy* phy;
    Item* backref;         // -> the owner's Item, rewritten when we move it
  };

  explicit SpatialGrid(Meters cell_size);

  // Inserts `phy` and records its location in *backref.
  void insert(WirelessPhy* phy, Position pos, std::uint64_t order,
              Item* backref);

  // Removes the entry *backref points at (no-op when invalid) and
  // invalidates *backref.
  void remove(Item* backref);

  // Repositions the entry, migrating it between cells when the new position
  // crosses a cell boundary. Callers on the hot mobility path should gate
  // this on !same_cell() — an in-cell move needs no grid update at all.
  void move(Item* backref, Position pos);

  // True when `pos` buckets into the cell the item currently occupies, i.e.
  // a move to `pos` would not re-bucket. Pure function of the Item and the
  // cell size: no grid memory is read. The interior-box compares answer the
  // common case divide-free; edge-proximate positions (within kEdgeSlack of
  // a boundary) take the exact coord_of() path, so the answer always matches
  // what insert()/move() would compute.
  bool same_cell(const Item& item, Position pos) const {
    if (pos.x > item.x_lo && pos.x < item.x_hi && pos.y > item.y_lo &&
        pos.y < item.y_hi) {
      return true;
    }
    return coord_of(pos.x) == item.cx && coord_of(pos.y) == item.cy;
  }

  // Appends every entry in the 3x3 cell neighborhood of `center` to `out`
  // (which is not cleared). Order is unspecified — sort by Entry::order.
  void gather(Position center, std::vector<Entry>& out) const;

  // Drops every entry and cell. Outstanding Items are NOT invalidated; the
  // caller (the channel, on a mode rebuild) owns that bookkeeping.
  void clear();

  std::size_t size() const { return entries_; }

 private:
  struct Cell {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    bool used = false;
    std::vector<Entry> entries;
  };

  // Inline: same_cell() sits on the per-tick mobility path.
  std::int64_t coord_of(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_size_));
  }
  // Linear-probe lookup; returns kNoCell when the cell does not exist.
  std::uint32_t find_cell(std::int64_t cx, std::int64_t cy) const;
  // Lookup-or-create; may rehash (which rewrites every entry backref).
  std::uint32_t obtain_cell(std::int64_t cx, std::int64_t cy);
  void rehash(std::size_t new_buckets);
  static std::size_t bucket_hash(std::int64_t cx, std::int64_t cy);

  double cell_size_;
  std::vector<Cell> cells_;  // power-of-two bucket count
  std::size_t used_cells_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace muzha
