// 2-D node positions (nodes are static in the paper's scenarios).
#pragma once

#include <cmath>

#include "sim/units.h"

namespace muzha {

// Coordinates are plain doubles in meters: positions are points, not
// lengths, and the x/y components are only ever combined into a Meters
// distance here.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline Meters distance(Position a, Position b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return Meters(std::sqrt(dx * dx + dy * dy));
}

}  // namespace muzha
