// 2-D node positions (nodes are static in the paper's scenarios).
#pragma once

#include <cmath>

namespace muzha {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline double distance_m(Position a, Position b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace muzha
