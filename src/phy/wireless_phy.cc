#include "phy/wireless_phy.h"

#include "phy/channel.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

WirelessPhy::WirelessPhy(Simulator& sim, Channel& channel, NodeId id,
                         Position pos)
    : sim_(sim), channel_(channel), id_(id), pos_(pos) {
  channel_.attach(*this);
}

SimTime WirelessPhy::tx_duration(Bytes total, bool basic_rate) const {
  const PhyParams& p = channel_.params();
  // Rates are integral bit/s in every deployed configuration; the integer
  // ceil-division below is exact and must stay exact.
  std::uint64_t rate = static_cast<std::uint64_t>(
      (basic_rate ? p.basic_rate : p.data_rate).value());
  // bits * 1e9 / rate nanoseconds, rounded up.
  std::uint64_t bits = static_cast<std::uint64_t>(to_bits(total).value());
  std::int64_t ns = static_cast<std::int64_t>((bits * 1'000'000'000ull + rate - 1) / rate);
  return p.plcp_overhead + SimTime::from_ns(ns);
}

void WirelessPhy::start_tx(PacketPtr pkt, bool basic_rate) {
  MUZHA_ASSERT(!tx_active_, "PHY is half-duplex: cannot start TX during TX");
  bool was_busy = carrier_busy();
  // Transmitting while decoding destroys the reception (half duplex).
  if (decoding_seq_ != 0) {
    decoding_corrupted_ = true;
    ++collisions_;
  }
  std::uint32_t overhead = 0;
  switch (pkt->mac.type) {
    case MacFrameType::kData:
      overhead = kMacDataOverheadBytes;
      break;
    case MacFrameType::kRts:
      overhead = kMacRtsBytes;
      break;
    case MacFrameType::kCts:
      overhead = kMacCtsBytes;
      break;
    case MacFrameType::kAck:
      overhead = kMacAckBytes;
      break;
  }
  SimTime dur = tx_duration(Bytes(pkt->size_bytes + overhead), basic_rate);
  tx_active_ = true;
  ++frames_sent_;
  update_carrier(was_busy);
  channel_.transmit(*this, *pkt, dur);
  sim_.schedule_in(dur, [this] {
    bool busy_before = carrier_busy();
    tx_active_ = false;
    // Inform the MAC of TX completion *before* the carrier-idle transition:
    // the MAC must update its exchange state (e.g. start awaiting the ACK)
    // before any idle notification can restart contention.
    if (on_tx_done_) on_tx_done_();
    update_carrier(busy_before);
  });
}

void WirelessPhy::signal_start(PacketPtr pkt, bool pre_corrupted,
                               SimTime duration, Meters tx_dist) {
  bool was_busy = carrier_busy();
  std::uint64_t seq = next_signal_seq_++;
  double ratio = channel_.params().capture_distance_ratio;
  // Lock onto a decodable frame when not transmitting or already decoding,
  // provided every signal currently on the air is weak enough to be
  // captured over (all at least `ratio` times farther than the new frame's
  // transmitter). A quiet medium is the trivial case.
  bool can_lock = !tx_active_ && decoding_seq_ == 0 && pkt != nullptr;
  if (can_lock) {
    for (const auto& [s, dist] : active_signals_) {
      if (dist < tx_dist * ratio) {
        can_lock = false;
        break;
      }
    }
  }
  if (can_lock) {
    decoding_seq_ = seq;
    decoding_pkt_ = std::move(pkt);
    decoding_corrupted_ = pre_corrupted;
    decoding_dist_ = tx_dist;
  } else if (decoding_seq_ != 0 && !decoding_corrupted_) {
    // Capture effect: a sufficiently distant (weak) interferer does not
    // destroy the frame being decoded.
    if (tx_dist < decoding_dist_ * ratio) {
      decoding_corrupted_ = true;
      ++collisions_;
    }
  }
  active_signals_.emplace_back(seq, tx_dist);
  ++sensed_signals_;
  update_carrier(was_busy);
  sim_.schedule_in(duration, [this, seq] { signal_end(seq); });
}

void WirelessPhy::signal_end(std::uint64_t signal_seq) {
  bool was_busy = carrier_busy();
  MUZHA_ASSERT(sensed_signals_ > 0, "signal_end without matching start");
  --sensed_signals_;
  for (auto& entry : active_signals_) {
    if (entry.first == signal_seq) {
      entry = active_signals_.back();  // swap-pop; order is irrelevant
      active_signals_.pop_back();
      break;
    }
  }
  if (signal_seq == decoding_seq_) {
    decoding_seq_ = 0;
    PacketPtr p = std::move(decoding_pkt_);
    bool corrupted = decoding_corrupted_ || tx_active_;
    decoding_corrupted_ = false;
    if (!corrupted) ++frames_received_ok_;
    if (on_rx_) on_rx_(corrupted ? nullptr : std::move(p), corrupted);
  }
  update_carrier(was_busy);
}

void WirelessPhy::update_carrier(bool was_busy) {
  bool now_busy = carrier_busy();
  if (now_busy != was_busy && on_channel_state_) on_channel_state_(now_busy);
}

}  // namespace muzha
