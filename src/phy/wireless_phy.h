// Half-duplex wireless PHY with physical carrier sense and collision
// handling.
//
// Collision model: the PHY locks onto a decodable frame only when the medium
// is completely quiet at its antenna. Any signal (decodable or mere energy)
// that overlaps an in-progress reception corrupts it; frames arriving while
// the PHY is transmitting are lost (half duplex). Corrupted receptions are
// reported to the MAC so it can apply EIFS.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "phy/channel.h"
#include "phy/position.h"
#include "phy/spatial_grid.h"
#include "pkt/packet.h"
#include "sim/inline_callback.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

class WirelessPhy {
 public:
  // Callback types up to the MAC (inline-stored, move-only — see
  // sim/inline_callback.h).
  using ChannelStateCallback = InlineFunction<void(bool busy)>;
  // pkt is null when only corruption is reported (collision damaged the
  // frame beyond recovery of its headers).
  using RxCallback = InlineFunction<void(PacketPtr pkt, bool corrupted)>;
  using TxDoneCallback = InlineFunction<void()>;

  WirelessPhy(Simulator& sim, Channel& channel, NodeId id, Position pos);
  WirelessPhy(const WirelessPhy&) = delete;
  WirelessPhy& operator=(const WirelessPhy&) = delete;
  ~WirelessPhy() { channel_.detach(*this); }

  NodeId id() const { return id_; }
  Position position() const { return pos_; }
  void set_position(Position p) {
    pos_ = p;
    // Keep the spatial index current — but only when the move actually
    // re-buckets. In-cell moves (the common random-waypoint tick) touch no
    // grid memory: gather() reads live positions, so the index never holds
    // an authoritative copy of ours. When not indexed (brute-force mode or
    // detached), grid_item_ is invalid and phy_moved() is the judge.
    if (grid_item_.valid() && channel_.grid().same_cell(grid_item_, p)) return;
    channel_.phy_moved(*this);
  }

  void set_channel_state_callback(ChannelStateCallback cb) {
    on_channel_state_ = std::move(cb);
  }
  void set_rx_callback(RxCallback cb) { on_rx_ = std::move(cb); }
  void set_tx_done_callback(TxDoneCallback cb) { on_tx_done_ = std::move(cb); }

  // True when the medium is sensed busy (energy present, receiving, or
  // transmitting).
  bool carrier_busy() const { return tx_active_ || sensed_signals_ > 0; }
  bool transmitting() const { return tx_active_; }

  // On-air time of a frame of `total` bytes (MAC overhead included by the
  // caller) at the data or basic rate.
  SimTime tx_duration(Bytes total, bool basic_rate) const;

  // Starts transmitting; MAC must not call this while carrier_busy() except
  // for the SIFS responses the standard allows. on_tx_done fires at TX end.
  void start_tx(PacketPtr pkt, bool basic_rate);

  // --- Channel-facing interface -------------------------------------------
  // A signal begins arriving from a transmitter `tx_dist` away. `pkt` is
  // non-null iff the receiver is within decode range; `pre_corrupted` marks
  // random channel errors.
  void signal_start(PacketPtr pkt, bool pre_corrupted, SimTime duration,
                    Meters tx_dist);

  // Statistics.
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received_ok() const { return frames_received_ok_; }
  std::uint64_t collisions() const { return collisions_; }

 private:
  friend class Channel;  // attach/detach bookkeeping below

  void signal_end(std::uint64_t signal_seq);
  void update_carrier(bool was_busy);

  Simulator& sim_;
  Channel& channel_;
  NodeId id_;
  Position pos_;

  // Channel bookkeeping, written only by Channel::attach/detach.
  bool channel_attached_ = false;
  std::uint64_t channel_order_ = 0;  // monotonic attach-order key
  SpatialGrid::Item grid_item_;      // backref into the spatial index

  ChannelStateCallback on_channel_state_;
  RxCallback on_rx_;
  TxDoneCallback on_tx_done_;

  bool tx_active_ = false;
  int sensed_signals_ = 0;
  // (sequence, distance) of every signal currently arriving. Flat vector,
  // erased by swap-pop: the capture decision in signal_start() is an
  // order-independent predicate over ALL entries, so element order does not
  // matter, and the handful of concurrently overlapping signals never
  // justifies a node-allocating container on the per-delivery warm path
  // (the vector keeps its capacity once grown).
  std::vector<std::pair<std::uint64_t, Meters>> active_signals_;

  // In-progress decode.
  std::uint64_t next_signal_seq_ = 1;
  std::uint64_t decoding_seq_ = 0;  // 0 = not decoding
  PacketPtr decoding_pkt_;
  bool decoding_corrupted_ = false;
  Meters decoding_dist_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ok_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace muzha
