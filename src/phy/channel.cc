#include "phy/channel.h"

#include "phy/wireless_phy.h"

namespace muzha {

void Channel::transmit(const WirelessPhy& src, const Packet& pkt,
                       SimTime duration) {
  ++frames_transmitted_;
  Position sp = src.position();
  for (WirelessPhy* rx : phys_) {
    if (rx == &src) continue;
    double dist = distance_m(sp, rx->position());
    if (dist > params_.cs_range_m) continue;
    bool decodable = dist <= params_.rx_range_m;
    bool pre_corrupted = false;
    PacketPtr copy;
    if (decodable) {
      copy = clone_packet(pkt);
      pre_corrupted = error_model_->should_corrupt(pkt, dist, sim_.rng());
      if (pre_corrupted) ++frames_corrupted_by_error_;
    }
    SimTime prop = SimTime::from_seconds(dist / params_.propagation_mps);
    sim_.schedule_in(prop, [rx, copy = std::move(copy), pre_corrupted,
                            duration, dist]() mutable {
      rx->signal_start(std::move(copy), pre_corrupted, duration, dist);
    });
  }
}

}  // namespace muzha
