#include "phy/channel.h"

#include <algorithm>

#include "phy/position.h"
#include "phy/spatial_grid.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

void Channel::attach(WirelessPhy& phy) {
  MUZHA_DCHECK(!phy.channel_attached_,
               "Channel::attach: PHY attached twice (would receive every "
               "frame twice)");
  phy.channel_attached_ = true;
  phy.channel_order_ = next_order_++;
  phys_.push_back(&phy);
  if (mode_ == ChannelMode::kSpatialIndex) {
    grid_.insert(&phy, phy.position(), phy.channel_order_, &phy.grid_item_);
  }
}

void Channel::detach(WirelessPhy& phy) {
  if (!phy.channel_attached_) return;
  phy.channel_attached_ = false;
  grid_.remove(&phy.grid_item_);
  auto it = std::find(phys_.begin(), phys_.end(), &phy);
  MUZHA_ASSERT(it != phys_.end(), "Channel::detach: PHY not in phys_");
  phys_.erase(it);  // keeps the survivors in attach order
}

void Channel::phy_moved(WirelessPhy& phy) {
  if (phy.channel_attached_ && mode_ == ChannelMode::kSpatialIndex) {
    grid_.move(&phy.grid_item_, phy.position());
  }
}

void Channel::transmit(const WirelessPhy& src, const Packet& pkt,
                       SimTime duration) {
  ++frames_transmitted_;
  Position sp = src.position();
  if (mode_ == ChannelMode::kBruteForce) {
    for (WirelessPhy* rx : phys_) {
      if (rx == &src) continue;
      deliver(rx, sp, rx->position(), pkt, duration, sim_.now());
    }
  } else {
    // Cell side == cs_range, so the 3x3 neighborhood is a superset of the
    // delivery disc; deliver() re-applies the exact range check. Sorting by
    // the attach-order key restores brute-force scan order, which fixes both
    // the schedule_in order and the error-model RNG draw order.
    scratch_.clear();
    grid_.gather(sp, scratch_);
    std::sort(scratch_.begin(), scratch_.end(),
              [](const SpatialGrid::Entry& a, const SpatialGrid::Entry& b) {
                return a.order < b.order;
              });
    for (const SpatialGrid::Entry& e : scratch_) {
      if (e.phy == &src) continue;
      deliver(e.phy, sp, e.pos, pkt, duration, sim_.now());
    }
  }
  if (boundary_sink_ != nullptr) boundary_sink_->on_transmit(sp, pkt, duration);
}

void Channel::deliver_remote(Position src_pos, const Packet& pkt,
                             SimTime duration, SimTime tx_time) {
  // The transmitter lives on another shard, so no self-exclusion applies;
  // scanning phys_ in attach order reproduces the receiver order (and thus
  // every error-model RNG draw order) of a single-core run restricted to
  // this shard's PHYs.
  for (WirelessPhy* rx : phys_) {
    deliver(rx, src_pos, rx->position(), pkt, duration, tx_time);
  }
}

void Channel::deliver(WirelessPhy* rx, Position src_pos, Position rx_pos,
                      const Packet& pkt, SimTime duration, SimTime tx_time) {
  Meters dist = distance(src_pos, rx_pos);
  if (dist > params_.cs_range) return;
  bool decodable = dist <= params_.rx_range;
  bool pre_corrupted = false;
  PacketPtr copy;
  if (decodable) {
    copy = clone_packet(pkt);
    pre_corrupted =
        error_model_->should_corrupt(pkt, dist, tx_time, sim_.rng());
    if (pre_corrupted) ++frames_corrupted_by_error_;
  }
  SimTime prop = to_sim_time(dist / params_.propagation);
  // Causality invariant of the conservative barrier: a cross-shard frame
  // merged at a window boundary must still land in this shard's future. A
  // violation means the lookahead window was too wide for the shard gap.
  MUZHA_DCHECK(tx_time + prop >= sim_.now(),
               "causality violated: cross-shard signal would arrive in the "
               "receiving shard's past (lookahead exceeded min propagation "
               "delay between shards)");
  sim_.schedule_at(tx_time + prop,
                   [rx, copy = std::move(copy), pre_corrupted, duration,
                    dist]() mutable {
                     rx->signal_start(std::move(copy), pre_corrupted, duration,
                                      dist);
                   });
}

}  // namespace muzha
