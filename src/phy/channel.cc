#include "phy/channel.h"

#include "phy/wireless_phy.h"

namespace muzha {

void Channel::transmit(const WirelessPhy& src, const Packet& pkt,
                       SimTime duration) {
  ++frames_transmitted_;
  Position sp = src.position();
  for (WirelessPhy* rx : phys_) {
    if (rx == &src) continue;
    Meters dist = distance(sp, rx->position());
    if (dist > params_.cs_range) continue;
    bool decodable = dist <= params_.rx_range;
    bool pre_corrupted = false;
    PacketPtr copy;
    if (decodable) {
      copy = clone_packet(pkt);
      pre_corrupted =
          error_model_->should_corrupt(pkt, dist, sim_.now(), sim_.rng());
      if (pre_corrupted) ++frames_corrupted_by_error_;
    }
    SimTime prop = to_sim_time(dist / params_.propagation);
    sim_.schedule_in(prop, [rx, copy = std::move(copy), pre_corrupted,
                            duration, dist]() mutable {
      rx->signal_start(std::move(copy), pre_corrupted, duration, dist);
    });
  }
}

}  // namespace muzha
