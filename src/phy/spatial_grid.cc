#include "phy/spatial_grid.h"

#include "phy/position.h"
#include "phy/wireless_phy.h"
#include "sim/assert.h"
#include "sim/units.h"

namespace muzha {

namespace {
constexpr std::size_t kInitialBuckets = 64;  // power of two
}  // namespace

SpatialGrid::SpatialGrid(Meters cell_size) : cell_size_(cell_size.value()) {
  MUZHA_ASSERT(cell_size_ > 0.0, "SpatialGrid cell size must be positive");
  cells_.resize(kInitialBuckets);
}

std::size_t SpatialGrid::bucket_hash(std::int64_t cx, std::int64_t cy) {
  // SplitMix64-style mix of the two coordinates; fully deterministic (no
  // pointers, no ASLR) so bucket layout is identical across runs.
  std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(cy) + 0xBF58476D1CE4E5B9ull + (h << 6) + (h >> 2);
  h ^= h >> 31;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 29;
  return static_cast<std::size_t>(h);
}

std::uint32_t SpatialGrid::find_cell(std::int64_t cx, std::int64_t cy) const {
  std::size_t mask = cells_.size() - 1;
  std::size_t i = bucket_hash(cx, cy) & mask;
  while (true) {
    const Cell& c = cells_[i];
    if (!c.used) return kNoCell;
    if (c.cx == cx && c.cy == cy) return static_cast<std::uint32_t>(i);
    i = (i + 1) & mask;
  }
}

std::uint32_t SpatialGrid::obtain_cell(std::int64_t cx, std::int64_t cy) {
  // Grow at 70% occupancy so probe chains stay short; cells are never
  // deleted, so occupancy only rises.
  if ((used_cells_ + 1) * 10 > cells_.size() * 7) rehash(cells_.size() * 2);
  std::size_t mask = cells_.size() - 1;
  std::size_t i = bucket_hash(cx, cy) & mask;
  while (true) {
    Cell& c = cells_[i];
    if (!c.used) {
      c.used = true;
      c.cx = cx;
      c.cy = cy;
      ++used_cells_;
      return static_cast<std::uint32_t>(i);
    }
    if (c.cx == cx && c.cy == cy) return static_cast<std::uint32_t>(i);
    i = (i + 1) & mask;
  }
}

void SpatialGrid::rehash(std::size_t new_buckets) {
  std::vector<Cell> old = std::move(cells_);
  cells_.clear();
  cells_.resize(new_buckets);
  std::size_t mask = new_buckets - 1;
  for (Cell& oc : old) {
    if (!oc.used) continue;
    std::size_t i = bucket_hash(oc.cx, oc.cy) & mask;
    while (cells_[i].used) i = (i + 1) & mask;
    cells_[i] = std::move(oc);
    // The cell's entries moved wholesale: slots are unchanged, only the
    // bucket index in each owner's backref needs refreshing.
    for (Entry& e : cells_[i].entries) {
      e.backref->cell = static_cast<std::uint32_t>(i);
    }
  }
}

void SpatialGrid::insert(WirelessPhy* phy, Position pos, std::uint64_t order,
                         Item* backref) {
  MUZHA_DCHECK(!backref->valid(), "SpatialGrid::insert: item already indexed");
  std::int64_t cx = coord_of(pos.x);
  std::int64_t cy = coord_of(pos.y);
  std::uint32_t ci = obtain_cell(cx, cy);
  Cell& c = cells_[ci];
  backref->cell = ci;
  backref->slot = static_cast<std::uint32_t>(c.entries.size());
  backref->cx = cx;
  backref->cy = cy;
  backref->x_lo = static_cast<double>(cx) * cell_size_ + kEdgeSlack;
  backref->x_hi = static_cast<double>(cx + 1) * cell_size_ - kEdgeSlack;
  backref->y_lo = static_cast<double>(cy) * cell_size_ + kEdgeSlack;
  backref->y_hi = static_cast<double>(cy + 1) * cell_size_ - kEdgeSlack;
  c.entries.push_back(Entry{pos, order, phy, backref});
  ++entries_;
}

void SpatialGrid::remove(Item* backref) {
  if (!backref->valid()) return;
  Cell& c = cells_[backref->cell];
  std::uint32_t slot = backref->slot;
  MUZHA_DCHECK(slot < c.entries.size() &&
                   c.entries[slot].backref == backref,
               "SpatialGrid::remove: stale item");
  // Swap-and-pop; the displaced entry's owner learns its new slot.
  if (slot + 1 != c.entries.size()) {
    c.entries[slot] = c.entries.back();
    c.entries[slot].backref->slot = slot;
  }
  c.entries.pop_back();
  --entries_;
  *backref = Item{};
}

void SpatialGrid::move(Item* backref, Position pos) {
  MUZHA_DCHECK(backref->valid(), "SpatialGrid::move: item not indexed");
  Cell& c = cells_[backref->cell];
  Entry& e = c.entries[backref->slot];
  std::int64_t ncx = coord_of(pos.x);
  std::int64_t ncy = coord_of(pos.y);
  if (ncx == c.cx && ncy == c.cy) {
    // Same cell: refresh the stored doubles and stop. Hot mobility callers
    // avoid even this via same_cell(); direct move() calls stay correct.
    e.pos = pos;
    return;
  }
  WirelessPhy* phy = e.phy;
  std::uint64_t order = e.order;
  remove(backref);
  insert(phy, pos, order, backref);
}

void SpatialGrid::gather(Position center, std::vector<Entry>& out) const {
  std::int64_t ccx = coord_of(center.x);
  std::int64_t ccy = coord_of(center.y);
  for (std::int64_t dy = -1; dy <= 1; ++dy) {
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      std::uint32_t ci = find_cell(ccx + dx, ccy + dy);
      if (ci == kNoCell) continue;
      for (const Entry& e : cells_[ci].entries) {
        // Stored positions can be stale (in-cell moves skip the grid); emit
        // the owner's live doubles — the loads a brute-force scan performs.
        out.push_back(Entry{e.phy->position(), e.order, e.phy, nullptr});
      }
    }
  }
}

void SpatialGrid::clear() {
  cells_.clear();
  cells_.resize(kInitialBuckets);
  used_cells_ = 0;
  entries_ = 0;
}

}  // namespace muzha
