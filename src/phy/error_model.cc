#include "phy/error_model.h"

#include <cmath>

#include "pkt/packet.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

bool BerErrorModel::should_corrupt(const Packet& pkt, Meters, SimTime,
                                   Rng& rng) {
  double bits = static_cast<double>(pkt.size_bytes + kMacDataOverheadBytes) * 8.0;
  double p_ok = std::pow(1.0 - ber_.value(), bits);
  return rng.chance(1.0 - p_ok);
}

bool GilbertElliottErrorModel::should_corrupt(const Packet&, Meters,
                                              SimTime now, Rng& rng) {
  while (now >= state_until_) {
    in_bad_ = !in_bad_;
    Seconds mean = in_bad_ ? cfg_.mean_bad : cfg_.mean_good;
    state_until_ += to_sim_time(Seconds(rng.exponential(mean.value())));
  }
  return in_bad_ && rng.chance(cfg_.bad_loss_prob.value());
}

}  // namespace muzha
