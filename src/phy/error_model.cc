#include "phy/error_model.h"

#include <cmath>

namespace muzha {

bool BerErrorModel::should_corrupt(const Packet& pkt, double, Rng& rng) {
  double bits = static_cast<double>(pkt.size_bytes + kMacDataOverheadBytes) * 8.0;
  double p_ok = std::pow(1.0 - ber_, bits);
  return rng.chance(1.0 - p_ok);
}

bool GilbertElliottErrorModel::should_corrupt(const Packet&, double,
                                              Rng& rng) {
  double now = now_s_ ? *now_s_ : 0.0;
  while (now >= state_until_s_) {
    in_bad_ = !in_bad_;
    double mean = in_bad_ ? cfg_.mean_bad_s : cfg_.mean_good_s;
    state_until_s_ += rng.exponential(mean);
  }
  return in_bad_ && rng.chance(cfg_.bad_loss_prob);
}

}  // namespace muzha
