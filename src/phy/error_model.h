// Random-loss models for the wireless channel.
//
// The paper's motivation hinges on losses that are *not* congestion: high
// BER, bursty interference. These models inject such losses independently of
// queueing, which is what TCP Muzha's marked/unmarked duplicate-ACK scheme is
// designed to discriminate.
#pragma once

#include <cstdint>

#include "pkt/packet.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;
  // Returns true if this frame should arrive corrupted at a receiver `dist`
  // away from the transmitter. `now` is the simulation clock at TX start,
  // supplied per call so models stay scheduler-free.
  virtual bool should_corrupt(const Packet& pkt, Meters dist, SimTime now,
                              Rng& rng) = 0;
};

// No random corruption (default).
class NoErrorModel final : public ErrorModel {
 public:
  bool should_corrupt(const Packet&, Meters, SimTime, Rng&) override {
    return false;
  }
};

// Corrupts each frame independently with a fixed probability.
class UniformErrorModel final : public ErrorModel {
 public:
  explicit UniformErrorModel(Probability per_packet_prob)
      : prob_(per_packet_prob) {}
  bool should_corrupt(const Packet&, Meters, SimTime, Rng& rng) override {
    return rng.chance(prob_.value());
  }

 private:
  Probability prob_;
};

// Per-bit error rate: corruption probability 1 - (1 - ber)^bits.
class BerErrorModel final : public ErrorModel {
 public:
  explicit BerErrorModel(Probability ber) : ber_(ber) {}
  bool should_corrupt(const Packet& pkt, Meters, SimTime, Rng& rng) override;

 private:
  Probability ber_;
};

// Two-state Gilbert-Elliott burst-loss model: GOOD <-> BAD with exponential
// sojourn times; frames sent during BAD periods are corrupted with
// `bad_loss_prob`. Models the paper's "errors occur in bursts".
//
// The clock is the `now` passed to should_corrupt (the channel supplies the
// scheduler's SimTime), so there is no external clock pointer to dangle.
class GilbertElliottErrorModel final : public ErrorModel {
 public:
  struct Config {
    Seconds mean_good = Seconds(1.0);
    Seconds mean_bad = Seconds(0.05);
    Probability bad_loss_prob = Probability(0.5);
  };
  explicit GilbertElliottErrorModel(Config cfg) : cfg_(cfg) {}

  bool should_corrupt(const Packet& pkt, Meters dist, SimTime now,
                      Rng& rng) override;

  bool in_bad_state() const { return in_bad_; }

 private:
  Config cfg_;
  bool in_bad_ = false;
  SimTime state_until_;
};

}  // namespace muzha
