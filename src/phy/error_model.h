// Random-loss models for the wireless channel.
//
// The paper's motivation hinges on losses that are *not* congestion: high
// BER, bursty interference. These models inject such losses independently of
// queueing, which is what TCP Muzha's marked/unmarked duplicate-ACK scheme is
// designed to discriminate.
#pragma once

#include <cstdint>

#include "pkt/packet.h"
#include "sim/rng.h"

namespace muzha {

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;
  // Returns true if this frame should arrive corrupted at a receiver
  // `dist_m` away from the transmitter.
  virtual bool should_corrupt(const Packet& pkt, double dist_m, Rng& rng) = 0;
};

// No random corruption (default).
class NoErrorModel final : public ErrorModel {
 public:
  bool should_corrupt(const Packet&, double, Rng&) override { return false; }
};

// Corrupts each frame independently with a fixed probability.
class UniformErrorModel final : public ErrorModel {
 public:
  explicit UniformErrorModel(double per_packet_prob)
      : prob_(per_packet_prob) {}
  bool should_corrupt(const Packet&, double, Rng& rng) override {
    return rng.chance(prob_);
  }

 private:
  double prob_;
};

// Per-bit error rate: corruption probability 1 - (1 - ber)^bits.
class BerErrorModel final : public ErrorModel {
 public:
  explicit BerErrorModel(double ber) : ber_(ber) {}
  bool should_corrupt(const Packet& pkt, double, Rng& rng) override;

 private:
  double ber_;
};

// Two-state Gilbert-Elliott burst-loss model: GOOD <-> BAD with exponential
// sojourn times; frames sent during BAD periods are corrupted with
// `bad_loss_prob`. Models the paper's "errors occur in bursts".
class GilbertElliottErrorModel final : public ErrorModel {
 public:
  struct Config {
    double mean_good_s = 1.0;
    double mean_bad_s = 0.05;
    double bad_loss_prob = 0.5;
  };
  // `now_s` is supplied per call so the model stays scheduler-free.
  explicit GilbertElliottErrorModel(Config cfg) : cfg_(cfg) {}

  bool should_corrupt(const Packet& pkt, double dist_m, Rng& rng) override;

  void set_clock(const double* now_s) { now_s_ = now_s; }

 private:
  Config cfg_;
  const double* now_s_ = nullptr;
  bool in_bad_ = false;
  double state_until_s_ = 0.0;
};

}  // namespace muzha
