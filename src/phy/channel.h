// Shared wireless channel.
//
// The channel knows every attached PHY and its position. A transmission is
// delivered as a (signal_start, signal_end) event pair to every PHY within
// carrier-sense range, after per-receiver propagation delay. Receivers within
// decode range additionally get the frame contents; receivers between decode
// and CS range only sense energy (which still interferes). The receiving
// PHY, not the channel, decides collision outcomes, because they depend on
// receiver state (half-duplex, already decoding, ...).
//
// Receiver lookup runs in one of two modes:
//  - kSpatialIndex (default): a uniform grid keyed on cs_range limits the
//    scan to the 3x3 cell neighborhood of the transmitter — O(neighbors).
//    Candidates are sorted by attach-order key before delivery, so the event
//    schedule (and every RNG draw in the error model) is bit-identical to
//    the brute-force scan.
//  - kBruteForce: the original linear scan over every attached PHY. Kept as
//    the oracle for the differential tests in test_channel_index.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "phy/spatial_grid.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"

namespace muzha {

class WirelessPhy;

enum class ChannelMode : std::uint8_t { kSpatialIndex, kBruteForce };

// Observer of local transmissions, installed by the sharded-run engine so a
// shard can forward frames that may reach PHYs owned by OTHER shards. The
// hook fires synchronously inside Channel::transmit (tx time == sim.now()),
// after local delivery has been scheduled; it must not re-enter the channel.
class BoundarySink {
 public:
  virtual ~BoundarySink() = default;
  virtual void on_transmit(Position src_pos, const Packet& pkt,
                           SimTime duration) = 0;
};

class Channel {
 public:
  Channel(Simulator& sim, PhyParams params,
          ChannelMode mode = ChannelMode::kSpatialIndex)
      : sim_(sim),
        params_(params),
        mode_(mode),
        error_model_(new NoErrorModel),
        grid_(params.cs_range) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const PhyParams& params() const { return params_; }
  Simulator& sim() { return sim_; }
  ChannelMode mode() const { return mode_; }
  // Read-only index access for WirelessPhy::set_position's same-cell test.
  const SpatialGrid& grid() const { return grid_; }

  // Registers a PHY for delivery. Attaching a PHY twice is a bug (it would
  // receive every frame twice); MUZHA_DCHECKed.
  void attach(WirelessPhy& phy);

  // Unregisters a PHY (no-op when not attached). Called by ~WirelessPhy, so
  // a PHY may die before the channel without leaving a dangling pointer in
  // phys_ or the grid. Relative attach order of the survivors is preserved.
  void detach(WirelessPhy& phy);

  // Called by WirelessPhy::set_position to keep the spatial index current.
  void phy_moved(WirelessPhy& phy);

  std::size_t attached_count() const { return phys_.size(); }

  void set_error_model(std::unique_ptr<ErrorModel> em) {
    error_model_ = std::move(em);
  }

  // Called by a transmitting PHY at TX start. `duration` is on-air time.
  void transmit(const WirelessPhy& src, const Packet& pkt, SimTime duration);

  // Installs (or clears, with nullptr) the sharded-run observer that relays
  // frames toward other shards' channels.
  void set_boundary_sink(BoundarySink* sink) { boundary_sink_ = sink; }

  // Delivers a frame transmitted at `tx_time` by a PHY that lives on ANOTHER
  // shard's channel. Receivers are every local PHY in attach order — exactly
  // the order a local transmit uses — with the usual range gating; per-frame
  // propagation is computed from `src_pos` just like the local path, so the
  // signal timeline at each receiver is identical to a single-core run.
  // Called at a lookahead barrier, i.e. possibly long after tx_time; the
  // conservative window guarantees every arrival is still in this shard's
  // future, which is MUZHA_DCHECKed per receiver (the causality invariant).
  void deliver_remote(Position src_pos, const Packet& pkt, SimTime duration,
                      SimTime tx_time);

  // Statistics.
  std::uint64_t frames_transmitted() const { return frames_transmitted_; }
  std::uint64_t frames_corrupted_by_error() const {
    return frames_corrupted_by_error_;
  }

 private:
  // Shared per-receiver delivery tail of both transmit modes and the remote
  // path. `rx_pos` is the receiver position as the active lookup structure
  // saw it; all callers feed the exact same doubles, so distance() is
  // bit-identical. The signal lands at `tx_time` + propagation; local
  // transmits pass tx_time == sim_.now(), making schedule_at(tx_time + prop)
  // the same event as the historical schedule_in(prop).
  void deliver(WirelessPhy* rx, Position src_pos, Position rx_pos,
               const Packet& pkt, SimTime duration, SimTime tx_time);

  Simulator& sim_;
  PhyParams params_;
  ChannelMode mode_;
  std::unique_ptr<ErrorModel> error_model_;
  BoundarySink* boundary_sink_ = nullptr;  // non-owning; sharded runs only
  std::vector<WirelessPhy*> phys_;  // attach order; erase preserves order
  SpatialGrid grid_;
  std::vector<SpatialGrid::Entry> scratch_;  // gather buffer, reused
  std::uint64_t next_order_ = 0;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t frames_corrupted_by_error_ = 0;
};

}  // namespace muzha
