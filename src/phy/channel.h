// Shared wireless channel.
//
// The channel knows every attached PHY and its position. A transmission is
// delivered as a (signal_start, signal_end) event pair to every PHY within
// carrier-sense range, after per-receiver propagation delay. Receivers within
// decode range additionally get the frame contents; receivers between decode
// and CS range only sense energy (which still interferes). The receiving
// PHY, not the channel, decides collision outcomes, because they depend on
// receiver state (half-duplex, already decoding, ...).
#pragma once

#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "sim/simulator.h"

namespace muzha {

class WirelessPhy;

class Channel {
 public:
  Channel(Simulator& sim, PhyParams params)
      : sim_(sim), params_(params), error_model_(new NoErrorModel) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const PhyParams& params() const { return params_; }
  Simulator& sim() { return sim_; }

  void attach(WirelessPhy& phy) { phys_.push_back(&phy); }

  void set_error_model(std::unique_ptr<ErrorModel> em) {
    error_model_ = std::move(em);
  }

  // Called by a transmitting PHY at TX start. `duration` is on-air time.
  void transmit(const WirelessPhy& src, const Packet& pkt, SimTime duration);

  // Statistics.
  std::uint64_t frames_transmitted() const { return frames_transmitted_; }
  std::uint64_t frames_corrupted_by_error() const {
    return frames_corrupted_by_error_;
  }

 private:
  Simulator& sim_;
  PhyParams params_;
  std::unique_ptr<ErrorModel> error_model_;
  std::vector<WirelessPhy*> phys_;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t frames_corrupted_by_error_ = 0;
};

}  // namespace muzha
