// Radio parameters (Table 5.1 of the paper: 2 Mbps, 250 m nominal range,
// IEEE 802.11 DSSS).
#pragma once

#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

struct PhyParams {
  // Frames from transmitters within this range decode successfully (absent
  // collisions and random errors).
  Meters rx_range = Meters(250.0);
  // Energy from transmitters within this range is sensed (physical carrier
  // sense) and interferes with concurrent receptions. 2.2x the rx range, the
  // classic NS-2 two-ray-ground ratio.
  Meters cs_range = Meters(550.0);
  // Payload rate for unicast MAC data frames.
  BitsPerSecond data_rate = BitsPerSecond(2'000'000);
  // Basic rate for control frames (RTS/CTS/ACK) and broadcast data.
  BitsPerSecond basic_rate = BitsPerSecond(1'000'000);
  // PLCP preamble + header, always sent at 1 Mbps (long preamble).
  SimTime plcp_overhead = SimTime::from_us(192);
  // Signal propagation speed.
  MetersPerSecond propagation = MetersPerSecond(3.0e8);
  // Capture effect: an overlapping signal corrupts an in-progress reception
  // only if the interferer is closer than `capture_distance_ratio` times the
  // wanted transmitter's distance. With the two-ray-ground d^-4 power law,
  // 1.78 corresponds to NS-2's 10 dB capture threshold. Set to +inf to
  // disable capture (every overlap collides). Dimensionless ratio.
  double capture_distance_ratio = 1.78;
};

}  // namespace muzha
