// Radio parameters (Table 5.1 of the paper: 2 Mbps, 250 m nominal range,
// IEEE 802.11 DSSS).
#pragma once

#include <cstdint>

#include "sim/sim_time.h"

namespace muzha {

struct PhyParams {
  // Frames from transmitters within this range decode successfully (absent
  // collisions and random errors).
  double rx_range_m = 250.0;
  // Energy from transmitters within this range is sensed (physical carrier
  // sense) and interferes with concurrent receptions. 2.2x the rx range, the
  // classic NS-2 two-ray-ground ratio.
  double cs_range_m = 550.0;
  // Payload rate for unicast MAC data frames.
  std::uint64_t data_rate_bps = 2'000'000;
  // Basic rate for control frames (RTS/CTS/ACK) and broadcast data.
  std::uint64_t basic_rate_bps = 1'000'000;
  // PLCP preamble + header, always sent at 1 Mbps (long preamble).
  SimTime plcp_overhead = SimTime::from_us(192);
  // Signal propagation speed.
  double propagation_mps = 3.0e8;
  // Capture effect: an overlapping signal corrupts an in-progress reception
  // only if the interferer is closer than `capture_distance_ratio` times the
  // wanted transmitter's distance. With the two-ray-ground d^-4 power law,
  // 1.78 corresponds to NS-2's 10 dB capture threshold. Set to +inf to
  // disable capture (every overlap collides).
  double capture_distance_ratio = 1.78;
};

}  // namespace muzha
