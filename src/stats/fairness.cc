#include "stats/fairness.h"

namespace muzha {

double jain_fairness_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: degenerate but "equal"
  double n = static_cast<double>(x.size());
  return (sum * sum) / (n * sum_sq);
}

}  // namespace muzha
