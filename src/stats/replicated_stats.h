// Statistics over replicated runs.
//
// Every figure in the paper is an average over independent seeded runs;
// ReplicatedStats accumulates one metric across those replications and
// reports mean, sample standard deviation, min/max and a 95% confidence
// interval (Student-t for small n). Benches aggregate each cell of a sweep
// table with one of these.
#pragma once

#include <cstddef>

namespace muzha {

class ReplicatedStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  // Sample variance / standard deviation (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;

  // Half-width of the 95% two-sided confidence interval for the mean,
  // t_{0.975, n-1} * stddev / sqrt(n); 0 when n < 2. The interval is
  // [mean() - ci95_halfwidth(), mean() + ci95_halfwidth()].
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  // Welford running moments: numerically stable regardless of magnitude.
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace muzha
