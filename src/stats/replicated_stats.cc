#include "stats/replicated_stats.h"

#include <cmath>

namespace muzha {

namespace {

// Two-sided 97.5% Student-t quantiles for df = 1..30; beyond that the normal
// approximation (1.96) is within half a percent.
constexpr double kT975[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double t975(std::size_t df) {
  if (df == 0) return 0.0;
  if (df <= 30) return kT975[df - 1];
  return 1.96;
}

}  // namespace

void ReplicatedStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double ReplicatedStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double ReplicatedStats::stddev() const { return std::sqrt(variance()); }

double ReplicatedStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return t975(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace muzha
