// Result export: CSV files and a matching gnuplot script, so bench output
// can be plotted against the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "stats/time_series.h"

namespace muzha {

struct NamedSeries {
  std::string name;
  TimeSeries series;
};

// Writes aligned series as CSV: a `t` column (union of sample times, step
// semantics for missing points) plus one column per series. Returns false on
// I/O failure.
bool write_csv(const std::string& path, const std::vector<NamedSeries>& data);

// Writes a gnuplot script that plots `csv_path` (as written by write_csv)
// with one line per series.
bool write_gnuplot_script(const std::string& path, const std::string& csv_path,
                          const std::string& title,
                          const std::vector<NamedSeries>& data,
                          const std::string& ylabel = "value");

}  // namespace muzha
