// Time-series collectors for the paper's figures.
//
// CwndTracer records every congestion-window change (Figs 5.2-5.7).
// ThroughputSampler bins in-order deliveries at the sink into fixed windows
// (Figs 5.19-5.22 throughput dynamics).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/sim_time.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_sink.h"

namespace muzha {

struct TimePoint {
  Seconds t;
  double value = 0.0;  // unit depends on the series (segments, bit/s, ...)
};

using TimeSeries = std::vector<TimePoint>;

// Records (time, cwnd) on every change of the attached agent's window.
class CwndTracer {
 public:
  void attach(TcpAgent& agent) {
    agent.set_cwnd_listener([this](SimTime t, double cwnd) {
      series_.push_back({to_seconds(t), cwnd});
    });
  }

  const TimeSeries& series() const { return series_; }

  // Appends a sample directly (normally driven via attach()).
  void add(Seconds t, double value) { series_.push_back({t, value}); }

  // Value at time t (step interpolation); 0 before the first sample.
  double value_at(Seconds t) const;

 private:
  TimeSeries series_;
};

// Accumulates sink deliveries into fixed-width bins; series() reports the
// throughput of each bin in bits/second.
class ThroughputSampler {
 public:
  explicit ThroughputSampler(SimTime bin_width = SimTime::from_ms(500),
                             std::uint32_t payload_bytes = 1460)
      : bin_width_(to_seconds(bin_width)), payload_bytes_(payload_bytes) {}

  void attach(TcpSink& sink) {
    sink.set_delivery_listener(
        [this](SimTime t, std::int64_t count, std::uint32_t) {
          record(to_seconds(t),
                 static_cast<double>(count) * payload_bytes_ * 8.0);
        });
  }

  // Completed-bin series in bits/second; call after the run.
  TimeSeries series() const;

  double total_bits() const { return total_bits_; }

  // Accumulates `bits` into the bin containing `t` (normally driven via
  // attach()).
  void record(Seconds t, double bits);

 private:
  Seconds bin_width_;
  std::uint32_t payload_bytes_;
  std::vector<double> bins_;  // bits per bin
  double total_bits_ = 0.0;
};

}  // namespace muzha
