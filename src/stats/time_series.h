// Time-series collectors for the paper's figures.
//
// CwndTracer records every congestion-window change (Figs 5.2-5.7).
// ThroughputSampler bins in-order deliveries at the sink into fixed windows
// (Figs 5.19-5.22 throughput dynamics).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/sim_time.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_sink.h"

namespace muzha {

struct TimePoint {
  double t_s = 0.0;
  double value = 0.0;
};

using TimeSeries = std::vector<TimePoint>;

// Records (time, cwnd) on every change of the attached agent's window.
class CwndTracer {
 public:
  void attach(TcpAgent& agent) {
    agent.set_cwnd_listener([this](SimTime t, double cwnd) {
      series_.push_back({t.to_seconds(), cwnd});
    });
  }

  const TimeSeries& series() const { return series_; }

  // Appends a sample directly (normally driven via attach()).
  void add(double t_s, double value) { series_.push_back({t_s, value}); }

  // Value at time t (step interpolation); 0 before the first sample.
  double value_at(double t_s) const;

 private:
  TimeSeries series_;
};

// Accumulates sink deliveries into fixed-width bins; series() reports the
// throughput of each bin in bits/second.
class ThroughputSampler {
 public:
  explicit ThroughputSampler(SimTime bin_width = SimTime::from_ms(500),
                             std::uint32_t payload_bytes = 1460)
      : bin_width_s_(bin_width.to_seconds()), payload_bytes_(payload_bytes) {}

  void attach(TcpSink& sink) {
    sink.set_delivery_listener(
        [this](SimTime t, std::int64_t count, std::uint32_t) {
          record(t.to_seconds(),
                 static_cast<double>(count) * payload_bytes_ * 8.0);
        });
  }

  // Completed-bin series in bits/second; call after the run.
  TimeSeries series() const;

  double total_bits() const { return total_bits_; }

  // Accumulates `bits` into the bin containing `t_s` (normally driven via
  // attach()).
  void record(double t_s, double bits);

 private:
  double bin_width_s_;
  std::uint32_t payload_bytes_;
  std::vector<double> bins_;  // bits per bin
  double total_bits_ = 0.0;
};

}  // namespace muzha
