#include "stats/export.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "stats/time_series.h"

namespace muzha {

namespace {
// Step-interpolated value of a series at time t (0 before first sample).
double value_at(const TimeSeries& s, double t) {
  double v = 0.0;
  for (const TimePoint& p : s) {
    if (p.t.value() > t) break;
    v = p.value;
  }
  return v;
}
}  // namespace

bool write_csv(const std::string& path,
               const std::vector<NamedSeries>& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  std::fprintf(f, "t");
  for (const NamedSeries& ns : data) std::fprintf(f, ",%s", ns.name.c_str());
  std::fprintf(f, "\n");

  std::set<double> times;
  for (const NamedSeries& ns : data) {
    for (const TimePoint& p : ns.series) times.insert(p.t.value());
  }
  for (double t : times) {
    std::fprintf(f, "%.6f", t);
    for (const NamedSeries& ns : data) {
      std::fprintf(f, ",%.6f", value_at(ns.series, t));
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

bool write_gnuplot_script(const std::string& path, const std::string& csv_path,
                          const std::string& title,
                          const std::vector<NamedSeries>& data,
                          const std::string& ylabel) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "set datafile separator ','\n"
               "set key autotitle columnhead\n"
               "set title '%s'\n"
               "set xlabel 'time (s)'\n"
               "set ylabel '%s'\n"
               "plot",
               title.c_str(), ylabel.c_str());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::fprintf(f, "%s '%s' using 1:%zu with lines",
                 i == 0 ? "" : ",", csv_path.c_str(), i + 2);
  }
  std::fprintf(f, "\n");
  std::fclose(f);
  return true;
}

}  // namespace muzha
