#include "stats/trace_sinks.h"

#include "net/trace.h"
#include "pkt/packet.h"

namespace muzha {

std::size_t VectorTraceSink::count(TraceEventKind kind,
                                   std::uint64_t uid) const {
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == kind && (uid == 0 || ev.uid == uid)) ++n;
  }
  return n;
}

FileTraceSink::FileTraceSink(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {}

FileTraceSink::~FileTraceSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void FileTraceSink::on_event(const TraceEvent& ev) {
  if (f_ == nullptr) return;
  const char* proto = ev.proto == IpProto::kTcp    ? "tcp"
                      : ev.proto == IpProto::kAodv ? "aodv"
                                                   : "raw";
  std::fprintf(f_, "%.6f %-9s node=%u uid=%llu %u->%u proto=%s size=%u",
               ev.time.to_seconds(), trace_event_name(ev.kind), ev.node,
               static_cast<unsigned long long>(ev.uid), ev.src, ev.dst, proto,
               ev.size_bytes);
  if (ev.proto == IpProto::kTcp) {
    std::fprintf(f_, " %s seq=%lld", ev.is_ack ? "ack" : "data",
                 static_cast<long long>(ev.seqno));
  }
  std::fputc('\n', f_);
  ++lines_;
}

}  // namespace muzha
