// Jain's fairness index (Fig 5.14 of the paper; Jain, Chiu & Hawe 1984):
//
//   J(x) = (sum x_i)^2 / (n * sum x_i^2)
//
// J = 1 when all flows get equal throughput; J -> 1/n as one flow takes all.
#pragma once

#include <span>

namespace muzha {

double jain_fairness_index(std::span<const double> allocations);

}  // namespace muzha
