#include "stats/time_series.h"

namespace muzha {

double CwndTracer::value_at(double t_s) const {
  double v = 0.0;
  for (const TimePoint& p : series_) {
    if (p.t_s > t_s) break;
    v = p.value;
  }
  return v;
}

void ThroughputSampler::record(double t_s, double bits) {
  auto idx = static_cast<std::size_t>(t_s / bin_width_s_);
  if (bins_.size() <= idx) bins_.resize(idx + 1, 0.0);
  bins_[idx] += bits;
  total_bits_ += bits;
}

TimeSeries ThroughputSampler::series() const {
  TimeSeries out;
  out.reserve(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out.push_back({(static_cast<double>(i) + 0.5) * bin_width_s_,
                   bins_[i] / bin_width_s_});
  }
  return out;
}

}  // namespace muzha
