#include "stats/time_series.h"

#include "sim/units.h"

namespace muzha {

double CwndTracer::value_at(Seconds t) const {
  double v = 0.0;
  for (const TimePoint& p : series_) {
    if (p.t > t) break;
    v = p.value;
  }
  return v;
}

void ThroughputSampler::record(Seconds t, double bits) {
  auto idx = static_cast<std::size_t>(t / bin_width_);
  if (bins_.size() <= idx) bins_.resize(idx + 1, 0.0);
  bins_[idx] += bits;
  total_bits_ += bits;
}

TimeSeries ThroughputSampler::series() const {
  TimeSeries out;
  out.reserve(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out.push_back({Seconds((static_cast<double>(i) + 0.5) * bin_width_.value()),
                   bins_[i] / bin_width_.value()});
  }
  return out;
}

}  // namespace muzha
