// Ready-made TraceSink implementations: in-memory (tests/analysis) and
// NS-2-style text file.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "net/trace.h"

namespace muzha {

// Collects every event in memory.
class VectorTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override { events_.push_back(ev); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // Count of events of one kind (optionally for one packet uid).
  std::size_t count(TraceEventKind kind, std::uint64_t uid = 0) const;

 private:
  std::vector<TraceEvent> events_;
};

// Writes one line per event:
//   <time> <event> node=<n> uid=<u> <src>-><dst> proto=<p> size=<b> [tcp ...]
class FileTraceSink final : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  FileTraceSink(const FileTraceSink&) = delete;
  FileTraceSink& operator=(const FileTraceSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  void on_event(const TraceEvent& ev) override;
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace muzha
