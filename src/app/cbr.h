// Constant-bit-rate background traffic source.
//
// Sends fixed-size raw IP packets (no transport) at a fixed rate; used to
// inject competing load in stress tests and ablations. Delivery is
// fire-and-forget: the destination node counts but does not consume them.
#pragma once

#include <cstdint>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

class CbrApp {
 public:
  struct Config {
    NodeId dst = kInvalidNodeId;
    std::uint32_t packet_size_bytes = 512;
    BitsPerSecond rate = BitsPerSecond(100'000);
    SimTime start_time;
    SimTime stop_time = SimTime::max();
  };

  CbrApp(Simulator& sim, Node& node, Config cfg)
      : sim_(sim), node_(node), cfg_(cfg) {}

  void install() {
    sim_.schedule_at(cfg_.start_time, [this] { tick(); });
  }

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void tick() {
    if (sim_.now() >= cfg_.stop_time) return;
    PacketPtr p =
        node_.new_packet(cfg_.dst, IpProto::kNone, cfg_.packet_size_bytes);
    ++packets_sent_;
    node_.send(std::move(p));
    Seconds interval = to_bits(Bytes(cfg_.packet_size_bytes)) / cfg_.rate;
    sim_.schedule_in(to_sim_time(interval), [this] { tick(); });
  }

  Simulator& sim_;
  Node& node_;
  Config cfg_;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace muzha
