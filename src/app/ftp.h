// FTP application: an unbounded bulk transfer driving one TCP agent,
// started at a configurable time (the paper's Simulation 3B staggers three
// FTP flows at 0/10/20 s).
#pragma once

#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "tcp/tcp_agent.h"

namespace muzha {

class FtpApp {
 public:
  FtpApp(Simulator& sim, TcpAgent& agent, SimTime start_time)
      : sim_(sim), agent_(agent), start_time_(start_time) {}

  // Schedules the transfer start.
  void install() {
    sim_.schedule_at(start_time_, [this] { agent_.start(); });
  }

  SimTime start_time() const { return start_time_; }

 private:
  Simulator& sim_;
  TcpAgent& agent_;
  SimTime start_time_;
};

}  // namespace muzha
