// TCP Muzha sender — the paper's contribution (Ch. 4).
//
// Muzha replaces slow-start/AIMD probing with router recommendations: each
// ACK echoes the path-minimum DRAI (the MRAI), and once per RTT the sender
// applies the most conservative recommendation heard during that RTT
// (Table 5.2: x2 / +1 / hold / -1 / x0.5).
//
// The three-phase NewReno machine collapses to two phases (Table 4.1):
//
//   CA (congestion avoidance) — the only steady state; sessions start here
//     directly (no slow start) with an initial window of 2 segments.
//   FF (fast retransmit & fast recovery) — entered on 3 duplicate ACKs.
//     *Marked* duplicate ACKs (router congestion mark) halve CWND on entry;
//     *unmarked* ones — random/link loss — retransmit with CWND unchanged.
//     Partial ACKs retransmit the next hole (NewReno-style); the full ACK
//     returns to CA with no further window change.
//   Timeout — CWND := 1, back to CA (never slow start).
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "tcp/tcp_agent.h"

namespace muzha {

class TcpMuzha : public TcpAgent {
 public:
  TcpMuzha(Simulator& sim, Node& node, TcpConfig cfg);

  // Ablation switch: when disabled, every triple duplicate ACK is treated as
  // congestion (marked), i.e. Sec. 4.7's random-loss discrimination is off.
  void set_loss_discrimination(bool on) { loss_discrimination_ = on; }

  // --- Observability ------------------------------------------------------
  std::uint8_t last_epoch_mrai() const { return last_epoch_mrai_; }
  // Most conservative MRAI heard so far in the epoch still in progress.
  std::uint8_t pending_epoch_mrai() const { return epoch_mrai_; }
  std::uint64_t marked_loss_events() const { return marked_loss_events_; }
  std::uint64_t unmarked_loss_events() const { return unmarked_loss_events_; }
  std::uint64_t rate_adjustments() const { return rate_adjustments_; }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

 private:
  void end_of_epoch();

  // Most conservative (minimum) MRAI heard in the current RTT epoch.
  bool loss_discrimination_ = true;
  std::uint8_t epoch_mrai_ = kDraiAggressiveAccel;
  std::uint8_t last_epoch_mrai_ = kDraiAggressiveAccel;
  std::int64_t epoch_end_seq_ = 0;

  std::uint64_t marked_loss_events_ = 0;
  std::uint64_t unmarked_loss_events_ = 0;
  std::uint64_t rate_adjustments_ = 0;
};

}  // namespace muzha
