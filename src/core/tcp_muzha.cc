#include "core/tcp_muzha.h"

#include <algorithm>

#include "core/drai.h"
#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"

namespace muzha {

TcpMuzha::TcpMuzha(Simulator& sim, Node& node, TcpConfig cfg)
    : TcpAgent(sim, node, [&cfg] {
        // Muzha has no slow start: sessions enter CA directly with a small
        // initial window (Sec. 4.8).
        if (cfg.initial_cwnd < Segments(2.0)) cfg.initial_cwnd = Segments(2.0);
        return cfg;
      }()) {
  // ssthresh is meaningless for Muzha; park it out of the way so base-class
  // helpers never mistake CA for slow start.
  set_ssthresh(Segments(0.0));
}

void TcpMuzha::on_new_ack(const TcpHeader& h, std::int64_t) {
  if (in_recovery()) {
    if (h.seqno >= recover_point()) {
      // Full ACK: back to CA. The window change (if any) happened at FF
      // entry (Table 4.1); nothing more to do.
      exit_recovery_bookkeeping();
      epoch_mrai_ = kDraiAggressiveAccel;
      epoch_end_seq_ = next_seq();
    } else {
      // Partial ACK: next hole is also missing.
      retransmit(h.seqno + 1);
    }
    return;
  }
  epoch_mrai_ = std::min(epoch_mrai_, h.mrai);
  if (h.seqno >= epoch_end_seq_) end_of_epoch();
}

void TcpMuzha::end_of_epoch() {
  ++rate_adjustments_;
  last_epoch_mrai_ = epoch_mrai_;
  set_cwnd(apply_drai_to_cwnd(epoch_mrai_, cwnd()));
  epoch_mrai_ = kDraiAggressiveAccel;
  epoch_end_seq_ = next_seq();
}

void TcpMuzha::on_dup_ack(const TcpHeader& h) {
  if (in_recovery()) {
    // Keep the pipe fed while recovering; the window already encodes the
    // FF-entry decision.
    send_much();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  if (h.marked || !loss_discrimination_) {
    // Router-marked duplicate ACKs: congestion loss. Halve and recover.
    ++marked_loss_events_;
    set_cwnd(std::max(cwnd() * 0.5, Segments(1.0)));
  } else {
    // Unmarked: random/link loss. Retransmit without slowing down
    // (Sec. 4.7) — the adjustment that spares Muzha the spurious
    // rate reductions of loss-probing TCP.
    ++unmarked_loss_events_;
  }
  enter_recovery_bookkeeping();
  retransmit(highest_ack() + 1);
}

void TcpMuzha::on_timeout() {
  // Table 4.1: CWND := 1 and re-enter CA (there is no slow-start phase to
  // fall back to).
  set_cwnd(Segments(1.0));
  exit_recovery_bookkeeping();
  epoch_mrai_ = kDraiAggressiveAccel;
  go_back_n();
  epoch_end_seq_ = next_seq();
}

}  // namespace muzha
