#include "core/bandwidth_estimator.h"

#include <algorithm>

#include "core/drai.h"
#include "net/wireless_device.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

BandwidthEstimator::BandwidthEstimator(Simulator& sim, WirelessDevice& device,
                                       DraiConfig cfg)
    : sim_(sim), device_(device), cfg_(cfg) {}

void BandwidthEstimator::start() {
  if (started_) return;
  started_ = true;
  last_busy_total_ = device_.mac().cumulative_busy_time();
  sim_.schedule_in(cfg_.sample_interval, [this] { sample(); });
}

void BandwidthEstimator::sample() {
  SimTime busy_total = device_.mac().cumulative_busy_time();
  SimTime delta = busy_total - last_busy_total_;
  last_busy_total_ = busy_total;
  double inst = static_cast<double>(delta.ns()) /
                static_cast<double>(cfg_.sample_interval.ns());
  if (inst > 1.0) inst = 1.0;
  util_ewma_ = cfg_.util_ewma_alpha * inst +
               (1.0 - cfg_.util_ewma_alpha) * util_ewma_;

  double q = static_cast<double>(device_.queue().size());
  SegmentsPerSecond inst_gradient =
      Segments(q - last_queue_size_) / to_seconds(cfg_.sample_interval);
  last_queue_size_ = q;
  gradient_ewma_ = cfg_.util_ewma_alpha * inst_gradient +
                   (1.0 - cfg_.util_ewma_alpha) * gradient_ewma_;

  sim_.schedule_in(cfg_.sample_interval, [this] { sample(); });
}

std::uint8_t BandwidthEstimator::current_drai() {
  std::uint8_t level =
      compute_drai(device_.queue().occupancy(), util_ewma_, cfg_);
  if (cfg_.use_queue_gradient) {
    // A growing queue caps the recommendation even before occupancy
    // thresholds trip: announce congestion while it is forming.
    if (gradient_ewma_ >= 2.0 * cfg_.gradient_stabilize) {
      level = std::min(level, kDraiModerateDecel);
    } else if (gradient_ewma_ >= cfg_.gradient_stabilize) {
      level = std::min(level, kDraiStabilize);
    }
  }
  return level;
}

bool BandwidthEstimator::should_mark() {
  return current_drai() <= kDraiModerateDecel;
}

}  // namespace muzha
