#include "core/drai.h"

#include <algorithm>

namespace muzha {

std::uint8_t drai_from_queue(double q, const DraiConfig& cfg) {
  if (q < cfg.q_aggressive_accel) return kDraiAggressiveAccel;
  if (q < cfg.q_moderate_accel) return kDraiModerateAccel;
  if (q < cfg.q_stabilize) return kDraiStabilize;
  if (q < cfg.q_moderate_decel) return kDraiModerateDecel;
  return kDraiAggressiveDecel;
}

std::uint8_t drai_from_utilization(double u, const DraiConfig& cfg) {
  if (u < cfg.u_aggressive_accel) return kDraiAggressiveAccel;
  if (u < cfg.u_moderate_accel) return kDraiModerateAccel;
  if (u < cfg.u_stabilize) return kDraiStabilize;
  return kDraiModerateDecel;
}

std::uint8_t compute_drai(double occupancy, double utilization,
                          const DraiConfig& cfg) {
  return std::min(drai_from_queue(occupancy, cfg),
                  drai_from_utilization(utilization, cfg));
}

double apply_drai_to_cwnd(std::uint8_t drai, double cwnd) {
  switch (drai) {
    case kDraiAggressiveAccel:
      cwnd = cwnd * 2.0;
      break;
    case kDraiModerateAccel:
      cwnd = cwnd + 1.0;
      break;
    case kDraiStabilize:
      break;
    case kDraiModerateDecel:
      cwnd = cwnd - 1.0;
      break;
    case kDraiAggressiveDecel:
    default:
      cwnd = cwnd * 0.5;
      break;
  }
  return std::max(cwnd, 1.0);
}

}  // namespace muzha
