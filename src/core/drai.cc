#include "core/drai.h"

#include <algorithm>

#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/units.h"

namespace muzha {

std::uint8_t drai_from_queue(double q, const DraiConfig& cfg) {
  MUZHA_DCHECK(q >= 0.0 && q <= 1.0 + 1e-9,
               "queue occupancy must be a fraction in [0, 1]");
  if (q < cfg.q_aggressive_accel) return kDraiAggressiveAccel;
  if (q < cfg.q_moderate_accel) return kDraiModerateAccel;
  if (q < cfg.q_stabilize) return kDraiStabilize;
  if (q < cfg.q_moderate_decel) return kDraiModerateDecel;
  return kDraiAggressiveDecel;
}

std::uint8_t drai_from_utilization(double u, const DraiConfig& cfg) {
  MUZHA_DCHECK(u >= 0.0 && u <= 1.0 + 1e-9,
               "medium utilization must be a fraction in [0, 1]");
  if (u < cfg.u_aggressive_accel) return kDraiAggressiveAccel;
  if (u < cfg.u_moderate_accel) return kDraiModerateAccel;
  if (u < cfg.u_stabilize) return kDraiStabilize;
  return kDraiModerateDecel;
}

std::uint8_t compute_drai(double occupancy, double utilization,
                          const DraiConfig& cfg) {
  return std::min(drai_from_queue(occupancy, cfg),
                  drai_from_utilization(utilization, cfg));
}

Segments apply_drai_to_cwnd(std::uint8_t drai, Segments cwnd) {
  MUZHA_DCHECK(drai >= kDraiAggressiveDecel && drai <= kDraiAggressiveAccel,
               "DRAI outside the 5-level quantization range of Table 5.2");
  MUZHA_DCHECK(cwnd > Segments(0.0), "congestion window must be positive");
  switch (drai) {
    case kDraiAggressiveAccel:
      cwnd = cwnd * 2.0;
      break;
    case kDraiModerateAccel:
      cwnd = cwnd + Segments(1.0);
      break;
    case kDraiStabilize:
      break;
    case kDraiModerateDecel:
      cwnd = cwnd - Segments(1.0);
      break;
    case kDraiAggressiveDecel:
    default:
      cwnd = cwnd * 0.5;
      break;
  }
  return std::max(cwnd, Segments(1.0));
}

}  // namespace muzha
