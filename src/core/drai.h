// DRAI (Data Rate Adjustment Index) quantization — the router half of TCP
// Muzha (Secs. 4.3-4.6 of the paper).
//
// The paper deliberately leaves the DRAI formula empirical ("there doesn't
// exist any theoretical formula... we take empirical approach"), specifying
// only the five recommendation levels of Table 5.2. This implementation
// quantizes two locally observable signals into those levels:
//
//   * IFQ occupancy `q` — how much of the 50-packet drop-tail queue is used;
//     the direct precursor of congestion loss.
//   * Medium utilization `u` — EWMA fraction of time the 802.11 medium is
//     sensed busy at this node; in multihop wireless this rises with
//     contention long before queues overflow.
//
// Each signal maps to a level; the published DRAI is the minimum of the two
// (the more congested signal wins). All thresholds are configurable and
// swept by bench/ablation_drai.
#pragma once

#include <cstdint>

#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

struct DraiConfig {
  // Queue-occupancy thresholds (fractions of IFQ capacity), ascending.
  double q_aggressive_accel = 0.05;  // below: level 5
  double q_moderate_accel = 0.25;    // below: level 4
  double q_stabilize = 0.55;         // below: level 3
  double q_moderate_decel = 0.85;    // below: level 2, above: level 1
  // Utilization thresholds, ascending.
  double u_aggressive_accel = 0.50;  // below: level 5
  double u_moderate_accel = 0.80;    // below: level 4
  double u_stabilize = 0.96;         // below: level 3, above: level 2
  // Utilization sampling.
  SimTime sample_interval = SimTime::from_ms(50);
  double util_ewma_alpha = 0.5;

  // Future-work extension (paper Ch. 6: "consideration of queue size ... as
  // part of DRAI formula"): when enabled, a *rising* queue caps the
  // recommendation before absolute occupancy thresholds are reached —
  // congestion is announced while it is forming, not once it has formed.
  bool use_queue_gradient = false;
  // Queue growth (packets/second, EWMA) above which the DRAI is capped at
  // "stabilize"; twice this caps it at "moderate deceleration".
  SegmentsPerSecond gradient_stabilize = SegmentsPerSecond(5.0);
};

// Level from queue occupancy alone.
std::uint8_t drai_from_queue(double occupancy, const DraiConfig& cfg);

// Level from medium utilization alone (never reports aggressive
// deceleration: a busy medium with an empty queue is not an emergency).
std::uint8_t drai_from_utilization(double utilization, const DraiConfig& cfg);

// Combined node DRAI: the more congested of the two signals.
std::uint8_t compute_drai(double occupancy, double utilization,
                          const DraiConfig& cfg);

// Table 5.2: window update recommended by a DRAI level.
Segments apply_drai_to_cwnd(std::uint8_t drai, Segments cwnd);

}  // namespace muzha
