// Per-node available-bandwidth estimator feeding the DRAI (Sec. 4.3).
//
// Polls the device periodically: medium utilization is the EWMA of the
// fraction of each sample interval the 802.11 MAC sensed the medium busy;
// queue occupancy is read instantaneously when a packet is stamped. Attach
// one estimator per Muzha-capable node (Node::set_drai_source).
#pragma once

#include "core/drai.h"
#include "net/agent.h"
#include "net/wireless_device.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

class BandwidthEstimator final : public DraiSource {
 public:
  BandwidthEstimator(Simulator& sim, WirelessDevice& device,
                     DraiConfig cfg = {});

  // Begins periodic utilization sampling.
  void start();

  // DraiSource: queried by the node when stamping forwarded TCP packets.
  std::uint8_t current_drai() override;
  bool should_mark() override;

  double utilization() const { return util_ewma_; }
  // Queue growth rate (EWMA); meaningful once started.
  SegmentsPerSecond queue_gradient() const { return gradient_ewma_; }
  const DraiConfig& config() const { return cfg_; }

 private:
  void sample();

  Simulator& sim_;
  WirelessDevice& device_;
  DraiConfig cfg_;
  double util_ewma_ = 0.0;
  SegmentsPerSecond gradient_ewma_;
  double last_queue_size_ = 0.0;
  SimTime last_busy_total_;
  bool started_ = false;
};

}  // namespace muzha
