// Wireless ad hoc node: IP layer + device + routing + transport agents.
//
// This is where the paper's hybrid end-host/router role lives: every node
// forwards packets, and — when a DraiSource is attached — stamps the AVBW-S
// option (path-minimum DRAI) and the congestion mark on TCP packets it
// transmits, whether locally originated or forwarded (Sec. 4.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mac/mac_params.h"
#include "net/agent.h"
#include "net/routing_protocol.h"
#include "net/trace.h"
#include "net/wireless_device.h"
#include "phy/channel.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "sim/simulator.h"

namespace muzha {

struct NodeConfig {
  MacParams mac;
  std::size_t ifq_capacity = 50;
  std::uint8_t default_ttl = 64;
};

class Node {
 public:
  Node(Simulator& sim, Channel& channel, NodeId id, Position pos,
       NodeConfig cfg = {});
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Simulator& sim() { return sim_; }
  WirelessDevice& device() { return device_; }
  const WirelessDevice& device() const { return device_; }

  void set_routing(std::unique_ptr<RoutingProtocol> routing) {
    routing_ = std::move(routing);
  }
  RoutingProtocol& routing() { return *routing_; }
  bool has_routing() const { return routing_ != nullptr; }

  // Non-owning; nullptr disables Muzha router assistance on this node.
  void set_drai_source(DraiSource* src) { drai_source_ = src; }
  DraiSource* drai_source() { return drai_source_; }

  // Non-owning; nullptr (default) disables packet tracing on this node.
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  // Binds an agent (non-owning) to a local port.
  void register_agent(std::uint16_t port, Agent& agent);

  // Allocates a packet with node-scoped uid and this node as IP source.
  PacketPtr new_packet(NodeId dst, IpProto proto, std::uint32_t size_bytes);

  // Entry point for locally originated packets (from transport agents).
  void send(PacketPtr pkt);

  // Called by the routing protocol once a next hop is known; stamps DRAI and
  // hands the packet to the device.
  void device_send(PacketPtr pkt, NodeId next_hop);

  // Statistics.
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t delivered_local() const { return delivered_local_; }
  std::uint64_t drops_ttl() const { return drops_ttl_; }
  std::uint64_t drops_no_agent() const { return drops_no_agent_; }

 private:
  void on_device_rx(PacketPtr pkt);
  void on_device_link_failure(NodeId next_hop, PacketPtr pkt);
  void stamp_drai(Packet& pkt);
  void trace(TraceEventKind kind, const Packet& pkt);

  Simulator& sim_;
  NodeId id_;
  NodeConfig cfg_;
  WirelessDevice device_;
  std::unique_ptr<RoutingProtocol> routing_;
  DraiSource* drai_source_ = nullptr;
  TraceSink* trace_ = nullptr;
  // Ordered map (a node binds a handful of ports): keeps any future walk of
  // the agent table deterministic and avoids hashing on the demux path.
  std::map<std::uint16_t, Agent*> agents_;
  std::uint64_t uid_counter_ = 0;

  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_local_ = 0;
  std::uint64_t drops_ttl_ = 0;
  std::uint64_t drops_no_agent_ = 0;
};

}  // namespace muzha
