#include "net/trace.h"

#include "pkt/packet.h"
#include "sim/sim_time.h"

namespace muzha {

const char* trace_event_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kLocalSend:
      return "send";
    case TraceEventKind::kForward:
      return "fwd";
    case TraceEventKind::kDeliver:
      return "recv";
    case TraceEventKind::kDropTtl:
      return "drop-ttl";
    case TraceEventKind::kDropNoAgent:
      return "drop-port";
    case TraceEventKind::kDropIfq:
      return "drop-ifq";
    case TraceEventKind::kDropMac:
      return "drop-mac";
  }
  return "?";
}

TraceEvent make_trace_event(SimTime now, NodeId node, TraceEventKind kind,
                            const Packet& pkt) {
  TraceEvent ev;
  ev.time = now;
  ev.node = node;
  ev.kind = kind;
  ev.uid = pkt.uid;
  ev.src = pkt.ip.src;
  ev.dst = pkt.ip.dst;
  ev.proto = pkt.ip.proto;
  ev.size_bytes = pkt.size_bytes;
  if (pkt.has_tcp()) {
    ev.is_ack = pkt.tcp().is_ack;
    ev.seqno = pkt.tcp().seqno;
  }
  return ev;
}

}  // namespace muzha
