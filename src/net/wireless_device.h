// Network device: drop-tail IFQ feeding an 802.11 MAC over a wireless PHY.
#pragma once

#include "mac/mac80211.h"
#include "mac/mac_params.h"
#include "net/drop_tail_queue.h"
#include "phy/channel.h"
#include "phy/position.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "sim/inline_callback.h"
#include "sim/simulator.h"

namespace muzha {

class WirelessDevice {
 public:
  using RxCallback = InlineFunction<void(PacketPtr)>;
  using LinkFailureCallback = InlineFunction<void(NodeId, PacketPtr)>;

  WirelessDevice(Simulator& sim, Channel& channel, NodeId id, Position pos,
                 MacParams mac_params, std::size_t ifq_capacity);
  WirelessDevice(const WirelessDevice&) = delete;
  WirelessDevice& operator=(const WirelessDevice&) = delete;

  NodeId id() const { return phy_.id(); }

  void set_rx_callback(RxCallback cb) { on_rx_ = std::move(cb); }
  void set_link_failure_callback(LinkFailureCallback cb) {
    on_link_failure_ = std::move(cb);
  }

  // Queues a packet for `next_hop` (kBroadcastId allowed). Returns false if
  // the drop-tail IFQ was full and the packet was dropped.
  bool send(PacketPtr pkt, NodeId next_hop);

  WirelessPhy& phy() { return phy_; }
  const WirelessPhy& phy() const { return phy_; }
  Mac80211& mac() { return mac_; }
  const Mac80211& mac() const { return mac_; }
  DropTailQueue& queue() { return queue_; }
  const DropTailQueue& queue() const { return queue_; }

 private:
  void feed_mac();

  Simulator& sim_;
  WirelessPhy phy_;
  Mac80211 mac_;
  DropTailQueue queue_;
  RxCallback on_rx_;
  LinkFailureCallback on_link_failure_;
};

}  // namespace muzha
