#include "net/wireless_device.h"

#include "mac/mac_params.h"
#include "phy/channel.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/simulator.h"

namespace muzha {

WirelessDevice::WirelessDevice(Simulator& sim, Channel& channel, NodeId id,
                               Position pos, MacParams mac_params,
                               std::size_t ifq_capacity)
    : sim_(sim),
      phy_(sim, channel, id, pos),
      mac_(sim, phy_, mac_params),
      queue_(ifq_capacity) {
  mac_.set_rx_callback([this](PacketPtr pkt) {
    if (on_rx_) on_rx_(std::move(pkt));
  });
  mac_.set_tx_done_callback([this](bool /*success*/) { feed_mac(); });
  mac_.set_link_failure_callback([this](NodeId next_hop, PacketPtr pkt) {
    if (on_link_failure_) on_link_failure_(next_hop, std::move(pkt));
  });
}

bool WirelessDevice::send(PacketPtr pkt, NodeId next_hop) {
  if (mac_.idle() && queue_.empty()) {
    mac_.transmit(std::move(pkt), next_hop);
    return true;
  }
  return queue_.enqueue(std::move(pkt), next_hop, sim_.now());
}

void WirelessDevice::feed_mac() {
  if (!mac_.idle() || queue_.empty()) return;
  auto entry = queue_.dequeue();
  MUZHA_DCHECK(sim_.now() >= entry.enqueued_at,
               "packet dequeued before it was enqueued (time ran backwards)");
  // Accumulate per-hop queueing delay (the RoVegas forward-path option).
  entry.pkt->ip.accum_queue_delay += sim_.now() - entry.enqueued_at;
  mac_.transmit(std::move(entry.pkt), entry.next_hop);
}

}  // namespace muzha
