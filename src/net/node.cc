#include "net/node.h"

#include <algorithm>

#include "net/agent.h"
#include "net/trace.h"
#include "phy/channel.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/simulator.h"

namespace muzha {

Node::Node(Simulator& sim, Channel& channel, NodeId id, Position pos,
           NodeConfig cfg)
    : sim_(sim),
      id_(id),
      cfg_(cfg),
      device_(sim, channel, id, pos, cfg.mac, cfg.ifq_capacity) {
  // uid space partitioned per node so packet uids are globally unique.
  uid_counter_ = static_cast<std::uint64_t>(id) << 40;
  device_.set_rx_callback([this](PacketPtr pkt) { on_device_rx(std::move(pkt)); });
  device_.set_link_failure_callback([this](NodeId next_hop, PacketPtr pkt) {
    on_device_link_failure(next_hop, std::move(pkt));
  });
}

void Node::register_agent(std::uint16_t port, Agent& agent) {
  MUZHA_ASSERT(agents_.find(port) == agents_.end(),
               "port already bound on this node");
  agents_[port] = &agent;
}

PacketPtr Node::new_packet(NodeId dst, IpProto proto,
                           std::uint32_t size_bytes) {
  PacketPtr p = make_packet(uid_counter_);
  p->ip.src = id_;
  p->ip.dst = dst;
  p->ip.proto = proto;
  p->ip.ttl = cfg_.default_ttl;
  p->size_bytes = size_bytes;
  return p;
}

void Node::trace(TraceEventKind kind, const Packet& pkt) {
  if (trace_ == nullptr) return;
  trace_->on_event(make_trace_event(sim_.now(), id_, kind, pkt));
}

void Node::send(PacketPtr pkt) {
  MUZHA_ASSERT(routing_ != nullptr, "node has no routing protocol");
  trace(TraceEventKind::kLocalSend, *pkt);
  if (pkt->ip.dst == id_) {
    // Loopback delivery (used by tests).
    on_device_rx(std::move(pkt));
    return;
  }
  routing_->route_packet(std::move(pkt));
}

void Node::device_send(PacketPtr pkt, NodeId next_hop) {
  stamp_drai(*pkt);
  if (trace_ != nullptr) {
    // Record the (possible) IFQ drop at the node that suffered it.
    TraceEvent ev =
        make_trace_event(sim_.now(), id_, TraceEventKind::kDropIfq, *pkt);
    if (!device_.send(std::move(pkt), next_hop)) trace_->on_event(ev);
    return;
  }
  device_.send(std::move(pkt), next_hop);
}

void Node::stamp_drai(Packet& pkt) {
  if (drai_source_ == nullptr || pkt.ip.proto != IpProto::kTcp) return;
  std::uint8_t drai = drai_source_->current_drai();
  MUZHA_DCHECK(drai >= kDraiAggressiveDecel && drai <= kDraiAggressiveAccel,
               "router published a DRAI outside the 5-level range");
  pkt.ip.avbw_s = std::min(pkt.ip.avbw_s, drai);
  if (drai_source_->should_mark()) pkt.ip.congestion_marked = true;
}

void Node::on_device_rx(PacketPtr pkt) {
  if (pkt->ip.proto == IpProto::kAodv) {
    if (routing_) routing_->handle_control(std::move(pkt));
    return;
  }
  if (pkt->ip.dst == id_ || pkt->ip.dst == kBroadcastId) {
    ++delivered_local_;
    if (pkt->has_tcp()) {
      auto it = agents_.find(pkt->tcp().dst_port);
      if (it == agents_.end()) {
        ++drops_no_agent_;
        trace(TraceEventKind::kDropNoAgent, *pkt);
        return;
      }
      trace(TraceEventKind::kDeliver, *pkt);
      it->second->receive(std::move(pkt));
      return;
    }
    ++drops_no_agent_;
    trace(TraceEventKind::kDropNoAgent, *pkt);
    return;
  }
  // Forwarding path.
  if (pkt->ip.ttl <= 1) {
    ++drops_ttl_;
    trace(TraceEventKind::kDropTtl, *pkt);
    return;
  }
  --pkt->ip.ttl;
  ++forwarded_;
  trace(TraceEventKind::kForward, *pkt);
  MUZHA_ASSERT(routing_ != nullptr, "forwarding node has no routing protocol");
  routing_->route_packet(std::move(pkt));
}

void Node::on_device_link_failure(NodeId next_hop, PacketPtr pkt) {
  if (pkt != nullptr) trace(TraceEventKind::kDropMac, *pkt);
  if (routing_) routing_->on_link_failure(next_hop, std::move(pkt));
}

}  // namespace muzha
