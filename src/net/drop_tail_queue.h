// Drop-tail interface queue (IFQ) between the network layer and the MAC.
//
// Table 5.1 of the paper: 50-packet drop-tail IFQ per node. Queue overflow
// here is the "congestion loss" the paper's TCP variants react to, and its
// occupancy is the main input to the Muzha DRAI estimator.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "pkt/packet.h"
#include "sim/sim_time.h"

namespace muzha {

class DropTailQueue {
 public:
  struct Entry {
    PacketPtr pkt;
    NodeId next_hop;
    // When the packet entered the queue; the device uses it to accumulate
    // per-hop queueing delay into the RoVegas IP option.
    SimTime enqueued_at;
  };

  explicit DropTailQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  double occupancy() const {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(q_.size()) /
                                static_cast<double>(capacity_);
  }

  // Returns false (and drops the packet) when full.
  bool enqueue(PacketPtr pkt, NodeId next_hop,
               SimTime now = SimTime::zero()) {
    if (q_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    q_.push_back(Entry{std::move(pkt), next_hop, now});
    if (q_.size() > high_watermark_) high_watermark_ = q_.size();
    return true;
  }

  Entry dequeue() {
    Entry e = std::move(q_.front());
    q_.pop_front();
    return e;
  }

  std::uint64_t drops() const { return drops_; }
  std::size_t high_watermark() const { return high_watermark_; }

 private:
  std::size_t capacity_;
  std::deque<Entry> q_;
  std::uint64_t drops_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace muzha
