// Transport agent interface: anything bound to a (node, port) that receives
// IP packets — TCP senders, TCP sinks, CBR sinks.
#pragma once

#include "pkt/packet.h"

namespace muzha {

class Agent {
 public:
  virtual ~Agent() = default;
  virtual void receive(PacketPtr pkt) = 0;
};

// Provider of the local DRAI value and congestion-mark decision, implemented
// by the Muzha bandwidth estimator (src/core). Nodes without one forward
// packets untouched, modelling routers that do not speak Muzha.
class DraiSource {
 public:
  virtual ~DraiSource() = default;
  virtual std::uint8_t current_drai() = 0;
  virtual bool should_mark() = 0;
};

}  // namespace muzha
