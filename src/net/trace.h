// Packet-event tracing (the NS-2 trace-file idea).
//
// Nodes emit one event per packet milestone — local send, forward, deliver,
// and the three drop causes. Sinks are pluggable: tests collect events in a
// vector; tools write NS-2-style text lines.
#pragma once

#include <cstdint>

#include "pkt/packet.h"
#include "sim/sim_time.h"

namespace muzha {

enum class TraceEventKind : std::uint8_t {
  kLocalSend,    // transport handed a packet to this node's IP layer
  kForward,      // node relayed a packet toward its destination
  kDeliver,      // packet reached its destination agent
  kDropTtl,      // TTL expired while forwarding
  kDropNoAgent,  // delivered to a port nobody listens on
  kDropIfq,      // drop-tail interface queue overflow
  kDropMac,      // MAC retry limit exhausted (link failure)
};

const char* trace_event_name(TraceEventKind k);

struct TraceEvent {
  SimTime time;
  NodeId node = kInvalidNodeId;  // where the event happened
  TraceEventKind kind = TraceEventKind::kLocalSend;
  std::uint64_t uid = 0;
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  IpProto proto = IpProto::kNone;
  std::uint32_t size_bytes = 0;
  // TCP details when present.
  bool is_ack = false;
  std::int64_t seqno = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

// Builds a TraceEvent for `pkt` as seen at `node`.
TraceEvent make_trace_event(SimTime now, NodeId node, TraceEventKind kind,
                            const Packet& pkt);

}  // namespace muzha
