// Routing protocol interface, implemented by AODV and StaticRouting.
//
// Lives in the net library (not routing) so Node can own a RoutingProtocol
// without a dependency cycle.
#pragma once

#include "pkt/packet.h"

namespace muzha {

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  // Routes an IP packet (locally originated or being forwarded): either
  // hands it to the device toward a next hop — possibly later, after route
  // discovery — or drops it.
  virtual void route_packet(PacketPtr pkt) = 0;

  // Handles a received routing-control packet (IpProto::kAodv).
  virtual void handle_control(PacketPtr pkt) = 0;

  // MAC gave up delivering to `next_hop`; `pkt` is the failed packet.
  virtual void on_link_failure(NodeId next_hop, PacketPtr pkt) = 0;

  // Packets dropped by the routing layer (no route / buffer overflow).
  virtual std::uint64_t drops_no_route() const = 0;
};

}  // namespace muzha
