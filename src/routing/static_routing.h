// Static routing: fixed next-hop table, no discovery.
//
// Used by unit/integration tests and by experiments that want to isolate
// transport behaviour from route-discovery dynamics.
#pragma once

#include <map>

#include "net/node.h"
#include "net/routing_protocol.h"
#include "pkt/packet.h"

namespace muzha {

class StaticRouting final : public RoutingProtocol {
 public:
  explicit StaticRouting(Node& node) : node_(node) {}

  void add_route(NodeId dst, NodeId next_hop) { table_[dst] = next_hop; }

  void route_packet(PacketPtr pkt) override {
    auto it = table_.find(pkt->ip.dst);
    if (it == table_.end()) {
      ++drops_no_route_;
      return;
    }
    node_.device_send(std::move(pkt), it->second);
  }

  void handle_control(PacketPtr) override {}

  void on_link_failure(NodeId, PacketPtr) override { ++drops_link_failure_; }

  std::uint64_t drops_no_route() const override { return drops_no_route_; }
  std::uint64_t drops_link_failure() const { return drops_link_failure_; }

 private:
  Node& node_;
  // Ordered map: a fixed table that tests may print or diff; sorted-key
  // iteration makes that output stable.
  std::map<NodeId, NodeId> table_;
  std::uint64_t drops_no_route_ = 0;
  std::uint64_t drops_link_failure_ = 0;
};

}  // namespace muzha
