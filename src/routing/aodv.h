// AODV routing (RFC 3561 subset) — the routing protocol of Table 5.1.
//
// Implemented: on-demand RREQ flooding with duplicate suppression, reverse
// routes, destination and intermediate RREP, RERR propagation on MAC
// link-layer failure (the paper's nodes are static, so link failures come
// from retry exhaustion under contention), RREQ retries with binary
// exponential backoff, destination sequence numbers, route lifetimes, and
// buffering of data packets during discovery.
//
// Omitted relative to the RFC (not exercised by the paper's scenarios):
// HELLO messages (link failure comes from the MAC), expanding-ring search,
// local repair, gratuitous RREP.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/node.h"
#include "net/routing_protocol.h"
#include "pkt/aodv_messages.h"
#include "pkt/packet.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"

namespace muzha {

struct AodvParams {
  SimTime active_route_timeout = SimTime::from_seconds(10.0);
  // RFC 3561 defaults (40 ms / 35) yield a 2.8 s discovery timeout — sized
  // for Internet-scale MANETs. NS-2's AODV uses expanding-ring timeouts an
  // order of magnitude shorter; for the paper's <= 33-node topologies we
  // default to 10 ms per node, giving a 0.7 s first-attempt timeout.
  SimTime node_traversal_time = SimTime::from_ms(10);
  std::uint32_t net_diameter = 35;
  std::uint32_t rreq_retries = 2;  // attempts = 1 + retries
  std::size_t send_buffer_capacity = 64;
  SimTime path_discovery_time = SimTime::from_seconds(5.6);
  // Broadcasts (RREQ floods, RERRs) are delayed by a uniform random jitter
  // to break the deterministic lockstep collisions of simultaneous floods
  // (RFC 3561 s6.x "to avoid synchronization").
  SimTime broadcast_jitter = SimTime::from_ms(10);

  // Expanding-ring search (RFC 3561 s6.4): first RREQs carry a small TTL
  // that grows per attempt, so close destinations are found without flooding
  // the whole network. Ring attempts do not count against rreq_retries.
  // Off by default (the paper's single-flow chains always need the full
  // path, so the ring only adds latency there).
  bool expanding_ring = false;
  std::uint8_t ttl_start = 2;
  std::uint8_t ttl_increment = 2;
  std::uint8_t ttl_threshold = 7;

  SimTime net_traversal_time() const {
    return node_traversal_time * (2 * static_cast<std::int64_t>(net_diameter));
  }
};

class Aodv final : public RoutingProtocol {
 public:
  Aodv(Simulator& sim, Node& node, AodvParams params = {});

  void route_packet(PacketPtr pkt) override;
  void handle_control(PacketPtr pkt) override;
  void on_link_failure(NodeId next_hop, PacketPtr pkt) override;
  std::uint64_t drops_no_route() const override { return drops_no_route_; }

  struct Route {
    NodeId next_hop = kInvalidNodeId;
    std::uint32_t dest_seq = 0;
    bool valid_dest_seq = false;
    std::uint8_t hops = 0;
    SimTime expiry;
    bool valid = false;
  };

  // Introspection for tests.
  const Route* find_route(NodeId dst) const;
  bool has_valid_route(NodeId dst) const;

  // Statistics.
  std::uint64_t rreqs_originated() const { return rreqs_originated_; }
  std::uint64_t rreps_sent() const { return rreps_sent_; }
  std::uint64_t rerrs_sent() const { return rerrs_sent_; }
  std::uint64_t discovery_failures() const { return discovery_failures_; }

 private:
  struct PendingDiscovery {
    std::vector<PacketPtr> buffered;
    std::uint32_t attempts = 0;       // full-TTL attempts only
    std::uint8_t ring_ttl = 0;        // 0 = ring not started
    EventId retry_event = kInvalidEventId;
  };

  void start_discovery(NodeId dst);
  void send_rreq(NodeId dst);
  void on_rreq_timeout(NodeId dst);
  void handle_rreq(const Packet& pkt);
  void handle_rrep(PacketPtr pkt);
  void handle_rerr(const Packet& pkt);
  void send_rerr(std::vector<AodvRerr::Unreachable> unreachable);
  // Updates (creating if needed) the route to `dst`; returns the entry.
  Route& update_route(NodeId dst, NodeId next_hop, std::uint32_t dest_seq,
                      bool valid_dest_seq, std::uint8_t hops, SimTime lifetime);
  void refresh_route(Route& r);
  void flush_buffer(NodeId dst);
  PacketPtr make_control(std::uint32_t size_bytes);
  // Sends a broadcast control packet after random jitter.
  void broadcast_jittered(PacketPtr pkt);

  Simulator& sim_;
  Node& node_;
  AodvParams params_;

  // Ordered maps, not unordered: on_link_failure() iterates routes_ to build
  // the RERR unreachable list, and that order reaches the wire. Sorted-key
  // iteration keeps it independent of hashing and allocation history.
  std::map<NodeId, Route> routes_;
  std::map<NodeId, PendingDiscovery> pending_;
  // Duplicate RREQ cache: (origin, rreq_id) -> expiry.
  std::map<std::uint64_t, SimTime> rreq_seen_;

  std::uint32_t own_seq_ = 0;
  std::uint32_t next_rreq_id_ = 0;

  std::uint64_t drops_no_route_ = 0;
  std::uint64_t rreqs_originated_ = 0;
  std::uint64_t rreps_sent_ = 0;
  std::uint64_t rerrs_sent_ = 0;
  std::uint64_t discovery_failures_ = 0;
};

}  // namespace muzha
