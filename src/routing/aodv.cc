#include "routing/aodv.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/aodv_messages.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

namespace {
std::uint64_t rreq_key(NodeId origin, std::uint32_t rreq_id) {
  return (static_cast<std::uint64_t>(origin) << 32) | rreq_id;
}
// Sequence number comparison with wraparound (RFC 3561 s6.1).
bool seq_newer(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
}  // namespace

Aodv::Aodv(Simulator& sim, Node& node, AodvParams params)
    : sim_(sim), node_(node), params_(params) {}

PacketPtr Aodv::make_control(std::uint32_t size_bytes) {
  PacketPtr p = node_.new_packet(kBroadcastId, IpProto::kAodv, size_bytes);
  p->ip.ttl = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(params_.net_diameter, 255));
  return p;
}

void Aodv::broadcast_jittered(PacketPtr pkt) {
  SimTime jitter = SimTime::from_ns(
      sim_.rng().uniform_int(0, params_.broadcast_jitter.ns()));
  auto shared = std::make_shared<PacketPtr>(std::move(pkt));
  sim_.schedule_in(jitter, [this, shared] {
    node_.device_send(std::move(*shared), kBroadcastId);
  });
}

const Aodv::Route* Aodv::find_route(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

bool Aodv::has_valid_route(NodeId dst) const {
  const Route* r = find_route(dst);
  return r != nullptr && r->valid && r->expiry > sim_.now();
}

void Aodv::refresh_route(Route& r) {
  r.expiry = std::max(r.expiry, sim_.now() + params_.active_route_timeout);
}

Aodv::Route& Aodv::update_route(NodeId dst, NodeId next_hop,
                                std::uint32_t dest_seq, bool valid_dest_seq,
                                std::uint8_t hops, SimTime lifetime) {
  Route& r = routes_[dst];
  r.next_hop = next_hop;
  r.dest_seq = dest_seq;
  r.valid_dest_seq = valid_dest_seq;
  r.hops = hops;
  r.expiry = std::max(r.expiry, sim_.now() + lifetime);
  r.valid = true;
  return r;
}

void Aodv::route_packet(PacketPtr pkt) {
  NodeId dst = pkt->ip.dst;
  MUZHA_ASSERT(dst != node_.id(), "routing a packet addressed to ourselves");
  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.valid && it->second.expiry > sim_.now()) {
    refresh_route(it->second);
    node_.device_send(std::move(pkt), it->second.next_hop);
    return;
  }
  if (pkt->ip.src == node_.id()) {
    // Originator: buffer and discover.
    PendingDiscovery& pd = pending_[dst];
    if (pd.buffered.size() >= params_.send_buffer_capacity) {
      ++drops_no_route_;
    } else {
      pd.buffered.push_back(std::move(pkt));
    }
    if (pd.retry_event == kInvalidEventId) start_discovery(dst);
    return;
  }
  // Intermediate node lost the route: drop and report upstream (RFC 3561
  // s6.11 case (ii)).
  ++drops_no_route_;
  std::uint32_t seq = 0;
  if (it != routes_.end()) seq = it->second.dest_seq + 1;
  send_rerr({{dst, seq}});
}

void Aodv::start_discovery(NodeId dst) {
  PendingDiscovery& pd = pending_[dst];
  pd.attempts = 0;
  send_rreq(dst);
}

void Aodv::send_rreq(NodeId dst) {
  PendingDiscovery& pd = pending_[dst];
  // Expanding ring: climb the TTL ladder before committing to full floods.
  std::uint8_t ttl =
      static_cast<std::uint8_t>(std::min<std::uint32_t>(params_.net_diameter, 255));
  bool ring_attempt = false;
  if (params_.expanding_ring &&
      (pd.ring_ttl == 0 ||
       pd.ring_ttl + params_.ttl_increment <= params_.ttl_threshold)) {
    pd.ring_ttl = pd.ring_ttl == 0
                      ? params_.ttl_start
                      : static_cast<std::uint8_t>(pd.ring_ttl +
                                                  params_.ttl_increment);
    ttl = std::min(pd.ring_ttl, ttl);
    ring_attempt = true;
  }
  if (!ring_attempt) ++pd.attempts;
  ++rreqs_originated_;
  ++own_seq_;

  PacketPtr p = make_control(kAodvRreqBytes);
  p->ip.ttl = ttl;
  AodvMessage msg;
  AodvRreq rreq;
  rreq.rreq_id = ++next_rreq_id_;
  rreq.origin = node_.id();
  rreq.origin_seq = own_seq_;
  rreq.dest = dst;
  const Route* r = find_route(dst);
  if (r != nullptr && r->valid_dest_seq) {
    rreq.dest_seq = r->dest_seq;
    rreq.unknown_dest_seq = false;
  }
  rreq.hop_count = 0;
  msg.body = rreq;
  p->l4 = msg;

  // Suppress our own flood copies.
  rreq_seen_[rreq_key(node_.id(), rreq.rreq_id)] =
      sim_.now() + params_.path_discovery_time;

  broadcast_jittered(std::move(p));

  SimTime timeout;
  if (ring_attempt) {
    // RING_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * (TTL + 2).
    timeout = params_.node_traversal_time * (2 * (std::int64_t{ttl} + 2));
  } else {
    // Binary exponential backoff on full-diameter attempts.
    timeout =
        params_.net_traversal_time() * (std::int64_t{1} << (pd.attempts - 1));
  }
  pd.retry_event = sim_.schedule_in(timeout, [this, dst] { on_rreq_timeout(dst); });
}

void Aodv::on_rreq_timeout(NodeId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  PendingDiscovery& pd = it->second;
  pd.retry_event = kInvalidEventId;
  if (has_valid_route(dst)) {
    // Race: the RREP arrived as the timer fired.
    flush_buffer(dst);
    return;
  }
  bool ring_in_progress =
      params_.expanding_ring &&
      (pd.ring_ttl == 0 ||
       pd.ring_ttl + params_.ttl_increment <= params_.ttl_threshold);
  if (ring_in_progress || pd.attempts <= params_.rreq_retries) {
    send_rreq(dst);
    return;
  }
  // Discovery failed: drop everything buffered for this destination.
  ++discovery_failures_;
  drops_no_route_ += pd.buffered.size();
  pending_.erase(it);
}

void Aodv::handle_control(PacketPtr pkt) {
  MUZHA_ASSERT(pkt->has_aodv(), "control packet without AODV payload");
  const AodvMessage& msg = pkt->aodv();
  if (msg.is_rreq()) {
    handle_rreq(*pkt);
  } else if (msg.is_rrep()) {
    handle_rrep(std::move(pkt));
  } else {
    handle_rerr(*pkt);
  }
}

void Aodv::handle_rreq(const Packet& pkt) {
  const AodvRreq& rreq = pkt.aodv().rreq();
  if (rreq.origin == node_.id()) return;  // our own flood came back

  std::uint64_t key = rreq_key(rreq.origin, rreq.rreq_id);
  auto seen = rreq_seen_.find(key);
  if (seen != rreq_seen_.end() && seen->second > sim_.now()) return;
  rreq_seen_[key] = sim_.now() + params_.path_discovery_time;

  NodeId prev_hop = pkt.mac.src;
  std::uint8_t hops_to_origin = rreq.hop_count + 1;

  // Reverse route to the originator (and to the previous hop).
  Route& rev = routes_[rreq.origin];
  if (!rev.valid || seq_newer(rreq.origin_seq, rev.dest_seq) ||
      (rreq.origin_seq == rev.dest_seq && hops_to_origin < rev.hops)) {
    update_route(rreq.origin, prev_hop, rreq.origin_seq, true, hops_to_origin,
                 params_.net_traversal_time() * 2);
  }
  if (prev_hop != rreq.origin) {
    update_route(prev_hop, prev_hop, 0, false, 1, params_.active_route_timeout);
  }

  if (rreq.dest == node_.id()) {
    // Destination: reply. Bump our sequence number to at least the
    // requested one (RFC 3561 s6.6.1).
    if (!rreq.unknown_dest_seq && seq_newer(rreq.dest_seq, own_seq_)) {
      own_seq_ = rreq.dest_seq;
    }
    ++own_seq_;
    PacketPtr rep = make_control(kAodvRrepBytes);
    rep->ip.dst = rreq.origin;
    AodvMessage m;
    m.body = AodvRrep{rreq.origin, node_.id(), own_seq_, 0};
    rep->l4 = m;
    ++rreps_sent_;
    node_.device_send(std::move(rep), prev_hop);
    return;
  }

  const Route* fwd = find_route(rreq.dest);
  if (fwd != nullptr && fwd->valid && fwd->expiry > sim_.now() &&
      fwd->valid_dest_seq && !rreq.unknown_dest_seq &&
      !seq_newer(rreq.dest_seq, fwd->dest_seq)) {
    // Intermediate reply from a fresh-enough cached route.
    PacketPtr rep = make_control(kAodvRrepBytes);
    rep->ip.dst = rreq.origin;
    AodvMessage m;
    m.body = AodvRrep{rreq.origin, rreq.dest, fwd->dest_seq, fwd->hops};
    rep->l4 = m;
    ++rreps_sent_;
    node_.device_send(std::move(rep), prev_hop);
    return;
  }

  // Rebroadcast the flood.
  if (pkt.ip.ttl <= 1) return;
  PacketPtr fwd_pkt = clone_packet(pkt);
  --fwd_pkt->ip.ttl;
  fwd_pkt->aodv().rreq().hop_count = rreq.hop_count + 1;
  broadcast_jittered(std::move(fwd_pkt));
}

void Aodv::handle_rrep(PacketPtr pkt) {
  const AodvRrep& rrep = pkt->aodv().rrep();
  NodeId prev_hop = pkt->mac.src;
  std::uint8_t hops_to_dest = rrep.hop_count + 1;

  // Forward route to the replied destination.
  Route& r = routes_[rrep.dest];
  if (!r.valid || seq_newer(rrep.dest_seq, r.dest_seq) ||
      (rrep.dest_seq == r.dest_seq && hops_to_dest < r.hops)) {
    update_route(rrep.dest, prev_hop, rrep.dest_seq, true, hops_to_dest,
                 params_.active_route_timeout);
  }
  if (prev_hop != rrep.dest) {
    update_route(prev_hop, prev_hop, 0, false, 1, params_.active_route_timeout);
  }

  if (rrep.origin == node_.id()) {
    flush_buffer(rrep.dest);
    return;
  }

  // Forward the RREP along the reverse route.
  auto rev = routes_.find(rrep.origin);
  if (rev == routes_.end() || !rev->second.valid) return;
  refresh_route(rev->second);
  pkt->aodv().rrep().hop_count = hops_to_dest;
  if (pkt->ip.ttl <= 1) return;
  --pkt->ip.ttl;
  node_.device_send(std::move(pkt), rev->second.next_hop);
}

void Aodv::handle_rerr(const Packet& pkt) {
  NodeId reporter = pkt.mac.src;
  std::vector<AodvRerr::Unreachable> propagate;
  for (const auto& u : pkt.aodv().rerr().unreachable) {
    auto it = routes_.find(u.dest);
    if (it == routes_.end() || !it->second.valid) continue;
    if (it->second.next_hop != reporter) continue;
    it->second.valid = false;
    if (seq_newer(u.dest_seq, it->second.dest_seq)) {
      it->second.dest_seq = u.dest_seq;
    }
    propagate.push_back(u);
  }
  if (!propagate.empty()) send_rerr(std::move(propagate));
}

void Aodv::send_rerr(std::vector<AodvRerr::Unreachable> unreachable) {
  PacketPtr p = make_control(kAodvRerrBytes);
  p->ip.ttl = 1;
  AodvMessage m;
  AodvRerr rerr;
  rerr.unreachable = std::move(unreachable);
  m.body = std::move(rerr);
  p->l4 = std::move(m);
  ++rerrs_sent_;
  broadcast_jittered(std::move(p));
}

void Aodv::on_link_failure(NodeId next_hop, PacketPtr pkt) {
  // Invalidate every route through the broken hop and report the affected
  // destinations.
  std::vector<AodvRerr::Unreachable> unreachable;
  for (auto& [dst, r] : routes_) {
    if (!r.valid || r.next_hop != next_hop) continue;
    r.valid = false;
    r.dest_seq += 1;
    unreachable.push_back({dst, r.dest_seq});
  }
  if (!unreachable.empty()) send_rerr(std::move(unreachable));

  // Salvage the failed packet if we are its originator: re-discovery will
  // re-send it. Forwarded packets are dropped (the source learns via RERR).
  if (pkt != nullptr && pkt->ip.src == node_.id() &&
      pkt->ip.proto != IpProto::kAodv) {
    route_packet(std::move(pkt));
    return;
  }
  if (pkt != nullptr && pkt->ip.proto != IpProto::kAodv) ++drops_no_route_;
}

void Aodv::flush_buffer(NodeId dst) {
  auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (it->second.retry_event != kInvalidEventId) {
    sim_.cancel(it->second.retry_event);
  }
  std::vector<PacketPtr> buffered = std::move(it->second.buffered);
  pending_.erase(it);
  for (PacketPtr& p : buffered) {
    route_packet(std::move(p));
  }
}

}  // namespace muzha
