#include "scenario/sharded_experiment.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "app/cbr.h"
#include "core/tcp_muzha.h"
#include "net/node.h"
#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "relwork/adtcp.h"
#include "scenario/batch_runner.h"
#include "scenario/city.h"
#include "scenario/experiment.h"
#include "scenario/mobility.h"
#include "scenario/network.h"
#include "sim/assert.h"
#include "sim/rng.h"
#include "sim/shard_exec.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "stats/time_series.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_sink.h"

namespace muzha {

double shard_box_gap(const ShardBox& a, const ShardBox& b) {
  double dx = std::max({0.0, b.x0 - a.x1, a.x0 - b.x1});
  double dy = std::max({0.0, b.y0 - a.y1, a.y0 - b.y1});
  return std::sqrt(dx * dx + dy * dy);
}

double shard_box_distance(Position p, const ShardBox& box) {
  double dx = std::max({0.0, box.x0 - p.x, p.x - box.x1});
  double dy = std::max({0.0, box.y0 - p.y, p.y - box.y1});
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<double> shard_cuts(std::vector<double> xs, int shards,
                               Meters cell_size) {
  MUZHA_ASSERT(shards >= 1, "need at least one shard");
  MUZHA_ASSERT(xs.size() >= static_cast<std::size_t>(shards),
               "fewer nodes than shards");
  std::sort(xs.begin(), xs.end());
  if (shards == 1) return {};
  // Rank inter-node gaps widest first; ties break toward the lower x so the
  // choice is deterministic.
  struct Gap {
    double width;
    double lo, hi;
  };
  std::vector<Gap> gaps;
  gaps.reserve(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    gaps.push_back(Gap{xs[i + 1] - xs[i], xs[i], xs[i + 1]});
  }
  std::sort(gaps.begin(), gaps.end(), [](const Gap& a, const Gap& b) {
    if (a.width != b.width) return a.width > b.width;
    return a.lo < b.lo;
  });
  std::vector<double> cuts;
  cuts.reserve(static_cast<std::size_t>(shards) - 1);
  for (int c = 0; c < shards - 1; ++c) {
    const Gap& g = gaps[static_cast<std::size_t>(c)];
    double mid = 0.5 * (g.lo + g.hi);
    // Align with a spatial-grid cell boundary when one falls strictly
    // inside the gap; cell-aligned cuts keep each shard's grid cells whole.
    double snapped = std::round(mid / cell_size.value()) * cell_size.value();
    cuts.push_back(snapped > g.lo && snapped < g.hi ? snapped : mid);
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

SimTime conservative_lookahead(const std::vector<ShardBox>& boxes,
                               Meters cs_range, MetersPerSecond propagation,
                               SimTime max_epoch) {
  SimTime lookahead = max_epoch;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      double gap = shard_box_gap(boxes[i], boxes[j]);
      // Pairs farther apart than carrier-sense range never exchange frames
      // (the outbox filter drops them), so they do not constrain the window.
      if (gap > cs_range.value()) continue;
      // to_sim_time rounds exactly like the per-frame propagation delay in
      // Channel::deliver and is monotone in distance, so every cross-shard
      // frame between this pair arrives >= this many ns after transmission.
      SimTime pair_l = to_sim_time(Meters(gap) / propagation);
      if (pair_l < SimTime::from_ns(1)) pair_l = SimTime::from_ns(1);
      if (pair_l < lookahead) lookahead = pair_l;
    }
  }
  return lookahead;
}

namespace {

// One flow's per-shard endpoints. A cross-shard flow has its agent (and
// cwnd tracer) on the source's shard and its sink (and sampler) on the
// destination's; intermediate shards relay pure physics.
struct FlowInstance {
  std::unique_ptr<TcpAgent> agent;
  std::unique_ptr<TcpSink> sink;
  CwndTracer cwnd;
  std::unique_ptr<ThroughputSampler> sampler;
};

// BoundarySink recording every local transmission that could reach foreign
// territory. Runs inside Channel::transmit on the shard's worker thread;
// drained by the orchestrator at the barrier.
class ShardOutbox final : public BoundarySink {
 public:
  void init(Simulator* sim, std::uint32_t shard, Meters cs_range,
            const std::vector<ShardBox>* boxes) {
    sim_ = sim;
    shard_ = shard;
    cs_range_ = cs_range;
    boxes_ = boxes;
  }

  void on_transmit(Position src_pos, const Packet& pkt,
                   SimTime duration) override {
    std::uint64_t mask = 0;
    for (std::size_t t = 0; t < boxes_->size(); ++t) {
      if (t == shard_) continue;
      if (shard_box_distance(src_pos, (*boxes_)[t]) <= cs_range_.value()) {
        mask |= std::uint64_t{1} << t;
      }
    }
    if (mask == 0) return;
    BoundaryMessage m;
    m.tx_time = sim_->now();
    m.src_shard = shard_;
    m.seq = next_seq_++;
    m.src_pos = src_pos;
    m.duration = duration;
    m.dst_mask = mask;
    m.pkt = pkt;
    msgs_.push_back(std::move(m));
  }

  std::vector<BoundaryMessage>& msgs() { return msgs_; }

 private:
  Simulator* sim_ = nullptr;
  std::uint32_t shard_ = 0;
  Meters cs_range_ = Meters(0.0);
  const std::vector<ShardBox>* boxes_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::vector<BoundaryMessage> msgs_;
};

// Everything one shard owns. Built, run and DESTROYED on the shard's sticky
// worker thread: nodes, agents and apps hold arena packets, and the
// thread-local arena forbids cross-thread release.
struct ShardState {
  std::unique_ptr<Network> net;
  std::vector<std::size_t> members;      // global node indices, ascending
  std::vector<std::size_t> local_index;  // global index -> local (SIZE_MAX
                                         // when the node is foreign)
  std::vector<std::unique_ptr<RandomWaypointMobility>> mobility;
  std::vector<FlowInstance> flows;       // one slot per global flow
  std::vector<std::unique_ptr<CbrApp>> cbr_apps;  // slot per global CBR flow
  ShardOutbox outbox;
  std::vector<BoundaryMessage> inbox;
};

// Global BFS next hops over the initial positions (the same algorithm, in
// the same order, as the single-core path's install_static_routes).
// next[dst][i] is i's next hop toward dst, SIZE_MAX when unreachable.
std::vector<std::vector<std::size_t>> static_next_hops(
    const std::vector<Position>& pos, Meters rx_range) {
  const std::size_t n = pos.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (distance(pos[i], pos[j]) <= rx_range) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  std::vector<std::vector<std::size_t>> next(
      n, std::vector<std::size_t>(n, SIZE_MAX));
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<bool> seen(n, false);
    std::deque<std::size_t> q{dst};
    seen[dst] = true;
    while (!q.empty()) {
      std::size_t u = q.front();
      q.pop_front();
      for (std::size_t v : adj[u]) {
        if (seen[v]) continue;
        seen[v] = true;
        next[dst][v] = u;
        q.push_back(v);
      }
    }
  }
  return next;
}

std::uint64_t shard_seed(const ExperimentConfig& cfg, int shard, int shards) {
  // One shard: the classic seed, so the build below replays run_experiment
  // draw-for-draw. Several: disjoint per-shard streams.
  if (shards == 1) return cfg.seed;
  return splitmix64(splitmix64(cfg.seed) ^
                    (0x5AD5AD00ull + static_cast<std::uint64_t>(shard)));
}

}  // namespace

ExperimentResult run_sharded_experiment(const ExperimentConfig& cfg,
                                        const ShardDebugOptions& dbg) {
  const int K = cfg.shards;
  MUZHA_ASSERT(K >= 1, "shards must be >= 1");
  MUZHA_ASSERT(K <= 64, "dst_mask holds at most 64 shards");
  MUZHA_ASSERT(!cfg.flows.empty(), "experiment needs at least one flow");
  const bool field_topology = cfg.topology == TopologyKind::kRandomField ||
                              cfg.topology == TopologyKind::kManhattanGrid;
  const PhyParams phy{};  // run_experiment builds with default radio params

  // --- Partition: replicate the placement draws, assign nodes to shards,
  // and bound each shard's territory. All static; no network exists yet.
  std::vector<Position> gpos;
  std::vector<int> shard_of;
  std::vector<ShardBox> boxes(static_cast<std::size_t>(K));
  if (K > 1) {
    MUZHA_ASSERT(field_topology,
                 "shards > 1 needs a field topology (kRandomField or "
                 "kManhattanGrid)");
    if (cfg.field.mobile) {
      MUZHA_ASSERT(cfg.field.districts >= K,
                   "a mobile field needs at least one district per shard so "
                   "node->shard ownership stays static");
    }
    {
      Rng rng(cfg.seed);
      gpos = field_positions(cfg.topology, cfg.field, rng);
    }
    const std::size_t n = gpos.size();
    shard_of.resize(n);
    std::vector<bool> armed(static_cast<std::size_t>(K), false);
    auto grow = [&](int s, double x0, double x1, double y0, double y1) {
      ShardBox& b = boxes[static_cast<std::size_t>(s)];
      if (!armed[static_cast<std::size_t>(s)]) {
        b = ShardBox{x0, x1, y0, y1};
        armed[static_cast<std::size_t>(s)] = true;
        return;
      }
      b.x0 = std::min(b.x0, x0);
      b.x1 = std::max(b.x1, x1);
      b.y0 = std::min(b.y0, y0);
      b.y1 = std::max(b.y1, y1);
    };
    if (cfg.field.mobile) {
      // Districts are x-ordered strips; deal them out contiguously so each
      // shard's territory is one run of strips. A node's motion never
      // leaves its district rectangle, so the territory is exact.
      const int d_total = cfg.field.districts;
      for (std::size_t i = 0; i < n; ++i) {
        int d = district_of(cfg.field, i);
        int s = d * K / d_total;
        shard_of[i] = s;
        Rect r = district_rect(cfg.field, d);
        grow(s, r.x0, r.x1, r.y0, r.y1);
      }
    } else {
      // Static field: cut at the widest x gaps; territory is the bounding
      // box of the member positions.
      std::vector<double> xs;
      xs.reserve(n);
      for (const Position& p : gpos) xs.push_back(p.x);
      std::vector<double> cuts = shard_cuts(xs, K, phy.cs_range);
      for (std::size_t i = 0; i < n; ++i) {
        int s = 0;
        for (double c : cuts) {
          if (gpos[i].x >= c) ++s;
        }
        shard_of[i] = s;
        grow(s, gpos[i].x, gpos[i].x, gpos[i].y, gpos[i].y);
      }
    }
    for (int s = 0; s < K; ++s) {
      MUZHA_ASSERT(armed[static_cast<std::size_t>(s)],
                   "a shard ended up with no nodes");
    }
  }

  SimTime lookahead =
      dbg.force_lookahead > SimTime::zero()
          ? dbg.force_lookahead
          : conservative_lookahead(boxes, phy.cs_range, phy.propagation,
                                   cfg.shard_max_epoch);
  MUZHA_ASSERT(lookahead > SimTime::zero(), "lookahead must be positive");

  // --- Per-shard build, on each shard's sticky owner thread.
  const int jobs = cfg.shard_jobs > 0 ? cfg.shard_jobs : K;
  ShardExecutor exec(K, jobs);
  std::vector<std::unique_ptr<ShardState>> states(
      static_cast<std::size_t>(K));

  exec.run_phase([&](int s) {
    auto st = std::make_unique<ShardState>();
    st->net = std::make_unique<Network>(
        shard_seed(cfg, s, K), phy, NodeConfig{},
        cfg.brute_force_channel ? ChannelMode::kBruteForce
                                : ChannelMode::kSpatialIndex);
    Network& net = *st->net;

    // Topology. One shard replays the classic builders (identical RNG
    // sequence to run_experiment); several install the pre-partitioned
    // positions under their GLOBAL node ids.
    if (K == 1) {
      switch (cfg.topology) {
        case TopologyKind::kChain:
          build_chain(net, cfg.hops);
          break;
        case TopologyKind::kCross:
          build_cross(net, cfg.hops);
          break;
        case TopologyKind::kRandomField:
          build_random_field(net, cfg.field);
          break;
        case TopologyKind::kManhattanGrid:
          build_manhattan_field(net, cfg.field);
          break;
      }
      st->members.resize(net.size());
      st->local_index.resize(net.size());
      for (std::size_t i = 0; i < net.size(); ++i) {
        st->members[i] = i;
        st->local_index[i] = i;
      }
    } else {
      st->local_index.assign(gpos.size(), SIZE_MAX);
      for (std::size_t i = 0; i < gpos.size(); ++i) {
        if (shard_of[i] != s) continue;
        st->local_index[i] = st->members.size();
        st->members.push_back(i);
        net.add_node(gpos[i], static_cast<NodeId>(i));
      }
    }

    // Random-waypoint motion over each node's district rectangle, exactly
    // as the single-core path does, restricted to owned nodes.
    if (field_topology && cfg.field.mobile) {
      st->mobility.reserve(st->members.size());
      for (std::size_t li = 0; li < st->members.size(); ++li) {
        std::size_t gi = st->members[li];
        Rect r = district_rect(cfg.field, district_of(cfg.field, gi));
        RandomWaypointMobility::Config mc;
        mc.min_x = r.x0;
        mc.max_x = r.x1;
        mc.min_y = r.y0;
        mc.max_y = r.y1;
        mc.min_speed = cfg.field.min_speed;
        mc.max_speed = cfg.field.max_speed;
        mc.pause = cfg.field.pause;
        mc.tick = cfg.field.mobility_tick;
        st->mobility.push_back(std::make_unique<RandomWaypointMobility>(
            net.sim(), net.node(li), mc));
        st->mobility.back()->start();
      }
    }

    // Routing. Static tables are computed from the GLOBAL initial
    // positions; a next hop may live on another shard (frames to it relay
    // through boundary exchange).
    if (cfg.static_routing) {
      net.use_static_routing();
      std::vector<Position> all = gpos;
      if (K == 1) {
        all.reserve(net.size());
        for (std::size_t i = 0; i < net.size(); ++i) {
          all.push_back(net.node(i).device().phy().position());
        }
      }
      std::vector<std::vector<std::size_t>> next =
          static_next_hops(all, phy.rx_range);
      for (std::size_t dst = 0; dst < all.size(); ++dst) {
        for (std::size_t li = 0; li < st->members.size(); ++li) {
          std::size_t gi = st->members[li];
          if (gi == dst || next[dst][gi] == SIZE_MAX) continue;
          net.static_routing(li).add_route(static_cast<NodeId>(dst),
                                           static_cast<NodeId>(next[dst][gi]));
        }
      }
    } else {
      net.use_aodv();
    }

    // Router assistance, mirroring run_experiment's auto rule.
    bool any_router_assisted = false;
    bool any_ecn = false;
    for (const FlowSpec& f : cfg.flows) {
      if (f.variant == TcpVariant::kMuzha ||
          f.variant == TcpVariant::kJersey) {
        any_router_assisted = true;
      }
      if (f.variant == TcpVariant::kNewRenoEcn) any_ecn = true;
    }
    bool routers_on = cfg.muzha_routers == ExperimentConfig::Routers::kOn ||
                      (cfg.muzha_routers == ExperimentConfig::Routers::kAuto &&
                       any_router_assisted);
    if (routers_on) {
      net.enable_muzha_routers(cfg.drai);
    } else if (any_ecn) {
      net.enable_red_ecn_routers(cfg.red);
    }

    if (cfg.uniform_error_rate > 0.0) {
      net.set_error_model(std::make_unique<UniformErrorModel>(
          Probability(cfg.uniform_error_rate)));
    }

    // Flows: the agent lives with the source node, the sink with the
    // destination. Ports and flow ids are GLOBAL indices, so a cross-shard
    // flow's two halves agree.
    st->flows.reserve(cfg.flows.size());
    for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
      const FlowSpec& f = cfg.flows[i];
      MUZHA_ASSERT(f.src < st->local_index.size() &&
                       f.dst < st->local_index.size(),
                   "flow endpoints out of range");
      MUZHA_ASSERT(f.src != f.dst, "flow endpoints must differ");
      FlowInstance inst;
      TcpConfig tc;
      tc.dst = static_cast<NodeId>(f.dst);
      tc.src_port = static_cast<std::uint16_t>(1000 + i);
      tc.dst_port = static_cast<std::uint16_t>(2000 + i);
      tc.flow = static_cast<FlowId>(i);
      tc.packet_size = Bytes(kSegmentBytes);
      tc.window = f.window;
      if (st->local_index[f.src] != SIZE_MAX) {
        inst.agent = make_tcp_agent(f.variant, net.sim(),
                                    net.node(st->local_index[f.src]), tc);
        if (auto* m = dynamic_cast<TcpMuzha*>(inst.agent.get())) {
          m->set_loss_discrimination(cfg.muzha_loss_discrimination);
        }
      }
      if (st->local_index[f.dst] != SIZE_MAX) {
        TcpSink::Config sc;
        sc.port = tc.dst_port;
        if (f.variant == TcpVariant::kAdtcp) {
          inst.sink = std::make_unique<AdtcpSink>(
              net.sim(), net.node(st->local_index[f.dst]), sc);
        } else {
          inst.sink = std::make_unique<TcpSink>(
              net.sim(), net.node(st->local_index[f.dst]), sc);
        }
        inst.sink->start();
        inst.sampler = std::make_unique<ThroughputSampler>(
            cfg.throughput_bin, kPayloadBytes);
        inst.sampler->attach(*inst.sink);
      }
      if (inst.agent) {
        TcpAgent* agent = inst.agent.get();
        net.sim().schedule_at(f.start_time, [agent] { agent->start(); });
      }
      st->flows.push_back(std::move(inst));
      if (st->flows.back().agent) {
        st->flows.back().cwnd.attach(*st->flows.back().agent);
      }
    }

    // Background CBR load for owned sources.
    st->cbr_apps.resize(cfg.cbr_flows.size());
    for (std::size_t i = 0; i < cfg.cbr_flows.size(); ++i) {
      const CbrFlowSpec& c = cfg.cbr_flows[i];
      MUZHA_ASSERT(c.src < st->local_index.size() &&
                       c.dst < st->local_index.size(),
                   "CBR endpoints out of range");
      MUZHA_ASSERT(c.src != c.dst, "CBR endpoints must differ");
      if (st->local_index[c.src] == SIZE_MAX) continue;
      CbrApp::Config cc;
      cc.dst = static_cast<NodeId>(c.dst);
      cc.packet_size_bytes = c.packet_size_bytes;
      cc.rate = c.rate;
      cc.start_time = c.start_time;
      st->cbr_apps[i] = std::make_unique<CbrApp>(
          net.sim(), net.node(st->local_index[c.src]), cc);
      st->cbr_apps[i]->install();
    }

    if (K > 1) {
      st->outbox.init(&net.sim(), static_cast<std::uint32_t>(s),
                      phy.cs_range, &boxes);
      net.channel().set_boundary_sink(&st->outbox);
    }
    states[static_cast<std::size_t>(s)] = std::move(st);
  });

  // --- Window loop. Orchestrator and workers alternate: workers execute
  // one window per phase; between phases the orchestrator (holding the only
  // reference to every outbox/inbox) routes boundary frames and picks the
  // next window. Inboxes are injected in (tx_time, src_shard, seq) order —
  // deterministic regardless of worker count or OS scheduling.
  const SimTime one_ns = SimTime::from_ns(1);
  SimTime window_start = SimTime::zero();
  for (;;) {
    bool pending_inbox = false;
    for (const auto& st : states) {
      if (!st->inbox.empty()) pending_inbox = true;
    }
    if (window_start >= cfg.duration && !pending_inbox) break;
    const SimTime window_end = window_start + lookahead;
    const SimTime target = std::min(window_end - one_ns, cfg.duration);
    exec.run_phase([&states, target](int s) {
      ShardState& st = *states[static_cast<std::size_t>(s)];
      for (const BoundaryMessage& m : st.inbox) {
        st.net->channel().deliver_remote(m.src_pos, m.pkt, m.duration,
                                         m.tx_time);
      }
      st.inbox.clear();
      st.net->run_until(target);
    });
    bool any_boundary = false;
    for (auto& st : states) {
      for (BoundaryMessage& m : st->outbox.msgs()) {
        for (int t = 0; t < K; ++t) {
          if ((m.dst_mask >> t) & 1) {
            states[static_cast<std::size_t>(t)]->inbox.push_back(m);
            any_boundary = true;
          }
        }
      }
      st->outbox.msgs().clear();
    }
    if (any_boundary) {
      for (auto& st : states) {
        std::sort(st->inbox.begin(), st->inbox.end(), boundary_message_order);
      }
      window_start = window_end;
    } else {
      // Quiet barrier: no frame is in flight between shards, so the next
      // window may open at the earliest pending event anywhere instead of
      // grinding through empty lookahead epochs.
      SimTime min_next = SimTime::max();
      for (const auto& st : states) {
        min_next = std::min(min_next, st->net->sim().next_event_time());
      }
      window_start = std::max(window_end, std::min(min_next, cfg.duration));
    }
  }
  // run_until is inclusive of its target, so the single-core path executes
  // events scheduled at exactly cfg.duration. The loop above may stop short
  // of that (a quiet barrier can jump window_start straight to the
  // horizon); one final inclusive run makes the schedules match. A frame
  // transmitted at the horizon arrives strictly later everywhere and is
  // never executed, so no boundary exchange is needed.
  exec.run_phase([&states, &cfg](int s) {
    states[static_cast<std::size_t>(s)]->net->run_until(cfg.duration);
  });

  // --- Collect, in the single-core path's global order. Pure reads; the
  // workers are quiescent between phases, so the orchestrator may touch
  // everything except packet memory.
  ExperimentResult result;
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    const FlowSpec& f = cfg.flows[i];
    int ss = K == 1 ? 0 : shard_of[f.src];
    int ds = K == 1 ? 0 : shard_of[f.dst];
    FlowInstance& src_inst = states[static_cast<std::size_t>(ss)]->flows[i];
    FlowInstance& dst_inst = states[static_cast<std::size_t>(ds)]->flows[i];
    FlowResult r;
    r.variant = f.variant;
    r.delivered = dst_inst.sink->delivered();
    r.duration = Seconds((cfg.duration - f.start_time).to_seconds());
    r.throughput =
        r.duration > Seconds(0.0)
            ? Bits(static_cast<std::int64_t>(r.delivered) * kPayloadBytes * 8) /
                  r.duration
            : BitsPerSecond(0.0);
    r.packets_sent = src_inst.agent->packets_sent();
    r.retransmissions = src_inst.agent->retransmissions();
    r.timeouts = src_inst.agent->timeouts();
    r.cwnd_trace = src_inst.cwnd.series();
    r.throughput_series = dst_inst.sampler->series();
    if (auto* m = dynamic_cast<TcpMuzha*>(src_inst.agent.get())) {
      r.marked_loss_events = m->marked_loss_events();
      r.unmarked_loss_events = m->unmarked_loss_events();
    }
    result.flows.push_back(std::move(r));
  }
  const std::size_t total_nodes =
      K == 1 ? states[0]->net->size() : gpos.size();
  for (std::size_t i = 0; i < total_nodes; ++i) {
    int s = K == 1 ? 0 : shard_of[i];
    ShardState& st = *states[static_cast<std::size_t>(s)];
    Node& node = st.net->node(st.local_index[i]);
    result.ifq_drops += node.device().queue().drops();
    result.mac_retry_drops += node.device().mac().drops_retry_limit();
    result.phy_collisions += node.device().phy().collisions();
  }
  for (const auto& st : states) {
    result.channel_error_losses += st->net->channel().frames_corrupted_by_error();
  }
  for (std::size_t i = 0; i < cfg.cbr_flows.size(); ++i) {
    int s = K == 1 ? 0 : shard_of[cfg.cbr_flows[i].src];
    const auto& app = states[static_cast<std::size_t>(s)]->cbr_apps[i];
    result.cbr_packets_sent += app->packets_sent();
  }

  // --- Teardown, back on the owner threads: nodes, agents and apps hold
  // arena packets, and the thread-local arena insists on same-thread
  // release. The executor's sticky mapping guarantees each shard dies where
  // it lived.
  exec.run_phase([&states](int s) {
    ShardState& st = *states[static_cast<std::size_t>(s)];
    st.net->channel().set_boundary_sink(nullptr);
    states[static_cast<std::size_t>(s)].reset();
  });
  return result;
}

}  // namespace muzha
