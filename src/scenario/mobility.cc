#include "scenario/mobility.h"

#include <cmath>

#include "phy/position.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace muzha {

void RandomWaypointMobility::start() {
  pick_waypoint();
  sim_.schedule_in(cfg_.tick, [this] { tick(); });
}

void RandomWaypointMobility::pick_waypoint() {
  Rng& rng = sim_.rng();
  waypoint_.x = rng.uniform(cfg_.min_x, cfg_.max_x);
  waypoint_.y = rng.uniform(cfg_.min_y, cfg_.max_y);
  speed_ = MetersPerSecond(
      rng.uniform(cfg_.min_speed.value(), cfg_.max_speed.value()));
  paused_ = false;
}

void RandomWaypointMobility::tick() {
  if (paused_) {
    if (sim_.now() >= pause_until_) pick_waypoint();
    sim_.schedule_in(cfg_.tick, [this] { tick(); });
    return;
  }
  Position p = node_.device().phy().position();
  double dx = waypoint_.x - p.x;
  double dy = waypoint_.y - p.y;
  double dist = std::sqrt(dx * dx + dy * dy);
  double step = speed_.value() * cfg_.tick.to_seconds();
  if (dist <= step) {
    // Arrived: pause, then choose the next waypoint.
    node_.device().phy().set_position(waypoint_);
    paused_ = true;
    pause_until_ = sim_.now() + cfg_.pause;
  } else {
    p.x += dx / dist * step;
    p.y += dy / dist * step;
    node_.device().phy().set_position(p);
  }
  sim_.schedule_in(cfg_.tick, [this] { tick(); });
}

}  // namespace muzha
