// Node mobility models.
//
// The paper's evaluation pins nodes ("we don't consider the link failure
// problem caused by mobility in this work") but names mobility support as
// essential future work, and its Ch. 2 analysis of route failures assumes
// it. These models move nodes by updating their PHY positions on a fixed
// tick; the channel evaluates geometry per transmission, so movement
// naturally produces link breaks, AODV route failures and re-discoveries.
//
//  * LinearMobility       — constant-velocity segments; deterministic, used
//                           by tests to break links on cue.
//  * RandomWaypointMobility — the classic MANET model: pick a waypoint
//                           uniformly in a rectangle, travel at a uniform
//                           random speed, pause, repeat.
#pragma once

#include <cstddef>
#include <vector>

#include "net/node.h"
#include "sim/simulator.h"

namespace muzha {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual void start() = 0;
};

// Moves one node along a fixed velocity vector, optionally bouncing between
// two endpoints.
class LinearMobility final : public MobilityModel {
 public:
  struct Config {
    double vx_mps = 0.0;
    double vy_mps = 0.0;
    SimTime tick = SimTime::from_ms(100);
    SimTime stop_after = SimTime::max();
  };

  LinearMobility(Simulator& sim, Node& node, Config cfg)
      : sim_(sim), node_(node), cfg_(cfg) {}

  void start() override { schedule(); }

  void set_velocity(double vx, double vy) {
    cfg_.vx_mps = vx;
    cfg_.vy_mps = vy;
  }

 private:
  void schedule() {
    sim_.schedule_in(cfg_.tick, [this] { tick(); });
  }
  void tick() {
    if (sim_.now() >= cfg_.stop_after) return;
    Position p = node_.device().phy().position();
    double dt = cfg_.tick.to_seconds();
    p.x += cfg_.vx_mps * dt;
    p.y += cfg_.vy_mps * dt;
    node_.device().phy().set_position(p);
    schedule();
  }

  Simulator& sim_;
  Node& node_;
  Config cfg_;
};

// Random waypoint over a rectangle.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Config {
    double min_x = 0.0, max_x = 1000.0;
    double min_y = 0.0, max_y = 1000.0;
    double min_speed_mps = 1.0;
    double max_speed_mps = 10.0;
    SimTime pause = SimTime::from_seconds(2.0);
    SimTime tick = SimTime::from_ms(100);
  };

  RandomWaypointMobility(Simulator& sim, Node& node, Config cfg)
      : sim_(sim), node_(node), cfg_(cfg) {}

  void start() override;

  Position waypoint() const { return waypoint_; }
  double speed_mps() const { return speed_mps_; }

 private:
  void pick_waypoint();
  void tick();

  Simulator& sim_;
  Node& node_;
  Config cfg_;
  Position waypoint_;
  double speed_mps_ = 0.0;
  bool paused_ = false;
  SimTime pause_until_;
};

}  // namespace muzha
