// Node mobility models.
//
// The paper's evaluation pins nodes ("we don't consider the link failure
// problem caused by mobility in this work") but names mobility support as
// essential future work, and its Ch. 2 analysis of route failures assumes
// it. These models move nodes by updating their PHY positions on a fixed
// tick; the channel evaluates geometry per transmission, so movement
// naturally produces link breaks, AODV route failures and re-discoveries.
//
//  * LinearMobility       — constant-velocity segments; deterministic, used
//                           by tests to break links on cue.
//  * RandomWaypointMobility — the classic MANET model: pick a waypoint
//                           uniformly in a rectangle, travel at a uniform
//                           random speed, pause, repeat.
#pragma once

#include <cstddef>
#include <vector>

#include "net/node.h"
#include "phy/position.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual void start() = 0;
};

// Moves one node along a fixed velocity vector, optionally bouncing between
// two endpoints.
class LinearMobility final : public MobilityModel {
 public:
  struct Config {
    MetersPerSecond vx;
    MetersPerSecond vy;
    SimTime tick = SimTime::from_ms(100);
    SimTime stop_after = SimTime::max();
  };

  LinearMobility(Simulator& sim, Node& node, Config cfg)
      : sim_(sim), node_(node), cfg_(cfg) {}

  void start() override { schedule(); }

  void set_velocity(MetersPerSecond vx, MetersPerSecond vy) {
    cfg_.vx = vx;
    cfg_.vy = vy;
  }

 private:
  void schedule() {
    sim_.schedule_in(cfg_.tick, [this] { tick(); });
  }
  void tick() {
    if (sim_.now() >= cfg_.stop_after) return;
    Position p = node_.device().phy().position();
    double dt = cfg_.tick.to_seconds();
    p.x += cfg_.vx.value() * dt;
    p.y += cfg_.vy.value() * dt;
    node_.device().phy().set_position(p);
    schedule();
  }

  Simulator& sim_;
  Node& node_;
  Config cfg_;
};

// Random waypoint over a rectangle.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Config {
    double min_x = 0.0, max_x = 1000.0;
    double min_y = 0.0, max_y = 1000.0;
    MetersPerSecond min_speed = MetersPerSecond(1.0);
    MetersPerSecond max_speed = MetersPerSecond(10.0);
    SimTime pause = SimTime::from_seconds(2.0);
    SimTime tick = SimTime::from_ms(100);
  };

  RandomWaypointMobility(Simulator& sim, Node& node, Config cfg)
      : sim_(sim), node_(node), cfg_(cfg) {}

  void start() override;

  Position waypoint() const { return waypoint_; }
  MetersPerSecond speed() const { return speed_; }

 private:
  void pick_waypoint();
  void tick();

  Simulator& sim_;
  Node& node_;
  Config cfg_;
  Position waypoint_;
  MetersPerSecond speed_;
  bool paused_ = false;
  SimTime pause_until_;
};

}  // namespace muzha
