// City-scale scenario generation.
//
// The paper evaluates Muzha on 4-7-hop chains; MANET TCP studies normally
// run over random-waypoint fields with hundreds of nodes. This module
// generates those fields: node placement (uniform random or Manhattan street
// grid), plus seeded random flow sets (N nodes x F concurrent FTP/CBR
// flows), all expressed as an ExperimentConfig so the existing
// run_experiment / BatchRunner plumbing drives them unchanged.
//
// Placement draws from the simulation RNG (inside run_experiment), so a
// (config, seed) pair fully determines the topology. Flow endpoints are
// drawn from a private SplitMix64 stream keyed on `flow_seed` — independent
// of the simulation seed, so a sweep can vary the field while holding the
// traffic pattern fixed (and vice versa).
#pragma once

#include <vector>

#include "scenario/experiment.h"
#include "scenario/network.h"

namespace muzha {

// Topology builders, called by run_experiment for the field topologies.
// Both append `f.nodes` nodes and return their ids.
std::vector<NodeId> build_random_field(Network& net, const FieldConfig& f);
std::vector<NodeId> build_manhattan_field(Network& net, const FieldConfig& f);

// `count` FTP flows between distinct random node pairs, starts staggered
// uniformly over [0, start_window]. Deterministic in (count, nodes,
// flow_seed).
std::vector<FlowSpec> make_random_flows(int count, int nodes, TcpVariant v,
                                        std::uint64_t flow_seed,
                                        SimTime start_window,
                                        int window = 32);

// Same idea for background CBR load.
std::vector<CbrFlowSpec> make_random_cbr_flows(int count, int nodes,
                                               BitsPerSecond rate,
                                               std::uint64_t flow_seed,
                                               SimTime start_window);

// One-call config for the common case: an N-node mobile random-waypoint (or
// Manhattan) field with F FTP flows of `variant` and C CBR flows.
struct CityConfig {
  FieldConfig field;
  TopologyKind placement = TopologyKind::kRandomField;
  int ftp_flows = 4;
  int cbr_flows = 0;
  TcpVariant variant = TcpVariant::kNewReno;
  BitsPerSecond cbr_rate = BitsPerSecond(100'000.0);
  SimTime flow_start_window = SimTime::from_seconds(5.0);
  SimTime duration = SimTime::from_seconds(60.0);
  std::uint64_t seed = 1;       // simulation seed (placement, motion, ...)
  std::uint64_t flow_seed = 1;  // traffic-pattern seed
};

ExperimentConfig make_city_config(const CityConfig& city);

}  // namespace muzha
