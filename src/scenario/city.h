// City-scale scenario generation.
//
// The paper evaluates Muzha on 4-7-hop chains; MANET TCP studies normally
// run over random-waypoint fields with hundreds of nodes. This module
// generates those fields: node placement (uniform random or Manhattan street
// grid), plus seeded random flow sets (N nodes x F concurrent FTP/CBR
// flows), all expressed as an ExperimentConfig so the existing
// run_experiment / BatchRunner plumbing drives them unchanged.
//
// Placement draws from the simulation RNG (inside run_experiment), so a
// (config, seed) pair fully determines the topology. Flow endpoints are
// drawn from a private SplitMix64 stream keyed on `flow_seed` — independent
// of the simulation seed, so a sweep can vary the field while holding the
// traffic pattern fixed (and vice versa).
#pragma once

#include <vector>

#include "phy/position.h"
#include "pkt/packet.h"
#include "scenario/experiment.h"
#include "scenario/network.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

// Topology builders, called by run_experiment for the field topologies.
// Both append `f.nodes` nodes and return their ids.
std::vector<NodeId> build_random_field(Network& net, const FieldConfig& f);
std::vector<NodeId> build_manhattan_field(Network& net, const FieldConfig& f);

// Axis-aligned placement/motion rectangle of district `d` (0-based). With
// districts == 1 this is the whole field. Districts are vertical strips of
// equal width separated by `district_gap`; the gaps come out of the field
// width, so strip width is (width - (districts-1)*gap) / districts.
struct Rect {
  double x0 = 0.0, x1 = 0.0;
  double y0 = 0.0, y1 = 0.0;
};
Rect district_rect(const FieldConfig& f, int d);

// District of node index i: i % districts.
inline int district_of(const FieldConfig& f, std::size_t i) {
  return static_cast<int>(i % static_cast<std::size_t>(f.districts));
}

// The placement draw sequence of build_random_field / build_manhattan_field
// as a pure function of (kind, field, rng): one Position per node, drawn in
// node order. The builders are thin wrappers over this, so a caller with a
// fresh Rng(seed) recovers the exact coordinates a Network built from the
// same seed will have — the sharded-run partitioner uses that to assign
// nodes to shards before any per-shard network exists.
std::vector<Position> field_positions(TopologyKind kind, const FieldConfig& f,
                                      Rng& rng);

// `count` FTP flows between distinct random node pairs, starts staggered
// uniformly over [0, start_window]. Deterministic in (count, nodes,
// flow_seed).
std::vector<FlowSpec> make_random_flows(int count, int nodes, TcpVariant v,
                                        std::uint64_t flow_seed,
                                        SimTime start_window,
                                        int window = 32);

// Same idea for background CBR load.
std::vector<CbrFlowSpec> make_random_cbr_flows(int count, int nodes,
                                               BitsPerSecond rate,
                                               std::uint64_t flow_seed,
                                               SimTime start_window);

// FTP flows whose endpoints are confined to one district: flow j runs inside
// district j % districts, between distinct random members of that district.
// With districts separated by more than carrier-sense range this yields a
// field whose shards never exchange a single frame — the scaling case the
// sharded runner is built for. Deterministic in (count, field, flow_seed).
std::vector<FlowSpec> make_random_district_flows(int count,
                                                 const FieldConfig& f,
                                                 TcpVariant v,
                                                 std::uint64_t flow_seed,
                                                 SimTime start_window,
                                                 int window = 32);

// One-call config for the common case: an N-node mobile random-waypoint (or
// Manhattan) field with F FTP flows of `variant` and C CBR flows.
struct CityConfig {
  FieldConfig field;
  TopologyKind placement = TopologyKind::kRandomField;
  int ftp_flows = 4;
  int cbr_flows = 0;
  TcpVariant variant = TcpVariant::kNewReno;
  BitsPerSecond cbr_rate = BitsPerSecond(100'000.0);
  SimTime flow_start_window = SimTime::from_seconds(5.0);
  SimTime duration = SimTime::from_seconds(60.0);
  std::uint64_t seed = 1;       // simulation seed (placement, motion, ...)
  std::uint64_t flow_seed = 1;  // traffic-pattern seed
};

ExperimentConfig make_city_config(const CityConfig& city);

}  // namespace muzha
