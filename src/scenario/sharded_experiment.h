// Conservative parallel execution of one experiment: spatial shards, one
// event core per shard, synchronized by a lookahead barrier.
//
// The field is partitioned into `cfg.shards` slices along the x axis. Each
// shard owns a disjoint subset of the nodes and runs them on a private
// Simulator (scheduler + RNG) — a full per-shard Network — on a sticky
// worker thread (sim/shard_exec.h). Time advances in globally agreed
// windows [T, T+L): every shard executes its local events inside the
// window, records each local transmission that could reach another shard's
// territory (phy/channel.h BoundarySink), and stops. At the barrier the
// orchestrator routes the recorded frames to their destination shards,
// every shard injects its inbox in deterministic order, and the next window
// opens.
//
// Correctness rests on the conservative lookahead: L never exceeds the
// propagation delay across the smallest gap between two coupled shards'
// territories, so a frame transmitted anywhere in window [T, T+L) arrives
// at a foreign shard no earlier than T+L — always in the receiver's future.
// Channel::deliver MUZHA_DCHECKs exactly that (the causality invariant).
// Territories are static: a mobile node's random-waypoint rectangle is its
// district strip (FieldConfig::districts), so node->shard ownership never
// changes and the gap between territories never shrinks.
//
// Determinism: every shard's event core is sequential and seeded; the only
// cross-shard channel is the barrier exchange, and inboxes are injected in
// (tx_time, src_shard, seq) order — a total order independent of thread
// scheduling. Results are therefore bit-identical run-to-run and for every
// `shard_jobs` value. shards == 1 runs the whole experiment through the
// same window loop with the classic single-network build and is
// bit-identical to run_experiment(); shards > 1 partitions the RNG into
// per-shard streams, so it is a different — equally valid, equally pinned —
// sample of the same scenario distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/position.h"
#include "pkt/packet.h"
#include "scenario/experiment.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

// A frame crossing shard territory, exchanged at a lookahead barrier.
// Carries the Packet BY VALUE: the thread-local packet arena forbids
// cross-thread release, so the receiver clones from this plain copy into
// its own arena (Packet has no owning members — see pkt/packet.h).
struct BoundaryMessage {
  SimTime tx_time;         // transmission start on the source shard
  std::uint32_t src_shard = 0;
  std::uint64_t seq = 0;   // per-source-shard transmission counter
  Position src_pos;        // transmitter position at tx_time
  SimTime duration;        // on-air time
  std::uint64_t dst_mask = 0;  // bit s set: ship to shard s
  Packet pkt;
};

// Deterministic merge order of an inbox: (tx_time, src_shard, seq). Total:
// seq is unique per shard, so no two distinct messages compare equal.
inline bool boundary_message_order(const BoundaryMessage& a,
                                   const BoundaryMessage& b) {
  if (a.tx_time != b.tx_time) return a.tx_time < b.tx_time;
  if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
  return a.seq < b.seq;
}

// Per-shard static territory: the union of the motion bounds of its nodes
// (the node position itself when static, its district rectangle when
// mobile). Nothing a shard owns ever leaves its box.
struct ShardBox {
  double x0 = 0.0, x1 = 0.0;
  double y0 = 0.0, y1 = 0.0;
};

// Minimum distance between two territories (0 when they touch or overlap).
double shard_box_gap(const ShardBox& a, const ShardBox& b);

// Minimum distance from a point to a territory (0 when inside).
double shard_box_distance(Position p, const ShardBox& box);

// Cut lines for partitioning a STATIC field: the shards-1 widest gaps of
// the sorted x coordinates, each cut placed at the cell_size multiple
// nearest the gap midpoint when one lies strictly inside the gap (so cuts
// align with spatial-grid cell boundaries), else at the raw midpoint.
// Returned ascending. Node -> shard is then "number of cuts <= x".
// Asserts xs.size() >= shards.
std::vector<double> shard_cuts(std::vector<double> xs, int shards,
                               Meters cell_size);

// The conservative window width: min over coupled shard pairs (gap at most
// cs_range — only those ever exchange frames) of the propagation delay
// across the pair's territory gap, floored at 1 ns; max_epoch when every
// pair is decoupled. Never exceeds max_epoch.
SimTime conservative_lookahead(const std::vector<ShardBox>& boxes,
                               Meters cs_range, MetersPerSecond propagation,
                               SimTime max_epoch);

// Testing hooks.
struct ShardDebugOptions {
  // Overrides the computed lookahead window. Used by the causality death
  // test: a window wider than the minimum cross-shard propagation delay
  // must trip the MUZHA_DCHECK in Channel::deliver.
  SimTime force_lookahead;  // 0 = use conservative_lookahead()
};

// Runs cfg on cfg.shards event cores (cfg.shards == 1 allowed: same window
// machinery, classic single-network build, bit-identical to
// run_experiment). Requirements for shards > 1:
//  - topology kRandomField or kManhattanGrid;
//  - mobile fields need field.districts >= shards (ownership stays static);
//  - at least one node per shard.
ExperimentResult run_sharded_experiment(const ExperimentConfig& cfg,
                                        const ShardDebugOptions& dbg = {});

}  // namespace muzha
