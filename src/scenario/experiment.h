// Declarative experiment runner — the high-level public API.
//
// Describe a topology, a set of TCP flows (variant, endpoints, start time,
// advertised window `window_`) and a duration; run_experiment() builds the
// whole stack, runs it, and returns per-flow throughput, retransmissions,
// CWND traces and throughput-dynamics series. Every bench and example is a
// thin wrapper over this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/drai.h"
#include "net/node.h"
#include "relwork/ecn.h"
#include "scenario/network.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "stats/time_series.h"
#include "tcp/tcp_agent.h"

namespace muzha {

// The paper's protagonists (Tahoe..Muzha) plus the related-work protocols
// its Ch. 3 surveys: TCP-DOOR, ADTCP (end-to-end), TCP Jersey and TCP
// RoVegas (router-assisted).
enum class TcpVariant {
  kTahoe,
  kReno,
  kNewReno,
  kSack,
  kVegas,
  kMuzha,
  kDoor,
  kAdtcp,
  kJersey,
  kRoVegas,
  // NewReno + RFC 3168 ECN over RED-marking routers (single-bit feedback,
  // the paper's Sec. 3.2 comparison point for DRAI).
  kNewRenoEcn,
  // End-to-end bandwidth estimation (paper reference [24]).
  kWestwood,
};

const char* variant_name(TcpVariant v);

// Factory for a sender of the given variant (Muzha included).
std::unique_ptr<TcpAgent> make_tcp_agent(TcpVariant v, Simulator& sim,
                                         Node& node, TcpConfig cfg);

struct FlowSpec {
  TcpVariant variant = TcpVariant::kNewReno;
  std::size_t src = 0;  // node index
  std::size_t dst = 0;  // node index
  SimTime start_time;
  int window = 32;  // NS-2 window_
};

enum class TopologyKind {
  kChain,
  kCross,
  // City-scale fields (src/scenario/city.h): N nodes placed by the seeded
  // simulation RNG, optional random-waypoint motion, sized by `field`.
  kRandomField,    // uniform random placement in the rectangle
  kManhattanGrid,  // nodes on a street grid of pitch `street_pitch`
};

// Geometry and motion of the city-scale field topologies.
struct FieldConfig {
  int nodes = 200;
  Meters width = Meters(2000.0);
  Meters height = Meters(2000.0);
  // Manhattan grid: distance between adjacent streets; nodes sit on streets
  // (random street, random offset along it).
  Meters street_pitch = Meters(275.0);
  // Random-waypoint motion (applies to both field kinds when true).
  bool mobile = true;
  MetersPerSecond min_speed = MetersPerSecond(1.0);
  MetersPerSecond max_speed = MetersPerSecond(10.0);
  SimTime pause = SimTime::from_seconds(2.0);
  SimTime mobility_tick = SimTime::from_ms(250);
  // City districts: the field splits into `districts` vertical strips of
  // equal width separated by `district_gap` of empty ground (the overall
  // `width` includes the gaps). Node i belongs to district i % districts;
  // placement AND random-waypoint motion are confined to the node's strip,
  // so district membership is invariant over the whole run — which is what
  // lets a sharded run cut the field along the gaps and keep node->shard
  // ownership static. districts == 1 is the classic single-rectangle field
  // and draws the exact same RNG sequence as before the knob existed.
  int districts = 1;
  Meters district_gap = Meters(1100.0);
};

// Background CBR load (no transport; competes for airtime and queues).
struct CbrFlowSpec {
  std::size_t src = 0;  // node index
  std::size_t dst = 0;  // node index
  BitsPerSecond rate = BitsPerSecond(100'000.0);
  std::uint32_t packet_size_bytes = 512;
  SimTime start_time;
};

struct ExperimentConfig {
  TopologyKind topology = TopologyKind::kChain;
  int hops = 4;
  FieldConfig field;  // used by kRandomField / kManhattanGrid only
  SimTime duration = SimTime::from_seconds(30.0);
  std::uint64_t seed = 1;
  std::vector<FlowSpec> flows;
  std::vector<CbrFlowSpec> cbr_flows;
  // Run the channel's O(attached) reference scan instead of the spatial
  // index — the oracle side of the differential tests. Results must be
  // bit-identical either way.
  bool brute_force_channel = false;
  // Router assistance: default on iff any flow is Muzha.
  enum class Routers { kAuto, kOn, kOff };
  Routers muzha_routers = Routers::kAuto;
  DraiConfig drai;
  // RED parameters used when a kNewRenoEcn flow enables RED/ECN routers.
  RedParams red;
  // Random per-packet channel loss (0 = none).
  double uniform_error_rate = 0.0;
  // Ablation: disable Muzha's marked/unmarked loss discrimination.
  bool muzha_loss_discrimination = true;
  // AODV by default (Table 5.1); static routing isolates transport effects.
  bool static_routing = false;
  SimTime throughput_bin = SimTime::from_seconds(1.0);
  // Conservative parallel execution (src/scenario/sharded_experiment.h):
  // partition the field into `shards` spatial slices, one event core per
  // shard, synchronized by a lookahead barrier. shards == 1 runs the classic
  // single-core path. shards > 1 is deterministic run-to-run and across
  // `shard_jobs` values, but draws per-shard RNG streams, so its results are
  // a different (equally valid) sample than shards == 1.
  int shards = 1;
  // Worker threads for the shard pool; 0 means one per shard.
  int shard_jobs = 0;
  // Upper bound on the lookahead window; also the window used when every
  // shard pair is farther apart than carrier-sense range (fully decoupled).
  SimTime shard_max_epoch = SimTime::from_ms(10);
};

struct FlowResult {
  TcpVariant variant;
  std::int64_t delivered = 0;          // in-order segments at the sink
  Seconds duration = Seconds(0.0);     // flow start -> experiment end
  BitsPerSecond throughput =
      BitsPerSecond(0.0);              // goodput: delivered bits / duration
  std::uint64_t packets_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  TimeSeries cwnd_trace;
  TimeSeries throughput_series;
  // Muzha-only diagnostics (0 for other variants).
  std::uint64_t marked_loss_events = 0;
  std::uint64_t unmarked_loss_events = 0;
};

struct ExperimentResult {
  std::vector<FlowResult> flows;
  // Substrate-level aggregates.
  std::uint64_t ifq_drops = 0;         // drop-tail losses (congestion)
  std::uint64_t mac_retry_drops = 0;   // retry-limit losses (link failure)
  std::uint64_t phy_collisions = 0;
  std::uint64_t channel_error_losses = 0;
  std::uint64_t cbr_packets_sent = 0;  // background-load injection count

  BitsPerSecond total_throughput() const;
  // Per-flow goodput in bit/s (convenience for stats helpers).
  std::vector<double> flow_throughputs() const;
};

ExperimentResult run_experiment(const ExperimentConfig& cfg);

// Paper defaults: 1460 B payload segments, 40 B ACKs (Sec. 5.3).
inline constexpr std::uint32_t kPayloadBytes = 1460;
inline constexpr std::uint32_t kSegmentBytes = 1500;

}  // namespace muzha
