// Parallel batch experiment execution.
//
// A BatchRunner takes a set of experiment points (topology x variant x ...)
// and runs each one `replications` times on a fixed-size thread pool, one
// isolated Simulator per run. Per-run seeds are derived deterministically
// from (base_seed, point_index, replication) via SplitMix64, so a sweep's
// results depend only on its point set and base seed — never on the number
// of worker threads or on completion order. Results come back in submission
// order. Every bench sweep sits on top of this.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/experiment.h"

namespace muzha {

// SplitMix64 finalizer (Steele et al.); bijective on 64-bit values, used as
// the mixing step of the per-run seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Seed for replication `replication` of point `point_index`: three chained
// SplitMix64 rounds, one per component, so every (base, point, replication)
// triple lands on an independent stream. This scheme is frozen — tests pin
// its outputs — because changing it silently re-seeds every saved sweep.
constexpr std::uint64_t derive_run_seed(std::uint64_t base_seed,
                                        std::size_t point_index,
                                        std::size_t replication) {
  std::uint64_t h = splitmix64(base_seed);
  h = splitmix64(h ^ static_cast<std::uint64_t>(point_index));
  h = splitmix64(h ^ static_cast<std::uint64_t>(replication));
  return h;
}

// Low-level primitive: run `configs` (seeds already set by the caller) on at
// most `jobs` threads and return results in submission order regardless of
// completion order. jobs <= 0 means one thread per hardware core. Exceptions
// thrown by a run are rethrown on the calling thread after the pool joins.
std::vector<ExperimentResult> run_batch(const std::vector<ExperimentConfig>& configs,
                                        int jobs);

struct BatchOptions {
  int jobs = 0;                   // worker threads; <= 0 = hardware cores
  std::size_t replications = 1;   // independent seeded runs per point
  std::uint64_t base_seed = 1;    // root of the per-run seed derivation
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts = {}) : opts_(opts) {}

  // Submits an experiment point; its `seed` field is ignored (overwritten by
  // the derivation). Returns the point's index.
  std::size_t add_point(ExperimentConfig cfg);

  std::size_t size() const { return points_.size(); }
  const BatchOptions& options() const { return opts_; }

  // Runs all points x replications on the pool. result[point][replication],
  // in submission order.
  std::vector<std::vector<ExperimentResult>> run() const;

 private:
  BatchOptions opts_;
  std::vector<ExperimentConfig> points_;
};

}  // namespace muzha
