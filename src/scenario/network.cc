#include "scenario/network.h"

#include "core/bandwidth_estimator.h"
#include "core/drai.h"
#include "net/node.h"
#include "phy/channel.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "relwork/ecn.h"
#include "routing/aodv.h"
#include "routing/static_routing.h"
#include "sim/assert.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace muzha {

Network::Network(std::uint64_t seed, PhyParams phy, NodeConfig node_cfg,
                 ChannelMode channel_mode)
    : sim_(seed), channel_(sim_, phy, channel_mode), node_cfg_(node_cfg) {}

Node& Network::add_node(Position pos) {
  return add_node(pos, static_cast<NodeId>(nodes_.size()));
}

Node& Network::add_node(Position pos, NodeId id) {
  MUZHA_ASSERT(nodes_.empty() || nodes_.back()->id() < id,
               "node ids must be added in increasing order");
  nodes_.push_back(std::make_unique<Node>(sim_, channel_, id, pos, node_cfg_));
  return *nodes_.back();
}

void Network::use_aodv() {
  for (auto& n : nodes_) {
    n->set_routing(std::make_unique<Aodv>(sim_, *n));
  }
}

void Network::use_static_routing() {
  for (auto& n : nodes_) {
    n->set_routing(std::make_unique<StaticRouting>(*n));
  }
}

StaticRouting& Network::static_routing(std::size_t i) {
  auto* r = dynamic_cast<StaticRouting*>(&nodes_[i]->routing());
  MUZHA_ASSERT(r != nullptr, "node is not using static routing");
  return *r;
}

void Network::enable_muzha_routers(DraiConfig cfg) {
  drai_sources_.clear();
  drai_sources_.reserve(nodes_.size());
  for (auto& n : nodes_) {
    auto est = std::make_unique<BandwidthEstimator>(sim_, n->device(), cfg);
    est->start();
    n->set_drai_source(est.get());
    drai_sources_.push_back(std::move(est));
  }
}

void Network::enable_red_ecn_routers(RedParams params) {
  drai_sources_.clear();
  drai_sources_.reserve(nodes_.size());
  for (auto& n : nodes_) {
    auto marker = std::make_unique<RedEcnMarker>(sim_, n->device(), params);
    n->set_drai_source(marker.get());
    drai_sources_.push_back(std::move(marker));
  }
}

BandwidthEstimator* Network::estimator(std::size_t i) {
  if (i >= drai_sources_.size()) return nullptr;
  return dynamic_cast<BandwidthEstimator*>(drai_sources_[i].get());
}

std::vector<NodeId> build_chain(Network& net, int hops, Meters spacing) {
  MUZHA_ASSERT(hops >= 1, "chain needs at least one hop");
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(hops) + 1);
  for (int i = 0; i <= hops; ++i) {
    ids.push_back(net.add_node({spacing.value() * i, 0.0}).id());
  }
  return ids;
}

CrossTopology build_cross(Network& net, int hops, Meters spacing) {
  MUZHA_ASSERT(hops >= 2 && hops % 2 == 0, "cross needs an even hop count");
  CrossTopology topo;
  int half = hops / 2;
  // Horizontal arm: y = 0, x in [-half .. +half] * spacing.
  for (int i = -half; i <= half; ++i) {
    topo.horizontal.push_back(net.add_node({spacing.value() * i, 0.0}).id());
  }
  NodeId center = topo.horizontal[static_cast<std::size_t>(half)];
  // Vertical arm shares the centre node.
  for (int i = -half; i <= half; ++i) {
    if (i == 0) {
      topo.vertical.push_back(center);
    } else {
      topo.vertical.push_back(net.add_node({0.0, spacing.value() * i}).id());
    }
  }
  return topo;
}

std::vector<NodeId> build_grid(Network& net, int rows, int cols,
                               Meters spacing) {
  MUZHA_ASSERT(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      ids.push_back(
          net.add_node({spacing.value() * c, spacing.value() * r}).id());
    }
  }
  return ids;
}

ParallelChains build_parallel_chains(Network& net, int hops, Meters spacing,
                                     Meters gap) {
  ParallelChains out;
  for (int i = 0; i <= hops; ++i) {
    out.top.push_back(net.add_node({spacing.value() * i, 0.0}).id());
  }
  for (int i = 0; i <= hops; ++i) {
    out.bottom.push_back(net.add_node({spacing.value() * i, gap.value()}).id());
  }
  return out;
}

namespace {
bool is_connected(Network& net, std::size_t first, std::size_t count,
                  Meters range) {
  std::vector<bool> seen(count, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    Position pu = net.node(first + u).device().phy().position();
    for (std::size_t v = 0; v < count; ++v) {
      if (seen[v]) continue;
      Position pv = net.node(first + v).device().phy().position();
      if (distance(pu, pv) <= range) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == count;
}
}  // namespace

std::vector<NodeId> build_random_connected(Network& net, int n, Meters width,
                                           Meters height, int max_attempts) {
  MUZHA_ASSERT(n >= 1, "need at least one node");
  std::size_t first = net.size();
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids.push_back(net.add_node({0, 0}).id());
  }
  Meters range = net.channel().params().rx_range;
  Rng& rng = net.sim().rng();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    for (int i = 0; i < n; ++i) {
      net.node(first + i).device().phy().set_position(
          {rng.uniform(0, width.value()), rng.uniform(0, height.value())});
    }
    if (is_connected(net, first, static_cast<std::size_t>(n), range)) {
      return ids;
    }
  }
  MUZHA_ASSERT(false,
               "could not draw a connected random topology; "
               "increase density or attempts");
  return ids;
}

}  // namespace muzha
