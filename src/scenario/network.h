// Network: one simulation instance — simulator, channel, nodes, routing and
// (optionally) Muzha router assistance.
#pragma once

#include <memory>
#include <vector>

#include "core/bandwidth_estimator.h"
#include "core/drai.h"
#include "net/agent.h"
#include "net/node.h"
#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/phy_params.h"
#include "phy/position.h"
#include "pkt/packet.h"
#include "relwork/ecn.h"
#include "routing/static_routing.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1, PhyParams phy = {},
                   NodeConfig node_cfg = {},
                   ChannelMode channel_mode = ChannelMode::kSpatialIndex);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  Channel& channel() { return channel_; }

  Node& add_node(Position pos);
  // Adds a node with an explicit id. Used by sharded runs, where each shard's
  // network hosts a SUBSET of the global node set but ids must stay globally
  // unique (frames cross shards carrying NodeId addresses). Within one
  // network, ids must still be distinct and added in increasing order so the
  // local index -> id mapping stays monotonic.
  Node& add_node(Position pos, NodeId id);
  Node& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }

  // Installs AODV on every node (the paper's Table 5.1 routing protocol).
  void use_aodv();

  // Installs static next-hop routing; the caller fills the tables via
  // static_routing(i).
  void use_static_routing();
  class StaticRouting& static_routing(std::size_t i);

  // Attaches a Muzha bandwidth estimator / DRAI source to every node
  // (routers assist all passing Muzha flows).
  void enable_muzha_routers(DraiConfig cfg = {});
  BandwidthEstimator* estimator(std::size_t i);

  // Attaches RED/ECN single-bit markers instead (the paper's Sec. 3.2
  // comparison point). Mutually exclusive with enable_muzha_routers.
  void enable_red_ecn_routers(struct RedParams params);

  void set_error_model(std::unique_ptr<ErrorModel> em) {
    channel_.set_error_model(std::move(em));
  }

  void run_until(SimTime t) { sim_.run_until(t); }

 private:
  Simulator sim_;
  Channel channel_;
  NodeConfig node_cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<DraiSource>> drai_sources_;
};

// Chain topology (Fig 5.1): hops+1 nodes on a line, neighbours `spacing`
// apart (250 m: exactly one-hop connectivity).
std::vector<NodeId> build_chain(Network& net, int hops,
                                Meters spacing = Meters(250.0));

// Cross topology (Fig 5.15): a horizontal and a vertical chain of `hops`
// hops sharing the centre node (4-hop cross = 9 nodes). Returns
// {horizontal node ids, vertical node ids}; the vertical list reuses the
// shared centre node id.
struct CrossTopology {
  std::vector<NodeId> horizontal;
  std::vector<NodeId> vertical;
};
CrossTopology build_cross(Network& net, int hops,
                          Meters spacing = Meters(250.0));

// Rectangular grid: rows x cols nodes, `spacing` apart. Returns ids in
// row-major order. Gives multihop scenarios with route diversity (unlike the
// chain, a broken link is routable-around).
std::vector<NodeId> build_grid(Network& net, int rows, int cols,
                               Meters spacing = Meters(200.0));

// Two parallel chains of `hops` hops, `gap` apart vertically — close
// enough to interfere, far enough not to forward for each other when
// `gap` > decode range. Returns {top chain ids, bottom chain ids}.
struct ParallelChains {
  std::vector<NodeId> top;
  std::vector<NodeId> bottom;
};
ParallelChains build_parallel_chains(Network& net, int hops,
                                     Meters spacing = Meters(250.0),
                                     Meters gap = Meters(300.0));

// Uniform random placement in a rectangle, rejected and resampled until the
// connectivity graph (decode-range links) is connected. Returns node ids.
std::vector<NodeId> build_random_connected(Network& net, int n, Meters width,
                                           Meters height,
                                           int max_attempts = 100);

}  // namespace muzha
