#include "scenario/experiment.h"

#include <deque>

#include "app/cbr.h"
#include "core/tcp_muzha.h"
#include "net/node.h"
#include "phy/channel.h"
#include "phy/error_model.h"
#include "pkt/packet.h"
#include "relwork/adtcp.h"
#include "relwork/ecn.h"
#include "relwork/tcp_door.h"
#include "relwork/tcp_jersey.h"
#include "relwork/tcp_rovegas.h"
#include "relwork/tcp_westwood.h"
#include "scenario/city.h"
#include "scenario/mobility.h"
#include "scenario/network.h"
#include "scenario/sharded_experiment.h"
#include "sim/assert.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "stats/time_series.h"
#include "tcp/tcp_agent.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"
#include "tcp/tcp_vegas.h"

namespace muzha {

const char* variant_name(TcpVariant v) {
  switch (v) {
    case TcpVariant::kTahoe:
      return "Tahoe";
    case TcpVariant::kReno:
      return "Reno";
    case TcpVariant::kNewReno:
      return "NewReno";
    case TcpVariant::kSack:
      return "SACK";
    case TcpVariant::kVegas:
      return "Vegas";
    case TcpVariant::kMuzha:
      return "Muzha";
    case TcpVariant::kDoor:
      return "DOOR";
    case TcpVariant::kAdtcp:
      return "ADTCP";
    case TcpVariant::kJersey:
      return "Jersey";
    case TcpVariant::kRoVegas:
      return "RoVegas";
    case TcpVariant::kNewRenoEcn:
      return "NewReno+ECN";
    case TcpVariant::kWestwood:
      return "Westwood";
  }
  return "?";
}

std::unique_ptr<TcpAgent> make_tcp_agent(TcpVariant v, Simulator& sim,
                                         Node& node, TcpConfig cfg) {
  switch (v) {
    case TcpVariant::kTahoe:
      return std::make_unique<TcpTahoe>(sim, node, cfg);
    case TcpVariant::kReno:
      return std::make_unique<TcpReno>(sim, node, cfg);
    case TcpVariant::kNewReno:
      return std::make_unique<TcpNewReno>(sim, node, cfg);
    case TcpVariant::kSack:
      return std::make_unique<TcpSack>(sim, node, cfg);
    case TcpVariant::kVegas:
      return std::make_unique<TcpVegas>(sim, node, cfg);
    case TcpVariant::kMuzha:
      return std::make_unique<TcpMuzha>(sim, node, cfg);
    case TcpVariant::kDoor:
      return std::make_unique<TcpDoor>(sim, node, cfg);
    case TcpVariant::kAdtcp:
      return std::make_unique<AdtcpSender>(sim, node, cfg);
    case TcpVariant::kJersey:
      return std::make_unique<TcpJersey>(sim, node, cfg);
    case TcpVariant::kRoVegas:
      return std::make_unique<TcpRoVegas>(sim, node, cfg);
    case TcpVariant::kNewRenoEcn:
      return std::make_unique<TcpNewRenoEcn>(sim, node, cfg);
    case TcpVariant::kWestwood:
      return std::make_unique<TcpWestwood>(sim, node, cfg);
  }
  return nullptr;
}

BitsPerSecond ExperimentResult::total_throughput() const {
  BitsPerSecond t = BitsPerSecond(0.0);
  for (const FlowResult& f : flows) t += f.throughput;
  return t;
}

std::vector<double> ExperimentResult::flow_throughputs() const {
  std::vector<double> out;
  out.reserve(flows.size());
  for (const FlowResult& f : flows) out.push_back(f.throughput.value());
  return out;
}

namespace {

// Fills every node's static table with BFS shortest-path next hops over the
// 250 m connectivity graph.
void install_static_routes(Network& net) {
  const std::size_t n = net.size();
  Meters rx_range = net.channel().params().rx_range;
  // Adjacency from positions.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      Meters d = distance(net.node(i).device().phy().position(),
                          net.node(j).device().phy().position());
      if (d <= rx_range) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  // BFS from every destination; predecessor hop toward dst becomes the next
  // hop in each node's table.
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<std::size_t> next(n, SIZE_MAX);
    std::vector<bool> seen(n, false);
    std::deque<std::size_t> q{dst};
    seen[dst] = true;
    while (!q.empty()) {
      std::size_t u = q.front();
      q.pop_front();
      for (std::size_t v : adj[u]) {
        if (seen[v]) continue;
        seen[v] = true;
        next[v] = u;  // v's next hop toward dst is u
        q.push_back(v);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i == dst || next[i] == SIZE_MAX) continue;
      net.static_routing(i).add_route(net.node(dst).id(),
                                      net.node(next[i]).id());
    }
  }
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.shards != 1) return run_sharded_experiment(cfg);
  MUZHA_ASSERT(!cfg.flows.empty(), "experiment needs at least one flow");
  Network net(cfg.seed, {}, {},
              cfg.brute_force_channel ? ChannelMode::kBruteForce
                                      : ChannelMode::kSpatialIndex);

  // Topology.
  switch (cfg.topology) {
    case TopologyKind::kChain:
      build_chain(net, cfg.hops);
      break;
    case TopologyKind::kCross:
      build_cross(net, cfg.hops);
      break;
    case TopologyKind::kRandomField:
      build_random_field(net, cfg.field);
      break;
    case TopologyKind::kManhattanGrid:
      build_manhattan_field(net, cfg.field);
      break;
  }

  // Random-waypoint motion over the node's district rectangle (the whole
  // field when districts == 1 — identical config values to the pre-district
  // code, so the draw sequence is unchanged).
  std::vector<std::unique_ptr<RandomWaypointMobility>> mobility;
  if ((cfg.topology == TopologyKind::kRandomField ||
       cfg.topology == TopologyKind::kManhattanGrid) &&
      cfg.field.mobile) {
    mobility.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      Rect r = district_rect(cfg.field, district_of(cfg.field, i));
      RandomWaypointMobility::Config mc;
      mc.min_x = r.x0;
      mc.max_x = r.x1;
      mc.min_y = r.y0;
      mc.max_y = r.y1;
      mc.min_speed = cfg.field.min_speed;
      mc.max_speed = cfg.field.max_speed;
      mc.pause = cfg.field.pause;
      mc.tick = cfg.field.mobility_tick;
      mobility.push_back(std::make_unique<RandomWaypointMobility>(
          net.sim(), net.node(i), mc));
      mobility.back()->start();
    }
  }

  // Routing.
  if (cfg.static_routing) {
    net.use_static_routing();
    install_static_routes(net);
  } else {
    net.use_aodv();
  }

  // Router assistance: Muzha needs DRAI stamping; Jersey needs the router
  // congestion-warning marks that the same estimator produces; NewReno+ECN
  // needs RED/ECN markers instead (single-bit).
  bool any_router_assisted = false;
  bool any_ecn = false;
  for (const FlowSpec& f : cfg.flows) {
    if (f.variant == TcpVariant::kMuzha || f.variant == TcpVariant::kJersey) {
      any_router_assisted = true;
    }
    if (f.variant == TcpVariant::kNewRenoEcn) any_ecn = true;
  }
  bool routers_on = cfg.muzha_routers == ExperimentConfig::Routers::kOn ||
                    (cfg.muzha_routers == ExperimentConfig::Routers::kAuto &&
                     any_router_assisted);
  if (routers_on) {
    net.enable_muzha_routers(cfg.drai);
  } else if (any_ecn) {
    net.enable_red_ecn_routers(cfg.red);
  }

  // Random loss.
  if (cfg.uniform_error_rate > 0.0) {
    net.set_error_model(std::make_unique<UniformErrorModel>(
        Probability(cfg.uniform_error_rate)));
  }

  // Flows.
  struct FlowInstance {
    std::unique_ptr<TcpAgent> agent;
    std::unique_ptr<TcpSink> sink;
    CwndTracer cwnd;
    std::unique_ptr<ThroughputSampler> sampler;
  };
  std::vector<FlowInstance> instances;
  instances.reserve(cfg.flows.size());
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    const FlowSpec& f = cfg.flows[i];
    MUZHA_ASSERT(f.src < net.size() && f.dst < net.size(),
                 "flow endpoints out of range");
    MUZHA_ASSERT(f.src != f.dst, "flow endpoints must differ");
    FlowInstance inst;
    TcpConfig tc;
    tc.dst = net.node(f.dst).id();
    tc.src_port = static_cast<std::uint16_t>(1000 + i);
    tc.dst_port = static_cast<std::uint16_t>(2000 + i);
    tc.flow = static_cast<FlowId>(i);
    tc.packet_size = Bytes(kSegmentBytes);
    tc.window = f.window;
    inst.agent = make_tcp_agent(f.variant, net.sim(), net.node(f.src), tc);
    if (auto* m = dynamic_cast<TcpMuzha*>(inst.agent.get())) {
      m->set_loss_discrimination(cfg.muzha_loss_discrimination);
    }

    TcpSink::Config sc;
    sc.port = tc.dst_port;
    if (f.variant == TcpVariant::kAdtcp) {
      // ADTCP is receiver-assisted: its sink measures and classifies.
      inst.sink = std::make_unique<AdtcpSink>(net.sim(), net.node(f.dst), sc);
    } else {
      inst.sink = std::make_unique<TcpSink>(net.sim(), net.node(f.dst), sc);
    }
    inst.sink->start();
    inst.sampler =
        std::make_unique<ThroughputSampler>(cfg.throughput_bin, kPayloadBytes);
    inst.sampler->attach(*inst.sink);

    TcpAgent* agent = inst.agent.get();
    net.sim().schedule_at(f.start_time, [agent] { agent->start(); });
    instances.push_back(std::move(inst));
    // Attach the tracer only once the instance has its final address (the
    // vector was reserved above, so later pushes do not relocate it).
    instances.back().cwnd.attach(*instances.back().agent);
  }

  // Background CBR load.
  std::vector<std::unique_ptr<CbrApp>> cbr_apps;
  cbr_apps.reserve(cfg.cbr_flows.size());
  for (const CbrFlowSpec& c : cfg.cbr_flows) {
    MUZHA_ASSERT(c.src < net.size() && c.dst < net.size(),
                 "CBR endpoints out of range");
    MUZHA_ASSERT(c.src != c.dst, "CBR endpoints must differ");
    CbrApp::Config cc;
    cc.dst = net.node(c.dst).id();
    cc.packet_size_bytes = c.packet_size_bytes;
    cc.rate = c.rate;
    cc.start_time = c.start_time;
    cbr_apps.push_back(
        std::make_unique<CbrApp>(net.sim(), net.node(c.src), cc));
    cbr_apps.back()->install();
  }

  net.run_until(cfg.duration);

  // Collect.
  ExperimentResult result;
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    const FlowSpec& f = cfg.flows[i];
    FlowInstance& inst = instances[i];
    FlowResult r;
    r.variant = f.variant;
    r.delivered = inst.sink->delivered();
    r.duration = Seconds((cfg.duration - f.start_time).to_seconds());
    r.throughput =
        r.duration > Seconds(0.0)
            ? Bits(static_cast<std::int64_t>(r.delivered) * kPayloadBytes * 8) /
                  r.duration
            : BitsPerSecond(0.0);
    r.packets_sent = inst.agent->packets_sent();
    r.retransmissions = inst.agent->retransmissions();
    r.timeouts = inst.agent->timeouts();
    r.cwnd_trace = inst.cwnd.series();
    r.throughput_series = inst.sampler->series();
    if (auto* m = dynamic_cast<TcpMuzha*>(inst.agent.get())) {
      r.marked_loss_events = m->marked_loss_events();
      r.unmarked_loss_events = m->unmarked_loss_events();
    }
    result.flows.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < net.size(); ++i) {
    result.ifq_drops += net.node(i).device().queue().drops();
    result.mac_retry_drops += net.node(i).device().mac().drops_retry_limit();
    result.phy_collisions += net.node(i).device().phy().collisions();
  }
  result.channel_error_losses = net.channel().frames_corrupted_by_error();
  for (const auto& app : cbr_apps) result.cbr_packets_sent += app->packets_sent();
  return result;
}

}  // namespace muzha
