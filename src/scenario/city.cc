#include "scenario/city.h"

#include <cmath>

#include "scenario/batch_runner.h"
#include "sim/assert.h"

namespace muzha {

std::vector<NodeId> build_random_field(Network& net, const FieldConfig& f) {
  MUZHA_ASSERT(f.nodes >= 2, "field needs at least two nodes");
  Rng& rng = net.sim().rng();
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(f.nodes));
  for (int i = 0; i < f.nodes; ++i) {
    ids.push_back(net.add_node({rng.uniform(0.0, f.width.value()),
                                rng.uniform(0.0, f.height.value())})
                      .id());
  }
  return ids;
}

std::vector<NodeId> build_manhattan_field(Network& net, const FieldConfig& f) {
  MUZHA_ASSERT(f.nodes >= 2, "field needs at least two nodes");
  MUZHA_ASSERT(f.street_pitch.value() > 0.0, "street pitch must be positive");
  Rng& rng = net.sim().rng();
  // Streets run the full width/height at multiples of the pitch, both axes.
  std::int64_t h_streets =
      static_cast<std::int64_t>(std::floor(f.height.value() / f.street_pitch.value())) + 1;
  std::int64_t v_streets =
      static_cast<std::int64_t>(std::floor(f.width.value() / f.street_pitch.value())) + 1;
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(f.nodes));
  for (int i = 0; i < f.nodes; ++i) {
    Position p;
    // Pick a street uniformly among all streets, then a point along it.
    std::int64_t street = rng.uniform_int(0, h_streets + v_streets - 1);
    if (street < h_streets) {
      p.y = f.street_pitch.value() * static_cast<double>(street);
      p.x = rng.uniform(0.0, f.width.value());
    } else {
      p.x = f.street_pitch.value() * static_cast<double>(street - h_streets);
      p.y = rng.uniform(0.0, f.height.value());
    }
    ids.push_back(net.add_node(p).id());
  }
  return ids;
}

namespace {

// Private counter-mode SplitMix64 stream for traffic generation; keeps flow
// patterns independent of the simulation RNG.
class FlowRng {
 public:
  explicit FlowRng(std::uint64_t seed) : seed_(seed) {}
  std::uint64_t next() { return splitmix64(seed_ ^ counter_++); }
  // Uniform in [0, n) by rejection-free modulo — bias is irrelevant for
  // scenario generation and modulo keeps the stream trivially portable.
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double unit() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace

std::vector<FlowSpec> make_random_flows(int count, int nodes, TcpVariant v,
                                        std::uint64_t flow_seed,
                                        SimTime start_window, int window) {
  MUZHA_ASSERT(nodes >= 2, "flows need at least two nodes");
  FlowRng rng(flow_seed);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowSpec f;
    f.variant = v;
    f.window = window;
    f.src = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      f.dst = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (f.dst == f.src);
    f.start_time = SimTime::from_ns(static_cast<std::int64_t>(
        rng.unit() * static_cast<double>(start_window.ns())));
    flows.push_back(f);
  }
  return flows;
}

std::vector<CbrFlowSpec> make_random_cbr_flows(int count, int nodes,
                                               BitsPerSecond rate,
                                               std::uint64_t flow_seed,
                                               SimTime start_window) {
  MUZHA_ASSERT(nodes >= 2, "flows need at least two nodes");
  // Offset the seed so CBR pairs differ from the FTP pairs drawn from the
  // same flow_seed.
  FlowRng rng(splitmix64(flow_seed ^ 0xCB12CB12CB12CB12ull));
  std::vector<CbrFlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    CbrFlowSpec f;
    f.rate = rate;
    f.src = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      f.dst = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (f.dst == f.src);
    f.start_time = SimTime::from_ns(static_cast<std::int64_t>(
        rng.unit() * static_cast<double>(start_window.ns())));
    flows.push_back(f);
  }
  return flows;
}

ExperimentConfig make_city_config(const CityConfig& city) {
  MUZHA_ASSERT(city.placement == TopologyKind::kRandomField ||
                   city.placement == TopologyKind::kManhattanGrid,
               "city placement must be a field topology");
  ExperimentConfig cfg;
  cfg.topology = city.placement;
  cfg.field = city.field;
  cfg.duration = city.duration;
  cfg.seed = city.seed;
  cfg.flows = make_random_flows(city.ftp_flows, city.field.nodes, city.variant,
                                city.flow_seed, city.flow_start_window);
  cfg.cbr_flows =
      make_random_cbr_flows(city.cbr_flows, city.field.nodes, city.cbr_rate,
                            city.flow_seed, city.flow_start_window);
  return cfg;
}

}  // namespace muzha
