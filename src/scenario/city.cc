#include "scenario/city.h"

#include <cmath>

#include "phy/position.h"
#include "pkt/packet.h"
#include "scenario/batch_runner.h"
#include "scenario/experiment.h"
#include "scenario/network.h"
#include "sim/assert.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "sim/units.h"

namespace muzha {

Rect district_rect(const FieldConfig& f, int d) {
  MUZHA_ASSERT(f.districts >= 1 && d >= 0 && d < f.districts,
               "district index out of range");
  if (f.districts == 1) return Rect{0.0, f.width.value(), 0.0, f.height.value()};
  double strip = (f.width.value() -
                  static_cast<double>(f.districts - 1) * f.district_gap.value()) /
                 static_cast<double>(f.districts);
  MUZHA_ASSERT(strip > 0.0, "district gaps exceed the field width");
  double x0 = static_cast<double>(d) * (strip + f.district_gap.value());
  return Rect{x0, x0 + strip, 0.0, f.height.value()};
}

std::vector<Position> field_positions(TopologyKind kind, const FieldConfig& f,
                                      Rng& rng) {
  MUZHA_ASSERT(f.nodes >= 2, "field needs at least two nodes");
  std::vector<Position> out;
  out.reserve(static_cast<std::size_t>(f.nodes));
  if (kind == TopologyKind::kRandomField) {
    for (int i = 0; i < f.nodes; ++i) {
      // districts == 1: rect is {0, width} x {0, height}, so these are the
      // exact draws (same arguments, same order) of the pre-district builder.
      Rect r = district_rect(f, district_of(f, static_cast<std::size_t>(i)));
      out.push_back({rng.uniform(r.x0, r.x1), rng.uniform(r.y0, r.y1)});
    }
    return out;
  }
  MUZHA_ASSERT(kind == TopologyKind::kManhattanGrid,
               "field_positions handles field topologies only");
  MUZHA_ASSERT(f.street_pitch.value() > 0.0, "street pitch must be positive");
  for (int i = 0; i < f.nodes; ++i) {
    // Per-district street grid: horizontal streets span the strip at pitch
    // multiples of the field, vertical streets at pitch multiples from the
    // strip's left edge. districts == 1 reduces to the original full-field
    // grid with an identical draw sequence.
    Rect r = district_rect(f, district_of(f, static_cast<std::size_t>(i)));
    std::int64_t h_streets =
        static_cast<std::int64_t>(
            std::floor((r.y1 - r.y0) / f.street_pitch.value())) +
        1;
    std::int64_t v_streets =
        static_cast<std::int64_t>(
            std::floor((r.x1 - r.x0) / f.street_pitch.value())) +
        1;
    Position p;
    // Pick a street uniformly among all streets, then a point along it.
    std::int64_t street = rng.uniform_int(0, h_streets + v_streets - 1);
    if (street < h_streets) {
      p.y = r.y0 + f.street_pitch.value() * static_cast<double>(street);
      p.x = rng.uniform(r.x0, r.x1);
    } else {
      p.x = r.x0 + f.street_pitch.value() * static_cast<double>(street - h_streets);
      p.y = rng.uniform(r.y0, r.y1);
    }
    out.push_back(p);
  }
  return out;
}

std::vector<NodeId> build_random_field(Network& net, const FieldConfig& f) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(f.nodes));
  for (Position p :
       field_positions(TopologyKind::kRandomField, f, net.sim().rng())) {
    ids.push_back(net.add_node(p).id());
  }
  return ids;
}

std::vector<NodeId> build_manhattan_field(Network& net, const FieldConfig& f) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(f.nodes));
  for (Position p :
       field_positions(TopologyKind::kManhattanGrid, f, net.sim().rng())) {
    ids.push_back(net.add_node(p).id());
  }
  return ids;
}

namespace {

// Private counter-mode SplitMix64 stream for traffic generation; keeps flow
// patterns independent of the simulation RNG.
class FlowRng {
 public:
  explicit FlowRng(std::uint64_t seed) : seed_(seed) {}
  std::uint64_t next() { return splitmix64(seed_ ^ counter_++); }
  // Uniform in [0, n) by rejection-free modulo — bias is irrelevant for
  // scenario generation and modulo keeps the stream trivially portable.
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double unit() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace

std::vector<FlowSpec> make_random_flows(int count, int nodes, TcpVariant v,
                                        std::uint64_t flow_seed,
                                        SimTime start_window, int window) {
  MUZHA_ASSERT(nodes >= 2, "flows need at least two nodes");
  FlowRng rng(flow_seed);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowSpec f;
    f.variant = v;
    f.window = window;
    f.src = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      f.dst = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (f.dst == f.src);
    f.start_time = SimTime::from_ns(static_cast<std::int64_t>(
        rng.unit() * static_cast<double>(start_window.ns())));
    flows.push_back(f);
  }
  return flows;
}

std::vector<CbrFlowSpec> make_random_cbr_flows(int count, int nodes,
                                               BitsPerSecond rate,
                                               std::uint64_t flow_seed,
                                               SimTime start_window) {
  MUZHA_ASSERT(nodes >= 2, "flows need at least two nodes");
  // Offset the seed so CBR pairs differ from the FTP pairs drawn from the
  // same flow_seed.
  FlowRng rng(splitmix64(flow_seed ^ 0xCB12CB12CB12CB12ull));
  std::vector<CbrFlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    CbrFlowSpec f;
    f.rate = rate;
    f.src = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      f.dst = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (f.dst == f.src);
    f.start_time = SimTime::from_ns(static_cast<std::int64_t>(
        rng.unit() * static_cast<double>(start_window.ns())));
    flows.push_back(f);
  }
  return flows;
}

std::vector<FlowSpec> make_random_district_flows(int count,
                                                 const FieldConfig& f,
                                                 TcpVariant v,
                                                 std::uint64_t flow_seed,
                                                 SimTime start_window,
                                                 int window) {
  MUZHA_ASSERT(f.districts >= 1, "need at least one district");
  MUZHA_ASSERT(f.nodes >= 2 * f.districts,
               "district flows need two nodes per district");
  FlowRng rng(flow_seed);
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    int d = j % f.districts;
    // Members of district d are {d, d + D, d + 2D, ...}.
    std::uint64_t members = static_cast<std::uint64_t>(
        (f.nodes - d + f.districts - 1) / f.districts);
    FlowSpec spec;
    spec.variant = v;
    spec.window = window;
    spec.src = static_cast<std::size_t>(d) +
               static_cast<std::size_t>(rng.below(members)) *
                   static_cast<std::size_t>(f.districts);
    do {
      spec.dst = static_cast<std::size_t>(d) +
                 static_cast<std::size_t>(rng.below(members)) *
                     static_cast<std::size_t>(f.districts);
    } while (spec.dst == spec.src);
    spec.start_time = SimTime::from_ns(static_cast<std::int64_t>(
        rng.unit() * static_cast<double>(start_window.ns())));
    flows.push_back(spec);
  }
  return flows;
}

ExperimentConfig make_city_config(const CityConfig& city) {
  MUZHA_ASSERT(city.placement == TopologyKind::kRandomField ||
                   city.placement == TopologyKind::kManhattanGrid,
               "city placement must be a field topology");
  ExperimentConfig cfg;
  cfg.topology = city.placement;
  cfg.field = city.field;
  cfg.duration = city.duration;
  cfg.seed = city.seed;
  cfg.flows = make_random_flows(city.ftp_flows, city.field.nodes, city.variant,
                                city.flow_seed, city.flow_start_window);
  cfg.cbr_flows =
      make_random_cbr_flows(city.cbr_flows, city.field.nodes, city.cbr_rate,
                            city.flow_seed, city.flow_start_window);
  return cfg;
}

}  // namespace muzha
