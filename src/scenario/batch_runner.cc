#include "scenario/batch_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "scenario/experiment.h"

namespace muzha {

std::vector<ExperimentResult> run_batch(
    const std::vector<ExperimentConfig>& configs, int jobs) {
  const std::size_t n = configs.size();
  std::vector<ExperimentResult> results(n);
  if (n == 0) return results;

  std::size_t workers = jobs > 0 ? static_cast<std::size_t>(jobs)
                                 : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > n) workers = n;

  if (workers == 1) {
    // Run inline: identical semantics, no pool overhead, and keeps
    // single-threaded debugging trivial.
    for (std::size_t i = 0; i < n; ++i) results[i] = run_experiment(configs[i]);
    return results;
  }

  // Each worker claims the next unstarted index and writes only its own
  // result slot, so submission order is preserved by construction and no
  // two threads ever touch the same element.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      // muzha-lint: allow(relaxed-atomic): ticket counter needs only increment atomicity; the result slots it indexes are published by the join below, not by this fetch_add
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = run_experiment(configs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::size_t BatchRunner::add_point(ExperimentConfig cfg) {
  points_.push_back(std::move(cfg));
  return points_.size() - 1;
}

std::vector<std::vector<ExperimentResult>> BatchRunner::run() const {
  const std::size_t reps = opts_.replications == 0 ? 1 : opts_.replications;
  // Flatten points x replications into one run list (replication-major within
  // each point) so the pool load-balances across everything at once.
  std::vector<ExperimentConfig> flat;
  flat.reserve(points_.size() * reps);
  for (std::size_t p = 0; p < points_.size(); ++p) {
    for (std::size_t r = 0; r < reps; ++r) {
      ExperimentConfig cfg = points_[p];
      cfg.seed = derive_run_seed(opts_.base_seed, p, r);
      flat.push_back(std::move(cfg));
    }
  }
  std::vector<ExperimentResult> flat_results = run_batch(flat, opts_.jobs);
  std::vector<std::vector<ExperimentResult>> out(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    out[p].reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      out[p].push_back(std::move(flat_results[p * reps + r]));
    }
  }
  return out;
}

}  // namespace muzha
