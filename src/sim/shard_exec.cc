#include "sim/shard_exec.h"

#include <algorithm>

#include "sim/assert.h"

namespace muzha {

ShardExecutor::ShardExecutor(int shards, int jobs) : shards_(shards) {
  MUZHA_ASSERT(shards >= 1, "ShardExecutor needs at least one shard");
  const int n = std::min(shards, std::max(jobs, 1));
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::run_phase(const std::function<void(int shard)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  MUZHA_DCHECK(phase_fn_ == nullptr, "run_phase re-entered from a phase");
  phase_fn_ = &fn;
  workers_done_ = 0;
  ++phase_gen_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] {
    return workers_done_ == static_cast<int>(threads_.size());
  });
  phase_fn_ = nullptr;
}

void ShardExecutor::worker_main(int worker) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || phase_gen_ != seen_gen; });
      if (shutdown_) return;
      seen_gen = phase_gen_;
      fn = phase_fn_;
    }
    // Each worker walks ITS shards in ascending order, outside the lock:
    // workers run their disjoint shard sets concurrently, and within a
    // worker the order is fixed so thread-local state (the packet arena)
    // sees the same sequence at any worker count.
    const int stride = static_cast<int>(threads_.size());
    for (int shard = worker; shard < shards_; shard += stride) {
      (*fn)(shard);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace muzha
