// Invariant checks for the simulator.
//
// Two tiers:
//
//   MUZHA_ASSERT — always on, release builds included. Simulation bugs
//   usually manifest far from their cause; these stay enabled so broken
//   invariants fail loudly at the point of violation instead of producing
//   silently wrong results. Reserve them for cheap checks on cold or
//   already-branchy paths.
//
//   MUZHA_DCHECK — debug-build instrumentation, compiled out entirely in
//   release builds (the condition is not evaluated), so hot-path checks cost
//   nothing in tier-1 runs. Enabled by -DMUZHA_DCHECKS=ON (CMake turns them
//   on automatically for Debug and sanitized builds). Use them for packet
//   layer discipline, scheduler slot/heap consistency, DRAI range checks and
//   other per-event invariants too hot for MUZHA_ASSERT.
//
// Both report file:line plus the failed expression and abort, so sanitizer
// runs get a precise stack.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MUZHA_ASSERT(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "MUZHA_ASSERT failed at %s:%d: %s -- %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifndef MUZHA_DCHECK_ENABLED
#define MUZHA_DCHECK_ENABLED 0
#endif

#if MUZHA_DCHECK_ENABLED
#define MUZHA_DCHECK(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "MUZHA_DCHECK failed at %s:%d: %s -- %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)
#else
// Compiled out: the condition is type-checked but never evaluated, so
// release builds pay nothing (not even a branch) for debug instrumentation.
#define MUZHA_DCHECK(cond, msg)                                               \
  do {                                                                        \
    if (false) {                                                              \
      static_cast<void>(cond);                                                \
      static_cast<void>(msg);                                                 \
    }                                                                         \
  } while (0)
#endif
