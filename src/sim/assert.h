// Always-on invariant checks for the simulator.
//
// Simulation bugs usually manifest far from their cause; MUZHA_ASSERT keeps
// checks enabled in release builds so broken invariants fail loudly at the
// point of violation instead of producing silently wrong results.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MUZHA_ASSERT(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "MUZHA_ASSERT failed at %s:%d: %s -- %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)
