// Simulation time as integer nanoseconds.
//
// Integer time keeps event ordering exact and deterministic: two events
// scheduled for the "same" instant compare equal instead of differing in the
// last floating-point bit, and ties are then broken FIFO by the scheduler.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace muzha {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime from_us(std::int64_t us) {
    return SimTime(us * 1000);
  }
  static constexpr SimTime from_ms(std::int64_t ms) {
    return SimTime(ms * 1'000'000);
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime(a.ns_ * k);
  }
  // Fractional scaling goes through an explicit name to keep `t * 3`
  // unambiguous.
  constexpr SimTime scaled(double k) const {
    return SimTime::from_ns(
        static_cast<std::int64_t>(static_cast<double>(ns_) * k + 0.5));
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ / k);
  }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace muzha
