// Small-buffer, move-only callable — the event core's replacement for
// std::function.
//
// Every packet milestone in the simulator is a scheduled callback, so the
// per-event cost of type-erasing a lambda bounds whole-stack simulation rate.
// std::function heap-allocates once the capture list outgrows its tiny
// internal buffer and requires the callable to be copyable (forcing
// shared_ptr wrappers around move-only captures like PacketPtr).
// InlineFunction fixes both:
//
//  * 48 bytes of inline storage — every callback lambda in the stack (a
//    `this` pointer plus a few scalars or one PacketPtr) fits without
//    touching the heap. Larger callables still work via a heap fallback.
//  * move-only semantics — unique_ptr captures are taken directly.
//
// Type erasure uses two raw function pointers (invoke + manage) instead of a
// vtable, so an InlineFunction is exactly `kInlineCallbackSize + 16` bytes.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace muzha {

// Inline capture budget. 48 bytes holds a `this` pointer plus five words of
// captures; the allocation-counting test pins that schedule/fire of every
// stack callback stays heap-free at this size.
inline constexpr std::size_t kInlineCallbackSize = 48;

template <typename Signature>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  // Assign a raw callable in place — no temporary InlineFunction, no move
  // through the type-erasure layer (the scheduler's schedule path leans on
  // this).
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction& operator=(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  // True when the callable is stored in the inline buffer (no heap). Exposed
  // so tests can pin the zero-allocation guarantee per callable type.
  template <typename F>
  static constexpr bool stored_inline() {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  enum class Op { kDestroy, kMoveTo };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCallbackSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static R inline_invoke(unsigned char* s, Args... args) {
    return (*std::launder(reinterpret_cast<D*>(s)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static void inline_manage(Op op, unsigned char* self, unsigned char* dest) {
    D* f = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kMoveTo) ::new (static_cast<void*>(dest)) D(std::move(*f));
    f->~D();
  }

  template <typename D>
  static R heap_invoke(unsigned char* s, Args... args) {
    return (**reinterpret_cast<D**>(s))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void heap_manage(Op op, unsigned char* self, unsigned char* dest) {
    D** slot = reinterpret_cast<D**>(self);
    if (op == Op::kMoveTo) {
      *reinterpret_cast<D**>(dest) = *slot;
    } else {
      delete *slot;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kMoveTo, other.storage_, storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackSize];
  R (*invoke_)(unsigned char*, Args...) = nullptr;
  void (*manage_)(Op, unsigned char*, unsigned char*) = nullptr;
};

}  // namespace muzha
