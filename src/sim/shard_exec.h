// Persistent worker pool for conservative parallel (sharded) runs.
//
// A sharded run partitions one simulation into K independent event cores
// ("shards"). The executor owns min(K, jobs) OS threads and maps shard s to
// worker s % jobs — a STICKY assignment that never changes for the lifetime
// of the executor. Stickiness is load-bearing twice over:
//
//  - Determinism: every event of shard s executes on the same thread in the
//    same order regardless of how many workers exist, so per-thread state
//    (most importantly the thread_local PacketArena) sees an identical
//    allocation/release sequence whether jobs=1 or jobs=K.
//  - Arena ownership: PacketArena DCHECKs that a packet is released by the
//    arena that allocated it. All allocation AND teardown for a shard's
//    Network must happen on its owner worker — which is why run_phase() is
//    also used for destruction, and why the threads persist across the whole
//    build → run → collect → destroy lifecycle instead of being pooled per
//    phase.
//
// run_phase(fn) invokes fn(shard) for every shard on its owner worker and
// blocks the caller until all complete. Orchestration (the lookahead barrier,
// message routing, window selection) stays on the calling thread between
// phases, so cross-shard data structures need no locking at all: workers and
// orchestrator alternate, never overlap. The handoff is a mutex + condvar
// generation counter rather than std::barrier — the orchestrator must run
// BETWEEN phases, not as a barrier participant, and the explicit generation
// makes the happens-before edges obvious to TSan and to readers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace muzha {

class ShardExecutor {
 public:
  // Spawns min(shards, jobs) workers (at least one). jobs <= 0 is clamped
  // to 1.
  ShardExecutor(int shards, int jobs);
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;
  // Joins the workers. Callers must have already torn down per-shard state
  // via run_phase — the destructor runs no user code.
  ~ShardExecutor();

  int shards() const { return shards_; }
  int workers() const { return static_cast<int>(threads_.size()); }
  // The worker index that owns shard s (sticky for the executor lifetime).
  int owner_of(int shard) const { return shard % workers(); }

  // Runs fn(shard) for every shard on that shard's owner worker; returns
  // when all K calls have completed. Must be called from the orchestrator
  // thread (never from inside a phase). Exceptions must not escape fn —
  // simulation code reports failure via MUZHA_ASSERT, which aborts.
  void run_phase(const std::function<void(int shard)>& fn);

 private:
  void worker_main(int worker);

  const int shards_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // orchestrator -> workers
  std::condition_variable done_cv_;   // workers -> orchestrator
  const std::function<void(int)>* phase_fn_ = nullptr;  // valid while a
                                                        // phase is active
  std::uint64_t phase_gen_ = 0;  // bumped per run_phase; workers chase it
  int workers_done_ = 0;
  bool shutdown_ = false;
};

}  // namespace muzha
