#include "sim/log.h"

#include "sim/sim_time.h"

namespace muzha {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, SimTime now, const char* component,
                 const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(sink_, "[%11.6f] %-5s %-8s ", now.to_seconds(),
               level_name(level), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(sink_, fmt, args);
  va_end(args);
  std::fputc('\n', sink_);
}

}  // namespace muzha
