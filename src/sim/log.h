// Lightweight component-tagged logging.
//
// Logging is off (Warn) by default so hot paths stay cheap; tests and
// debugging sessions raise the level per run. The sink is injectable so tests
// can capture output.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "sim/sim_time.h"

namespace muzha {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  Logger() = default;

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  // Redirects output (default stderr). Pass nullptr to restore stderr.
  void set_sink(std::FILE* sink) { sink_ = sink ? sink : stderr; }

  void log(LogLevel level, SimTime now, const char* component, const char* fmt,
           ...) __attribute__((format(printf, 5, 6)));

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::FILE* sink_ = stderr;
};

}  // namespace muzha

// Convenience macro: `lg` is a Logger&, `now` a SimTime.
#define MUZHA_LOG(lg, level, now, component, ...)          \
  do {                                                     \
    if ((lg).enabled(level)) {                             \
      (lg).log(level, now, component, __VA_ARGS__);        \
    }                                                      \
  } while (0)
