// Simulator context: owns the scheduler, RNG and logger.
//
// There is deliberately no global simulator instance; every component takes a
// Simulator& so multiple independent simulations can coexist in one process
// (benches run parameter sweeps this way).
#pragma once

#include <cstdint>

#include "sim/log.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"

namespace muzha {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return scheduler_.now(); }
  SimTime next_event_time() const { return scheduler_.next_event_time(); }
  Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }
  Logger& logger() { return logger_; }

  template <typename F>
  EventId schedule_at(SimTime t, F&& cb) {
    return scheduler_.schedule_at(t, std::forward<F>(cb));
  }
  template <typename F>
  EventId schedule_in(SimTime delay, F&& cb) {
    return scheduler_.schedule_in(delay, std::forward<F>(cb));
  }
  void cancel(EventId id) { scheduler_.cancel(id); }

  // Runs the simulation until `t_end`.
  void run_until(SimTime t_end) { scheduler_.run_until(t_end); }
  void run() { scheduler_.run(); }

 private:
  Scheduler scheduler_;
  Rng rng_;
  Logger logger_;
};

}  // namespace muzha
