#include "sim/scheduler.h"

#include "sim/assert.h"

namespace muzha {

std::uint32_t Scheduler::grow_pool() {
  MUZHA_ASSERT(meta_.size() < kNotInHeap, "event pool exhausted");
  const std::uint32_t slot = static_cast<std::uint32_t>(meta_.size());
  if ((slot >> kChunkShift) == chunks_.size()) {
    // Chunks are raw storage; each slot is placement-constructed exactly
    // once, when the pool first grows over it, so appending a chunk never
    // touches 16 KiB of cold memory up front.
    chunks_.push_back(
        std::make_unique<std::byte[]>(sizeof(EventCallback) * kChunkSlots));
  }
  meta_.emplace_back();
  ::new (static_cast<void*>(chunks_[slot >> kChunkShift].get() +
                            sizeof(EventCallback) * (slot & (kChunkSlots - 1))))
      EventCallback();
  return slot;
}

void Scheduler::reserve(std::size_t n) {
  meta_.reserve(n);
  while ((chunks_.size() << kChunkShift) < n) {
    chunks_.push_back(
        std::make_unique<std::byte[]>(sizeof(EventCallback) * kChunkSlots));
  }
  free_.reserve(n);
  heap_.reserve(n);
}

}  // namespace muzha
