#include "sim/scheduler.h"

#include <utility>

#include "sim/assert.h"

namespace muzha {

EventId Scheduler::schedule_at(SimTime t, EventCallback cb) {
  MUZHA_ASSERT(t >= now_, "cannot schedule an event in the past");
  MUZHA_ASSERT(cb != nullptr, "event callback must be callable");
  EventId id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(cb)});
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return;
  cancelled_.insert(id);
}

void Scheduler::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool Scheduler::step() {
  skip_cancelled();
  if (heap_.empty()) return false;
  // Move the event out before running it: the callback may schedule new
  // events and reallocate the heap.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  MUZHA_ASSERT(ev.time >= now_, "event heap yielded a past event");
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

std::uint64_t Scheduler::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  for (;;) {
    skip_cancelled();
    if (heap_.empty()) break;
    if (heap_.top().time > t_end) {
      now_ = t_end;
      break;
    }
    step();
    ++n;
  }
  if (heap_.empty() && now_ < t_end && t_end != SimTime::max()) now_ = t_end;
  return n;
}

}  // namespace muzha
