// Deterministic random number generation.
//
// All simulation randomness flows from a single seeded Rng owned by the
// Simulator, so a (scenario, seed) pair fully determines a run.
#pragma once

#include <cstdint>
#include <random>

namespace muzha {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  void seed(std::uint64_t s) { engine_.seed(s); }

  // Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Exponentially distributed double with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  // muzha-lint: allow(banned-seed): every Rng constructor seeds engine_ in its init list
  std::mt19937_64 engine_;
};

}  // namespace muzha
