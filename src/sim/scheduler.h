// Discrete-event scheduler.
//
// A binary heap of (time, sequence) keyed events. Sequence numbers give FIFO
// ordering for simultaneous events, which together with integer SimTime makes
// runs fully deterministic. Cancellation is lazy: cancelled events stay in
// the heap and are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/sim_time.h"

namespace muzha {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

using EventCallback = std::function<void()>;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, EventCallback cb);

  // Schedules `cb` to run `delay` from now (delay must be >= 0).
  EventId schedule_in(SimTime delay, EventCallback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // no-op, so callers may cancel unconditionally.
  void cancel(EventId id);

  // Runs events until the queue drains or `t_end` is passed. Events at
  // exactly `t_end` are executed. Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end);

  // Runs until the queue drains.
  std::uint64_t run() { return run_until(SimTime::max()); }

  // Executes at most one pending event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    EventCallback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled events off the top of the heap.
  void skip_cancelled();

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace muzha
