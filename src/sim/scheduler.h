// Discrete-event scheduler — indexed 4-ary heap with true cancellation.
//
// The heap is a flat array of 24-byte entries carrying the (time, sequence)
// sort key plus a slot index, so sift comparisons touch only contiguous heap
// memory. A fan-out of four halves the tree depth of a binary heap and keeps
// each child group nearly within one cache line. Sequence numbers give FIFO
// ordering for simultaneous events, which together with integer SimTime
// makes runs fully deterministic.
//
// Per-event state is split structure-of-arrays style: the hot bookkeeping
// (generation + heap position, 8 bytes) lives in a dense vector that sift
// operations write through, while the 64-byte callbacks live out-of-line in
// fixed-size chunks whose addresses never change — growing the pool never
// runs a pending callback's move constructor.
//
// EventIds are generation-checked handles: the slot index in the high 32
// bits, the slot's generation in the low 32. Each slot records its heap
// position, so cancel() removes the event from the heap immediately
// (O(log n), no tombstones, no lazy skip) and bumps the generation so stale
// handles — including the id of an event that already fired — are no-ops.
//
// Callbacks are InlineFunction<void()>: every typical capture list is stored
// inline, so schedule/fire performs zero heap allocations once the pool has
// warmed up. The schedule/fire/cancel path is defined inline in this header:
// event dispatch bounds whole-stack simulation rate, and the call sites
// (run loops, protocol timers) only optimize it when they can see through
// it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/assert.h"
#include "sim/inline_callback.h"
#include "sim/sim_time.h"

namespace muzha {

// Opaque event handle: (slot << 32) | generation. Generations start at 1 and
// skip 0 on wrap, so a valid id is never kInvalidEventId.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

using EventCallback = InlineFunction<void()>;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler() {
    // Only events still in the heap hold live callbacks; every other
    // constructed slot is null, and a null InlineFunction's destructor is a
    // no-op, so skip them rather than walking the whole pool.
    for (const HeapEntry& e : heap_) slot_cb(e.slot).~EventCallback();
  }

  SimTime now() const { return now_; }

  // Schedules `cb` to run at absolute time `t` (must be >= now()). Accepts
  // any void() callable and constructs it directly into the event slot — an
  // explicit EventCallback argument works too and is moved.
  template <typename F>
  EventId schedule_at(SimTime t, F&& cb) {
    MUZHA_ASSERT(t >= now_, "cannot schedule an event in the past");
    const std::uint32_t slot = alloc_slot();
    EventCallback& dst = slot_cb(slot);
    dst = std::forward<F>(cb);
    MUZHA_ASSERT(dst, "event callback must be callable");
    const HeapEntry e{t, next_seq_++, slot};
    heap_.push_back(e);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1), e);
    return make_id(slot, meta_[slot].gen);
  }

  // Schedules `cb` to run `delay` from now (delay must be >= 0).
  template <typename F>
  EventId schedule_in(SimTime delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  // Cancels a pending event: removes it from the heap eagerly and recycles
  // its slot. Cancelling an already-fired or invalid id is a no-op (the
  // generation check rejects stale handles), so callers may cancel
  // unconditionally.
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = slot_of(id);
    if (slot >= meta_.size()) return;
    MUZHA_DCHECK(gen_of(id) != 0,
                 "EventId with generation 0: forged or corrupted handle");
    SlotMeta& m = meta_[slot];
    if (m.gen != gen_of(id) || m.heap_pos == kNotInHeap) return;
    MUZHA_DCHECK(m.heap_pos < heap_.size() && heap_[m.heap_pos].slot == slot,
                 "slot/heap cross-link broken: cancelled EventId points at a "
                 "recycled slot (use-after-free of the handle)");
    remove_from_heap(slot);
    slot_cb(slot) = nullptr;
    release_slot(slot);
  }

  // Runs events until the queue drains or `t_end` is passed. Events at
  // exactly `t_end` are executed. Returns the number of events executed.
  std::uint64_t run_until(SimTime t_end) {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      if (heap_[0].time > t_end) {
        now_ = t_end;
        return n;
      }
      step();
      ++n;
    }
    if (now_ < t_end && t_end != SimTime::max()) now_ = t_end;
    return n;
  }

  // Runs until the queue drains.
  std::uint64_t run() { return run_until(SimTime::max()); }

  // Executes at most one pending event. Returns false if the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_[0];
    MUZHA_ASSERT(top.time >= now_, "event heap yielded a past event");
    MUZHA_DCHECK(meta_[top.slot].heap_pos == 0,
                 "heap top does not cross-link back to its slot");
    MUZHA_DCHECK(static_cast<bool>(slot_cb(top.slot)),
                 "firing slot holds no callback (double fire or slot "
                 "recycling bug)");
    now_ = top.time;
    // Move the callback out and retire the slot before invoking: the
    // callback may schedule new events (growing the pool) or cancel its
    // own — now stale — id.
    EventCallback cb = std::move(slot_cb(top.slot));
    release_slot(top.slot);
    const HeapEntry filler = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, filler);
    ++executed_;
    cb();
    return true;
  }

  // Pre-sizes the pool, heap and free list for `n` concurrent events so the
  // steady state performs no vector growth.
  void reserve(std::size_t n);

  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  // Firing time of the earliest pending event, or SimTime::max() when the
  // queue is empty. The sharded-run barrier uses this to advance a quiescent
  // shard's window straight to its next event instead of ticking through
  // empty lookahead epochs.
  SimTime next_event_time() const {
    return heap_.empty() ? SimTime::max() : heap_[0].time;
  }

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;
  // Callbacks are pooled in fixed-size chunks so growth never moves a live
  // callback and slot addresses stay stable across scheduling.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  // Heap entries carry the full sort key so sifting never dereferences the
  // pool; `slot` points at the callback and bookkeeping.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct SlotMeta {
    std::uint32_t gen = 1;
    std::uint32_t heap_pos = kNotInHeap;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  // True when `a` fires strictly before `b`.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  EventCallback& slot_cb(std::uint32_t slot) {
    return *std::launder(reinterpret_cast<EventCallback*>(
        chunks_[slot >> kChunkShift].get() +
        sizeof(EventCallback) * (slot & (kChunkSlots - 1))));
  }

  void place(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    meta_[e.slot].heap_pos = pos;
  }

  // Hole-style sifts: `e` is the moving entry, written once at its final
  // position. 4-ary layout: children of i are 4i+1..4i+4, parent is
  // (i-1)/4.
  void sift_up(std::uint32_t pos, const HeapEntry& e) {
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, e);
  }

  void sift_down(std::uint32_t pos, const HeapEntry& e) {
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first_child = 4 * pos + 1;
      if (first_child >= n) break;
      std::uint32_t best = first_child;
      const std::uint32_t last_child =
          first_child + 3 < n - 1 ? first_child + 3 : n - 1;
      for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      place(pos, heap_[best]);
      pos = best;
    }
    place(pos, e);
  }

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return grow_pool();
  }
  std::uint32_t grow_pool();  // cold path: appends a slot (maybe a chunk)

  void release_slot(std::uint32_t slot) {
    SlotMeta& m = meta_[slot];
    m.heap_pos = kNotInHeap;
    // Bump the generation so outstanding handles to this slot go stale;
    // generation 0 is skipped so a live id is never kInvalidEventId.
    if (++m.gen == 0) m.gen = 1;
    free_.push_back(slot);
  }

  void remove_from_heap(std::uint32_t slot) {
    const std::uint32_t pos = meta_[slot].heap_pos;
    const HeapEntry filler = heap_.back();
    heap_.pop_back();
    if (filler.slot != slot) {
      // The hole filler may need to move either way relative to `pos`.
      sift_down(pos, filler);
      if (meta_[filler.slot].heap_pos == pos) sift_up(pos, filler);
    }
  }

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<SlotMeta> meta_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;  // raw slot storage
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::vector<HeapEntry> heap_;      // 4-ary min-heap
};

}  // namespace muzha
