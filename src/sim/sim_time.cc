#include "sim/sim_time.h"

#include <cstdio>

namespace muzha {

std::string SimTime::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

}  // namespace muzha
