// Compile-time unit safety: strong quantity types for the simulator.
//
// The paper's model is built from dimensioned quantities — meters of
// carrier-sense range, seconds of Gilbert-model dwell time, bits-per-second
// of channel rate, segments of TCP window — and passing them as bare
// `double` lets a swapped or mis-scaled argument compile silently. Each
// physical dimension gets its own phantom-typed Quantity instantiation with
// only dimensionally sound operators, so `Meters + Seconds`, an implicit
// `double -> Dbm`, or a `Bytes` handed to a `Segments` parameter is a
// compile error (see tests/compile_fail/ for the negative-compilation
// suite). Zero overhead: every type is a trivially copyable wrapper the
// same size as its representation, and all operators are constexpr.
//
// Conversion rules (see DESIGN.md "Unit & quantity types" for the table):
//   Meters / Seconds            -> MetersPerSecond
//   Meters / MetersPerSecond    -> Seconds
//   MetersPerSecond * Seconds   -> Meters
//   to_bits(Bytes)              -> Bits          (exact, x8)
//   Bits / Seconds              -> BitsPerSecond
//   Bits / BitsPerSecond        -> Seconds       (serialization delay)
//   Segments / Seconds          -> SegmentsPerSecond
//   SegmentsPerSecond * Seconds -> Segments
//   to_milliwatts(Dbm) / to_dbm(MilliWatts)      (log <-> linear power)
//   to_sim_time(Seconds) / to_seconds(SimTime)   (checked, integer-ns clock)
#pragma once

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "sim/assert.h"
#include "sim/sim_time.h"

namespace muzha {

namespace unit_dim {
struct Length {};           // meters
struct Speed {};            // meters / second
struct Duration {};         // seconds (floating; SimTime is the ns clock)
struct DataSize {};         // bytes
struct BitCount {};         // bits
struct DataRate {};         // bits / second
struct SegmentCount {};     // TCP segments (the window currency)
struct SegmentRate {};      // segments / second
struct PowerLog {};         // dBm
struct PowerLinear {};      // milliwatts
}  // namespace unit_dim

// One-dimensional quantity: a `Rep` tagged with a phantom dimension. Only
// same-dimension addition/subtraction and scalar scaling exist; everything
// else must go through the named cross-dimension operators below. The
// constructor is explicit, so no bare number converts silently.
template <typename Dim, typename Rep = double>
class Quantity {
 public:
  using dimension = Dim;
  using rep = Rep;

  constexpr Quantity() = default;
  explicit constexpr Quantity(Rep v) : v_(v) {}

  constexpr Rep value() const { return v_; }

  constexpr Quantity operator-() const { return Quantity(-v_); }
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator*(Quantity a, Rep k) {
    return Quantity(a.v_ * k);
  }
  friend constexpr Quantity operator*(Rep k, Quantity a) {
    return Quantity(k * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, Rep k) {
    return Quantity(a.v_ / k);
  }
  // Ratio of two like quantities is dimensionless.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep k) {
    v_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(Rep k) {
    v_ /= k;
    return *this;
  }
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  Rep v_ = Rep{};
};

using Meters = Quantity<unit_dim::Length>;
using MetersPerSecond = Quantity<unit_dim::Speed>;
using Seconds = Quantity<unit_dim::Duration>;
using Bytes = Quantity<unit_dim::DataSize, std::int64_t>;
using Bits = Quantity<unit_dim::BitCount, std::int64_t>;
using BitsPerSecond = Quantity<unit_dim::DataRate>;
using Segments = Quantity<unit_dim::SegmentCount>;
using SegmentsPerSecond = Quantity<unit_dim::SegmentRate>;
using Dbm = Quantity<unit_dim::PowerLog>;
using MilliWatts = Quantity<unit_dim::PowerLinear>;

// Every quantity is layout- and cost-identical to its representation.
static_assert(std::is_trivially_copyable_v<Meters> &&
              sizeof(Meters) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Seconds> &&
              sizeof(Seconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<MetersPerSecond> &&
              sizeof(MetersPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<BitsPerSecond> &&
              sizeof(BitsPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Segments> &&
              sizeof(Segments) == sizeof(double));
static_assert(std::is_trivially_copyable_v<SegmentsPerSecond> &&
              sizeof(SegmentsPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Dbm> &&
              sizeof(Dbm) == sizeof(double));
static_assert(std::is_trivially_copyable_v<MilliWatts> &&
              sizeof(MilliWatts) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Bytes> &&
              sizeof(Bytes) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Bits> &&
              sizeof(Bits) == sizeof(std::int64_t));

// A probability (or any [0, 1] fraction): range-DCHECKed at construction so
// a mis-scaled value (a percent, a dB, a byte count) trips immediately in
// debug builds instead of skewing Bernoulli draws silently.
class Probability {
 public:
  constexpr Probability() = default;
  explicit Probability(double p) : p_(p) {
    MUZHA_DCHECK(p >= 0.0 && p <= 1.0, "probability outside [0, 1]");
  }
  constexpr double value() const { return p_; }
  friend constexpr auto operator<=>(Probability, Probability) = default;

 private:
  double p_ = 0.0;
};
static_assert(std::is_trivially_copyable_v<Probability> &&
              sizeof(Probability) == sizeof(double));

// --- Cross-dimension operators (the only sanctioned mixtures) --------------

constexpr MetersPerSecond operator/(Meters d, Seconds t) {
  return MetersPerSecond(d.value() / t.value());
}
constexpr Seconds operator/(Meters d, MetersPerSecond v) {
  return Seconds(d.value() / v.value());
}
constexpr Meters operator*(MetersPerSecond v, Seconds t) {
  return Meters(v.value() * t.value());
}
constexpr Meters operator*(Seconds t, MetersPerSecond v) {
  return Meters(v.value() * t.value());
}

constexpr Bits to_bits(Bytes b) { return Bits(b.value() * 8); }
constexpr Bytes to_bytes(Bits b) { return Bytes(b.value() / 8); }
constexpr BitsPerSecond operator/(Bits b, Seconds t) {
  return BitsPerSecond(static_cast<double>(b.value()) / t.value());
}
constexpr Seconds operator/(Bits b, BitsPerSecond r) {
  return Seconds(static_cast<double>(b.value()) / r.value());
}

constexpr SegmentsPerSecond operator/(Segments s, Seconds t) {
  return SegmentsPerSecond(s.value() / t.value());
}
constexpr Segments operator*(SegmentsPerSecond r, Seconds t) {
  return Segments(r.value() * t.value());
}
constexpr Segments operator*(Seconds t, SegmentsPerSecond r) {
  return Segments(r.value() * t.value());
}

// Log <-> linear power. dBm is a logarithmic scale, so additive arithmetic
// on Dbm values means multiplying powers — convert to MilliWatts for
// anything beyond comparisons and dB offsets.
inline MilliWatts to_milliwatts(Dbm p) {
  return MilliWatts(std::pow(10.0, p.value() / 10.0));
}
inline Dbm to_dbm(MilliWatts p) {
  MUZHA_DCHECK(p.value() > 0.0, "dBm of non-positive power is undefined");
  return Dbm(10.0 * std::log10(p.value()));
}

// --- Seconds <-> SimTime (checked) -----------------------------------------
//
// SimTime is the integer-nanosecond event clock; Seconds is the floating
// analysis/model currency. The conversion is explicit and range-checked so
// an overflowing or non-finite duration trips a DCHECK instead of wrapping
// the 64-bit clock.

inline SimTime to_sim_time(Seconds s) {
  MUZHA_DCHECK(std::isfinite(s.value()), "non-finite duration");
  // |ns| must fit in int64: 2^63 ns is ~292 years of simulated time.
  MUZHA_DCHECK(s.value() < 9.2e9 && s.value() > -9.2e9,
               "duration overflows the 64-bit nanosecond clock");
  return SimTime::from_seconds(s.value());
}
constexpr Seconds to_seconds(SimTime t) { return Seconds(t.to_seconds()); }

// --- User-defined literals -------------------------------------------------
//
// `using namespace muzha;` (or muzha::unit_literals) makes `250.0_m`,
// `1.0_s`, `2.0_Mbps` well-typed constants.

inline namespace unit_literals {

constexpr Meters operator""_m(long double v) {
  return Meters(static_cast<double>(v));
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters(static_cast<double>(v));
}
constexpr Meters operator""_km(long double v) {
  return Meters(static_cast<double>(v) * 1000.0);
}
constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds(static_cast<double>(v) * 1e-3);
}
constexpr Seconds operator""_us(long double v) {
  return Seconds(static_cast<double>(v) * 1e-6);
}
constexpr MetersPerSecond operator""_mps(long double v) {
  return MetersPerSecond(static_cast<double>(v));
}
constexpr MetersPerSecond operator""_mps(unsigned long long v) {
  return MetersPerSecond(static_cast<double>(v));
}
constexpr BitsPerSecond operator""_bps(long double v) {
  return BitsPerSecond(static_cast<double>(v));
}
constexpr BitsPerSecond operator""_bps(unsigned long long v) {
  return BitsPerSecond(static_cast<double>(v));
}
constexpr BitsPerSecond operator""_kbps(long double v) {
  return BitsPerSecond(static_cast<double>(v) * 1e3);
}
constexpr BitsPerSecond operator""_kbps(unsigned long long v) {
  return BitsPerSecond(static_cast<double>(v) * 1e3);
}
constexpr BitsPerSecond operator""_Mbps(long double v) {
  return BitsPerSecond(static_cast<double>(v) * 1e6);
}
constexpr BitsPerSecond operator""_Mbps(unsigned long long v) {
  return BitsPerSecond(static_cast<double>(v) * 1e6);
}
constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes(static_cast<std::int64_t>(v));
}
constexpr Segments operator""_seg(long double v) {
  return Segments(static_cast<double>(v));
}
constexpr Segments operator""_seg(unsigned long long v) {
  return Segments(static_cast<double>(v));
}
constexpr Dbm operator""_dBm(long double v) {
  return Dbm(static_cast<double>(v));
}
constexpr Dbm operator""_dBm(unsigned long long v) {
  return Dbm(static_cast<double>(v));
}
constexpr MilliWatts operator""_mW(long double v) {
  return MilliWatts(static_cast<double>(v));
}

}  // namespace unit_literals

}  // namespace muzha
