// Restartable one-shot timer built on the scheduler.
//
// Wraps the schedule/cancel dance used by every protocol timer (TCP RTO, MAC
// CTS/ACK timeouts, AODV route lifetimes). The callback is set once; the
// timer can then be scheduled, rescheduled and cancelled freely.
#pragma once

#include <utility>

#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"

namespace muzha {

class Timer {
 public:
  Timer(Simulator& sim, EventCallback on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {
    MUZHA_ASSERT(on_expire_, "timer callback must be callable");
  }
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)schedules the timer to fire `delay` from now.
  void schedule_in(SimTime delay) {
    MUZHA_DCHECK(delay >= SimTime::zero(), "timer delay must be non-negative");
    cancel();
    expiry_ = sim_.now() + delay;
    id_ = sim_.schedule_in(delay, [this] {
      id_ = kInvalidEventId;
      on_expire_();
    });
  }

  void cancel() {
    if (id_ != kInvalidEventId) {
      sim_.cancel(id_);
      id_ = kInvalidEventId;
    }
  }

  bool pending() const { return id_ != kInvalidEventId; }

  // Expiry time of the currently pending timer (meaningful iff pending()).
  SimTime expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  EventCallback on_expire_;
  EventId id_ = kInvalidEventId;
  SimTime expiry_;
};

}  // namespace muzha
