// TCP receiver: cumulative ACKs, out-of-order buffering, SACK blocks, and
// the Muzha feedback echo.
//
// On every data arrival the sink returns an ACK that echoes (a) the
// timestamp for RTT sampling, (b) the packet's path-minimum DRAI (the MRAI,
// Sec. 4.4) and (c) the congestion mark: a duplicate ACK whose triggering
// out-of-order packet was router-marked (or carried a deceleration-region
// MRAI) tells the Muzha sender the loss was congestion, not random
// (Sec. 4.7). Non-Muzha senders simply ignore those fields, so one sink
// class serves every variant.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "net/agent.h"
#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "sim/units.h"

namespace muzha {

class TcpSink : public Agent {
 public:
  struct Config {
    std::uint16_t port = 0;
    Bytes ack_size = Bytes(40);
    int max_sack_blocks = 3;
    // RFC 1122 delayed ACKs: acknowledge every second in-order segment, or
    // after `delack_timeout`, whichever comes first. Out-of-order and
    // duplicate arrivals are always acknowledged immediately (RFC 5681).
    bool delayed_acks = false;
    SimTime delack_timeout = SimTime::from_ms(100);
  };

  TcpSink(Simulator& sim, Node& node, Config cfg);
  ~TcpSink() override = default;

  // Registers on the node's port.
  void start();
  void receive(PacketPtr pkt) override;

  // --- Observability ------------------------------------------------------
  // Number of segments delivered in order (goodput numerator).
  std::int64_t delivered() const { return next_expected_; }
  std::int64_t next_expected() const { return next_expected_; }
  std::uint64_t duplicates_received() const { return duplicates_; }
  std::uint64_t out_of_order_received() const { return out_of_order_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t acks_delayed() const { return acks_delayed_; }

  // Fires whenever new in-order segments are delivered; `count` segments of
  // `bytes` each. Used by throughput samplers.
  using DeliveryListener =
      std::function<void(SimTime, std::int64_t count, std::uint32_t bytes)>;
  void set_delivery_listener(DeliveryListener cb) {
    on_delivery_ = std::move(cb);
  }

 protected:
  // Extension hook for receiver-assisted variants (e.g. ADTCP): called just
  // before the ACK is sent, with the triggering data packet.
  virtual void customize_ack(TcpHeader& ack, const Packet& data, bool is_dup);

  Simulator& sim() { return sim_; }

 private:
  void send_ack(const Packet& data, bool is_dup);
  void fill_sacks(TcpHeader& ack, std::int64_t trigger_seq) const;
  void on_delack_timer();

  Simulator& sim_;
  Node& node_;
  Config cfg_;
  std::int64_t next_expected_ = 0;
  std::set<std::int64_t> out_of_order_buf_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t acks_delayed_ = 0;
  std::uint32_t dup_seq_ = 0;  // TCP-DOOR duplicate-ACK stream sequence
  DeliveryListener on_delivery_;
  bool started_ = false;

  // Delayed-ACK state: the data packet whose ACK is being withheld.
  Timer delack_timer_;
  PacketPtr pending_ack_data_;
};

}  // namespace muzha
