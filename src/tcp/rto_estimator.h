// Jacobson/Karels RTO estimation with Karn's algorithm handled by the caller
// (retransmitted segments are never sampled) and exponential backoff on
// timeout.
#pragma once

#include "sim/sim_time.h"

namespace muzha {

struct RtoConfig {
  SimTime initial_rto = SimTime::from_seconds(3.0);
  SimTime min_rto = SimTime::from_ms(200);
  SimTime max_rto = SimTime::from_seconds(60.0);
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig cfg = {}) : cfg_(cfg), rto_(cfg.initial_rto) {}

  // Feeds one round-trip sample (never from a retransmitted segment).
  void sample(SimTime rtt);

  // Doubles the RTO after a retransmission timeout.
  void backoff();

  // Forward progress (a new cumulative ACK): ends the backoff series and
  // restores the RTO computed from the current srtt/rttvar estimate (or the
  // initial RTO when no sample exists yet). No-op outside a backoff series.
  void reset_backoff();

  SimTime rto() const { return rto_; }
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  bool has_sample() const { return has_sample_; }
  // Number of consecutive backoffs since the last sample or reset: the RTO
  // is estimate * 2^backoff_exponent, saturated at max_rto.
  int backoff_exponent() const { return backoff_exponent_; }

 private:
  void clamp();

  RtoConfig cfg_;
  SimTime rto_;
  SimTime srtt_;
  SimTime rttvar_;
  bool has_sample_ = false;
  int backoff_exponent_ = 0;
};

}  // namespace muzha
