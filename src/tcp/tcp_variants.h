// Baseline TCP congestion-control variants the paper compares against:
// Tahoe, Reno, NewReno and SACK. Vegas lives in tcp_vegas.h; the paper's
// contribution (TCP Muzha) lives in src/core.
#pragma once

#include <set>

#include "pkt/packet.h"
#include "tcp/tcp_agent.h"

namespace muzha {

// TCP Tahoe: fast retransmit, then slow-start restart (no fast recovery).
class TcpTahoe : public TcpAgent {
 public:
  using TcpAgent::TcpAgent;

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
};

// TCP Reno: fast retransmit + fast recovery (window inflation during
// recovery, deflation to ssthresh on the recovery-exiting ACK).
class TcpReno : public TcpAgent {
 public:
  using TcpAgent::TcpAgent;

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
};

// TCP NewReno (RFC 3782): stays in fast recovery across partial ACKs,
// retransmitting one hole per partial ACK, until the recovery point is
// cumulatively acknowledged.
class TcpNewReno : public TcpAgent {
 public:
  using TcpAgent::TcpAgent;

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
};

// TCP SACK: scoreboard of selectively-acknowledged segments; during recovery
// retransmits holes while the pipe estimate allows (RFC 3517 style).
class TcpSack : public TcpAgent {
 public:
  using TcpAgent::TcpAgent;

  std::size_t scoreboard_size() const { return sacked_.size(); }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

 private:
  void absorb_sacks(const TcpHeader& h);
  // Lowest unsacked segment in (highest_ack, recover_], or -1.
  std::int64_t next_hole(std::int64_t above) const;
  void try_to_send();

  std::set<std::int64_t> sacked_;
  double pipe_ = 0;
  std::int64_t last_hole_sent_ = -1;
};

}  // namespace muzha
