#include "tcp/tcp_vegas.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"

namespace muzha {

TcpVegas::TcpVegas(Simulator& sim, Node& node, TcpConfig cfg,
                   VegasConfig vcfg)
    : TcpAgent(sim, node, cfg), vcfg_(vcfg) {}

void TcpVegas::on_new_ack(const TcpHeader& h, std::int64_t) {
  if (in_recovery()) {
    if (h.seqno >= recover_point()) {
      exit_recovery_bookkeeping();
      set_cwnd(ssthresh());
    } else {
      // NewReno-style partial-ACK retransmission keeps multi-loss windows
      // from stalling into timeouts.
      retransmit(h.seqno + 1);
    }
    return;
  }

  // Collect an RTT sample for the Vegas estimator (Karn-safe).
  if (h.ts_echo > SimTime::zero() && !seq_was_retransmitted(h.seqno)) {
    Seconds rtt = to_seconds(sim().now() - h.ts_echo);
    if (base_rtt_ == Seconds(0.0) || rtt < base_rtt_) base_rtt_ = rtt;
    if (epoch_rtt_ == Seconds(0.0) || rtt < epoch_rtt_) epoch_rtt_ = rtt;
  }
  note_ack(h);

  if (h.seqno >= epoch_end_seq_) end_of_epoch();
}

double TcpVegas::compute_diff() const {
  return cwnd().value() * (1.0 - base_rtt_ / epoch_rtt_);
}

void TcpVegas::end_of_epoch() {
  if (epoch_rtt_ > Seconds(0.0) && base_rtt_ > Seconds(0.0)) {
    last_diff_ = compute_diff();
    if (cwnd() < ssthresh()) {
      // Slow start: terminate as soon as the network starts queueing.
      if (last_diff_ > vcfg_.gamma) {
        set_cwnd(std::max(cwnd() - cwnd() / 8.0, Segments(2.0)));
        set_ssthresh(Segments(2.0));  // switch to congestion avoidance
      } else if (ss_grow_this_epoch_) {
        set_cwnd(cwnd() * 2.0);
      }
      ss_grow_this_epoch_ = !ss_grow_this_epoch_;
    } else {
      if (last_diff_ < vcfg_.alpha) {
        set_cwnd(cwnd() + Segments(1.0));
      } else if (last_diff_ > vcfg_.beta) {
        set_cwnd(std::max(cwnd() - Segments(1.0), Segments(2.0)));
      }
      // else: within [alpha, beta] — hold.
    }
  }
  epoch_rtt_ = Seconds(0.0);
  epoch_end_seq_ = next_seq();
  on_epoch_reset();
}

void TcpVegas::on_dup_ack(const TcpHeader&) {
  if (in_recovery()) {
    send_much();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  // Vegas reduces less aggressively than Reno on loss (3/4 rather than 1/2).
  set_ssthresh(std::max(cwnd() * 0.75, Segments(2.0)));
  enter_recovery_bookkeeping();
  set_cwnd(ssthresh());
  retransmit(highest_ack() + 1);
}

void TcpVegas::on_timeout() {
  epoch_rtt_ = Seconds(0.0);
  TcpAgent::on_timeout();
  epoch_end_seq_ = next_seq();
}

}  // namespace muzha
