// TCP Vegas: delay-based congestion avoidance (Brakmo & Peterson).
//
// Estimates the number of segments queued in the network as
//   diff = cwnd * (1 - baseRTT / RTT)
// once per RTT and nudges the window to keep alpha <= diff <= beta. Slow
// start doubles every *other* RTT and terminates as soon as diff exceeds
// gamma, before losses occur — the conservative behaviour behind both its
// low retransmission counts and its small steady-state window in the
// paper's long-chain results.
#pragma once

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"

namespace muzha {

struct VegasConfig {
  double alpha = 1.0;
  double beta = 3.0;
  double gamma = 1.0;
};

class TcpVegas : public TcpAgent {
 public:
  TcpVegas(Simulator& sim, Node& node, TcpConfig cfg, VegasConfig vcfg = {});

  Seconds base_rtt() const { return base_rtt_; }
  // Estimated backlog, in segments (dimensionless diff of the Vegas paper).
  double last_diff() const { return last_diff_; }
  const VegasConfig& vegas_config() const { return vcfg_; }
  // Whether the *next* slow-start epoch boundary doubles the window (slow
  // start grows every other RTT).
  bool slow_start_grow_epoch() const { return ss_grow_this_epoch_; }

 protected:
  void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) override;
  void on_dup_ack(const TcpHeader& h) override;
  void on_timeout() override;

  // Extension points for router-assisted Vegas variants (RoVegas).
  // Called for every in-sequence ACK before epoch-boundary processing.
  virtual void note_ack(const TcpHeader& h) { (void)h; }
  // Estimated number of segments queued in the network this epoch.
  virtual double compute_diff() const;
  // Called when an epoch ends, after the window adjustment.
  virtual void on_epoch_reset() {}

  Seconds epoch_rtt() const { return epoch_rtt_; }

 private:
  void end_of_epoch();

  VegasConfig vcfg_;
  Seconds base_rtt_;   // minimum RTT ever observed; zero = no sample yet
  Seconds epoch_rtt_;  // minimum RTT within the current epoch
  std::int64_t epoch_end_seq_ = 0;
  bool ss_grow_this_epoch_ = true;  // slow start doubles every other RTT
  double last_diff_ = 0.0;
};

}  // namespace muzha
