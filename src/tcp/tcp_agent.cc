#include "tcp/tcp_agent.h"

#include <algorithm>

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace muzha {

const char* tcp_phase_name(TcpPhase p) {
  switch (p) {
    case TcpPhase::kSlowStart:
      return "SlowStart";
    case TcpPhase::kCongestionAvoidance:
      return "CongestionAvoidance";
    case TcpPhase::kFastRecovery:
      return "FastRecovery";
  }
  return "?";
}

TcpAgent::TcpAgent(Simulator& sim, Node& node, TcpConfig cfg)
    : sim_(sim),
      node_(node),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      rto_(cfg.rto),
      rtx_timer_(sim, [this] { handle_timeout(); }) {
  MUZHA_ASSERT(cfg_.dst != kInvalidNodeId, "TCP agent needs a destination");
  MUZHA_ASSERT(cfg_.window >= 1, "window_ must be at least 1");
}

void TcpAgent::start() {
  if (started_) return;
  started_ = true;
  node_.register_agent(cfg_.src_port, *this);
  send_much();
}

int TcpAgent::effective_window() const {
  int w = static_cast<int>(cwnd_.value());
  if (w < 1) w = 1;
  return std::min(w, cfg_.window);
}

void TcpAgent::set_cwnd(Segments v) {
  if (v < Segments(1.0)) v = Segments(1.0);
  cwnd_ = v;
  if (cwnd_listener_) cwnd_listener_(sim_.now(), cwnd_.value());
}

void TcpAgent::open_cwnd() {
  if (cwnd_ < ssthresh_) {
    set_cwnd(cwnd_ + Segments(1.0));  // slow start: +1 per ACK
  } else {
    // Congestion avoidance: +1 per RTT (1/cwnd per ACK).
    set_cwnd(Segments(cwnd_.value() + 1.0 / cwnd_.value()));
  }
}

void TcpAgent::send_much() {
  while (t_seqno_ <= highest_ack_ + effective_window()) {
    if (cfg_.max_packets >= 0 && t_seqno_ >= cfg_.max_packets) break;
    output(t_seqno_, /*is_retx=*/false);
    ++t_seqno_;
  }
}

void TcpAgent::retransmit(std::int64_t seq) { output(seq, /*is_retx=*/true); }

void TcpAgent::output(std::int64_t seq, bool is_retx) {
  // Any re-send of an already-transmitted segment is a retransmission — both
  // explicit fast retransmits and go-back-N re-sends after a timeout.
  if (is_retx || seq <= maxseq_) {
    ++retransmissions_;
    retx_seqs_.insert(seq);
  }
  PacketPtr p = node_.new_packet(
      cfg_.dst, IpProto::kTcp,
      static_cast<std::uint32_t>(cfg_.packet_size.value()));
  TcpHeader h;
  h.flow = cfg_.flow;
  h.src_port = cfg_.src_port;
  h.dst_port = cfg_.dst_port;
  h.is_ack = false;
  h.seqno = seq;
  h.ts = sim_.now();
  p->l4 = h;
  ++packets_sent_;
  maxseq_ = std::max(maxseq_, seq);
  if (!rtx_timer_.pending()) rtx_timer_.schedule_in(rto_.rto());
  node_.send(std::move(p));
}

void TcpAgent::manage_rtx_timer() {
  if (outstanding() > 0) {
    rtx_timer_.schedule_in(rto_.rto());
  } else {
    rtx_timer_.cancel();
  }
}

void TcpAgent::receive(PacketPtr pkt) {
  MUZHA_ASSERT(pkt->has_tcp(), "TCP agent received non-TCP packet");
  const TcpHeader& h = pkt->tcp();
  if (!h.is_ack) return;  // we are a pure sender

  if (h.seqno > highest_ack_) {
    std::int64_t newly_acked = h.seqno - highest_ack_;
    highest_ack_ = h.seqno;
    dupacks_ = 0;

    // Karn-safe RTT sample: the echoed timestamp belongs to the data segment
    // that triggered this ACK; skip if that segment was ever retransmitted.
    if (retx_seqs_.find(h.seqno) == retx_seqs_.end() &&
        h.ts_echo > SimTime::zero()) {
      rto_.sample(sim_.now() - h.ts_echo);
    }
    // Bound the Karn set: acked segments can never be sampled again.
    if (retx_seqs_.size() > 1024) {
      std::erase_if(retx_seqs_,
                    [this](std::int64_t s) { return s <= highest_ack_; });
    }
    // Forward progress ends any exponential-backoff series: the next RTO is
    // taken from the estimate again, not from the doubled value.
    rto_.reset_backoff();

    on_new_ack(h, newly_acked);
    manage_rtx_timer();
    send_much();
    return;
  }

  if (h.seqno == highest_ack_) {
    ++dupacks_;
    on_dup_ack(h);
    return;
  }
  on_old_ack(h);
}

void TcpAgent::handle_timeout() {
  if (outstanding() <= 0 &&
      (cfg_.max_packets < 0 || highest_ack_ + 1 < cfg_.max_packets)) {
    // Window emptied by ACK reordering; nothing to recover.
    return;
  }
  ++timeouts_;
  rto_.backoff();
  dupacks_ = 0;
  on_timeout();
  rtx_timer_.schedule_in(rto_.rto());
}

void TcpAgent::go_back_n() {
  t_seqno_ = highest_ack_ + 1;
  retransmit(t_seqno_);
  ++t_seqno_;
}

void TcpAgent::on_timeout() {
  // Classic Tahoe-style restart: halve ssthresh, collapse to one segment and
  // go back to the first unacknowledged segment.
  ssthresh_ = std::max(cwnd_ / 2.0, Segments(2.0));
  set_cwnd(Segments(1.0));
  exit_recovery_bookkeeping();
  go_back_n();
}

}  // namespace muzha
