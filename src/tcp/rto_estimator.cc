#include "tcp/rto_estimator.h"

#include "sim/sim_time.h"

namespace muzha {

void RtoEstimator::sample(SimTime rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298: alpha = 1/8, beta = 1/4.
    SimTime err = rtt - srtt_;
    if (err < SimTime::zero()) err = SimTime::zero() - err;
    rttvar_ = rttvar_.scaled(0.75) + err.scaled(0.25);
    srtt_ = srtt_.scaled(0.875) + rtt.scaled(0.125);
  }
  backoff_exponent_ = 0;
  rto_ = srtt_ + 4 * rttvar_;
  clamp();
}

void RtoEstimator::backoff() {
  ++backoff_exponent_;
  rto_ = rto_ * 2;
  clamp();
}

void RtoEstimator::reset_backoff() {
  if (backoff_exponent_ == 0) return;
  backoff_exponent_ = 0;
  rto_ = has_sample_ ? srtt_ + 4 * rttvar_ : cfg_.initial_rto;
  clamp();
}

void RtoEstimator::clamp() {
  if (rto_ < cfg_.min_rto) rto_ = cfg_.min_rto;
  if (rto_ > cfg_.max_rto) rto_ = cfg_.max_rto;
}

}  // namespace muzha
