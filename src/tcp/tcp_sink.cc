#include "tcp/tcp_sink.h"

#include "net/node.h"
#include "pkt/packet.h"
#include "sim/assert.h"
#include "sim/simulator.h"

namespace muzha {

TcpSink::TcpSink(Simulator& sim, Node& node, Config cfg)
    : sim_(sim),
      node_(node),
      cfg_(cfg),
      delack_timer_(sim, [this] { on_delack_timer(); }) {}

void TcpSink::on_delack_timer() {
  if (!pending_ack_data_) return;
  PacketPtr data = std::move(pending_ack_data_);
  send_ack(*data, /*is_dup=*/false);
}

void TcpSink::start() {
  if (started_) return;
  started_ = true;
  node_.register_agent(cfg_.port, *this);
}

void TcpSink::receive(PacketPtr pkt) {
  MUZHA_ASSERT(pkt->has_tcp(), "sink received non-TCP packet");
  const TcpHeader& h = pkt->tcp();
  if (h.is_ack) return;

  std::int64_t s = h.seqno;
  bool is_dup = false;
  if (s == next_expected_) {
    std::int64_t before = next_expected_;
    ++next_expected_;
    while (!out_of_order_buf_.empty() &&
           *out_of_order_buf_.begin() == next_expected_) {
      out_of_order_buf_.erase(out_of_order_buf_.begin());
      ++next_expected_;
    }
    if (on_delivery_) {
      on_delivery_(sim_.now(), next_expected_ - before, pkt->size_bytes);
    }
  } else if (s > next_expected_) {
    ++out_of_order_;
    auto [it, inserted] = out_of_order_buf_.insert(s);
    (void)it;
    if (!inserted) ++duplicates_;
    is_dup = true;  // generates a duplicate cumulative ACK
  } else {
    // Already delivered (sender retransmitted needlessly).
    ++duplicates_;
    is_dup = true;
  }

  if (cfg_.delayed_acks && !is_dup) {
    if (pending_ack_data_) {
      // Second in-order segment: release one cumulative ACK for both.
      pending_ack_data_.reset();
      delack_timer_.cancel();
      send_ack(*pkt, /*is_dup=*/false);
    } else {
      ++acks_delayed_;
      pending_ack_data_ = std::move(pkt);
      delack_timer_.schedule_in(cfg_.delack_timeout);
    }
    return;
  }
  if (cfg_.delayed_acks && pending_ack_data_) {
    // An out-of-order arrival flushes any withheld ACK first.
    PacketPtr held = std::move(pending_ack_data_);
    delack_timer_.cancel();
    send_ack(*held, /*is_dup=*/false);
  }
  send_ack(*pkt, is_dup);
}

void TcpSink::fill_sacks(TcpHeader& ack, std::int64_t trigger_seq) const {
  // Report contiguous runs of buffered segments, the run containing the most
  // recent arrival first (RFC 2018).
  if (out_of_order_buf_.empty()) return;
  struct Run {
    std::int64_t begin, end;
    bool has_trigger;
  };
  std::vector<Run> runs;
  auto it = out_of_order_buf_.begin();
  std::int64_t begin = *it, prev = *it;
  bool has_trigger = (*it == trigger_seq);
  for (++it; it != out_of_order_buf_.end(); ++it) {
    if (*it == prev + 1) {
      prev = *it;
      if (*it == trigger_seq) has_trigger = true;
      continue;
    }
    runs.push_back({begin, prev + 1, has_trigger});
    begin = prev = *it;
    has_trigger = (*it == trigger_seq);
  }
  runs.push_back({begin, prev + 1, has_trigger});

  // Trigger run first, then most recent others up to the block limit.
  for (const Run& r : runs) {
    if (r.has_trigger) ack.sacks.push_back({r.begin, r.end});
  }
  for (auto rit = runs.rbegin(); rit != runs.rend(); ++rit) {
    if (static_cast<int>(ack.sacks.size()) >= cfg_.max_sack_blocks) break;
    if (rit->has_trigger) continue;
    ack.sacks.push_back({rit->begin, rit->end});
  }
}

void TcpSink::customize_ack(TcpHeader&, const Packet&, bool) {}

void TcpSink::send_ack(const Packet& data, bool is_dup) {
  PacketPtr ack =
      node_.new_packet(data.ip.src, IpProto::kTcp,
                       static_cast<std::uint32_t>(cfg_.ack_size.value()));
  TcpHeader h;
  h.flow = data.tcp().flow;
  h.src_port = cfg_.port;
  h.dst_port = data.tcp().src_port;
  h.is_ack = true;
  h.seqno = next_expected_ - 1;
  h.ts_echo = data.tcp().ts;
  // Muzha feedback: echo the path-minimum DRAI carried by this data packet,
  // and mark duplicate ACKs caused by congestion-region packets.
  h.mrai = data.ip.avbw_s;
  h.marked = is_dup && (data.ip.congestion_marked ||
                        data.ip.avbw_s <= kDraiModerateDecel);
  // Jersey-style CW echo: router mark reflected on every ACK.
  h.ce_echo = data.ip.congestion_marked;
  // RoVegas: forward-path queueing delay accumulated by the devices.
  h.qdelay_echo = data.ip.accum_queue_delay;
  // TCP-DOOR: duplicate-ACK stream sequence (resets on fresh ACKs).
  if (is_dup) {
    h.dup_seq = ++dup_seq_;
  } else {
    dup_seq_ = 0;
  }
  fill_sacks(h, data.tcp().seqno);
  customize_ack(h, data, is_dup);
  ack->l4 = std::move(h);
  ++acks_sent_;
  node_.send(std::move(ack));
}

}  // namespace muzha
