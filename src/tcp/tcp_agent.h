// Packet-based TCP sender base class (NS-2 "one-way TCP" model).
//
// Sequence numbers count fixed-size segments; the sink cumulatively ACKs the
// highest in-order segment. The base class owns the send window, RTO timer
// (Jacobson estimation, Karn's rule, exponential backoff), duplicate-ACK
// detection and retransmission machinery; variants override the three hooks
// (on_new_ack / on_dup_ack / on_timeout) to implement their congestion
// control. The `window` config field is NS-2's `window_` — the advertised
// window cap the paper sweeps in Simulation 2.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "net/agent.h"
#include "net/node.h"
#include "pkt/packet.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "sim/units.h"
#include "tcp/rto_estimator.h"

namespace muzha {

struct TcpConfig {
  NodeId dst = kInvalidNodeId;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  FlowId flow = 0;
  // IP datagram size of a data segment: 1460 B payload + 40 B TCP/IP header.
  Bytes packet_size = Bytes(1500);
  Bytes ack_size = Bytes(40);
  // Advertised window cap in segments (NS-2 `window_`).
  int window = 32;
  // -1 = unbounded source (FTP); otherwise stop after this many segments.
  std::int64_t max_packets = -1;
  RtoConfig rto;
  Segments initial_cwnd = Segments(1.0);
  int dupack_threshold = 3;
};

// Coarse congestion-control phase, derived from (in_recovery, cwnd vs
// ssthresh). Variants without a slow-start phase (Muzha parks ssthresh at 0)
// report kCongestionAvoidance whenever they are not in recovery.
enum class TcpPhase : std::uint8_t {
  kSlowStart,
  kCongestionAvoidance,
  kFastRecovery,
};

const char* tcp_phase_name(TcpPhase p);

class TcpAgent : public Agent {
 public:
  TcpAgent(Simulator& sim, Node& node, TcpConfig cfg);
  ~TcpAgent() override = default;

  // Registers on the node's source port and begins transmitting.
  void start();
  void receive(PacketPtr pkt) final;

  // --- Observability ------------------------------------------------------
  Segments cwnd() const { return cwnd_; }
  Segments ssthresh() const { return ssthresh_; }
  std::int64_t highest_ack() const { return highest_ack_; }
  std::int64_t next_seq() const { return t_seqno_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  const RtoEstimator& rto_estimator() const { return rto_; }
  const TcpConfig& config() const { return cfg_; }
  bool in_recovery() const { return in_recovery_; }
  int dupacks() const { return dupacks_; }
  TcpPhase phase() const {
    if (in_recovery_) return TcpPhase::kFastRecovery;
    return cwnd_ < ssthresh_ ? TcpPhase::kSlowStart
                             : TcpPhase::kCongestionAvoidance;
  }

  // Called on every congestion-window change (CWND traces, Figs 5.2-5.7).
  using CwndListener = std::function<void(SimTime, double)>;
  void set_cwnd_listener(CwndListener cb) { cwnd_listener_ = std::move(cb); }

 protected:
  // --- Variant hooks ------------------------------------------------------
  // New cumulative ACK advancing highest_ack (already updated). `newly_acked`
  // is the number of segments this ACK acknowledged.
  virtual void on_new_ack(const TcpHeader& h, std::int64_t newly_acked) = 0;
  // Duplicate ACK number `dupacks()` for highest_ack().
  virtual void on_dup_ack(const TcpHeader& h) = 0;
  // ACK older than the current cumulative point (reordered in the network).
  // Default: ignore. TCP-DOOR uses this to detect out-of-order delivery.
  virtual void on_old_ack(const TcpHeader& h) { (void)h; }
  // Retransmission timeout; base already backed off the RTO and counted the
  // timeout. Default: classic go-back-N slow-start restart.
  virtual void on_timeout();

  // --- Services for variants ----------------------------------------------
  // Sends new segments while the effective window allows.
  void send_much();
  // Retransmits one segment.
  void retransmit(std::int64_t seq);
  void set_cwnd(Segments v);
  void set_ssthresh(Segments v) { ssthresh_ = v; }
  int effective_window() const;
  std::int64_t outstanding() const { return t_seqno_ - 1 - highest_ack_; }
  // Standard slow-start / congestion-avoidance growth (Reno-style opencwnd).
  void open_cwnd();
  void enter_recovery_bookkeeping() {
    in_recovery_ = true;
    recover_ = t_seqno_ - 1;
  }
  void exit_recovery_bookkeeping() { in_recovery_ = false; }
  std::int64_t recover_point() const { return recover_; }
  bool seq_was_retransmitted(std::int64_t s) const {
    return retx_seqs_.find(s) != retx_seqs_.end();
  }
  Simulator& sim() { return sim_; }

  // Restarts the retransmission timer if data is outstanding, else stops it.
  void manage_rtx_timer();

  // Rolls the send sequence back to the first unacknowledged segment and
  // retransmits it (go-back-N after a timeout).
  void go_back_n();

 private:
  void output(std::int64_t seq, bool is_retx);
  void handle_timeout();

  Simulator& sim_;
  Node& node_;
  TcpConfig cfg_;

  Segments cwnd_;
  Segments ssthresh_ = Segments(64.0);
  std::int64_t t_seqno_ = 0;      // next new segment to send
  std::int64_t highest_ack_ = -1;  // highest cumulatively ACKed segment
  std::int64_t maxseq_ = -1;       // highest segment ever sent
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = -1;

  RtoEstimator rto_;
  Timer rtx_timer_;

  // Karn's rule: segments that were retransmitted are never RTT-sampled.
  // Ordered set: receive() prunes it with std::erase_if, and erasure order
  // must not depend on hash-bucket layout.
  std::set<std::int64_t> retx_seqs_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  bool started_ = false;

  CwndListener cwnd_listener_;
};

}  // namespace muzha
