#include "tcp/tcp_variants.h"

#include <algorithm>

#include "pkt/packet.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"

namespace muzha {

// ---------------------------------------------------------------------------
// Tahoe
// ---------------------------------------------------------------------------

void TcpTahoe::on_new_ack(const TcpHeader&, std::int64_t) {
  exit_recovery_bookkeeping();
  open_cwnd();
}

void TcpTahoe::on_dup_ack(const TcpHeader&) {
  if (in_recovery() || dupacks() != config().dupack_threshold) return;
  // Fast retransmit, then restart from slow start (no fast recovery).
  set_ssthresh(std::max(cwnd() / 2.0, Segments(2.0)));
  set_cwnd(Segments(1.0));
  enter_recovery_bookkeeping();
  retransmit(highest_ack() + 1);
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

void TcpReno::on_new_ack(const TcpHeader&, std::int64_t) {
  if (in_recovery()) {
    // Any new ACK ends Reno's recovery; deflate to ssthresh.
    exit_recovery_bookkeeping();
    set_cwnd(ssthresh());
    return;
  }
  open_cwnd();
}

void TcpReno::on_dup_ack(const TcpHeader&) {
  if (in_recovery()) {
    // Window inflation: each dup ACK signals a segment left the network.
    set_cwnd(cwnd() + Segments(1.0));
    send_much();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  set_ssthresh(std::max(cwnd() / 2.0, Segments(2.0)));
  enter_recovery_bookkeeping();
  set_cwnd(ssthresh() +
           Segments(static_cast<double>(config().dupack_threshold)));
  retransmit(highest_ack() + 1);
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

void TcpNewReno::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  if (in_recovery()) {
    if (h.seqno >= recover_point()) {
      // Full ACK: recovery complete.
      exit_recovery_bookkeeping();
      set_cwnd(ssthresh());
      return;
    }
    // Partial ACK: the next hole is also lost; retransmit it immediately and
    // stay in recovery (RFC 3782), deflating by the amount acknowledged.
    retransmit(h.seqno + 1);
    set_cwnd(std::max(
        Segments(cwnd().value() - static_cast<double>(newly_acked) + 1.0),
        Segments(1.0)));
    return;
  }
  open_cwnd();
}

void TcpNewReno::on_dup_ack(const TcpHeader&) {
  if (in_recovery()) {
    set_cwnd(cwnd() + Segments(1.0));
    send_much();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  set_ssthresh(std::max(cwnd() / 2.0, Segments(2.0)));
  enter_recovery_bookkeeping();
  set_cwnd(ssthresh() +
           Segments(static_cast<double>(config().dupack_threshold)));
  retransmit(highest_ack() + 1);
}

// ---------------------------------------------------------------------------
// SACK
// ---------------------------------------------------------------------------

void TcpSack::absorb_sacks(const TcpHeader& h) {
  for (const SackBlock& b : h.sacks) {
    for (std::int64_t s = b.begin; s < b.end; ++s) {
      if (s > highest_ack()) sacked_.insert(s);
    }
  }
  // Garbage-collect below the cumulative ACK.
  while (!sacked_.empty() && *sacked_.begin() <= highest_ack()) {
    sacked_.erase(sacked_.begin());
  }
}

std::int64_t TcpSack::next_hole(std::int64_t above) const {
  for (std::int64_t s = std::max(above, highest_ack() + 1);
       s <= recover_point(); ++s) {
    if (sacked_.find(s) == sacked_.end()) return s;
  }
  return -1;
}

void TcpSack::try_to_send() {
  while (pipe_ < cwnd().value()) {
    std::int64_t hole = next_hole(last_hole_sent_ + 1);
    if (hole >= 0) {
      last_hole_sent_ = hole;
      retransmit(hole);
      pipe_ += 1.0;
      continue;
    }
    // No holes left: send new data if the advertised window allows.
    std::int64_t before = next_seq();
    if (outstanding() >= effective_window()) break;
    send_much();
    if (next_seq() == before) break;
    pipe_ += static_cast<double>(next_seq() - before);
  }
}

void TcpSack::on_new_ack(const TcpHeader& h, std::int64_t newly_acked) {
  absorb_sacks(h);
  if (in_recovery()) {
    if (h.seqno >= recover_point()) {
      exit_recovery_bookkeeping();
      sacked_.clear();
      pipe_ = 0;
      last_hole_sent_ = -1;
      set_cwnd(ssthresh());
      return;
    }
    // Partial ACK: the retransmission and the original both left the pipe.
    pipe_ = std::max(0.0, pipe_ - 2.0);
    (void)newly_acked;
    try_to_send();
    return;
  }
  open_cwnd();
}

void TcpSack::on_dup_ack(const TcpHeader& h) {
  absorb_sacks(h);
  if (in_recovery()) {
    pipe_ = std::max(0.0, pipe_ - 1.0);
    try_to_send();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  set_ssthresh(std::max(cwnd() / 2.0, Segments(2.0)));
  enter_recovery_bookkeeping();
  set_cwnd(ssthresh());
  // Pipe: segments in flight minus those known to have left the network.
  pipe_ = std::max(
      0.0, static_cast<double>(outstanding()) -
               static_cast<double>(sacked_.size()) - 1.0);
  last_hole_sent_ = -1;
  try_to_send();
}

void TcpSack::on_timeout() {
  sacked_.clear();
  pipe_ = 0;
  last_hole_sent_ = -1;
  TcpAgent::on_timeout();
}

}  // namespace muzha
