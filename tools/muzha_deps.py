#!/usr/bin/env python3
"""muzha-deps: architecture-layering & include-graph analyzer.

The simulator stays reproducible because its layers compose in one strict
direction — sim at the bottom, scenario at the top, every arrow pointing
down. muzha-lint (tools/muzha_lint.py) defends determinism at the token
level; this tool defends the same property one level up, at the dependency
graph: it parses every header/source under the configured roots, resolves
quoted includes against the repo, and checks the resulting graph against the
committed layer manifest (tools/layers.toml — the canonical DAG plus the
explicit allowed edges between layers and each layer's private headers).

Like muzha-lint it is a two-pass analyzer built on the same lexer (comments,
string and raw-string literals stripped before any matching, so an
`#include` spelled inside a raw string or a comment is never an edge):

  pass 1 (per file)  lex, collect quoted includes (conditional includes
                     under any #if/#ifdef count — the graph is the union
                     over configurations), exported symbols (class/struct
                     definitions, enums, using-aliases, typedefs, macros,
                     namespace-scope functions and constants), forward
                     declarations, and muzha-deps suppression comments.
  pass 2 (project)   resolve every include against the include roots
                     (including-file directory first, then each manifest
                     root — quoted-include semantics), build the file-level
                     graph, then evaluate the rules below.

Rules:

  layer-violation        an include edge between layers that the manifest
                         does not allow (a sim/ file including tcp/, two
                         sibling layers cross-including, ...). Same-layer
                         edges are always allowed.
  include-cycle          the include graph must be acyclic; every file in a
                         strongly connected component is reported at the
                         include line that closes the cycle.
  missing-direct-include a file that names an exported type/alias/macro
                         (Scheduler, PacketPtr, Meters, MUZHA_DCHECK, ...)
                         must include the defining header DIRECTLY, not
                         lean on a transitive include that a refactor of
                         the intermediate header silently removes. Only
                         symbols with exactly one project-wide definition
                         participate (ambiguous names are skipped), and a
                         forward declaration of the symbol exempts the file.
  unused-include         a quoted project include none of whose exported
                         symbols (functions and constants included) appears
                         in the including file's code. A .cc's primary
                         header (src/x/y.cc -> x/y.h) is always exempt.
  private-header-escape  headers a layer marks `private` in the manifest
                         are implementation details; including one from
                         outside the owning layer is a finding even when
                         the layer edge itself is allowed.

Suppressions mirror muzha-lint, with the tool's own tag (each must carry a
one-line justification after the colon):

  // muzha-deps: allow(rule-id): why this occurrence is safe
  // muzha-deps: allow-file(rule-id): why this whole file is exempt

A line suppression covers its own line and the next. A suppression with no
justification, an unknown rule id, or one that suppresses nothing is itself
reported (bad-suppression / unknown-rule / unused-suppression).

Baseline ratchet (same semantics as tools/run_clang_tidy.py): findings are
normalized to stable (file, rule, subject) triples — line numbers are
deliberately dropped — and diffed against tools/muzha_deps_baseline.txt.
NEW triples fail the run, STALE entries are advisory (with a count emitted
as a ::warning under --github so staleness cannot silently accumulate), and
--update-baseline refreshes the file. Meta findings (the suppression rules)
are never baselineable and always fail.

--dot FILE additionally emits the layer-condensed include graph as Graphviz
(one node per layer with its file count, one edge per allowed dependency
with its include count, violations in red) so reviewers can see the
architecture each PR.

Exit status: 0 when clean (stale-only counts as clean), 1 when any new or
unbaselined finding survives, 2 on usage/manifest error.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from muzha_lint import (  # noqa: E402
    CXX_EXTENSIONS,
    Finding,
    Suppression,
    split_code_and_comments,
)

DEFAULT_MANIFEST = os.path.join("tools", "layers.toml")
DEFAULT_BASELINE = os.path.join("tools", "muzha_deps_baseline.txt")

RULES = {
    "layer-violation": "include edge not allowed by the layer manifest "
                       "(tools/layers.toml): layers compose strictly downward",
    "include-cycle": "include cycle: the include graph must stay a DAG",
    "missing-direct-include": "symbol used but its defining header is only "
                              "reached transitively: include it directly",
    "unused-include": "no symbol exported by this header appears in the file: "
                      "drop the include",
    "private-header-escape": "header is private to its layer: include the "
                             "layer's public interface instead",
    # Meta rules (not suppressible, never baselined).
    "bad-suppression": "suppression without a justification",
    "unknown-rule": "suppression names an unknown rule id",
    "unused-suppression": "suppression that suppressed nothing",
}

META_RULES = {"bad-suppression", "unknown-rule", "unused-suppression"}

SUPPRESS_RE = re.compile(
    r"muzha-deps:\s*allow(?P<file>-file)?\(\s*(?P<rule>[\w-]+)\s*\)"
    r"(?P<colon>\s*:\s*(?P<just>.*\S)?)?"
)


class ManifestError(Exception):
    """The layer manifest is missing, malformed, or not a DAG."""


# ---------------------------------------------------------------------------
# Layer manifest
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Manifest:
    roots: list[str]                     # include roots, repo-relative
    order: list[str]                     # layers, bottom-most first
    edges: dict[str, set[str]]           # layer -> layers it may include
    private: dict[str, str]              # private header (root-rel) -> layer


def load_manifest(path: str) -> Manifest:
    try:
        with open(path, "rb") as f:
            data = tomllib.load(f)
    except FileNotFoundError:
        raise ManifestError(f"manifest not found: {path}")
    except tomllib.TOMLDecodeError as e:
        raise ManifestError(f"{path}: {e}")

    graph = data.get("graph", {})
    roots = list(graph.get("roots", ["src"]))
    layers = data.get("layers", {})
    order = list(layers.get("order", []))
    if not order:
        raise ManifestError(f"{path}: [layers].order must list the layers")

    raw_edges = data.get("edges", {})
    edges: dict[str, set[str]] = {}
    for layer in order:
        allowed = raw_edges.get(layer, [])
        for dep in allowed:
            if dep not in order:
                raise ManifestError(
                    f"{path}: [edges].{layer} names unknown layer '{dep}'")
        edges[layer] = set(allowed)
    for layer in raw_edges:
        if layer not in order:
            raise ManifestError(
                f"{path}: [edges] names unknown layer '{layer}'")

    private: dict[str, str] = {}
    for layer, headers in data.get("private", {}).items():
        if layer not in order:
            raise ManifestError(
                f"{path}: [private] names unknown layer '{layer}'")
        for header in headers:
            if not header.startswith(layer + "/"):
                raise ManifestError(
                    f"{path}: private header '{header}' is not under "
                    f"layer '{layer}'")
            private[header] = layer

    _check_dag(path, order, edges)
    return Manifest(roots=roots, order=order, edges=edges, private=private)


def _check_dag(path: str, order: list[str], edges: dict[str, set[str]]) -> None:
    """The allowed-edge relation itself must be acyclic and point downward."""
    rank = {layer: i for i, layer in enumerate(order)}
    for layer, deps in edges.items():
        for dep in deps:
            if rank[dep] >= rank[layer]:
                raise ManifestError(
                    f"{path}: [edges].{layer} -> {dep} points upward or "
                    f"sideways in [layers].order — the manifest must be a DAG")


# ---------------------------------------------------------------------------
# Pass 1: per-file facts
# ---------------------------------------------------------------------------

# An include-shaped line in LEXED code (string contents blanked, so the path
# is recovered from the raw line). Lines inside comments or raw strings do
# not survive lexing and are never edges.
INCLUDE_SHAPE_RE = re.compile(r'^\s*#\s*include\s*"')
INCLUDE_PATH_RE = re.compile(r'^\s*#\s*include\s*"(?P<path>[^"]+)"')

GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")
FWD_DECL_RE = re.compile(r"\b(?:class|struct)\s+(\w+)\s*;")
TYPE_DEF_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)\s*(?:<[^;{}]*>\s*)?(?:final\s*)?[:{]")
ENUM_DEF_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?(\w+)\s*[:{]")
USING_ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=")
TYPEDEF_RE = re.compile(r"\btypedef\s+[^;]*?\b(\w+)\s*;")
WORD_RE = re.compile(r"[A-Za-z_]\w*")

CXX_KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "decltype", "default", "delete", "do", "double", "else", "enum",
    "explicit", "extern", "final", "float", "for", "friend", "goto", "if",
    "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "operator", "override", "private", "protected", "public", "requires",
    "return", "short", "signed", "sizeof", "static", "static_assert",
    "static_cast", "struct", "switch", "template", "this", "throw", "true",
    "false", "try", "typedef", "typename", "union", "unsigned", "using",
    "virtual", "void", "volatile", "while", "std", "size_t", "uint8_t",
    "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t",
    "int64_t", "uintptr_t", "assert", "defined",
}


@dataclasses.dataclass
class DepFacts:
    rel: str                          # repo-relative path
    code_lines: list[str]
    includes: list[tuple[int, str]]   # (line, include string as written)
    strong_exports: set[str]          # types/aliases/macros this file defines
    weak_exports: set[str]            # strong + namespace-scope funcs/consts
    fwd_decls: set[str]               # names this file forward-declares
    used_tokens: dict[str, int]       # token -> first line it appears on
    suppressions: list[Suppression]
    meta_findings: list[Finding]


def parse_dep_suppressions(
    comment_lines: list[str], path: str
) -> tuple[list[Suppression], list[Finding]]:
    sups: list[Suppression] = []
    findings: list[Finding] = []
    for idx, comment in enumerate(comment_lines, start=1):
        for m in SUPPRESS_RE.finditer(comment):
            rule = m.group("rule")
            just = (m.group("just") or "").strip()
            if rule not in RULES or rule in META_RULES:
                findings.append(
                    Finding(path, idx, "unknown-rule",
                            f"allow({rule}) names no known rule"))
                continue
            if not just:
                findings.append(
                    Finding(path, idx, "bad-suppression",
                            f"allow({rule}) carries no justification "
                            "(syntax: allow(rule): why it is safe)"))
                continue
            sups.append(Suppression(idx, rule, just, m.group("file") is not None))
    return sups, findings


def _namespace_transparent_depths(code: str) -> list[int]:
    """Brace depth per character, with namespace braces transparent.

    `namespace x {` and `extern "" {` do not open a scope for export
    purposes: a free function inside a namespace is still namespace-scope.
    Class/enum/function braces all count.
    """
    depths: list[int] = []
    depth = 0
    transparent: list[bool] = []  # stack, one entry per open brace
    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            head = code[max(0, i - 96):i]
            is_ns = re.search(r"\b(?:namespace(?:\s+[\w:]+)?|extern\s*\"\s*\")"
                              r"\s*$", head) is not None
            transparent.append(is_ns)
            if not is_ns:
                depth += 1
            depths.append(depth)
        elif c == "}":
            depths.append(depth)
            if transparent:
                if not transparent.pop():
                    depth = max(0, depth - 1)
        else:
            depths.append(depth)
        i += 1
    return depths


FUNC_DECL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CONST_DECL_RE = re.compile(
    r"\b(?:constexpr|const)\b[^;=(]*?\b(k[A-Z]\w*)\s*[={]")


def collect_exports(code_lines: list[str]) -> tuple[set[str], set[str], set[str]]:
    """Returns (strong, weak, fwd_decls) export sets for one file.

    strong: full type/enum definitions, using-aliases, typedefs, and macros
    (the include-guard macro excluded) — the set missing-direct-include
    keys on. weak: strong plus namespace-scope function names and kConstant
    definitions — the more lenient set unused-include keys on.
    """
    code = "\n".join(code_lines)
    strong: set[str] = set()
    fwd: set[str] = set()

    for m in TYPE_DEF_RE.finditer(code):
        strong.add(m.group(1))
    for m in ENUM_DEF_RE.finditer(code):
        strong.add(m.group(1))
    for m in USING_ALIAS_RE.finditer(code):
        strong.add(m.group(1))
    for m in TYPEDEF_RE.finditer(code):
        strong.add(m.group(1))
    for m in FWD_DECL_RE.finditer(code):
        if m.group(1) not in strong:
            fwd.add(m.group(1))

    # Macros, minus the include guard (first #ifndef X / #define X pair).
    guard: str | None = None
    for line in code_lines:
        s = line.strip()
        if not s:
            continue
        gm = GUARD_RE.match(s)
        if gm:
            guard = gm.group(1)
        break
    for line in code_lines:
        dm = DEFINE_RE.match(line)
        if dm and dm.group(1) != guard:
            strong.add(dm.group(1))

    # Namespace-scope declarations: scan at depth 0 with namespace braces
    # transparent, so inline free functions and kConstants in headers
    # register while member functions and call sites inside bodies do not.
    # kConstants are strong (distinctive names, so missing-direct-include
    # can key on them); function names are weak-only (too collision-prone
    # for the direct-include heuristic, still good unused-include evidence).
    depths = _namespace_transparent_depths(code)
    for m in CONST_DECL_RE.finditer(code):
        if depths[m.start(1)] == 0:
            strong.add(m.group(1))
    weak = set(strong)
    for m in FUNC_DECL_RE.finditer(code):
        if depths[m.start(1)] == 0 and m.group(1) not in CXX_KEYWORDS:
            weak.add(m.group(1))
    return strong, weak, fwd


def collect_dep_facts(path: str, rel: str) -> DepFacts:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = split_code_and_comments(text)
    raw_lines = text.split("\n")

    includes: list[tuple[int, str]] = []
    for idx, line in enumerate(code_lines, start=1):
        if not INCLUDE_SHAPE_RE.match(line):
            continue
        # The lexer blanks string contents; recover the path from the raw
        # line (same index — the lexer preserves line structure).
        if idx <= len(raw_lines):
            m = INCLUDE_PATH_RE.match(raw_lines[idx - 1])
            if m:
                includes.append((idx, m.group("path")))

    strong, weak, fwd = collect_exports(code_lines)

    used: dict[str, int] = {}
    for idx, line in enumerate(code_lines, start=1):
        if INCLUDE_SHAPE_RE.match(line):
            continue  # the include line itself is not a use
        for m in WORD_RE.finditer(line):
            used.setdefault(m.group(0), idx)

    sups, meta = parse_dep_suppressions(comment_lines, rel)
    return DepFacts(
        rel=rel, code_lines=code_lines, includes=includes,
        strong_exports=strong, weak_exports=weak, fwd_decls=fwd,
        used_tokens=used, suppressions=sups, meta_findings=meta)


# ---------------------------------------------------------------------------
# Pass 2: resolution, graph, rules
# ---------------------------------------------------------------------------

def collect_dep_files(root: str, roots: list[str]) -> list[str]:
    files: list[str] = []
    for r in roots:
        base = os.path.join(root, r)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, fn))
    return files


@dataclasses.dataclass
class Project:
    root: str
    manifest: Manifest
    facts: dict[str, DepFacts]          # repo-relative path -> facts
    canon: dict[str, str]               # repo-relative -> root-relative
    layer: dict[str, str | None]        # repo-relative -> layer name
    edges: dict[str, list[tuple[int, str, str]]]
    # file -> [(line, include string, resolved repo-relative path)]


def canonicalize(rel: str, roots: list[str]) -> str:
    """Root-relative path (e.g. src/phy/channel.h -> phy/channel.h)."""
    rel = rel.replace(os.sep, "/")
    for r in roots:
        prefix = r.rstrip("/") + "/"
        if rel.startswith(prefix):
            return rel[len(prefix):]
    return rel


def layer_of(rel: str, manifest: Manifest) -> str | None:
    canon = canonicalize(rel, manifest.roots)
    head = canon.split("/", 1)[0]
    return head if head in manifest.order else None


def resolve_include(root: str, including_rel: str, inc: str,
                    roots: list[str], known: set[str]) -> str | None:
    """Quoted-include resolution: including-file directory first, then each
    manifest root. Returns the repo-relative path of the target or None for
    non-project includes."""
    cand = os.path.normpath(
        os.path.join(os.path.dirname(including_rel), inc)).replace(os.sep, "/")
    if cand in known:
        return cand
    for r in roots:
        cand = os.path.normpath(os.path.join(r, inc)).replace(os.sep, "/")
        if cand in known:
            return cand
    return None


def build_project(root: str, manifest: Manifest,
                  files: list[str] | None = None) -> Project:
    paths = files if files is not None \
        else collect_dep_files(root, manifest.roots)
    facts: dict[str, DepFacts] = {}
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        facts[rel] = collect_dep_facts(path, rel)
    known = set(facts)
    canon = {rel: canonicalize(rel, manifest.roots) for rel in facts}
    layer = {rel: layer_of(rel, manifest) for rel in facts}
    edges: dict[str, list[tuple[int, str, str]]] = {}
    for rel, f in facts.items():
        resolved: list[tuple[int, str, str]] = []
        for line, inc in f.includes:
            target = resolve_include(root, rel, inc, manifest.roots, known)
            if target is not None:
                resolved.append((line, inc, target))
        edges[rel] = resolved
    return Project(root=root, manifest=manifest, facts=facts, canon=canon,
                   layer=layer, edges=edges)


def strongly_connected_components(
        graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan, iterative (the include graph can be deep)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (start, sorted(graph.get(start, set())), 0)]
        while work:
            node, succs, i = work.pop()
            if i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            while i < len(succs):
                succ = succs[i]
                i += 1
                if succ not in index:
                    work.append((node, succs, i))
                    work.append((succ, sorted(graph.get(succ, set())), 0))
                    recurse = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if recurse:
                continue
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def primary_header(rel: str, canon: dict[str, str]) -> str | None:
    """src/x/y.cc -> the repo-relative path of x/y.h if it exists."""
    base, ext = os.path.splitext(rel)
    if ext not in (".cc", ".cpp", ".cxx"):
        return None
    for hext in (".h", ".hpp"):
        cand = base + hext
        if cand in canon:
            return cand
    return None


def evaluate(project: Project) -> list[Finding]:
    manifest = project.manifest
    raw: list[Finding] = []

    # --- layer-violation & private-header-escape (per edge) ----------------
    for rel, resolved in sorted(project.edges.items()):
        src_layer = project.layer[rel]
        for line, inc, target in resolved:
            dst_layer = project.layer[target]
            dst_canon = project.canon[target]
            if (src_layer is not None and dst_layer is not None
                    and src_layer != dst_layer
                    and dst_layer not in manifest.edges.get(src_layer, set())):
                raw.append(Finding(
                    rel, line, "layer-violation",
                    f"'{inc}': {src_layer}/ may not include {dst_layer}/ "
                    f"({RULES['layer-violation']})"))
            owner = manifest.private.get(dst_canon)
            if owner is not None and src_layer != owner:
                raw.append(Finding(
                    rel, line, "private-header-escape",
                    f"'{inc}' is private to {owner}/: "
                    f"{RULES['private-header-escape']}"))

    # --- include-cycle ------------------------------------------------------
    graph = {rel: {target for _, _, target in resolved}
             for rel, resolved in project.edges.items()}
    for scc in strongly_connected_components(graph):
        members = set(scc)
        is_cycle = len(scc) > 1 or (scc[0] in graph.get(scc[0], set()))
        if not is_cycle:
            continue
        cycle_desc = " -> ".join(project.canon[m] for m in scc)
        for rel in scc:
            for line, inc, target in project.edges[rel]:
                if target in members:
                    raw.append(Finding(
                        rel, line, "include-cycle",
                        f"'{inc}' participates in cycle [{cycle_desc}]: "
                        f"{RULES['include-cycle']}"))
                    break  # one finding per member file

    # --- missing-direct-include --------------------------------------------
    # Defining file per strong symbol, headers only, project-unique.
    defs: dict[str, list[str]] = {}
    for rel, f in project.facts.items():
        if not rel.endswith((".h", ".hpp")):
            continue
        for sym in f.strong_exports:
            defs.setdefault(sym, []).append(rel)
    unique_defs = {sym: rels[0] for sym, rels in defs.items()
                   if len(rels) == 1}

    for rel, f in sorted(project.facts.items()):
        direct = {target for _, _, target in project.edges[rel]}
        primary = primary_header(rel, project.canon)
        for sym, first_line in sorted(f.used_tokens.items()):
            definer = unique_defs.get(sym)
            if definer is None or definer == rel or definer == primary:
                continue
            if definer in direct:
                continue
            if sym in f.fwd_decls or sym in f.strong_exports:
                continue
            raw.append(Finding(
                rel, first_line, "missing-direct-include",
                f"'{sym}' is defined in {project.canon[definer]}: "
                f"{RULES['missing-direct-include']}"))

    # --- unused-include -----------------------------------------------------
    for rel, f in sorted(project.facts.items()):
        primary = primary_header(rel, project.canon)
        for line, inc, target in project.edges[rel]:
            if target == primary:
                continue
            exports = project.facts[target].weak_exports
            if not exports:
                continue  # nothing to key on; cannot judge
            if any(sym in f.used_tokens for sym in exports):
                continue
            raw.append(Finding(
                rel, line, "unused-include",
                f"'{inc}': {RULES['unused-include']}"))

    # --- suppressions -------------------------------------------------------
    findings: list[Finding] = []
    for rel, f in project.facts.items():
        findings.extend(f.meta_findings)
    for fnd in raw:
        sups = project.facts[fnd.path].suppressions
        hit = None
        for s in sups:
            if s.rule != fnd.rule:
                continue
            if s.file_level or s.line in (fnd.line, fnd.line - 1):
                hit = s
                break
        if hit is not None:
            hit.used = True
        else:
            findings.append(fnd)
    for rel, f in project.facts.items():
        for s in f.suppressions:
            if not s.used:
                findings.append(Finding(
                    rel, s.line, "unused-suppression",
                    f"allow({s.rule}) suppressed nothing — remove it"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Baseline ratchet (same semantics as tools/run_clang_tidy.py)
# ---------------------------------------------------------------------------

SUBJECT_RE = re.compile(r"'([^']+)'")


def finding_key(f: Finding) -> tuple[str, str, str]:
    """Stable (file, rule, subject) triple — line numbers deliberately
    dropped so refactors that move code do not churn the baseline."""
    m = SUBJECT_RE.search(f.detail)
    return (f.path, f.rule, m.group(1) if m else "-")


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    baseline: set[tuple[str, str, str]] = set()
    if not os.path.exists(path):
        return baseline
    with open(path, encoding="utf-8") as f:
        for raw_line in f:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 3:
                baseline.add((parts[0], parts[1], parts[2]))
    return baseline


def write_baseline(path: str, keys: set[tuple[str, str, str]]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("# muzha-deps baseline: accepted (file, rule, subject) "
                "triples, one per line.\n"
                "# A finding not listed here fails CI; refresh with\n"
                "#   python3 tools/muzha_deps.py --update-baseline\n"
                "# and justify additions in the PR that makes them. Prefer\n"
                "# fixing the include or adding a justified inline\n"
                "# `muzha-deps: allow(rule): why` suppression; the baseline\n"
                "# is for violations that are genuinely unfixable today.\n")
        for file, rule, subject in sorted(keys):
            f.write(f"{file} {rule} {subject}\n")


def github_annotation(f: Finding) -> str:
    msg = f.detail.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    return (f"::error file={f.path},line={f.line},"
            f"title=muzha-deps [{f.rule}]::{msg}")


# ---------------------------------------------------------------------------
# Graphviz emission
# ---------------------------------------------------------------------------

def emit_dot(project: Project, findings: list[Finding]) -> str:
    manifest = project.manifest
    file_count: dict[str, int] = {layer: 0 for layer in manifest.order}
    edge_count: dict[tuple[str, str], int] = {}
    for rel, resolved in project.edges.items():
        src = project.layer[rel]
        if src is not None:
            file_count[src] = file_count.get(src, 0)
        for _, _, target in resolved:
            dst = project.layer[target]
            if src is None or dst is None or src == dst:
                continue
            edge_count[(src, dst)] = edge_count.get((src, dst), 0) + 1
    for rel in project.facts:
        lay = project.layer[rel]
        if lay is not None:
            file_count[lay] += 1

    violating = {(project.layer[f.path],
                  project.layer.get(_violation_target(project, f) or "", None))
                 for f in findings if f.rule == "layer-violation"}

    out = ["digraph muzha_layers {",
           '  rankdir="BT";',
           '  node [shape=box, style="rounded,filled", '
           'fillcolor="#eef4fb", fontname="Helvetica"];',
           '  edge [fontname="Helvetica", fontsize=10];',
           '  label="muzha architecture layers (arrows point at '
           'dependencies; red = manifest violation)";']
    for layer in manifest.order:
        out.append(f'  {layer} [label="{layer}/\\n'
                   f'{file_count.get(layer, 0)} files"];')
    for (src, dst), n in sorted(edge_count.items()):
        attrs = [f'label="{n}"']
        if (src, dst) in violating:
            attrs.append('color="#c0392b"')
            attrs.append('penwidth=2')
        out.append(f"  {src} -> {dst} [{', '.join(attrs)}];")
    out.append("}")
    return "\n".join(out) + "\n"


def _violation_target(project: Project, f: Finding) -> str | None:
    m = SUBJECT_RE.search(f.detail)
    if m is None:
        return None
    known = set(project.facts)
    return resolve_include(project.root, f.path, m.group(1),
                           project.manifest.roots, known)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def analyze(root: str, manifest_path: str,
            files: list[str] | None = None) -> tuple[Project, list[Finding]]:
    manifest = load_manifest(manifest_path)
    project = build_project(root, manifest, files)
    return project, evaluate(project)


def main(argv: list[str]) -> int:
    doc = __doc__ or ""
    ap = argparse.ArgumentParser(description=doc.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--manifest", default=None,
                    help=f"layer manifest (default: {DEFAULT_MANIFEST})")
    ap.add_argument("--baseline", default=None,
                    help=f"baseline file (default: {DEFAULT_BASELINE})")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run's findings")
    ap.add_argument("--no-baseline", action="store_true",
                    help="every finding fails (ignore the baseline file)")
    ap.add_argument("--github", action="store_true",
                    help="also emit GitHub Actions ::error annotations")
    ap.add_argument("--dot", default=None, metavar="FILE",
                    help="write the layer-condensed include graph as Graphviz")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            meta = " (meta)" if rule in META_RULES else ""
            print(f"{rule}{meta}: {desc}")
        return 0

    manifest_path = args.manifest or os.path.join(args.root, DEFAULT_MANIFEST)
    baseline_path = args.baseline or os.path.join(args.root, DEFAULT_BASELINE)
    try:
        project, findings = analyze(args.root, manifest_path)
    except ManifestError as e:
        print(f"muzha-deps: {e}", file=sys.stderr)
        return 2

    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as f:
            f.write(emit_dot(project, findings))
        print(f"muzha-deps: include graph -> {args.dot}")

    meta = [f for f in findings if f.rule in META_RULES]
    gated = [f for f in findings if f.rule not in META_RULES]

    if args.update_baseline:
        write_baseline(baseline_path, {finding_key(f) for f in gated})
        print(f"muzha-deps: baseline refreshed with {len(gated)} finding(s) "
              f"-> {os.path.relpath(baseline_path, args.root)}")
        for f in meta:
            print(f"{f.path}:{f.line}: error: [{f.rule}] {f.detail}")
        return 1 if meta else 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    keys = {finding_key(f) for f in gated}
    new = [f for f in gated if finding_key(f) not in baseline]
    stale = sorted(baseline - keys)

    rc = 0
    for f in meta + new:
        print(f"{f.path}:{f.line}: error: [{f.rule}] {f.detail}")
        if args.github:
            print(github_annotation(f))
        rc = 1
    for file, rule, subject in stale:
        print(f"STALE {file}: [{rule}] {subject} in baseline but no longer "
              "reported (advisory — refresh with --update-baseline)")
    if stale and args.github:
        print(f"::warning title=muzha-deps baseline::{len(stale)} stale "
              f"baseline entr{'y' if len(stale) == 1 else 'ies'} — run "
              "tools/muzha_deps.py --update-baseline to prune")
    if rc == 0:
        n_files = len(project.facts)
        n_base = len(keys & baseline)
        print(f"muzha-deps: clean — {n_files} files, {n_base} baselined "
              f"finding(s), {len(stale)} stale entr"
              f"{'y' if len(stale) == 1 else 'ies'}, 0 new")
    else:
        print(f"muzha-deps: {len(meta) + len(new)} finding(s)", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
