#!/usr/bin/env python3
"""muzha-lint: determinism & memory-safety checker for the Muzha simulator.

The simulator's headline property is bit-determinism: a (scenario, seed) pair
fully determines every event, RNG draw and floating-point metric. The test
suite pins that with byte-identity and golden-hash tests, but nothing stops a
refactor from *introducing* a hazard that only diverges on another machine or
allocator. This checker mechanically bans the constructs that leak wall-clock
time, hash-bucket layout or address-space randomization into model behavior,
plus the classic C++ memory-safety foot-guns on polymorphic agents.

It is a token/AST-lite checker: comments and string literals are stripped,
class bodies are brace-matched, and everything else is line-oriented regex.
That is deliberate — it runs in milliseconds as a ctest with zero
dependencies, and the rules target constructs that are reliably visible at
token level. (Raw string literals are not handled; the codebase has none.)

Rules (see DESIGN.md "Correctness tooling" for the catalog):

  banned-rand        libc/global RNGs (std::rand, srand, drand48, random(),
                     std::random_device) — all randomness must flow from the
                     seeded per-Simulator muzha::Rng.
  banned-wall-clock  time(), clock(), gettimeofday, std::chrono::*_clock —
                     wall-clock reads make runs time-dependent.
  banned-seed        default-constructed std random engines or argless
                     .seed() — an implicit seed is an unpinned seed.
  unordered-iter     iteration (range-for, .begin, std::erase_if) over a
                     variable declared std::unordered_map/set — iteration
                     order depends on hashing and allocation history.
  pointer-key        associative containers keyed by pointer — ASLR decides
                     the order (and for unordered, the buckets).
  pointer-order      reinterpret_cast<uintptr_t>, std::hash<T*>,
                     std::less<T*> — pointer values leaking into arithmetic
                     or ordering.
  nondet-reduction   std::reduce / std::transform_reduce / std::execution::par
                     / #pragma omp — reduction order is unspecified, float
                     sums differ run to run.
  float-accum        `float`-typed state in model code — single precision
                     amplifies rounding and accumulation-order sensitivity;
                     simulation state is double.
  virtual-dtor       non-final class with virtual methods, no base class and
                     no virtual destructor — deleting through a base pointer
                     is UB.
  slicing            by-value parameter of a polymorphic class — copies the
                     base subobject and silently drops the derived state.
  raw-unit-double    double/float variable, member or parameter whose name
                     carries a unit suffix (_m, _s, _bps, _dbm, _mps, ...) —
                     dimensioned quantities must use the strong types in
                     src/sim/units.h (Meters, Seconds, BitsPerSecond, ...),
                     which that file alone is exempt from.

Suppressions (each must carry a one-line justification after the colon):

  // muzha-lint: allow(rule-id): why this occurrence is safe
  // muzha-lint: allow-file(rule-id): why this whole file is exempt

A line suppression covers its own line and the next line (so it can sit on
the line above the finding). A suppression with no justification, an unknown
rule id, or one that suppresses nothing is itself reported (bad-suppression /
unknown-rule / unused-suppression): dead suppressions rot into blanket
exemptions.

Exit status: 0 when clean, 1 when any finding survives, 2 on usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

RULES = {
    "banned-rand": "global RNG: all randomness must come from the seeded muzha::Rng",
    "banned-wall-clock": "wall-clock read: simulation time is SimTime, never host time",
    "banned-seed": "implicitly seeded RNG engine: pass an explicit seed",
    "unordered-iter": "iteration over an unordered container: order depends on hashing/allocation",
    "pointer-key": "pointer-keyed container: ASLR decides iteration order",
    "pointer-order": "pointer value used as number: leaks ASLR into behavior",
    "nondet-reduction": "unordered reduction: float accumulation order is unspecified",
    "float-accum": "float-typed state: use double, single precision amplifies order sensitivity",
    "virtual-dtor": "polymorphic class without virtual destructor: deletion via base pointer is UB",
    "slicing": "by-value parameter of polymorphic type: slices off derived state",
    "raw-unit-double": "unit-suffixed raw double: use the quantity types in sim/units.h",
    # Meta rules (not suppressible, no fixtures needed beyond the dedicated ones).
    "bad-suppression": "suppression without a justification",
    "unknown-rule": "suppression names an unknown rule id",
    "unused-suppression": "suppression that suppressed nothing",
}

META_RULES = {"bad-suppression", "unknown-rule", "unused-suppression"}


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    detail: str


@dataclasses.dataclass
class Suppression:
    line: int  # 1-based line the comment sits on
    rule: str
    justification: str
    file_level: bool
    used: bool = False


# ---------------------------------------------------------------------------
# Lexing: strip comments and string literals, keep comment text per line.
# ---------------------------------------------------------------------------

def split_code_and_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines), same line count as `text`.

    Code lines have comments and string/char literal contents blanked;
    comment lines hold only the comment text of that line.
    """
    code: list[str] = []
    comments: list[str] = []
    cur_code: list[str] = []
    cur_comment: list[str] = []
    state = "code"  # code | line_comment | block_comment | dquote | squote
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                cur_code.append('"')
                state = "dquote"
                i += 1
                continue
            if c == "'":
                cur_code.append("'")
                state = "squote"
                i += 1
                continue
            cur_code.append(c)
            i += 1
        elif state == "line_comment":
            cur_comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                i += 2  # skip escaped char
            elif c == quote:
                cur_code.append(quote)
                state = "code"
                i += 1
            else:
                cur_code.append(" ")  # blank literal contents
                i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

SUPPRESS_RE = re.compile(
    r"muzha-lint:\s*allow(?P<file>-file)?\(\s*(?P<rule>[\w-]+)\s*\)"
    r"(?P<colon>\s*:\s*(?P<just>.*\S)?)?"
)


def parse_suppressions(
    comment_lines: list[str], path: str
) -> tuple[list[Suppression], list[Finding]]:
    sups: list[Suppression] = []
    findings: list[Finding] = []
    for idx, comment in enumerate(comment_lines, start=1):
        for m in SUPPRESS_RE.finditer(comment):
            rule = m.group("rule")
            just = (m.group("just") or "").strip()
            if rule not in RULES or rule in META_RULES:
                findings.append(
                    Finding(path, idx, "unknown-rule",
                            f"allow({rule}) names no known rule"))
                continue
            if not just:
                findings.append(
                    Finding(path, idx, "bad-suppression",
                            f"allow({rule}) carries no justification "
                            "(syntax: allow(rule): why it is safe)"))
                continue
            sups.append(Suppression(idx, rule, just, m.group("file") is not None))
    return sups, findings


# ---------------------------------------------------------------------------
# Class parsing (for virtual-dtor and slicing)
# ---------------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?P<name>\w+)\s*"
    r"(?P<final>final\s*)?(?P<base>:\s*[^;{}]+)?\{"
)


@dataclasses.dataclass
class ClassInfo:
    name: str
    line: int  # 1-based line of the head
    is_final: bool
    bases: list[str]
    body: str


def parse_classes(code_text: str) -> list[ClassInfo]:
    classes: list[ClassInfo] = []
    for m in CLASS_HEAD_RE.finditer(code_text):
        head_start = m.start()
        # Skip `enum class` and `enum struct`.
        prefix = code_text[max(0, head_start - 16):head_start]
        if re.search(r"\benum\s*$", prefix):
            continue
        brace = m.end() - 1  # position of '{'
        depth = 0
        end = None
        for i in range(brace, len(code_text)):
            if code_text[i] == "{":
                depth += 1
            elif code_text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            continue  # unbalanced; give up on this head
        bases = []
        if m.group("base"):
            for part in m.group("base").lstrip(":").split(","):
                words = re.findall(r"\w+", part)
                # last identifier of e.g. `public muzha::TraceSink`
                if words:
                    bases.append(words[-1])
        classes.append(ClassInfo(
            name=m.group("name"),
            line=code_text.count("\n", 0, head_start) + 1,
            is_final=m.group("final") is not None,
            bases=bases,
            body=code_text[brace + 1:end],
        ))
    return classes


def collect_polymorphic(all_classes: list[ClassInfo]) -> set[str]:
    poly = {c.name for c in all_classes if re.search(r"\bvirtual\b", c.body)}
    # Derivation closure: a subclass of a polymorphic class is polymorphic.
    changed = True
    while changed:
        changed = False
        for c in all_classes:
            if c.name not in poly and any(b in poly for b in c.bases):
                poly.add(c.name)
                changed = True
    return poly


# ---------------------------------------------------------------------------
# Unordered-container tracking
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")


def find_unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members/params declared with an unordered type."""
    names: set[str] = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        # Walk the template argument list to its matching '>'.
        depth = 0
        i = m.end() - 1
        end = None
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    end = i
                    break
            i += 1
        if end is None:
            continue
        tail = text[end + 1:end + 120]
        dm = re.match(r"\s*[&*]?\s*(\w+)\s*(?:[;={(,)]|$)", tail)
        if dm:
            names.add(dm.group(1))
    return names


# ---------------------------------------------------------------------------
# Line rules
# ---------------------------------------------------------------------------

# raw-unit-double: a double/float declaration whose identifier ends in a
# recognised unit suffix (optionally with a trailing member underscore). The
# negative lookahead for '(' keeps conversion functions (`double to_ms()`)
# out of scope — the rule targets stored or passed quantities. sim/units.h
# itself is exempt: it is the one place allowed to name raw representations.
RAW_UNIT_DOUBLE_RE = re.compile(
    r"\b(?:double|float)\s+[&*]?\s*"
    r"(\w+_(?:m|km|s|ms|us|mps|bps|kbps|mbps|pps|dbm|mw)_?)\b(?!\s*\()")
RAW_UNIT_DOUBLE_EXEMPT = re.compile(r"(?:^|[\\/])src[\\/]sim[\\/]units\.h$")

SIMPLE_LINE_RULES: list[tuple[str, re.Pattern[str], str]] = [
    ("banned-rand", re.compile(r"\b(?:std::)?rand\s*\(\s*\)"), "std::rand()"),
    ("banned-rand", re.compile(r"\bsrand\s*\("), "srand()"),
    ("banned-rand", re.compile(r"\b(?:d|l|m)rand48\b"), "*rand48"),
    ("banned-rand", re.compile(r"\brandom\s*\(\s*\)"), "random()"),
    ("banned-rand", re.compile(r"\bstd::random_device\b"), "std::random_device"),
    ("banned-wall-clock", re.compile(r"\btime\s*\("), "time()"),
    ("banned-wall-clock", re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    ("banned-wall-clock",
     re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|gmtime|strftime|ctime)\s*\("),
     "libc wall-clock API"),
    ("banned-wall-clock",
     re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono clock"),
    ("banned-seed",
     re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
                r"|ranlux\w+|knuth_b)\s+\w+\s*(?:;|\{\s*\})"),
     "default-constructed random engine"),
    ("banned-seed", re.compile(r"\.seed\s*\(\s*\)"), "argless .seed()"),
    ("pointer-key",
     re.compile(r"\b(?:std::)?(?:unordered_)?(?:map|multimap)\s*<\s*[\w:<>\s]*\*\s*,"),
     "pointer-keyed map"),
    ("pointer-key",
     re.compile(r"\b(?:std::)?(?:unordered_)?(?:multi)?set\s*<\s*[\w:<>\s]*\*\s*>"),
     "pointer-keyed set"),
    ("pointer-order",
     re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer cast to integer"),
    ("pointer-order", re.compile(r"\bstd::hash\s*<[^<>]*\*\s*>"), "std::hash over pointer"),
    ("pointer-order", re.compile(r"\bstd::less\s*<[^<>]*\*\s*>"), "std::less over pointer"),
    ("nondet-reduction",
     re.compile(r"\bstd::(?:transform_)?reduce\b"), "std::reduce family"),
    ("nondet-reduction", re.compile(r"\bstd::execution::par"), "parallel execution policy"),
    ("nondet-reduction", re.compile(r"^\s*#\s*pragma\s+omp\b"), "OpenMP pragma"),
    ("float-accum", re.compile(r"\bfloat\b"), "float type"),
]


def lint_file(path: str, rel: str, poly_names: set[str]) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = split_code_and_comments(text)
    sups, findings = parse_suppressions(comment_lines, rel)

    raw: list[Finding] = []

    for idx, line in enumerate(code_lines, start=1):
        for rule, pat, what in SIMPLE_LINE_RULES:
            if pat.search(line):
                raw.append(Finding(rel, idx, rule, f"{what}: {RULES[rule]}"))

    # raw-unit-double: everywhere except the units header itself.
    if not RAW_UNIT_DOUBLE_EXEMPT.search(rel):
        for idx, line in enumerate(code_lines, start=1):
            for m in RAW_UNIT_DOUBLE_RE.finditer(line):
                raw.append(Finding(
                    rel, idx, "raw-unit-double",
                    f"'{m.group(1)}': {RULES['raw-unit-double']}"))

    # unordered-iter: iteration sites over names declared unordered here.
    unordered = find_unordered_names(code_lines)
    if unordered:
        iter_pats = [
            re.compile(r"for\s*\([^;()]*?:\s*(\w+)\s*\)"),          # range-for
            re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(\s*\)"),      # .begin()
            re.compile(r"\bstd::erase_if\s*\(\s*(\w+)\b"),          # erase_if
        ]
        for idx, line in enumerate(code_lines, start=1):
            for pat in iter_pats:
                for m in pat.finditer(line):
                    if m.group(1) in unordered:
                        raw.append(Finding(
                            rel, idx, "unordered-iter",
                            f"iterating '{m.group(1)}': {RULES['unordered-iter']}"))

    # Class-level rules.
    code_text = "\n".join(code_lines)
    for cls in parse_classes(code_text):
        has_virtual = re.search(r"\bvirtual\b", cls.body)
        has_virtual_dtor = (
            re.search(r"\bvirtual\s+~", cls.body)
            or re.search(r"~\w+\s*\(\s*\)\s*(?:override|final)", cls.body))
        if has_virtual and not has_virtual_dtor and not cls.bases and not cls.is_final:
            raw.append(Finding(
                rel, cls.line, "virtual-dtor",
                f"class '{cls.name}': {RULES['virtual-dtor']}"))

    # slicing: by-value parameters of polymorphic types (from the whole scan).
    if poly_names:
        slice_pat = re.compile(
            r"[(,]\s*(?:const\s+)?(" + "|".join(map(re.escape, sorted(poly_names)))
            + r")\s+\w+\s*[,)=]")
        for idx, line in enumerate(code_lines, start=1):
            for m in slice_pat.finditer(line):
                raw.append(Finding(
                    rel, idx, "slicing",
                    f"'{m.group(1)}' passed by value: {RULES['slicing']}"))

    # Apply suppressions.
    for f in raw:
        sup = None
        for s in sups:
            if s.rule != f.rule:
                continue
            if s.file_level or s.line in (f.line, f.line - 1):
                sup = s
                break
        if sup is not None:
            sup.used = True
        else:
            findings.append(f)

    for s in sups:
        if not s.used:
            findings.append(Finding(
                rel, s.line, "unused-suppression",
                f"allow({s.rule}) suppressed nothing — remove it"))

    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        else:
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(d for d in dirnames if d != "lint_fixtures")
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
    return files


def lint_paths(root: str, paths: list[str]) -> list[Finding]:
    files = collect_files(root, paths)
    # Pass 1: polymorphic class names across the whole scanned set, so the
    # slicing rule sees types declared in another header.
    all_classes: list[ClassInfo] = []
    per_file_code: dict[str, None] = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            code_lines, _ = split_code_and_comments(f.read())
        all_classes.extend(parse_classes("\n".join(code_lines)))
        per_file_code[path] = None
    poly = collect_polymorphic(all_classes)

    findings: list[Finding] = []
    for path in files:
        rel = os.path.relpath(path, root)
        findings.extend(lint_file(path, rel, poly))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories relative to --root (default: src)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            meta = " (meta)" if rule in META_RULES else ""
            print(f"{rule}{meta}: {desc}")
        return 0

    paths = args.paths or ["src"]
    findings = lint_paths(args.root, paths)
    for f in findings:
        print(f"{f.path}:{f.line}: error: [{f.rule}] {f.detail}")
    if findings:
        print(f"muzha-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"muzha-lint: clean ({len(collect_files(args.root, paths))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
