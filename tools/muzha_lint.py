#!/usr/bin/env python3
"""muzha-lint v2: determinism, memory-safety & shard-safety checker.

The simulator's headline property is bit-determinism: a (scenario, seed) pair
fully determines every event, RNG draw and floating-point metric. The test
suite pins that with byte-identity and golden-hash tests, but nothing stops a
refactor from *introducing* a hazard that only diverges on another machine or
allocator — or, now that one run executes on several threads (BatchRunner
worker pools, sharded event cores, the thread-local packet arena), a hazard
that only diverges under a different thread schedule. This checker
mechanically bans the constructs that leak wall-clock time, hash-bucket
layout, address-space randomization or cross-thread mutation into model
behavior, plus the classic C++ memory-safety foot-guns on polymorphic agents.

It is a two-pass, token/AST-lite analyzer:

  pass 1 (per file)  lex the file (comments, string and raw-string literals
                     stripped), collect facts: class declarations with their
                     member fields and bases, suppression comments, statics,
                     thread_local/mutex/atomic sites, #includes, names
                     declared with unordered container types.
  pass 2 (project)   close the facts over the whole scanned set — the
                     polymorphic-class closure feeds `slicing`, the
                     boundary-type closure feeds `boundary-escape` — then
                     evaluate every rule and apply per-file suppressions.

That is deliberate — it runs in milliseconds as a ctest with zero
dependencies, and the rules target constructs that are reliably visible at
token level. Raw string literals are stripped like ordinary literals (their
contents can never produce findings); declarations split across lines may
evade the line-oriented rules, which is the accepted precision limit.

Determinism rules (see DESIGN.md "Correctness tooling" for the catalog):

  banned-rand        libc/global RNGs (std::rand, srand, drand48, random(),
                     std::random_device) — all randomness must flow from the
                     seeded per-Simulator muzha::Rng.
  banned-wall-clock  time(), clock(), gettimeofday, std::chrono::*_clock —
                     wall-clock reads make runs time-dependent.
  banned-seed        default-constructed std random engines or argless
                     .seed() — an implicit seed is an unpinned seed.
  unordered-iter     iteration (range-for, .begin, std::erase_if) over a
                     variable declared std::unordered_map/set — iteration
                     order depends on hashing and allocation history.
  pointer-key        associative containers keyed by pointer — ASLR decides
                     the order (and for unordered, the buckets).
  pointer-order      reinterpret_cast<uintptr_t>, std::hash<T*>,
                     std::less<T*> — pointer values leaking into arithmetic
                     or ordering.
  nondet-reduction   std::reduce / std::transform_reduce / std::execution::par
                     / #pragma omp — reduction order is unspecified, float
                     sums differ run to run.
  float-accum        `float`-typed state in model code — single precision
                     amplifies rounding and accumulation-order sensitivity;
                     simulation state is double.
  virtual-dtor       non-final class with virtual methods, no base class and
                     no virtual destructor — deleting through a base pointer
                     is UB.
  slicing            by-value parameter of a polymorphic class (classes are
                     collected project-wide in pass 1) — copies the base
                     subobject and silently drops the derived state.
  raw-unit-double    double/float variable, member or parameter whose name
                     carries a unit suffix (_m, _s, _bps, _dbm, _mps, ...) —
                     dimensioned quantities must use the strong types in
                     src/sim/units.h (Meters, Seconds, BitsPerSecond, ...),
                     which that file alone is exempt from.

Shard-safety rules (the threaded runtime's isolation discipline — one event
core per shard, one arena per thread, synchronization only at the barrier):

  mutable-static     non-const static (namespace-scope, function-local or
                     class-static data member) in model code under
                     src/{sim,phy,mac,net,pkt,tcp,core,relwork,routing,app,
                     stats} — a mutable static is shared by every shard
                     thread at once: a data race and a cross-run
                     determinism leak. Model state lives in objects owned
                     by one shard.
  thread-local-audit thread_local anywhere outside the audited allowlist
                     (src/pkt/packet_arena.*, src/sim/shard_exec.*) —
                     per-thread state silently keys behavior on which
                     worker runs the code; every instance must be designed
                     for, not introduced in passing.
  lock-discipline    mutex/atomic/condition_variable/thread primitives (or
                     their headers) outside the threaded-runtime allowlist
                     (src/sim/shard_exec.*, src/scenario/batch_runner.*,
                     src/scenario/sharded_experiment.*,
                     src/pkt/packet_arena.*) — model code must be lock-free
                     by construction (shard isolation), not by locking; a
                     lock in model code means shared mutable state exists.
  relaxed-atomic     memory_order_relaxed / memory_order_consume / raw
                     atomic fences outside src/sim/shard_exec.* — weak
                     orderings need a happens-before argument; outside the
                     one file whose job is synchronization they require a
                     justified suppression spelling that argument out.
  boundary-escape    raw Packet*/PacketPtr/reference members in
                     BoundaryMessage-adjacent types (anything named
                     Boundary*, every type reachable from one as a member
                     field, every subclass of one — closed project-wide in
                     pass 2) — boundary types are copied across shard
                     threads at the lookahead barrier; a raw pointer or
                     reference member would alias one shard's (or one
                     thread-local arena's) memory from another thread.
                     Cross-shard payloads carry Packet BY VALUE.

Paths under tests/lint_fixtures/ are classified by their path with that
prefix stripped, so a fixture at tests/lint_fixtures/src/mac/x.cc exercises
the model-code scoping and one at tests/lint_fixtures/src/sim/shard_exec.cc
exercises an allowlist.

Suppressions (each must carry a one-line justification after the colon):

  // muzha-lint: allow(rule-id): why this occurrence is safe
  // muzha-lint: allow-file(rule-id): why this whole file is exempt

A line suppression covers its own line and the next line (so it can sit on
the line above the finding). A suppression with no justification, an unknown
rule id, or one that suppresses nothing is itself reported (bad-suppression /
unknown-rule / unused-suppression): dead suppressions rot into blanket
exemptions.

The rule catalog above is verified against the RULES table by
tools/test_muzha_lint.py (as is DESIGN.md's table), so the three can never
drift apart again.

Exit status: 0 when clean, 1 when any finding survives, 2 on usage error.
With --github, findings are additionally emitted as GitHub Actions
`::error file=...` workflow commands so they annotate PRs inline.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

RULES = {
    "banned-rand": "global RNG: all randomness must come from the seeded muzha::Rng",
    "banned-wall-clock": "wall-clock read: simulation time is SimTime, never host time",
    "banned-seed": "implicitly seeded RNG engine: pass an explicit seed",
    "unordered-iter": "iteration over an unordered container: order depends on hashing/allocation",
    "pointer-key": "pointer-keyed container: ASLR decides iteration order",
    "pointer-order": "pointer value used as number: leaks ASLR into behavior",
    "nondet-reduction": "unordered reduction: float accumulation order is unspecified",
    "float-accum": "float-typed state: use double, single precision amplifies order sensitivity",
    "virtual-dtor": "polymorphic class without virtual destructor: deletion via base pointer is UB",
    "slicing": "by-value parameter of polymorphic type: slices off derived state",
    "raw-unit-double": "unit-suffixed raw double: use the quantity types in sim/units.h",
    # Shard-safety family: the threaded runtime's isolation discipline.
    "mutable-static": "mutable static in model code: shared across every shard thread, "
                      "a data race and a determinism leak",
    "thread-local-audit": "thread_local outside the audited allowlist "
                          "(packet_arena, shard_exec): per-thread state keys behavior on the worker",
    "lock-discipline": "synchronization primitive outside the threaded-runtime allowlist: "
                       "model code is lock-free by shard isolation, not by locking",
    "relaxed-atomic": "relaxed/consume ordering or raw fence outside shard_exec: "
                      "needs a justified happens-before argument",
    "boundary-escape": "raw pointer/reference member in a boundary-crossing type: "
                       "aliases one shard's memory from another thread",
    # Meta rules (not suppressible, no fixtures needed beyond the dedicated ones).
    "bad-suppression": "suppression without a justification",
    "unknown-rule": "suppression names an unknown rule id",
    "unused-suppression": "suppression that suppressed nothing",
}

META_RULES = {"bad-suppression", "unknown-rule", "unused-suppression"}

# ---------------------------------------------------------------------------
# Path classification. Fixtures under tests/lint_fixtures/ are classified by
# their stripped path so they can exercise scoping and allowlists.
# ---------------------------------------------------------------------------

FIXTURE_PREFIX = "tests/lint_fixtures/"

MODEL_DIRS = ("sim", "phy", "mac", "net", "pkt", "tcp", "core", "relwork",
              "routing", "app", "stats")

THREAD_LOCAL_ALLOW = ("src/pkt/packet_arena.", "src/sim/shard_exec.")

LOCK_ALLOW = ("src/sim/shard_exec.", "src/scenario/batch_runner.",
              "src/scenario/sharded_experiment.", "src/pkt/packet_arena.")

RELAXED_ALLOW = ("src/sim/shard_exec.",)


def canonical_path(rel: str) -> str:
    rel = rel.replace(os.sep, "/")
    if rel.startswith(FIXTURE_PREFIX):
        rel = rel[len(FIXTURE_PREFIX):]
    return rel


def is_model_code(rel: str) -> bool:
    c = canonical_path(rel)
    return any(c.startswith(f"src/{d}/") for d in MODEL_DIRS)


def in_allowlist(rel: str, allow: tuple[str, ...]) -> bool:
    c = canonical_path(rel)
    return any(c.startswith(prefix) for prefix in allow)


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    detail: str


@dataclasses.dataclass
class Suppression:
    line: int  # 1-based line the comment sits on
    rule: str
    justification: str
    file_level: bool
    used: bool = False


# ---------------------------------------------------------------------------
# Lexing: strip comments and string literals (raw strings included), keep
# comment text per line.
# ---------------------------------------------------------------------------

RAW_STRING_OPEN_RE = re.compile(r'(?:u8|[uUL])?R"(?P<delim>[^()\\\s]{0,16})\(')


def split_code_and_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines), same line count as `text`.

    Code lines have comments and string/char/raw-string literal contents
    blanked; comment lines hold only the comment text of that line. Raw
    string literals R"delim(...)delim" are recognized in code state: their
    contents (which may span lines — line numbering is preserved) can never
    produce findings or suppressions.
    """
    code: list[str] = []
    comments: list[str] = []
    cur_code: list[str] = []
    cur_comment: list[str] = []
    state = "code"  # code | line_comment | block_comment | dquote | squote
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            m = RAW_STRING_OPEN_RE.match(text, i)
            if m and not (i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_")):
                # Raw string literal: blank everything through `)delim"`,
                # preserving line structure.
                cur_code.append('""')
                closer = ")" + m.group("delim") + '"'
                end = text.find(closer, m.end())
                end = n if end == -1 else end + len(closer)
                for j in range(m.end(), end):
                    if text[j] == "\n":
                        code.append("".join(cur_code))
                        comments.append("".join(cur_comment))
                        cur_code, cur_comment = [], []
                i = end
                continue
            if c == '"':
                cur_code.append('"')
                state = "dquote"
                i += 1
                continue
            if c == "'":
                # C++14 digit separator (1'000'000, 0xFF'FF): a quote between
                # digit-ish characters is not a char literal. (A u8'F' char
                # literal is misread as a separator — accepted precision
                # limit; none appear in the tree.)
                prev = text[i - 1] if i > 0 else ""
                if prev.isdigit() and (nxt.isdigit() or nxt in "abcdefABCDEF"):
                    cur_code.append("'")
                    i += 1
                    continue
                cur_code.append("'")
                state = "squote"
                i += 1
                continue
            cur_code.append(c)
            i += 1
        elif state == "line_comment":
            cur_comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                i += 2  # skip escaped char
            elif c == quote:
                cur_code.append(quote)
                state = "code"
                i += 1
            else:
                cur_code.append(" ")  # blank literal contents
                i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

SUPPRESS_RE = re.compile(
    r"muzha-lint:\s*allow(?P<file>-file)?\(\s*(?P<rule>[\w-]+)\s*\)"
    r"(?P<colon>\s*:\s*(?P<just>.*\S)?)?"
)


def parse_suppressions(
    comment_lines: list[str], path: str
) -> tuple[list[Suppression], list[Finding]]:
    sups: list[Suppression] = []
    findings: list[Finding] = []
    for idx, comment in enumerate(comment_lines, start=1):
        for m in SUPPRESS_RE.finditer(comment):
            rule = m.group("rule")
            just = (m.group("just") or "").strip()
            if rule not in RULES or rule in META_RULES:
                findings.append(
                    Finding(path, idx, "unknown-rule",
                            f"allow({rule}) names no known rule"))
                continue
            if not just:
                findings.append(
                    Finding(path, idx, "bad-suppression",
                            f"allow({rule}) carries no justification "
                            "(syntax: allow(rule): why it is safe)"))
                continue
            sups.append(Suppression(idx, rule, just, m.group("file") is not None))
    return sups, findings


# ---------------------------------------------------------------------------
# Class parsing (for virtual-dtor, slicing and boundary-escape)
# ---------------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?P<name>\w+)\s*"
    r"(?P<final>final\s*)?(?P<base>:\s*[^;{}]+)?\{"
)


@dataclasses.dataclass
class MemberInfo:
    line: int          # 1-based
    text: str          # declaration text up to (not including) initializer
    is_ref: bool       # T& member (not T&&)
    is_ptr: bool       # raw pointer member
    type_ids: list[str]  # identifiers appearing in the declared type


@dataclasses.dataclass
class ClassInfo:
    name: str
    line: int  # 1-based line of the head
    is_final: bool
    bases: list[str]
    body: str
    members: list[MemberInfo] = dataclasses.field(default_factory=list)


MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|enum\b|template\b|#)")
CXX_DECL_KEYWORDS = {
    "const", "constexpr", "static", "inline", "mutable", "volatile",
    "unsigned", "signed", "struct", "class", "public", "private", "protected",
    "std", "operator", "return", "if", "while", "for", "override", "final",
}


def parse_members(body: str, body_first_line: int) -> list[MemberInfo]:
    """Field declarations at the top brace level of a class body.

    Statements containing a '(' before any '=' are treated as function
    declarations and skipped; nested blocks (method bodies, nested classes)
    are skipped wholesale. Line numbers are exact, which the fixture suite
    relies on.
    """
    members: list[MemberInfo] = []
    depth = 0
    stmt: list[str] = []
    stmt_line: int | None = None
    cur_line = body_first_line
    for c in body:
        if c == "\n":
            cur_line += 1
            if depth == 0 and stmt:
                stmt.append(" ")
            continue
        if c == "{":
            depth += 1
            if depth == 1:
                stmt, stmt_line = [], None  # function/nested-class header
            continue
        if c == "}":
            depth -= 1
            continue
        if depth != 0:
            continue
        if c == ";":
            if stmt_line is not None:
                _classify_member("".join(stmt), stmt_line, members)
            stmt, stmt_line = [], None
            continue
        if stmt_line is None and not c.isspace():
            stmt_line = cur_line
        stmt.append(c)
    return members


def _classify_member(stmt: str, line: int, out: list[MemberInfo]) -> None:
    # Access labels can share the statement ("public: int x").
    stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt).strip()
    if not stmt or MEMBER_SKIP_RE.match(stmt):
        return
    p_paren, p_eq = stmt.find("("), stmt.find("=")
    if p_paren != -1 and (p_eq == -1 or p_paren < p_eq):
        return  # function declaration (or ctor-style init: accepted miss)
    decl = stmt if p_eq == -1 else stmt[:p_eq]
    if not re.search(r"\w", decl):
        return
    is_ref = "&" in decl and "&&" not in decl
    is_ptr = "*" in decl
    ids = [w for w in re.findall(r"[A-Za-z_]\w*", decl)
           if w not in CXX_DECL_KEYWORDS]
    out.append(MemberInfo(line, decl.strip(), is_ref, is_ptr, ids))


def parse_classes(code_text: str) -> list[ClassInfo]:
    classes: list[ClassInfo] = []
    for m in CLASS_HEAD_RE.finditer(code_text):
        head_start = m.start()
        # Skip `enum class` and `enum struct`.
        prefix = code_text[max(0, head_start - 16):head_start]
        if re.search(r"\benum\s*$", prefix):
            continue
        brace = m.end() - 1  # position of '{'
        depth = 0
        end = None
        for i in range(brace, len(code_text)):
            if code_text[i] == "{":
                depth += 1
            elif code_text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            continue  # unbalanced; give up on this head
        bases = []
        if m.group("base"):
            for part in m.group("base").lstrip(":").split(","):
                words = re.findall(r"\w+", part)
                # last identifier of e.g. `public muzha::TraceSink`
                if words:
                    bases.append(words[-1])
        body = code_text[brace + 1:end]
        body_first_line = code_text.count("\n", 0, brace) + 1
        classes.append(ClassInfo(
            name=m.group("name"),
            line=code_text.count("\n", 0, head_start) + 1,
            is_final=m.group("final") is not None,
            bases=bases,
            body=body,
            members=parse_members(body, body_first_line),
        ))
    return classes


def collect_polymorphic(all_classes: list[ClassInfo]) -> set[str]:
    poly = {c.name for c in all_classes if re.search(r"\bvirtual\b", c.body)}
    # Derivation closure: a subclass of a polymorphic class is polymorphic.
    changed = True
    while changed:
        changed = False
        for c in all_classes:
            if c.name not in poly and any(b in poly for b in c.bases):
                poly.add(c.name)
                changed = True
    return poly


def collect_boundary_adjacent(all_classes: list[ClassInfo]) -> set[str]:
    """Types whose instances cross shard threads at the lookahead barrier.

    Seeds: every class whose name contains 'Boundary' (BoundaryMessage,
    BoundarySink, ...). Closure: the declared type of any BY-VALUE member
    field of an adjacent class is adjacent (it is copied across with the
    message — pointer/reference members do not propagate: they are the
    hazard this rule flags, not a copy), and every subclass of an adjacent
    class is adjacent (it observes cross-shard traffic through the
    interface). Closed over the whole scanned set, so the payload type can
    live in another header than the message.
    """
    by_name = {}
    for c in all_classes:
        by_name.setdefault(c.name, []).append(c)
    adjacent = {c.name for c in all_classes if "Boundary" in c.name}
    changed = True
    while changed:
        changed = False
        for c in all_classes:
            if c.name in adjacent:
                for mem in c.members:
                    if mem.is_ptr or mem.is_ref:
                        continue
                    for tid in mem.type_ids:
                        if tid in by_name and tid not in adjacent:
                            adjacent.add(tid)
                            changed = True
            elif any(b in adjacent for b in c.bases):
                adjacent.add(c.name)
                changed = True
    return adjacent


# ---------------------------------------------------------------------------
# Unordered-container tracking
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")


def find_unordered_names(code_lines: list[str]) -> set[str]:
    """Names of variables/members/params declared with an unordered type."""
    names: set[str] = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        # Walk the template argument list to its matching '>'.
        depth = 0
        i = m.end() - 1
        end = None
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    end = i
                    break
            i += 1
        if end is None:
            continue
        tail = text[end + 1:end + 120]
        dm = re.match(r"\s*[&*]?\s*(\w+)\s*(?:[;={(,)]|$)", tail)
        if dm:
            names.add(dm.group(1))
    return names


# ---------------------------------------------------------------------------
# Pass 1: per-file fact collection
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]')


@dataclasses.dataclass
class FileFacts:
    rel: str
    code_lines: list[str]
    comment_lines: list[str]
    suppressions: list[Suppression]
    meta_findings: list[Finding]   # bad-suppression / unknown-rule
    classes: list[ClassInfo]
    includes: list[tuple[int, str]]
    unordered_names: set[str]


def collect_facts(path: str, rel: str) -> FileFacts:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = split_code_and_comments(text)
    sups, meta = parse_suppressions(comment_lines, rel)
    includes = []
    for idx, line in enumerate(code_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((idx, m.group(1)))
    return FileFacts(
        rel=rel,
        code_lines=code_lines,
        comment_lines=comment_lines,
        suppressions=sups,
        meta_findings=meta,
        classes=parse_classes("\n".join(code_lines)),
        includes=includes,
        unordered_names=find_unordered_names(code_lines),
    )


# ---------------------------------------------------------------------------
# Line rules
# ---------------------------------------------------------------------------

# raw-unit-double: a double/float declaration whose identifier ends in a
# recognised unit suffix (optionally with a trailing member underscore). The
# negative lookahead for '(' keeps conversion functions (`double to_ms()`)
# out of scope — the rule targets stored or passed quantities. sim/units.h
# itself is exempt: it is the one place allowed to name raw representations.
RAW_UNIT_DOUBLE_RE = re.compile(
    r"\b(?:double|float)\s+[&*]?\s*"
    r"(\w+_(?:m|km|s|ms|us|mps|bps|kbps|mbps|pps|dbm|mw)_?)\b(?!\s*\()")
RAW_UNIT_DOUBLE_EXEMPT = "src/sim/units.h"

SIMPLE_LINE_RULES: list[tuple[str, re.Pattern[str], str]] = [
    ("banned-rand", re.compile(r"\b(?:std::)?rand\s*\(\s*\)"), "std::rand()"),
    ("banned-rand", re.compile(r"\bsrand\s*\("), "srand()"),
    ("banned-rand", re.compile(r"\b(?:d|l|m)rand48\b"), "*rand48"),
    ("banned-rand", re.compile(r"\brandom\s*\(\s*\)"), "random()"),
    ("banned-rand", re.compile(r"\bstd::random_device\b"), "std::random_device"),
    ("banned-wall-clock", re.compile(r"\btime\s*\("), "time()"),
    ("banned-wall-clock", re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    ("banned-wall-clock",
     re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|gmtime|strftime|ctime)\s*\("),
     "libc wall-clock API"),
    ("banned-wall-clock",
     re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono clock"),
    ("banned-seed",
     re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
                r"|ranlux\w+|knuth_b)\s+\w+\s*(?:;|\{\s*\})"),
     "default-constructed random engine"),
    ("banned-seed", re.compile(r"\.seed\s*\(\s*\)"), "argless .seed()"),
    ("pointer-key",
     re.compile(r"\b(?:std::)?(?:unordered_)?(?:map|multimap)\s*<\s*[\w:<>\s]*\*\s*,"),
     "pointer-keyed map"),
    ("pointer-key",
     re.compile(r"\b(?:std::)?(?:unordered_)?(?:multi)?set\s*<\s*[\w:<>\s]*\*\s*>"),
     "pointer-keyed set"),
    ("pointer-order",
     re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer cast to integer"),
    ("pointer-order", re.compile(r"\bstd::hash\s*<[^<>]*\*\s*>"), "std::hash over pointer"),
    ("pointer-order", re.compile(r"\bstd::less\s*<[^<>]*\*\s*>"), "std::less over pointer"),
    ("nondet-reduction",
     re.compile(r"\bstd::(?:transform_)?reduce\b"), "std::reduce family"),
    ("nondet-reduction", re.compile(r"\bstd::execution::par"), "parallel execution policy"),
    ("nondet-reduction", re.compile(r"^\s*#\s*pragma\s+omp\b"), "OpenMP pragma"),
    ("float-accum", re.compile(r"\bfloat\b"), "float type"),
]

# --- shard-safety token patterns -------------------------------------------

# `static` introducing a declaration; static_cast/static_assert do not match
# (no word boundary before '_'). const/constexpr/thread_local statics are
# immutable or handled by thread-local-audit.
MUTABLE_STATIC_RE = re.compile(
    r"(?:^|[{};])\s*(?:inline\s+)?static\b(?!\s*(?:const\b|constexpr\b|"
    r"inline\s+const\b|thread_local\b|assert\b))(?P<rest>[^;]*)")

THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")

LOCK_TOKEN_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|atomic\w*|thread\b|"
    r"jthread|call_once|once_flag|future|promise|async\b|packaged_task|"
    r"latch|barrier|counting_semaphore|binary_semaphore|stop_token)")

LOCK_HEADERS = {
    "atomic", "mutex", "thread", "condition_variable", "future", "semaphore",
    "latch", "barrier", "shared_mutex", "stop_token",
}

RELAXED_RE = re.compile(
    r"\bmemory_order_relaxed\b|\bmemory_order_consume\b|"
    r"\bmemory_order::relaxed\b|\bmemory_order::consume\b|"
    r"\b(?:std::)?atomic_(?:thread|signal)_fence\s*\(|\bkill_dependency\b")


def _static_decl_is_variable(rest: str) -> bool:
    """True when the text after `static` declares data, not a function.

    A '(' before any '=' reads as a function declaration (the most-vexing
    ctor-call spelling `static T x(args);` is an accepted miss — brace or
    equals initialization is the codebase idiom).
    """
    p_paren, p_eq = rest.find("("), rest.find("=")
    if p_paren != -1 and (p_eq == -1 or p_paren < p_eq):
        return False
    # Require a declarator: at least two identifier-ish tokens or an '='.
    return bool(re.search(r"\w[\w\s:<>,*&\[\]]*\w", rest)) or p_eq != -1


def shard_safety_findings(facts: FileFacts,
                          boundary_types: set[str]) -> list[Finding]:
    rel = facts.rel
    out: list[Finding] = []

    # mutable-static: model code only.
    if is_model_code(rel):
        for idx, line in enumerate(facts.code_lines, start=1):
            for m in MUTABLE_STATIC_RE.finditer(line):
                if _static_decl_is_variable(m.group("rest")):
                    out.append(Finding(
                        rel, idx, "mutable-static",
                        f"static data declaration: {RULES['mutable-static']}"))

    # thread-local-audit: everywhere outside the allowlist.
    if not in_allowlist(rel, THREAD_LOCAL_ALLOW):
        for idx, line in enumerate(facts.code_lines, start=1):
            if THREAD_LOCAL_RE.search(line):
                out.append(Finding(
                    rel, idx, "thread-local-audit",
                    f"thread_local: {RULES['thread-local-audit']}"))

    # lock-discipline: src/ outside the threaded-runtime allowlist, both
    # primitive uses and the headers that smuggle them in.
    if canonical_path(rel).startswith("src/") and not in_allowlist(rel, LOCK_ALLOW):
        for idx, line in enumerate(facts.code_lines, start=1):
            m = LOCK_TOKEN_RE.search(line)
            if m:
                out.append(Finding(
                    rel, idx, "lock-discipline",
                    f"'{m.group(0)}': {RULES['lock-discipline']}"))
        for idx, header in facts.includes:
            if header in LOCK_HEADERS:
                out.append(Finding(
                    rel, idx, "lock-discipline",
                    f"#include <{header}>: {RULES['lock-discipline']}"))

    # relaxed-atomic: everywhere outside shard_exec.
    if not in_allowlist(rel, RELAXED_ALLOW):
        for idx, line in enumerate(facts.code_lines, start=1):
            m = RELAXED_RE.search(line)
            if m:
                out.append(Finding(
                    rel, idx, "relaxed-atomic",
                    f"'{m.group(0).strip('(')}': {RULES['relaxed-atomic']}"))

    # boundary-escape: members of boundary-adjacent classes (project-wide
    # closure from pass 2) that alias instead of own.
    for cls in facts.classes:
        if cls.name not in boundary_types:
            continue
        for mem in cls.members:
            hazard = None
            if re.search(r"\bPacket\s*\*", mem.text):
                hazard = "raw Packet* member"
            elif "PacketPtr" in mem.type_ids:
                hazard = "PacketPtr member (arena pointers are thread-local)"
            elif mem.is_ref:
                hazard = "reference member"
            if hazard:
                out.append(Finding(
                    rel, mem.line, "boundary-escape",
                    f"{cls.name}: {hazard}: {RULES['boundary-escape']}"))
    return out


def file_findings(facts: FileFacts, poly_names: set[str],
                  boundary_types: set[str]) -> list[Finding]:
    rel = facts.rel
    code_lines = facts.code_lines
    findings: list[Finding] = list(facts.meta_findings)
    raw: list[Finding] = []

    for idx, line in enumerate(code_lines, start=1):
        for rule, pat, what in SIMPLE_LINE_RULES:
            if pat.search(line):
                raw.append(Finding(rel, idx, rule, f"{what}: {RULES[rule]}"))

    # raw-unit-double: everywhere except the units header itself.
    if canonical_path(rel) != RAW_UNIT_DOUBLE_EXEMPT:
        for idx, line in enumerate(code_lines, start=1):
            for m in RAW_UNIT_DOUBLE_RE.finditer(line):
                raw.append(Finding(
                    rel, idx, "raw-unit-double",
                    f"'{m.group(1)}': {RULES['raw-unit-double']}"))

    # unordered-iter: iteration sites over names declared unordered here.
    if facts.unordered_names:
        iter_pats = [
            re.compile(r"for\s*\([^;()]*?:\s*(\w+)\s*\)"),          # range-for
            re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(\s*\)"),      # .begin()
            re.compile(r"\bstd::erase_if\s*\(\s*(\w+)\b"),          # erase_if
        ]
        for idx, line in enumerate(code_lines, start=1):
            for pat in iter_pats:
                for m in pat.finditer(line):
                    if m.group(1) in facts.unordered_names:
                        raw.append(Finding(
                            rel, idx, "unordered-iter",
                            f"iterating '{m.group(1)}': {RULES['unordered-iter']}"))

    # Class-level rules.
    for cls in facts.classes:
        has_virtual = re.search(r"\bvirtual\b", cls.body)
        has_virtual_dtor = (
            re.search(r"\bvirtual\s+~", cls.body)
            or re.search(r"~\w+\s*\(\s*\)\s*(?:override|final)", cls.body))
        if has_virtual and not has_virtual_dtor and not cls.bases and not cls.is_final:
            raw.append(Finding(
                rel, cls.line, "virtual-dtor",
                f"class '{cls.name}': {RULES['virtual-dtor']}"))

    # slicing: by-value parameters of polymorphic types (project-wide pass).
    if poly_names:
        slice_pat = re.compile(
            r"[(,]\s*(?:const\s+)?(" + "|".join(map(re.escape, sorted(poly_names)))
            + r")\s+\w+\s*[,)=]")
        for idx, line in enumerate(code_lines, start=1):
            for m in slice_pat.finditer(line):
                raw.append(Finding(
                    rel, idx, "slicing",
                    f"'{m.group(1)}' passed by value: {RULES['slicing']}"))

    raw.extend(shard_safety_findings(facts, boundary_types))

    # Apply suppressions.
    sups = facts.suppressions
    for f in raw:
        sup = None
        for s in sups:
            if s.rule != f.rule:
                continue
            if s.file_level or s.line in (f.line, f.line - 1):
                sup = s
                break
        if sup is not None:
            sup.used = True
        else:
            findings.append(f)

    for s in sups:
        if not s.used:
            findings.append(Finding(
                rel, s.line, "unused-suppression",
                f"allow({s.rule}) suppressed nothing — remove it"))

    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        else:
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("lint_fixtures", "deps_fixtures"))
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
    return files


def lint_paths(root: str, paths: list[str]) -> list[Finding]:
    files = collect_files(root, paths)
    # Pass 1: per-file facts.
    all_facts = [collect_facts(path, os.path.relpath(path, root))
                 for path in files]
    # Pass 2: project-wide closures, then rule evaluation per file.
    all_classes = [c for facts in all_facts for c in facts.classes]
    poly = collect_polymorphic(all_classes)
    boundary = collect_boundary_adjacent(all_classes)

    findings: list[Finding] = []
    for facts in all_facts:
        findings.extend(file_findings(facts, poly, boundary))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def github_annotation(f: Finding) -> str:
    msg = f.detail.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    return (f"::error file={f.path},line={f.line},"
            f"title=muzha-lint [{f.rule}]::{msg}")


def main(argv: list[str]) -> int:
    doc = __doc__ or ""
    ap = argparse.ArgumentParser(description=doc.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--github", action="store_true",
                    help="also emit GitHub Actions ::error annotations")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories relative to --root (default: src)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            meta = " (meta)" if rule in META_RULES else ""
            print(f"{rule}{meta}: {desc}")
        return 0

    paths = args.paths or ["src"]
    findings = lint_paths(args.root, paths)
    for f in findings:
        print(f"{f.path}:{f.line}: error: [{f.rule}] {f.detail}")
        if args.github:
            print(github_annotation(f))
    if findings:
        print(f"muzha-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"muzha-lint: clean ({len(collect_files(args.root, paths))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
