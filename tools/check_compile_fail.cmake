# Negative-compilation test driver, invoked in CMake script mode by ctest:
#
#   cmake -DCXX=<compiler> -DSRC=<fixture.cc> -DINCLUDE_DIR=<repo>/src \
#         -P check_compile_fail.cmake
#
# Runs a syntax-only compile of the fixture and FAILS (so the surrounding
# ctest fails) iff the fixture COMPILES. Each fixture in tests/compile_fail/
# holds exactly one unit-misuse expression that the quantity types in
# sim/units.h must reject; a fixture that starts compiling means a hole was
# opened in the dimensional API. The harness itself is validated by running
# it over the compiling control fixture under WILL_FAIL (see
# tests/compile_fail/CMakeLists.txt).

foreach(var CXX SRC INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_compile_fail.cmake: -D${var}=... is required")
  endif()
endforeach()

# A missing fixture would "fail to compile" for the wrong reason and pass
# the test silently — reject it up front.
if(NOT EXISTS ${SRC})
  message(FATAL_ERROR "fixture ${SRC} does not exist")
endif()

execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only -I${INCLUDE_DIR} ${SRC}
  RESULT_VARIABLE compile_result
  OUTPUT_VARIABLE compile_output
  ERROR_VARIABLE compile_error)

if(compile_result EQUAL 0)
  message(FATAL_ERROR
    "${SRC} compiled cleanly, but it contains a unit misuse that "
    "sim/units.h is supposed to reject at compile time.")
endif()

message(STATUS "${SRC} failed to compile, as intended")
