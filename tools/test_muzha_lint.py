#!/usr/bin/env python3
"""Golden-fixture suite for muzha-lint.

Each file under tests/lint_fixtures/ marks every expected finding with an
`expect: <rule-id>` comment on the exact line the linter must report (class
level findings carry the marker on the class-head line). This driver runs
muzha_lint.lint_paths() over the fixture directory and diffs the actual
(file, line, rule) triples against the markers — both missed findings and
unexpected extras fail, so rule regressions AND false-positive regressions
are caught. It also enforces the coverage floor: the fixtures must pin at
least 9 distinct rule IDs, or the suite is no longer exercising the checker.

Run directly (repo root is inferred) or via `ctest -R muzha_lint_fixtures`.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import muzha_lint  # noqa: E402

FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
MIN_DISTINCT_RULES = 9
MARKER_RE = re.compile(r"expect:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


def expected_findings(root: str) -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    fixture_abs = os.path.join(root, FIXTURE_DIR)
    for fn in sorted(os.listdir(fixture_abs)):
        if not fn.endswith(muzha_lint.CXX_EXTENSIONS):
            continue
        rel = os.path.join(FIXTURE_DIR, fn)
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = MARKER_RE.search(line)
                if not m:
                    continue
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    if rule not in muzha_lint.RULES:
                        raise SystemExit(
                            f"{rel}:{lineno}: marker names unknown rule '{rule}'")
                    expected.add((rel, lineno, rule))
    return expected


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    expected = expected_findings(root)
    actual = {(f.path, f.line, f.rule)
              for f in muzha_lint.lint_paths(root, [FIXTURE_DIR])}

    ok = True
    for path, line, rule in sorted(expected - actual):
        print(f"MISSED   {path}:{line}: [{rule}] marked but not reported")
        ok = False
    for path, line, rule in sorted(actual - expected):
        print(f"SPURIOUS {path}:{line}: [{rule}] reported but not marked")
        ok = False

    rules_pinned = {rule for _, _, rule in expected}
    if len(rules_pinned) < MIN_DISTINCT_RULES:
        print(f"COVERAGE fixtures pin only {len(rules_pinned)} distinct rule "
              f"IDs, need >= {MIN_DISTINCT_RULES}: {sorted(rules_pinned)}")
        ok = False

    if ok:
        print(f"muzha-lint fixtures OK: {len(expected)} findings across "
              f"{len(rules_pinned)} rules match exactly")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
