#!/usr/bin/env python3
"""Golden-fixture and catalog-sync suite for muzha-lint.

Fixtures: each file under tests/lint_fixtures/ (recursively — subdirectories
mirror repo paths so the path-scoped shard-safety rules and their allowlists
can be exercised, e.g. tests/lint_fixtures/src/mac/x.cc classifies as model
code) marks every expected finding with an `expect: <rule-id>` comment on the
exact line the linter must report (class-level findings carry the marker on
the class-head line). This driver runs muzha_lint.lint_paths() over the
fixture directory and diffs the actual (file, line, rule) triples against the
markers — both missed findings and unexpected extras fail, so rule
regressions AND false-positive regressions are caught. Coverage is total:
EVERY rule id in the checker's RULES table, meta rules included, must be
pinned by at least one fixture finding, so adding a rule without a fixture
fails immediately.

Catalog sync: the rule catalog exists in three places — the RULES table (the
one source of truth), the muzha_lint.py module docstring, and the DESIGN.md
"Correctness tooling" table. This suite verifies both prose catalogs against
the table, so a rule can no longer be added or renamed in one place only
(the historical "10 rules" vs "13 listed" drift).

Run directly (repo root is inferred) or via `ctest -R muzha_lint_fixtures`.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import muzha_lint  # noqa: E402

FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
MARKER_RE = re.compile(r"expect:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")
DESIGN_RULE_ROW_RE = re.compile(r"^\|\s*`([\w-]+)`\s*\|")


def expected_findings(root: str) -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    fixture_abs = os.path.join(root, FIXTURE_DIR)
    for dirpath, dirnames, filenames in os.walk(fixture_abs):
        dirnames.sort()
        for fn in sorted(filenames):
            if not fn.endswith(muzha_lint.CXX_EXTENSIONS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, fn), root)
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = MARKER_RE.search(line)
                    if not m:
                        continue
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        if rule not in muzha_lint.RULES:
                            raise SystemExit(
                                f"{rel}:{lineno}: marker names unknown rule '{rule}'")
                        expected.add((rel, lineno, rule))
    return expected


def check_fixtures(root: str) -> bool:
    expected = expected_findings(root)
    actual = {(f.path, f.line, f.rule)
              for f in muzha_lint.lint_paths(root, [FIXTURE_DIR])}

    ok = True
    for path, line, rule in sorted(expected - actual):
        print(f"MISSED   {path}:{line}: [{rule}] marked but not reported")
        ok = False
    for path, line, rule in sorted(actual - expected):
        print(f"SPURIOUS {path}:{line}: [{rule}] reported but not marked")
        ok = False

    rules_pinned = {rule for _, _, rule in expected}
    unpinned = sorted(set(muzha_lint.RULES) - rules_pinned)
    if unpinned:
        print(f"COVERAGE rule ids with no fixture finding: {unpinned} — "
              "every rule needs at least one positive fixture")
        ok = False

    if ok:
        print(f"muzha-lint fixtures OK: {len(expected)} findings across "
              f"{len(rules_pinned)} rules match exactly")
    return ok


def check_catalog_sync(root: str) -> bool:
    """The docstring and DESIGN.md catalogs must match the RULES table."""
    ok = True
    suppressible = set(muzha_lint.RULES) - muzha_lint.META_RULES

    doc = muzha_lint.__doc__ or ""
    for rule in sorted(muzha_lint.RULES):
        if rule not in doc:
            print(f"CATALOG muzha_lint.py docstring does not mention "
                  f"rule '{rule}'")
            ok = False

    design_path = os.path.join(root, "DESIGN.md")
    with open(design_path, encoding="utf-8") as f:
        design = f.read()
    design_rules = {m.group(1) for m in
                    (DESIGN_RULE_ROW_RE.match(line)
                     for line in design.splitlines())
                    if m and m.group(1) in muzha_lint.RULES}
    for rule in sorted(suppressible - design_rules):
        print(f"CATALOG DESIGN.md rule table is missing `{rule}`")
        ok = False
    for rule in sorted(design_rules - suppressible):
        print(f"CATALOG DESIGN.md rule table lists `{rule}`, "
              "which is not a suppressible rule")
        ok = False
    for rule in sorted(muzha_lint.META_RULES):
        if f"`{rule}`" not in design:
            print(f"CATALOG DESIGN.md does not mention meta rule `{rule}`")
            ok = False

    if ok:
        n, m = len(suppressible), len(muzha_lint.META_RULES)
        print(f"muzha-lint catalog OK: {n} rules + {m} meta rules "
              "consistent across RULES table, docstring and DESIGN.md")
    return ok


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ok = check_fixtures(root)
    ok = check_catalog_sync(root) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
