#!/usr/bin/env python3
"""Golden-fixture and unit suite for muzha-deps (mirrors test_muzha_lint.py).

Fixtures: each immediate subdirectory of tests/deps_fixtures/ is a
self-contained mini-repository (own layers.toml + src/<layer>/ tree). The
driver runs muzha_deps.analyze() over every tree with no baseline — every
finding gates — and diffs the actual (tree, file, line, rule) triples against
`expect: <rule-id>` markers on the exact line the analyzer must report.
Missed findings and unexpected extras both fail, and EVERY rule id in the
analyzer's RULES table (meta rules included) must be pinned by at least one
marker across the trees, so adding a rule without a fixture fails
immediately.

Unit tests pin the include-resolver edge cases that motivated the fixture
trees from the inside: quoted-include resolution order (including-file
directory before the include roots), comment / raw-string stripping (an
`#include` spelled there is never an edge), the C++14 digit-separator lexer
state (100'000 must not open a char literal and blank the rest of the file),
conditional includes as part of the union graph, canonicalize()/layer_of(),
manifest DAG validation, and the baseline round-trip.

Run directly (repo root is inferred) or via `ctest -R muzha_deps_fixtures`.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import muzha_deps  # noqa: E402
from muzha_lint import split_code_and_comments  # noqa: E402

FIXTURE_DIR = os.path.join("tests", "deps_fixtures")
MARKER_RE = re.compile(r"expect:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


# ---------------------------------------------------------------------------
# Golden fixtures
# ---------------------------------------------------------------------------

def fixture_trees(root: str) -> list[str]:
    base = os.path.join(root, FIXTURE_DIR)
    return sorted(
        d for d in os.listdir(base)
        if os.path.isfile(os.path.join(base, d, "layers.toml")))


def expected_findings(tree_root: str) -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    for dirpath, dirnames, filenames in os.walk(tree_root):
        dirnames.sort()
        for fn in sorted(filenames):
            if not fn.endswith(muzha_deps.CXX_EXTENSIONS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, fn), tree_root)
            rel = rel.replace(os.sep, "/")
            with open(os.path.join(tree_root, rel), encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    m = MARKER_RE.search(line)
                    if not m:
                        continue
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        if rule not in muzha_deps.RULES:
                            raise SystemExit(
                                f"{rel}:{lineno}: marker names unknown "
                                f"rule '{rule}'")
                        expected.add((rel, lineno, rule))
    return expected


def check_fixtures(root: str) -> bool:
    ok = True
    total = 0
    rules_pinned: set[str] = set()
    for tree in fixture_trees(root):
        tree_root = os.path.join(root, FIXTURE_DIR, tree)
        manifest = os.path.join(tree_root, "layers.toml")
        expected = expected_findings(tree_root)
        _, findings = muzha_deps.analyze(tree_root, manifest)
        actual = {(f.path, f.line, f.rule) for f in findings}
        for path, line, rule in sorted(expected - actual):
            print(f"MISSED   {tree}/{path}:{line}: [{rule}] "
                  "marked but not reported")
            ok = False
        for path, line, rule in sorted(actual - expected):
            print(f"SPURIOUS {tree}/{path}:{line}: [{rule}] "
                  "reported but not marked")
            ok = False
        total += len(expected)
        rules_pinned |= {rule for _, _, rule in expected}

    unpinned = sorted(set(muzha_deps.RULES) - rules_pinned)
    if unpinned:
        print(f"COVERAGE rule ids with no fixture finding: {unpinned} — "
              "every rule needs at least one positive fixture")
        ok = False
    if ok:
        print(f"muzha-deps fixtures OK: {total} findings across "
              f"{len(rules_pinned)} rules match exactly")
    return ok


# ---------------------------------------------------------------------------
# Unit tests
# ---------------------------------------------------------------------------

def _fail(name: str, why: str) -> bool:
    print(f"UNIT {name}: {why}")
    return False


def test_resolution_order(root: str) -> bool:
    """"params.h" from net/ must pick net/params.h, not sim/params.h."""
    known = {"src/sim/params.h", "src/net/params.h"}
    got = muzha_deps.resolve_include(
        root, "src/net/local.h", "params.h", ["src"], known)
    if got != "src/net/params.h":
        return _fail("resolution_order", f"got {got}")
    # With no same-directory candidate, fall back to the include roots.
    got = muzha_deps.resolve_include(
        root, "src/net/local.h", "sim/params.h", ["src"], known)
    if got != "src/sim/params.h":
        return _fail("resolution_order", f"root fallback got {got}")
    # Non-project includes resolve to None.
    got = muzha_deps.resolve_include(
        root, "src/net/local.h", "vector", ["src"], known)
    if got is not None:
        return _fail("resolution_order", f"<vector> resolved to {got}")
    return True


def test_comment_and_raw_string_includes(root: str) -> bool:
    """An #include spelled in a comment or raw string is never an edge,
    and a digit separator (100'000) must not blank the rest of the file."""
    rel = os.path.join(FIXTURE_DIR, "resolver", "src", "net", "strings.h")
    facts = muzha_deps.collect_dep_facts(os.path.join(root, rel), rel)
    if facts.includes:
        return _fail("raw_string_includes",
                     f"phantom include edges {facts.includes}")
    if "Strings" not in facts.strong_exports:
        return _fail("raw_string_includes",
                     "digit separator swallowed the Strings definition")
    return True


def test_lexer_digit_separator() -> bool:
    code_lines, _ = split_code_and_comments(
        "int a = 100'000;\nclass After {};\n")
    if "After" not in code_lines[1]:
        return _fail("digit_separator",
                     "100'000 opened a char-literal state")
    return True


def test_conditional_include_is_an_edge(root: str) -> bool:
    """#ifdef'd includes are part of the graph (union over configs)."""
    rel = os.path.join(FIXTURE_DIR, "resolver", "src", "sim", "cond.h")
    facts = muzha_deps.collect_dep_facts(os.path.join(root, rel), rel)
    if [inc for _, inc in facts.includes] != ["net/cond2.h"]:
        return _fail("conditional_include", f"includes = {facts.includes}")
    return True


def test_canonicalize_and_layer_of() -> bool:
    manifest = muzha_deps.Manifest(
        roots=["src"], order=["sim", "net"],
        edges={"sim": set(), "net": {"sim"}}, private={})
    if muzha_deps.canonicalize("src/phy/channel.h", ["src"]) != "phy/channel.h":
        return _fail("canonicalize", "root prefix not stripped")
    if muzha_deps.layer_of("src/net/node.h", manifest) != "net":
        return _fail("layer_of", "layer not recovered")
    if muzha_deps.layer_of("src/unknown/x.h", manifest) is not None:
        return _fail("layer_of", "unknown dir must map to None")
    return True


def test_manifest_rejects_non_dag() -> bool:
    bad = ('[graph]\nroots = ["src"]\n'
           '[layers]\norder = ["sim", "net"]\n'
           '[edges]\nsim = ["net"]\nnet = ["sim"]\n')
    with tempfile.NamedTemporaryFile(
            "w", suffix=".toml", delete=False) as f:
        f.write(bad)
        path = f.name
    try:
        muzha_deps.load_manifest(path)
    except muzha_deps.ManifestError as e:
        if "DAG" not in str(e):
            return _fail("manifest_dag", f"wrong error: {e}")
        return True
    finally:
        os.unlink(path)
    return _fail("manifest_dag", "upward edge accepted")


def test_baseline_round_trip() -> bool:
    keys = {("src/a.h", "unused-include", "sim/x.h"),
            ("src/b.cc", "layer-violation", "tcp/y.h")}
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        path = f.name
    try:
        muzha_deps.write_baseline(path, keys)
        if muzha_deps.load_baseline(path) != keys:
            return _fail("baseline_round_trip", "load != write")
    finally:
        os.unlink(path)
    if muzha_deps.load_baseline(path + ".missing"):
        return _fail("baseline_round_trip", "missing file not empty")
    return True


def check_units(root: str) -> bool:
    ok = True
    ok = test_resolution_order(root) and ok
    ok = test_comment_and_raw_string_includes(root) and ok
    ok = test_lexer_digit_separator() and ok
    ok = test_conditional_include_is_an_edge(root) and ok
    ok = test_canonicalize_and_layer_of() and ok
    ok = test_manifest_rejects_non_dag() and ok
    ok = test_baseline_round_trip() and ok
    if ok:
        print("muzha-deps units OK: resolver, lexer, manifest and "
              "baseline edge cases pass")
    return ok


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ok = check_fixtures(root)
    ok = check_units(root) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
