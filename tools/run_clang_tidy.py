#!/usr/bin/env python3
"""Baseline-ratchet driver for the clang-tidy / clang-analyzer CI leg.

clang-tidy's exit code alone cannot gate a CI leg usefully: warnings do not
fail it, WarningsAsErrors fails on EVERY occurrence (so the first noisy
check blocks unrelated PRs), and line numbers shift with every edit. This
driver turns the run into a ratchet against a committed baseline:

  * every diagnostic is normalized to a (file, check) pair — line numbers
    are deliberately dropped so refactors that move code do not churn the
    baseline, and so the baseline survives clang version drift better;
  * pairs absent from tools/clang_tidy_baseline.txt are NEW findings: they
    are printed (and, with --github, emitted as `::error` workflow
    annotations that surface inline on the PR) and the run exits 1;
  * baseline pairs that no longer occur are STALE: reported as advisory
    notes (exit stays 0) so a fixed finding or a changed clang version
    never turns CI red on its own — refresh with --update-baseline when
    convenient. Under --github the stale count is additionally emitted as
    a `::warning` workflow annotation so staleness stays visible on every
    PR instead of silently accumulating;
  * `error:` severity diagnostics (real compile failures, not style) fail
    the run regardless of the baseline.

Workflow:

  python3 tools/run_clang_tidy.py -p build            # gate against baseline
  python3 tools/run_clang_tidy.py -p build --update-baseline   # refresh
  python3 tools/run_clang_tidy.py --self-test         # no clang-tidy needed

Sources default to every .cc under src/. The build dir must have
compile_commands.json (the top-level CMakeLists exports it always).
`--self-test` exercises the parse/diff/ratchet logic on canned diagnostics
so the gating behavior itself is pinned by ctest in containers that have no
clang-tidy installed.

Exit status: 0 clean (stale-only counts as clean), 1 new findings or
compile errors, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import re
import shutil
import subprocess
import sys
import tempfile

DEFAULT_BASELINE = os.path.join("tools", "clang_tidy_baseline.txt")

DIAG_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<checks>[\w.,-]+)\]\s*$")
ERROR_NO_CHECK_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+):\s+error:\s+(?P<msg>.*)$")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_sources(root: str) -> list[str]:
    files: list[str] = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith(".cc"):
                files.append(os.path.join(dirpath, fn))
    return files


def parse_diagnostics(
        text: str, root: str) -> tuple[set[tuple[str, str]], list[str]]:
    """Returns (pairs, errors): normalized (relpath, check) findings and a
    list of hard-error lines. Duplicate (file, check) occurrences collapse —
    the ratchet is per file per check, not per line."""
    pairs: set[tuple[str, str]] = set()
    errors: list[str] = []
    for line in text.splitlines():
        m = DIAG_RE.match(line)
        if m:
            rel = os.path.relpath(os.path.join(root, m.group("path")), root) \
                if not os.path.isabs(m.group("path")) \
                else os.path.relpath(m.group("path"), root)
            rel = rel.replace(os.sep, "/")
            if rel.startswith(".."):
                continue  # diagnostics in system headers are not ours
            if m.group("sev") == "error":
                errors.append(line)
                continue
            for check in m.group("checks").split(","):
                pairs.add((rel, check))
            continue
        if ERROR_NO_CHECK_RE.match(line):
            errors.append(line)
    return pairs, errors


def load_baseline(path: str) -> set[tuple[str, str]]:
    baseline: set[tuple[str, str]] = set()
    if not os.path.exists(path):
        return baseline
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2:
                baseline.add((parts[0], parts[1]))
    return baseline


def write_baseline(path: str, pairs: set[tuple[str, str]]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("# clang-tidy baseline: accepted (file, check) pairs, one "
                "per line.\n"
                "# A finding not listed here fails CI; refresh with\n"
                "#   python3 tools/run_clang_tidy.py -p build "
                "--update-baseline\n"
                "# and justify additions in the PR that makes them.\n")
        for rel, check in sorted(pairs):
            f.write(f"{rel} {check}\n")


def ratchet(pairs: set[tuple[str, str]], errors: list[str],
            baseline: set[tuple[str, str]], github: bool) -> int:
    rc = 0
    if errors:
        print(f"run-clang-tidy: {len(errors)} hard error(s):")
        for line in errors:
            print(f"  {line}")
            if github:
                print("::error title=clang-tidy::" + line.replace("%", "%25"))
        rc = 1
    new = sorted(pairs - baseline)
    stale = sorted(baseline - pairs)
    for rel, check in new:
        print(f"NEW   {rel}: [{check}] not in {DEFAULT_BASELINE}")
        if github:
            print(f"::error file={rel},title=clang-tidy [{check}]::"
                  f"new finding not in the committed baseline "
                  f"(fix it, or justify and --update-baseline)")
    for rel, check in stale:
        print(f"STALE {rel}: [{check}] in baseline but no longer reported "
              "(advisory — refresh the baseline when convenient)")
    if stale and github:
        print(f"::warning title=clang-tidy baseline::{len(stale)} stale "
              f"baseline entr{'y' if len(stale) == 1 else 'ies'} — run "
              "tools/run_clang_tidy.py -p build --update-baseline to prune")
    if new:
        rc = 1
    if rc == 0:
        print(f"run-clang-tidy: clean — {len(pairs)} baselined finding(s), "
              f"{len(stale)} stale entr(y/ies), 0 new")
    return rc


def self_test() -> int:
    root = "/repo"
    log = "\n".join([
        "src/sim/scheduler.cc:10:5: warning: dead store [clang-analyzer-deadcode.DeadStores]",
        "src/phy/channel.cc:4:1: warning: use '= default' [modernize-use-equals-default]",
        "src/phy/channel.cc:9:1: warning: use '= default' [modernize-use-equals-default]",
        "/usr/include/c++/12/bits/stl_vector.h:99:1: warning: noise [bugprone-foo]",
        "note: this note line is ignored",
    ])
    pairs, errors = parse_diagnostics(log, root)
    assert not errors, errors
    assert pairs == {
        ("src/sim/scheduler.cc", "clang-analyzer-deadcode.DeadStores"),
        ("src/phy/channel.cc", "modernize-use-equals-default"),
    }, pairs  # duplicates collapse, system headers drop

    # Ratchet: baselined finding passes, novel finding fails, stale advisory.
    baseline = {("src/sim/scheduler.cc", "clang-analyzer-deadcode.DeadStores"),
                ("src/phy/channel.cc", "modernize-use-equals-default"),
                ("src/net/node.cc", "bugprone-gone")}
    assert ratchet(pairs, [], baseline, github=False) == 0
    assert ratchet(pairs | {("src/net/trace.cc", "concurrency-mt-unsafe")},
                   [], baseline, github=False) == 1

    # Stale entries stay advisory (exit 0) but surface as a ::warning
    # annotation under --github so staleness cannot silently accumulate.
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        assert ratchet(pairs, [], baseline, github=True) == 0
    assert ("::warning title=clang-tidy baseline::1 stale baseline entry"
            in buf.getvalue()), buf.getvalue()

    # Hard errors fail even when every pair is baselined.
    _, errs = parse_diagnostics(
        "src/sim/log.cc:3:1: error: unknown type name 'Foo'", root)
    assert len(errs) == 1
    assert ratchet(set(), errs, baseline, github=False) == 1

    # Multi-check diagnostics split into one pair per check.
    p2, _ = parse_diagnostics(
        "src/a.cc:1:1: warning: x [bugprone-a,performance-b]", root)
    assert p2 == {("src/a.cc", "bugprone-a"), ("src/a.cc", "performance-b")}

    # Baseline round-trip.
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "baseline.txt")
        write_baseline(path, pairs)
        assert load_baseline(path) == pairs
    print("run-clang-tidy self-test OK: parse, dedup, system-header drop, "
          "ratchet pass/fail, stale-count annotation, hard errors, "
          "baseline round-trip")
    return 0


def main(argv: list[str]) -> int:
    doc = __doc__ or ""
    ap = argparse.ArgumentParser(description=doc.splitlines()[0])
    ap.add_argument("-p", "--build-dir", default="build",
                    help="build dir with compile_commands.json")
    ap.add_argument("--baseline", default=None,
                    help=f"baseline file (default: {DEFAULT_BASELINE})")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run's findings")
    ap.add_argument("--github", action="store_true",
                    help="emit GitHub Actions ::error annotations")
    ap.add_argument("--self-test", action="store_true",
                    help="test the parse/diff logic without clang-tidy")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("sources", nargs="*",
                    help="files to analyze (default: src/**/*.cc)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = repo_root()
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("run-clang-tidy: clang-tidy not found on PATH", file=sys.stderr)
        return 2
    if not os.path.exists(os.path.join(args.build_dir, "compile_commands.json")):
        print(f"run-clang-tidy: {args.build_dir}/compile_commands.json "
              "missing (configure with CMake first)", file=sys.stderr)
        return 2

    sources = args.sources or default_sources(root)
    cmd = [tidy, "-p", args.build_dir, "--quiet"] + sources
    proc = subprocess.run(cmd, capture_output=True, text=True)
    pairs, errors = parse_diagnostics(proc.stdout + "\n" + proc.stderr, root)

    if args.update_baseline:
        write_baseline(baseline_path, pairs)
        print(f"run-clang-tidy: baseline refreshed with {len(pairs)} "
              f"pair(s) -> {os.path.relpath(baseline_path, root)}")
        return 1 if errors else 0

    return ratchet(pairs, errors, load_baseline(baseline_path), args.github)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
