#include "tcp/tcp_sink.h"

#include <gtest/gtest.h>

#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

class AckCollector : public Agent {
 public:
  void receive(PacketPtr pkt) override { acks.push_back(std::move(pkt)); }
  const TcpHeader& last() const { return acks.back()->tcp(); }
  std::vector<PacketPtr> acks;
};

class SinkTest : public ::testing::Test {
 protected:
  SinkTest() : channel(sim, PhyParams{}) {
    sender_node = std::make_unique<Node>(sim, channel, 0, Position{0, 0});
    sink_node = std::make_unique<Node>(sim, channel, 1, Position{200, 0});
    auto rs = std::make_unique<StaticRouting>(*sender_node);
    rs->add_route(1, 1);
    sender_node->set_routing(std::move(rs));
    auto rd = std::make_unique<StaticRouting>(*sink_node);
    rd->add_route(0, 0);
    sink_node->set_routing(std::move(rd));

    sender_node->register_agent(1000, acks);
    TcpSink::Config sc;
    sc.port = 2000;
    sink = std::make_unique<TcpSink>(sim, *sink_node, sc);
    sink->start();
  }

  // Crafts a data segment as the sender's node would emit it.
  PacketPtr data(std::int64_t seq, std::uint8_t avbw = kDraiAggressiveAccel,
                 bool marked = false, SimTime ts = SimTime::from_us(5)) {
    PacketPtr p = sender_node->new_packet(1, IpProto::kTcp, 1500);
    p->ip.avbw_s = avbw;
    p->ip.congestion_marked = marked;
    TcpHeader h;
    h.seqno = seq;
    h.src_port = 1000;
    h.dst_port = 2000;
    h.ts = ts;
    p->l4 = h;
    return p;
  }

  // Injects a segment and waits for its ACK to come back over the air.
  void inject(PacketPtr p) {
    sink->receive(std::move(p));
    sim.run_until(sim.now() + SimTime::from_ms(50));
  }

  Simulator sim{1};
  Channel channel;
  std::unique_ptr<Node> sender_node, sink_node;
  std::unique_ptr<TcpSink> sink;
  AckCollector acks;
};

TEST_F(SinkTest, AcksEveryInOrderSegmentCumulatively) {
  inject(data(0));
  inject(data(1));
  inject(data(2));
  ASSERT_EQ(acks.acks.size(), 3u);
  EXPECT_EQ(acks.acks[0]->tcp().seqno, 0);
  EXPECT_EQ(acks.acks[1]->tcp().seqno, 1);
  EXPECT_EQ(acks.acks[2]->tcp().seqno, 2);
  EXPECT_EQ(sink->delivered(), 3);
}

TEST_F(SinkTest, OutOfOrderGeneratesDuplicateAcks) {
  inject(data(0));
  inject(data(2));
  inject(data(3));
  ASSERT_EQ(acks.acks.size(), 3u);
  EXPECT_EQ(acks.acks[1]->tcp().seqno, 0);  // dup ACK
  EXPECT_EQ(acks.acks[2]->tcp().seqno, 0);  // dup ACK
  EXPECT_EQ(sink->out_of_order_received(), 2u);

  // The hole fills: one cumulative ACK covering the buffered run.
  inject(data(1));
  EXPECT_EQ(acks.last().seqno, 3);
  EXPECT_EQ(sink->delivered(), 4);
}

TEST_F(SinkTest, AlreadyDeliveredSegmentStillAcked) {
  inject(data(0));
  inject(data(0));
  ASSERT_EQ(acks.acks.size(), 2u);
  EXPECT_EQ(acks.last().seqno, 0);
  EXPECT_EQ(sink->duplicates_received(), 1u);
  EXPECT_EQ(sink->delivered(), 1);
}

TEST_F(SinkTest, EchoesTimestampForRttSampling) {
  inject(data(0, kDraiAggressiveAccel, false, SimTime::from_us(1234)));
  EXPECT_EQ(acks.last().ts_echo, SimTime::from_us(1234));
}

TEST_F(SinkTest, EchoesPathMinimumDraiOnEveryAck) {
  inject(data(0, kDraiModerateAccel));
  EXPECT_EQ(acks.last().mrai, kDraiModerateAccel);
  inject(data(1, kDraiModerateDecel));
  EXPECT_EQ(acks.last().mrai, kDraiModerateDecel);
}

TEST_F(SinkTest, MarksDupAcksFromRouterMarkedPackets) {
  inject(data(0));
  // Out-of-order arrival carrying the router's congestion mark.
  inject(data(2, kDraiAggressiveAccel, /*marked=*/true));
  EXPECT_TRUE(acks.last().marked);
}

TEST_F(SinkTest, MarksDupAcksFromDecelerationRegionMrai) {
  inject(data(0));
  inject(data(2, kDraiModerateDecel, /*marked=*/false));
  EXPECT_TRUE(acks.last().marked);  // MRAI <= 2 implies congestion
}

TEST_F(SinkTest, UnmarkedRandomLossDupAcksStayUnmarked) {
  inject(data(0));
  inject(data(2, kDraiModerateAccel, /*marked=*/false));
  EXPECT_EQ(acks.last().seqno, 0);  // duplicate
  EXPECT_FALSE(acks.last().marked);
}

TEST_F(SinkTest, InOrderMarkedPacketsDoNotMarkFreshAcks) {
  inject(data(0, kDraiAggressiveAccel, /*marked=*/true));
  // New cumulative ACK (not a duplicate): marking only applies to dup ACKs.
  EXPECT_FALSE(acks.last().marked);
}

TEST_F(SinkTest, SackBlocksDescribeBufferedRuns) {
  inject(data(0));
  inject(data(2));
  inject(data(3));
  inject(data(5));
  // Trigger run {5,6} first, then other runs most-recent-first.
  const TcpHeader& h = acks.last();
  ASSERT_GE(h.sacks.size(), 2u);
  EXPECT_EQ(h.sacks[0], (SackBlock{5, 6}));
  EXPECT_EQ(h.sacks[1], (SackBlock{2, 4}));
}

TEST_F(SinkTest, SackBlockCountIsBounded) {
  inject(data(0));
  inject(data(2));
  inject(data(4));
  inject(data(6));
  inject(data(8));
  inject(data(10));
  EXPECT_LE(acks.last().sacks.size(), 3u);
  // And the trigger block always leads.
  EXPECT_EQ(acks.last().sacks[0], (SackBlock{10, 11}));
}

TEST_F(SinkTest, DeliveryListenerReportsInOrderBatches) {
  std::vector<std::int64_t> counts;
  sink->set_delivery_listener(
      [&](SimTime, std::int64_t n, std::uint32_t) { counts.push_back(n); });
  inject(data(0));
  inject(data(2));
  inject(data(3));
  inject(data(1));  // releases 1,2,3 at once
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 3);
}

TEST_F(SinkTest, AckRoutingTargetsDataSource) {
  inject(data(0));
  ASSERT_EQ(acks.acks.size(), 1u);
  EXPECT_EQ(acks.acks[0]->ip.dst, 0u);
  EXPECT_TRUE(acks.acks[0]->tcp().is_ack);
  EXPECT_EQ(acks.acks[0]->tcp().dst_port, 1000);
}

}  // namespace
}  // namespace muzha
