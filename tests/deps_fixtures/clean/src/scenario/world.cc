#include "net/node.h"
#include "sim/clock.h"

namespace muzha {
int build_world() {
  Clock clock;
  Node node(clock);
  (void)node;
  return static_cast<int>(clock.now());
}
}  // namespace muzha
