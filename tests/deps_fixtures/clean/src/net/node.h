#pragma once

#include "sim/clock.h"

namespace muzha {
class Node {
 public:
  explicit Node(Clock& clock) : clock_(clock) {}

 private:
  Clock& clock_;
};
}  // namespace muzha
