// A correctly layered tree: zero findings (false-positive guard).
#pragma once

namespace muzha {
class Clock {
 public:
  long now() const { return t_; }

 private:
  long t_ = 0;
};
}  // namespace muzha
