#pragma once

namespace muzha {
class Top {
 public:
  int id = 0;
};
}  // namespace muzha
