// The three meta findings: each suppression below is itself defective.
#pragma once

// muzha-deps: allow(layer-violation)  expect: bad-suppression
// muzha-deps: allow(no-such-rule): names a rule that does not exist  expect: unknown-rule
// muzha-deps: allow(include-cycle): nothing in this file cycles  expect: unused-suppression

namespace muzha {
class Meta {};
}  // namespace muzha
