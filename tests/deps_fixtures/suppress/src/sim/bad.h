#pragma once

// muzha-deps: allow(layer-violation): fixture proves a justified suppression silences the finding
#include "scenario/top.h"

namespace muzha {
class Bad {
 public:
  Top* top = nullptr;
};
}  // namespace muzha
