#pragma once

namespace muzha {
class Evil {
 public:
  int x = 0;
};
}  // namespace muzha
