// A conditional include is part of the graph: the include graph is the
// union over preprocessor configurations, so hiding an inversion behind
// #ifdef MUZHA_SANITIZED does not excuse it.
#pragma once

#ifdef MUZHA_SANITIZED
#include "net/cond2.h"  // expect: layer-violation
#endif

namespace muzha {
class Cond {
 public:
#ifdef MUZHA_SANITIZED
  Cond2* c2 = nullptr;
#endif
};
}  // namespace muzha
