#pragma once

namespace muzha {
class SimParams {
 public:
  long seed = 0;
};
}  // namespace muzha
