// An #include spelled inside a comment or a raw string literal is never an
// edge: if the lexer leaked either, the scenario/ target would make this a
// layer-violation. The digit separator below once broke the lexer's char-
// literal state (100'000), blanking the rest of the file.
#pragma once

// #include "scenario/evil.h"

namespace muzha {
inline const char* kUsage = R"(
#include "scenario/evil.h"
)";

class Strings {
 public:
  long budget = 100'000;
};
}  // namespace muzha
