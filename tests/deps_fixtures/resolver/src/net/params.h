// Same basename as sim/params.h, different layer.
#pragma once

namespace muzha {
class NetParams {
 public:
  int queue = 50;
};
}  // namespace muzha
