#pragma once

namespace muzha {
class Cond2 {
 public:
  int poisoned = 0;
};
}  // namespace muzha
