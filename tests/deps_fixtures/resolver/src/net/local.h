// Quoted-include semantics: "params.h" resolves against the including
// file's directory FIRST, so this is net/params.h, not sim/params.h —
// if resolution picked the wrong one, unused-include would fire here.
#pragma once

#include "params.h"

namespace muzha {
class Local {
 public:
  NetParams params;
};
}  // namespace muzha
