// Downward in [layers].order but absent from [edges].net: still a violation.
#pragma once

#include "pkt/frame.h"  // expect: layer-violation

namespace muzha {
class Peer {
 public:
  Frame last;
};
}  // namespace muzha
