#pragma once

namespace muzha {
class Setup {
 public:
  int flows = 1;
};
}  // namespace muzha
