// The canonical inversion: the bottom layer reaching for the top one.
#pragma once

#include "scenario/setup.h"  // expect: layer-violation

namespace muzha {
class Engine {
 public:
  Setup* setup = nullptr;
};
}  // namespace muzha
