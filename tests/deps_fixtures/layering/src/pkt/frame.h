#pragma once

namespace muzha {
class Frame {
 public:
  int bytes = 0;
};
}  // namespace muzha
