// Same-layer use of a private header is fine.
#pragma once

#include "phy/grid_impl.h"

namespace muzha {
class Field {
 public:
  GridImpl grid;
};
}  // namespace muzha
