#pragma once

namespace muzha {
class GridImpl {
 public:
  int cells = 0;
};
}  // namespace muzha
