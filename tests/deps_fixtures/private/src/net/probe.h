// net -> phy is an allowed edge, but grid_impl.h is phy-private.
#pragma once

#include "phy/grid_impl.h"  // expect: private-header-escape

namespace muzha {
class Probe {
 public:
  GridImpl* grid = nullptr;
};
}  // namespace muzha
