#pragma once

#include "sim/a.h"  // expect: include-cycle

namespace muzha {
class B {
 public:
  A* a = nullptr;
};
}  // namespace muzha
