// A self-include is the degenerate one-file cycle.
#pragma once

#include "sim/c.h"  // expect: include-cycle

namespace muzha {
class C {};
}  // namespace muzha
