#pragma once

#include "sim/b.h"  // expect: include-cycle

namespace muzha {
class A {
 public:
  B* b = nullptr;
};
}  // namespace muzha
