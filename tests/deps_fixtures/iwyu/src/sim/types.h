#pragma once

namespace muzha {
class Ticker {
 public:
  long ticks = 0;
};
}  // namespace muzha
