#pragma once

namespace muzha {
class Extra {
 public:
  int spare = 0;
};
}  // namespace muzha
