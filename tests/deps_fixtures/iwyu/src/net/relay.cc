#include "net/relay.h"

namespace muzha {
long poll(Relay& relay) {
  Ticker& t = relay.ticker;  // expect: missing-direct-include
  return ++t.ticks;
}
}  // namespace muzha
