// A forward declaration is the sanctioned way to name a type without
// including its header: no missing-direct-include here.
#pragma once

namespace muzha {
class Ticker;

class TickerRef {
 public:
  Ticker* ticker = nullptr;
};
}  // namespace muzha
