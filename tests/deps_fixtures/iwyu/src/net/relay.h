#pragma once

#include "sim/extras.h"  // expect: unused-include
#include "sim/types.h"

namespace muzha {
class Relay {
 public:
  Ticker ticker;
};
}  // namespace muzha
