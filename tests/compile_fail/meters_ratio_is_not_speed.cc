// expect-fail: the dimensionless ratio of two lengths is not a speed
#include "sim/units.h"
muzha::MetersPerSecond f() { return muzha::Meters(10.0) / muzha::Meters(5.0); }
