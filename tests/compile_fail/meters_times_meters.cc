// expect-fail: Length * Length (area) has no sanctioned result type
#include "sim/units.h"
auto f() { return muzha::Meters(2.0) * muzha::Meters(3.0); }
