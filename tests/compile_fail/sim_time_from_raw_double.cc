// expect-fail: the checked clock bridge only accepts typed Seconds
#include "sim/units.h"
muzha::SimTime f() { return muzha::to_sim_time(0.5); }
