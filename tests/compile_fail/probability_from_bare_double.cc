// expect-fail: implicit conversion from bare double into Probability
#include "sim/units.h"
muzha::Probability f() { return 0.5; }
