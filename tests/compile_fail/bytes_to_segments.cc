// expect-fail: a byte count handed to a segment-count parameter
#include "sim/units.h"
static double window(muzha::Segments s) { return s.value(); }
double f() { return window(muzha::Bytes(1500)); }
