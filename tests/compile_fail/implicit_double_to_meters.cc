// expect-fail: implicit conversion from bare double into a quantity
#include "sim/units.h"
muzha::Meters f() { return 250.0; }
