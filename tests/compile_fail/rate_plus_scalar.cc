// expect-fail: adding a unitless scalar to a data rate
#include "sim/units.h"
muzha::BitsPerSecond f() { return muzha::BitsPerSecond(2e6) + 1.0; }
