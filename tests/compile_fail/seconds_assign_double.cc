// expect-fail: assigning a bare double into a quantity lvalue
#include "sim/units.h"
void f(muzha::Seconds& s) { s = 0.5; }
