// expect-fail: mixing log-scale and linear power in one sum
#include "sim/units.h"
auto f() { return muzha::Dbm(0.0) + muzha::MilliWatts(1.0); }
