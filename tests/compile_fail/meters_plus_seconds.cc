// expect-fail: adding quantities of different dimensions
#include "sim/units.h"
muzha::Meters f() { return muzha::Meters(1.0) + muzha::Seconds(1.0); }
