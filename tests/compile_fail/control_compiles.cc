// Control fixture: dimensionally sound code that MUST compile. The harness
// self-test runs check_compile_fail.cmake over this file under WILL_FAIL,
// proving the driver really fails when a fixture compiles.
#include "sim/units.h"
using namespace muzha;
Seconds propagation_delay() {
  return Meters(250.0) / MetersPerSecond(3.0e8);
}
Seconds serialization_delay() { return to_bits(Bytes(1500)) / 2_Mbps; }
Segments grown(Segments w) { return w + Segments(1.0); }
