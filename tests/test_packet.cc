#include "pkt/packet.h"

#include <gtest/gtest.h>

namespace muzha {
namespace {

TEST(Packet, MakePacketAssignsFreshUids) {
  std::uint64_t counter = 0;
  PacketPtr a = make_packet(counter);
  PacketPtr b = make_packet(counter);
  EXPECT_EQ(a->uid, 1u);
  EXPECT_EQ(b->uid, 2u);
}

TEST(Packet, CloneKeepsUidAndHeaders) {
  std::uint64_t counter = 0;
  PacketPtr p = make_packet(counter);
  p->size_bytes = 1500;
  p->ip.src = 3;
  p->ip.dst = 9;
  p->ip.avbw_s = kDraiModerateAccel;
  p->ip.congestion_marked = true;
  TcpHeader h;
  h.seqno = 77;
  h.sacks.push_back({10, 12});
  p->l4 = h;

  PacketPtr c = clone_packet(*p);
  EXPECT_EQ(c->uid, p->uid);
  EXPECT_EQ(c->size_bytes, 1500u);
  EXPECT_EQ(c->ip.src, 3u);
  EXPECT_EQ(c->ip.avbw_s, kDraiModerateAccel);
  EXPECT_TRUE(c->ip.congestion_marked);
  ASSERT_TRUE(c->has_tcp());
  EXPECT_EQ(c->tcp().seqno, 77);
  ASSERT_EQ(c->tcp().sacks.size(), 1u);
  EXPECT_EQ(c->tcp().sacks[0], (SackBlock{10, 12}));

  // Deep copy: mutating the clone leaves the original untouched.
  c->tcp().seqno = 78;
  EXPECT_EQ(p->tcp().seqno, 77);
}

TEST(Packet, L4VariantAccessors) {
  Packet p;
  EXPECT_FALSE(p.has_tcp());
  EXPECT_FALSE(p.has_aodv());
  p.l4 = TcpHeader{};
  EXPECT_TRUE(p.has_tcp());
  EXPECT_FALSE(p.has_aodv());
  AodvMessage m;
  m.body = AodvRreq{};
  p.l4 = m;
  EXPECT_TRUE(p.has_aodv());
  EXPECT_TRUE(p.aodv().is_rreq());
  EXPECT_FALSE(p.aodv().is_rrep());
}

TEST(Packet, AodvMessageVariants) {
  AodvMessage m;
  m.body = AodvRrep{1, 2, 3, 4};
  EXPECT_TRUE(m.is_rrep());
  EXPECT_EQ(m.rrep().dest_seq, 3u);
  m.body = AodvRerr{{{5, 6}}};
  EXPECT_TRUE(m.is_rerr());
  ASSERT_EQ(m.rerr().unreachable.size(), 1u);
  EXPECT_EQ(m.rerr().unreachable[0].dest, 5u);
}

TEST(Packet, DefaultIpHeaderIsMuzhaNeutral) {
  Packet p;
  // AVBW-S starts at the maximum recommendation and unmarked, so a path with
  // no Muzha routers echoes "aggressive acceleration, no congestion".
  EXPECT_EQ(p.ip.avbw_s, kDraiAggressiveAccel);
  EXPECT_FALSE(p.ip.congestion_marked);
}

TEST(Packet, MacFrameNames) {
  EXPECT_STREQ(mac_frame_name(MacFrameType::kData), "DATA");
  EXPECT_STREQ(mac_frame_name(MacFrameType::kRts), "RTS");
  EXPECT_STREQ(mac_frame_name(MacFrameType::kCts), "CTS");
  EXPECT_STREQ(mac_frame_name(MacFrameType::kAck), "ACK");
}

TEST(Packet, DraiLevelOrdering) {
  EXPECT_LT(kDraiAggressiveDecel, kDraiModerateDecel);
  EXPECT_LT(kDraiModerateDecel, kDraiStabilize);
  EXPECT_LT(kDraiStabilize, kDraiModerateAccel);
  EXPECT_LT(kDraiModerateAccel, kDraiAggressiveAccel);
}

}  // namespace
}  // namespace muzha
