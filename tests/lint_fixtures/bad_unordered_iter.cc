// Fixture: iteration over unordered containers. Not compiled — read only by
// muzha-lint.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Table {
  std::unordered_map<std::uint32_t, int> routes_;
  std::unordered_set<std::uint32_t> seen_;
  std::unordered_map<int, std::vector<int>> deps_;

  int sum() const {
    int acc = 0;
    for (const auto& [k, v] : routes_) acc += v;  // expect: unordered-iter
    (void)seen_.begin();                          // expect: unordered-iter
    for (const auto& [k, vs] : deps_) {           // expect: unordered-iter
      acc += static_cast<int>(vs.size()) + static_cast<int>(k);
    }
    return acc;
  }

  void prune() {
    std::erase_if(seen_, [](std::uint32_t v) { return v == 0; });  // expect: unordered-iter
  }
};
