// Fixture: libc / global RNG bans. Not compiled — read only by muzha-lint.
#include <cstdlib>
#include <random>

int noise() {
  int a = std::rand();    // expect: banned-rand
  srand(7);               // expect: banned-rand
  double b = drand48();   // expect: banned-rand
  std::random_device rd;  // expect: banned-rand
  return a + static_cast<int>(b) + static_cast<int>(rd());
}
