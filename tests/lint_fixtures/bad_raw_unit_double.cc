// Fixture: unit-suffixed raw doubles. Not compiled — read only by
// muzha-lint. Each declaration below stores a dimensioned quantity in a
// bare double; the quantity types in sim/units.h are the sanctioned
// representation.
struct PhyKnobs {
  double rx_range_m = 250.0;       // expect: raw-unit-double
  double plcp_us = 192.0;          // expect: raw-unit-double
  double data_rate_bps = 2e6;      // expect: raw-unit-double
  double tx_power_dbm = 15.0;      // expect: raw-unit-double
  float speed_mps = 3.0f;          // expect: raw-unit-double, float-accum
  double dwell_s_ = 0.0;           // expect: raw-unit-double
};

double airtime(double frame_s, int retries) {  // expect: raw-unit-double
  return frame_s * retries;
}

// Conversion accessors returning a raw representation are fine: the rule
// targets stored or passed quantities, not `.value()`-style bridges.
struct Clock {
  double to_ms() const { return 0.0; }
  double to_us() const { return 0.0; }
};

// Unsuffixed or integer-typed names are out of scope.
struct Ok {
  double ratio = 1.78;
  int size_bytes = 1500;
};
