// Fixture: pointer values leaking into numbers/ordering. Not compiled — read
// only by muzha-lint.
#include <cstdint>
#include <functional>

struct Pkt;

std::uint64_t fingerprint(const Pkt* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // expect: pointer-order
}

std::size_t bucket(const Pkt* p) {
  return std::hash<const Pkt*>{}(p);  // expect: pointer-order
}

bool before(const Pkt* a, const Pkt* b) {
  return std::less<const Pkt*>{}(a, b);  // expect: pointer-order
}
