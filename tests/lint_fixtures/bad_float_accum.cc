// Fixture: float-typed accumulation state. Not compiled — read only by
// muzha-lint.
struct Ewma {
  float value_ = 0.0f;      // expect: float-accum
  void add(float sample) {  // expect: float-accum
    value_ += sample;
  }
};
