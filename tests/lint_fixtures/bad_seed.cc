// Fixture: implicitly seeded engines. Not compiled — read only by muzha-lint.
#include <random>

unsigned draw() {
  std::mt19937 gen;  // expect: banned-seed
  gen.seed();        // expect: banned-seed
  return gen();
}
