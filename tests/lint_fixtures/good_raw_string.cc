// Fixture: raw string literals are stripped by the lexer — banned tokens
// inside R"(...)" (including custom delimiters and embedded newlines) must
// produce no findings, and line numbering must stay exact for real findings
// after a multi-line raw string. Not compiled — read only by muzha-lint.
#include <cstdlib>
#include <string>

const char* kBannedSoup = R"(std::rand() time(nullptr) srand(1) float x;)";

const char* kCustomDelim = R"lint(thread_local int inside; std::mutex mu;)lint";

const char* kMultiLine = R"doc(
  std::random_device rd;
  #pragma omp parallel for
  memory_order_relaxed
  // muzha-lint: allow(banned-rand): a suppression inside a raw string is inert
)doc";

// A quote character inside a raw string must not derail the lexer state.
const char* kQuoted = R"q(she said "rand()" twice)q";

int real_finding_after_raw_strings() {
  return std::rand();  // expect: banned-rand
}
