// Fixture: every suppression below is justified and used — muzha-lint must
// report zero findings for this file. Not compiled — read only by muzha-lint.
#include <cstdlib>
#include <unordered_map>

struct Cache {
  std::unordered_map<int, int> slots_;

  int drain() {
    int acc = 0;
    // muzha-lint: allow(unordered-iter): fixture - the sum is order-independent
    for (const auto& [k, v] : slots_) acc += v;
    return acc;
  }
};

int jitter() {
  // muzha-lint: allow(banned-rand): fixture - demonstrates a justified suppression
  return std::rand();
}
