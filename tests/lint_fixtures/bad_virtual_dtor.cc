// Fixture: polymorphic class without a virtual destructor. Not compiled —
// read only by muzha-lint.
class LeakyAgent {  // expect: virtual-dtor
 public:
  virtual void on_packet();
  void close();
};

// Control: a final class with no base cannot be deleted through a different
// static type, so no finding.
class SealedAgent final {
 public:
  virtual void on_packet();
};
