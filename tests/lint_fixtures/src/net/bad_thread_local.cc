// Fixture: thread-local-audit fires on any thread_local outside the audited
// allowlist (this file classifies as src/net/). The allowlisted spellings
// live in the companion fixture src/pkt/packet_arena.cc.
namespace muzha {

struct ScratchBuffer {
  int data[64] = {};
};

ScratchBuffer& scratch() {
  thread_local ScratchBuffer buf;  // expect: thread-local-audit
  return buf;
}

thread_local int g_worker_hint = -1;  // expect: thread-local-audit

ScratchBuffer& shared_scratch() {
  static ScratchBuffer buf;  // expect: mutable-static
  return buf;
}

}  // namespace muzha
