// Fixture: relaxed-atomic fires on weak memory orderings and raw fences
// outside src/sim/shard_exec.* — this file classifies as src/core/. The
// atomic vocabulary itself also violates lock-discipline here, so those
// lines carry both expectations.
#include <atomic>  // expect: lock-discipline

namespace muzha {

std::atomic<int> g_mark_count{0};  // expect: lock-discipline

inline int sample_relaxed() {
  return g_mark_count.load(std::memory_order_relaxed);  // expect: relaxed-atomic
}

inline void publish_unfenced() {
  std::atomic_thread_fence(std::memory_order_acquire);  // expect: relaxed-atomic, lock-discipline
}

inline int sample_seq_cst() {
  return g_mark_count.load();  // seq_cst default: relaxed-atomic stays quiet
}

// muzha-lint: allow(relaxed-atomic): fixture proves a justified suppression is honored
inline int sample_suppressed() { return g_mark_count.load(std::memory_order_relaxed); }

}  // namespace muzha
