// Negative fixture: this path classifies as src/sim/shard_exec.cc — the one
// file whose job IS synchronization. Locks, condition variables, relaxed
// orderings and fences are all allowlisted here; nothing may be reported.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace muzha {

class FixtureExec {
 public:
  void post() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epoch_;
    }
    cv_.notify_all();
    ready_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> ready_{false};
  int epoch_ = 0;
};

}  // namespace muzha
