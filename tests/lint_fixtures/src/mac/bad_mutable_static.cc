// Fixture: mutable-static fires on every flavor of mutable static in model
// code (this file classifies as src/mac/ — the lint_fixtures prefix is
// stripped), and stays quiet on const/constexpr statics and static member
// functions.
#include <cstdint>
#include <map>

namespace muzha {

static int g_frames_seen = 0;              // expect: mutable-static
static std::map<int, int> g_dedup_cache;   // expect: mutable-static

static const int kRetryLimit = 7;          // const: no finding
static constexpr double kSlotTime = 20e-6; // constexpr: no finding

inline int bump() {
  static std::uint64_t call_count = 0;     // expect: mutable-static
  // Accepted precision limit: `static const char*` is a mutable pointer to
  // const chars, but the token-level rule reads the leading const as
  // immutability. Spell such tables `static const char* const`.
  static const char* kLabel = "mac";
  return static_cast<int>(++call_count) + (kLabel ? 0 : 1);
}

class MacCounters {
 public:
  static int instances() { return instances_; }  // member fn: no finding

 private:
  static int instances_;                   // expect: mutable-static
  static constexpr int kMaxBackoff = 1023; // constexpr member: no finding
  int per_object_state_ = 0;               // plain member: no finding
};

// A justified suppression is honored (and therefore not unused).
// muzha-lint: allow(mutable-static): fixture proves suppressions work on this rule
static int g_suppressed_static = 0;

}  // namespace muzha
