// Companion to bad_boundary_escape.cc: FixtureCarrier is never named
// Boundary*, but it is a by-value member of BoundaryEnvelope (declared in
// the OTHER file), so pass 2 pulls it into the boundary closure and its
// aliasing members are reported here — the cross-file property under test.
#pragma once

namespace muzha {

class Packet;

struct FixtureCarrier {
  long seq = 0;
  Packet* raw = nullptr;   // expect: boundary-escape
  PacketPtr owned;         // expect: boundary-escape
  double weight = 1.0;
};

}  // namespace muzha
