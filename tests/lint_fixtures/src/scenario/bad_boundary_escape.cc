// Fixture: boundary-escape fires on members that alias instead of own in
// types whose instances cross shard threads at the lookahead barrier. The
// closure is seeded by name (anything containing "Boundary"), spreads to
// by-value member types — including FixtureCarrier, declared in the
// SEPARATE fixture file boundary_escape_carrier.h, proving the cross-file
// pass — and to subclasses of adjacent types.
#include "boundary_escape_carrier.h"

namespace muzha {

class Packet;
class SimClock;

struct BoundaryEnvelope {
  long tx_time_ns = 0;
  FixtureCarrier carrier;         // by value: pulls FixtureCarrier into the closure
  Packet* stale = nullptr;        // expect: boundary-escape
  const SimClock& clock_ref;      // expect: boundary-escape
};

// Subclasses of an adjacent type observe cross-shard traffic, so they join
// the closure too.
struct BoundaryEnvelopeExt : BoundaryEnvelope {
  Packet* also_stale = nullptr;   // expect: boundary-escape
};

// Carrying the Packet BY VALUE is the sanctioned pattern: no finding.
struct BoundaryValueOk {
  long tx_time_ns = 0;
  Packet clone_me();
};

// Not named Boundary*, not reachable from one, not a subclass: raw Packet
// pointers here are ordinary thread-confined state — no finding.
struct FreeCarrier {
  Packet* fine_here = nullptr;
};

}  // namespace muzha
