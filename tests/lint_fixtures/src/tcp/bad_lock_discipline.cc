// Fixture: lock-discipline fires on synchronization primitives (and the
// headers that smuggle them in) inside src/ but outside the threaded-runtime
// allowlist — this file classifies as src/tcp/, which must be lock-free by
// shard isolation. The allowlisted spellings live in the companion fixture
// src/sim/shard_exec.cc.
#include <mutex>   // expect: lock-discipline
#include <atomic>  // expect: lock-discipline
#include <thread>  // expect: lock-discipline
#include <vector>

namespace muzha {

class CongestionShared {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);  // expect: lock-discipline
    ++total_;
  }

 private:
  std::mutex mu_;                 // expect: lock-discipline
  std::atomic<int> total_{0};     // expect: lock-discipline
  std::vector<int> fine_;
};

inline void spawn_helper() {
  std::thread t([] {});  // expect: lock-discipline
  t.join();
}

}  // namespace muzha
