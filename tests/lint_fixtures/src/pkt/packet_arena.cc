// Negative fixture: this path classifies as src/pkt/packet_arena.cc, which
// is on BOTH the thread-local-audit and lock-discipline allowlists — nothing
// here may be reported. (The real arena is exactly this shape: one
// thread_local pool per worker.)
#include <atomic>

namespace muzha {

struct FixtureArena {
  int live = 0;
};

FixtureArena& fixture_arena_local() {
  thread_local FixtureArena arena;  // allowlisted: no finding
  return arena;
}

std::atomic<int> g_arena_count{0};  // allowlisted for lock-discipline

}  // namespace muzha
