// Fixture: wall-clock reads. Not compiled — read only by muzha-lint.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long stamp() {
  long t = time(nullptr);                     // expect: banned-wall-clock
  auto n = std::chrono::system_clock::now();  // expect: banned-wall-clock
  struct timeval tv;
  gettimeofday(&tv, nullptr);                 // expect: banned-wall-clock
  (void)n;
  return t + tv.tv_sec;
}
