// Fixture: by-value parameters of polymorphic types. Not compiled — read only
// by muzha-lint.
class BaseAgent {
 public:
  virtual ~BaseAgent() = default;
  virtual void tick();
};

void dispatch(BaseAgent agent);     // expect: slicing
void log_agent(const BaseAgent a);  // expect: slicing

// Control: references and pointers do not slice — no findings.
void observe(const BaseAgent& a);
void adopt(BaseAgent* a);
