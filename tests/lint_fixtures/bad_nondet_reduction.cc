// Fixture: unordered reductions. Not compiled — read only by muzha-lint.
#include <functional>
#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  double a = std::reduce(xs.begin(), xs.end(), 0.0);  // expect: nondet-reduction
  double b = std::transform_reduce(  // expect: nondet-reduction
      xs.begin(), xs.end(), 0.0, std::plus<>{}, [](double x) { return -x; });
  double c = 0.0;
#pragma omp parallel for reduction(+ : c)  // expect: nondet-reduction
  for (std::size_t i = 0; i < xs.size(); ++i) c += xs[i];
  return a + b + c;
}
