// Fixture: pointer-keyed containers. Not compiled — read only by muzha-lint.
#include <map>
#include <set>
#include <unordered_map>

struct Node;

struct Registry {
  std::map<Node*, int> weight_;           // expect: pointer-key
  std::unordered_map<Node*, int> index_;  // expect: pointer-key
  std::set<const Node*> live_;            // expect: pointer-key
};
