// Fixture: malformed and dead suppressions are themselves findings. Not
// compiled — read only by muzha-lint.
#include <cstdlib>

int lazy() {
  // muzha-lint: allow(banned-rand) -- expect: bad-suppression
  int a = std::rand();  // expect: banned-rand
  // muzha-lint: allow(no-such-rule): typo'd id -- expect: unknown-rule
  // muzha-lint: allow(banned-wall-clock): nothing here reads the clock -- expect: unused-suppression
  return a;
}

// The shard-safety family goes through the same meta checks: a suppression
// of a shard rule with no justification, a misspelled shard rule id, and a
// justified shard suppression with nothing to suppress (this file is not
// model code, so the static below never fires mutable-static).
int shard_lazy() {
  // muzha-lint: allow(mutable-static) -- expect: bad-suppression
  static int calls = 0;
  // muzha-lint: allow(shard-unsafe): no such rule family member -- expect: unknown-rule
  // muzha-lint: allow(lock-discipline): no primitive on the next line -- expect: unused-suppression
  return ++calls;
}

// Meta rules themselves cannot be suppressed: naming one is unknown-rule.
// muzha-lint: allow(unused-suppression): trying to silence the meta layer -- expect: unknown-rule
