// Fixture: malformed and dead suppressions are themselves findings. Not
// compiled — read only by muzha-lint.
#include <cstdlib>

int lazy() {
  // muzha-lint: allow(banned-rand) -- expect: bad-suppression
  int a = std::rand();  // expect: banned-rand
  // muzha-lint: allow(no-such-rule): typo'd id -- expect: unknown-rule
  // muzha-lint: allow(banned-wall-clock): nothing here reads the clock -- expect: unused-suppression
  return a;
}
