// Smoke matrix: every TcpVariant completes a short 3-hop chain transfer with
// nonzero delivered bytes. Integration tests cover the paper's protagonists
// in depth; this guards the long tail (DOOR, ADTCP, Jersey, RoVegas, ECN,
// Westwood) against regressions that break basic delivery.
#include <gtest/gtest.h>

#include "scenario/experiment.h"

namespace muzha {
namespace {

constexpr TcpVariant kAllVariants[] = {
    TcpVariant::kTahoe,   TcpVariant::kReno,    TcpVariant::kNewReno,
    TcpVariant::kSack,    TcpVariant::kVegas,   TcpVariant::kMuzha,
    TcpVariant::kDoor,    TcpVariant::kAdtcp,   TcpVariant::kJersey,
    TcpVariant::kRoVegas, TcpVariant::kNewRenoEcn, TcpVariant::kWestwood,
};

class VariantMatrix : public ::testing::TestWithParam<TcpVariant> {};

TEST_P(VariantMatrix, DeliversOverThreeHopChain) {
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 1;
  cfg.flows.push_back({GetParam(), 0, 3, SimTime::zero(), 8});
  ExperimentResult res = run_experiment(cfg);
  const FlowResult& f = res.flows[0];
  EXPECT_GT(f.delivered, 0) << variant_name(GetParam());
  EXPECT_GT(f.throughput, BitsPerSecond(0.0)) << variant_name(GetParam());
  EXPECT_GE(f.packets_sent, static_cast<std::uint64_t>(f.delivered))
      << variant_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantMatrix,
                         ::testing::ValuesIn(kAllVariants),
                         [](const ::testing::TestParamInfo<TcpVariant>& info) {
                           std::string n = variant_name(info.param);
                           // Sanitise for gtest names ("NewReno+ECN").
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace muzha
