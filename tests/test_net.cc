#include <gtest/gtest.h>

#include "net/drop_tail_queue.h"
#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(3);
  std::uint64_t uid = 0;
  for (int i = 0; i < 3; ++i) {
    auto p = make_packet(uid);
    p->size_bytes = 100 + i;
    EXPECT_TRUE(q.enqueue(std::move(p), 1));
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.dequeue().pkt->size_bytes, 100u);
  EXPECT_EQ(q.dequeue().pkt->size_bytes, 101u);
  EXPECT_EQ(q.dequeue().pkt->size_bytes, 102u);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2);
  std::uint64_t uid = 0;
  EXPECT_TRUE(q.enqueue(make_packet(uid), 1));
  EXPECT_TRUE(q.enqueue(make_packet(uid), 1));
  EXPECT_FALSE(q.enqueue(make_packet(uid), 1));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(DropTailQueue, OccupancyAndWatermark) {
  DropTailQueue q(4);
  std::uint64_t uid = 0;
  EXPECT_DOUBLE_EQ(q.occupancy(), 0.0);
  q.enqueue(make_packet(uid), 1);
  q.enqueue(make_packet(uid), 1);
  EXPECT_DOUBLE_EQ(q.occupancy(), 0.5);
  EXPECT_EQ(q.high_watermark(), 2u);
  q.dequeue();
  EXPECT_DOUBLE_EQ(q.occupancy(), 0.25);
  EXPECT_EQ(q.high_watermark(), 2u);  // watermark sticks
}

// ---------------------------------------------------------------------------

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() {
    a = std::make_unique<Node>(sim, channel, 0, Position{0, 0});
    b = std::make_unique<Node>(sim, channel, 1, Position{200, 0});
    auto ra = std::make_unique<StaticRouting>(*a);
    ra->add_route(1, 1);
    a->set_routing(std::move(ra));
    auto rb = std::make_unique<StaticRouting>(*b);
    rb->add_route(0, 0);
    b->set_routing(std::move(rb));
  }

  Simulator sim{1};
  PhyParams params;
  Channel channel{sim, params};
  std::unique_ptr<Node> a, b;
};

class CollectAgent : public Agent {
 public:
  void receive(PacketPtr pkt) override { got.push_back(std::move(pkt)); }
  std::vector<PacketPtr> got;
};

TEST_F(NodeTest, DeliversTcpToRegisteredPort) {
  CollectAgent sink;
  b->register_agent(80, sink);
  PacketPtr p = a->new_packet(1, IpProto::kTcp, 500);
  TcpHeader h;
  h.dst_port = 80;
  h.seqno = 5;
  p->l4 = h;
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0]->tcp().seqno, 5);
  EXPECT_EQ(b->delivered_local(), 1u);
}

TEST_F(NodeTest, UnknownPortCountsDrop) {
  PacketPtr p = a->new_packet(1, IpProto::kTcp, 500);
  p->l4 = TcpHeader{};
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  EXPECT_EQ(b->drops_no_agent(), 1u);
}

TEST_F(NodeTest, DuplicatePortRegistrationAborts) {
  CollectAgent s1, s2;
  b->register_agent(80, s1);
  EXPECT_DEATH(b->register_agent(80, s2), "already bound");
}

TEST_F(NodeTest, NewPacketFillsIpHeader) {
  PacketPtr p = a->new_packet(1, IpProto::kTcp, 1500);
  EXPECT_EQ(p->ip.src, 0u);
  EXPECT_EQ(p->ip.dst, 1u);
  EXPECT_EQ(p->ip.proto, IpProto::kTcp);
  EXPECT_EQ(p->size_bytes, 1500u);
  EXPECT_GT(p->uid, 0u);
}

TEST_F(NodeTest, UidsUniqueAcrossNodes) {
  PacketPtr pa = a->new_packet(1, IpProto::kTcp, 100);
  PacketPtr pb = b->new_packet(0, IpProto::kTcp, 100);
  EXPECT_NE(pa->uid, pb->uid);
}

class FixedDrai : public DraiSource {
 public:
  std::uint8_t drai = kDraiStabilize;
  bool mark = false;
  std::uint8_t current_drai() override { return drai; }
  bool should_mark() override { return mark; }
};

TEST_F(NodeTest, StampsPathMinimumDrai) {
  CollectAgent sink;
  b->register_agent(80, sink);
  FixedDrai src;
  src.drai = kDraiModerateDecel;
  a->set_drai_source(&src);

  PacketPtr p = a->new_packet(1, IpProto::kTcp, 500);
  TcpHeader h;
  h.dst_port = 80;
  p->l4 = h;
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0]->ip.avbw_s, kDraiModerateDecel);
  EXPECT_FALSE(sink.got[0]->ip.congestion_marked);
}

TEST_F(NodeTest, DraiNeverIncreasesAlongPath) {
  CollectAgent sink;
  b->register_agent(80, sink);
  FixedDrai src;
  src.drai = kDraiModerateAccel;  // 4, above an already-stamped 2
  a->set_drai_source(&src);

  PacketPtr p = a->new_packet(1, IpProto::kTcp, 500);
  p->ip.avbw_s = kDraiModerateDecel;  // pretend an upstream router wrote 2
  TcpHeader h;
  h.dst_port = 80;
  p->l4 = h;
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0]->ip.avbw_s, kDraiModerateDecel);
}

TEST_F(NodeTest, CongestionMarkIsSticky) {
  CollectAgent sink;
  b->register_agent(80, sink);
  FixedDrai src;
  src.mark = true;
  a->set_drai_source(&src);
  PacketPtr p = a->new_packet(1, IpProto::kTcp, 500);
  TcpHeader h;
  h.dst_port = 80;
  p->l4 = h;
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_TRUE(sink.got[0]->ip.congestion_marked);
}

TEST_F(NodeTest, NonTcpPacketsAreNotStamped) {
  FixedDrai src;
  src.drai = kDraiAggressiveDecel;
  src.mark = true;
  a->set_drai_source(&src);
  PacketPtr p = a->new_packet(1, IpProto::kNone, 500);
  std::uint8_t before = p->ip.avbw_s;
  a->send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  // We can't observe the delivered packet (no agent), but stamping is
  // applied in device_send; send a second one through a capture of b's
  // forwarding path instead: simply assert the default stayed on a fresh
  // packet (regression guard for the proto filter).
  PacketPtr q = a->new_packet(1, IpProto::kNone, 500);
  EXPECT_EQ(q->ip.avbw_s, before);
}

TEST(NodeForwarding, TtlExpiredPacketsAreDropped) {
  Simulator sim{1};
  PhyParams params;
  Channel channel(sim, params);
  Node a(sim, channel, 0, {0, 0});
  Node b(sim, channel, 1, {200, 0});
  Node c(sim, channel, 2, {400, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(2, 1);
  a.set_routing(std::move(ra));
  auto rb = std::make_unique<StaticRouting>(b);
  rb->add_route(2, 2);
  b.set_routing(std::move(rb));
  c.set_routing(std::make_unique<StaticRouting>(c));

  PacketPtr p = a.new_packet(2, IpProto::kTcp, 100);
  p->ip.ttl = 1;  // expires at b
  p->l4 = TcpHeader{};
  a.send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  EXPECT_EQ(b.drops_ttl(), 1u);
  EXPECT_EQ(c.delivered_local(), 0u);
}

TEST(NodeForwarding, MultihopForwardingCountsAndDelivers) {
  Simulator sim{1};
  PhyParams params;
  Channel channel(sim, params);
  Node a(sim, channel, 0, {0, 0});
  Node b(sim, channel, 1, {200, 0});
  Node c(sim, channel, 2, {400, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(2, 1);
  a.set_routing(std::move(ra));
  auto rb = std::make_unique<StaticRouting>(b);
  rb->add_route(2, 2);
  b.set_routing(std::move(rb));
  c.set_routing(std::make_unique<StaticRouting>(c));
  CollectAgent sink;
  c.register_agent(80, sink);

  PacketPtr p = a.new_packet(2, IpProto::kTcp, 100);
  TcpHeader h;
  h.dst_port = 80;
  p->l4 = h;
  std::uint8_t ttl_before = p->ip.ttl;
  a.send(std::move(p));
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(b.forwarded(), 1u);
  EXPECT_EQ(sink.got[0]->ip.ttl, ttl_before - 1);
}

TEST(StaticRoutingTest, MissingRouteCountsDrop) {
  Simulator sim{1};
  PhyParams params;
  Channel channel(sim, params);
  Node a(sim, channel, 0, {0, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  StaticRouting* raw = ra.get();
  a.set_routing(std::move(ra));
  PacketPtr p = a.new_packet(5, IpProto::kTcp, 100);
  p->l4 = TcpHeader{};
  a.send(std::move(p));
  EXPECT_EQ(raw->drops_no_route(), 1u);
}

}  // namespace
}  // namespace muzha
