// Protocol-timing tests for the 802.11 DCF MAC: frame airtimes, IFS gaps,
// NAV arithmetic and contention-window behaviour.
#include <gtest/gtest.h>

#include "mac/mac80211.h"
#include "phy/channel.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

PacketPtr ip_packet(std::uint32_t bytes, NodeId src, NodeId dst) {
  PacketPtr p = alloc_packet();
  p->size_bytes = bytes;
  p->ip.src = src;
  p->ip.dst = dst;
  return p;
}

class MacTimingTest : public ::testing::Test {
 protected:
  struct Station {
    std::unique_ptr<WirelessPhy> phy;
    std::unique_ptr<Mac80211> mac;
    std::vector<std::pair<SimTime, PacketPtr>> rx;
    std::vector<SimTime> tx_done_times;
  };

  Station& add(NodeId id, Position pos) {
    auto st = std::make_unique<Station>();
    st->phy = std::make_unique<WirelessPhy>(sim, channel, id, pos);
    st->mac = std::make_unique<Mac80211>(sim, *st->phy, MacParams{});
    Station* raw = st.get();
    st->mac->set_rx_callback([raw, this](PacketPtr pkt) {
      raw->rx.emplace_back(sim.now(), std::move(pkt));
    });
    st->mac->set_tx_done_callback([raw, this](bool) {
      raw->tx_done_times.push_back(sim.now());
    });
    stations.push_back(std::move(st));
    return *stations.back();
  }

  Simulator sim{1};
  PhyParams params;
  Channel channel{sim, params};
  std::vector<std::unique_ptr<Station>> stations;
};

TEST_F(MacTimingTest, FourWayExchangeTakesExpectedAirtime) {
  // First transmission from a cold MAC: DIFS + zero backoff, then
  // RTS/SIFS/CTS/SIFS/DATA/SIFS/ACK + propagation.
  Station& a = add(0, {0, 0});
  Station& b = add(1, {200, 0});
  a.mac->transmit(ip_packet(1460, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(a.tx_done_times.size(), 1u);
  ASSERT_EQ(b.rx.size(), 1u);

  WirelessPhy& phy = *a.phy;
  SimTime difs = SimTime::from_us(50);
  SimTime sifs = SimTime::from_us(10);
  SimTime rts = phy.tx_duration(Bytes(kMacRtsBytes), true);
  SimTime cts = phy.tx_duration(Bytes(kMacCtsBytes), true);
  SimTime data = phy.tx_duration(Bytes(1460 + kMacDataOverheadBytes), false);
  SimTime ack = phy.tx_duration(Bytes(kMacAckBytes), true);
  SimTime expected = difs + rts + sifs + cts + sifs + data + sifs + ack;
  // Allow propagation delays (~0.7 us per hop of 200 m, 6 crossings).
  SimTime measured = a.tx_done_times[0];
  EXPECT_GE(measured, expected);
  EXPECT_LE(measured, expected + SimTime::from_us(10));
}

TEST_F(MacTimingTest, DataDeliveredBeforeMacAckCompletes) {
  Station& a = add(0, {0, 0});
  Station& b = add(1, {200, 0});
  a.mac->transmit(ip_packet(1000, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(b.rx.size(), 1u);
  // The payload is handed up at DATA end; the sender finishes one
  // SIFS + ACK later.
  EXPECT_LT(b.rx[0].first, a.tx_done_times[0]);
  SimTime gap = a.tx_done_times[0] - b.rx[0].first;
  SimTime sifs_ack = SimTime::from_us(10) +
                     a.phy->tx_duration(Bytes(kMacAckBytes), true);
  EXPECT_GE(gap, sifs_ack);
  EXPECT_LE(gap, sifs_ack + SimTime::from_us(5));
}

TEST_F(MacTimingTest, BroadcastSkipsRtsAndAck) {
  Station& a = add(0, {0, 0});
  add(1, {200, 0});
  a.mac->transmit(ip_packet(500, 0, kBroadcastId), kBroadcastId);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(a.tx_done_times.size(), 1u);
  // DIFS + broadcast data at the basic rate; no control frames.
  SimTime expected = SimTime::from_us(50) +
                     a.phy->tx_duration(Bytes(500 + kMacDataOverheadBytes), true);
  EXPECT_GE(a.tx_done_times[0], expected);
  EXPECT_LE(a.tx_done_times[0], expected + SimTime::from_us(5));
  EXPECT_EQ(a.mac->rts_sent(), 0u);
}

TEST_F(MacTimingTest, RetryTimeoutAndBackoffBounds) {
  // RTS to a nonexistent station: 7 attempts, growing CW. The whole failure
  // must take at least 7 * (DIFS + RTS + timeout) and at most that plus the
  // maximum possible backoff sum.
  Station& a = add(0, {0, 0});
  a.mac->transmit(ip_packet(1000, 0, 9), 9);
  sim.run_until(SimTime::from_seconds(10));
  ASSERT_EQ(a.tx_done_times.size(), 1u);
  MacParams mp;
  SimTime rts = a.phy->tx_duration(Bytes(kMacRtsBytes), true);
  SimTime cts = a.phy->tx_duration(Bytes(kMacCtsBytes), true);
  SimTime timeout = mp.sifs + cts + mp.timeout_guard;
  SimTime floor = 7 * (mp.difs + rts + timeout);
  // Max backoff: 31+63+127+255+511+1023+1023 slots of 20 us.
  SimTime ceil = floor + SimTime::from_us(20 * (31 + 63 + 127 + 255 + 511 +
                                                1023 + 1023));
  EXPECT_GE(a.tx_done_times[0], floor);
  EXPECT_LE(a.tx_done_times[0], ceil);
}

TEST_F(MacTimingTest, NavBlocksBystanderForWholeExchange) {
  // c hears a's RTS; its own transmission must not start before a's
  // exchange (RTS+CTS+DATA+ACK) completes.
  Station& a = add(0, {0, 0});
  Station& b = add(1, {200, 0});
  Station& c = add(2, {-100, 0});
  Station& d = add(3, {-300, 0});
  (void)b;
  (void)d;
  a.mac->transmit(ip_packet(1460, 0, 1), 1);
  // c wants to talk to d shortly after a's RTS is on the air.
  sim.schedule_in(SimTime::from_us(500),
                  [&] { c.mac->transmit(ip_packet(1460, 2, 3), 3); });
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(a.tx_done_times.size(), 1u);
  ASSERT_EQ(c.tx_done_times.size(), 1u);
  EXPECT_GT(c.tx_done_times[0], a.tx_done_times[0]);
}

TEST_F(MacTimingTest, SecondFrameWaitsForPostBackoff) {
  // Two back-to-back frames: the second must not start before
  // DIFS after the first ACK completes.
  Station& a = add(0, {0, 0});
  Station& b = add(1, {200, 0});
  a.mac->transmit(ip_packet(500, 0, 1), 1);
  sim.run_until(SimTime::from_ms(50));
  SimTime first_done = a.tx_done_times[0];
  a.mac->transmit(ip_packet(500, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(b.rx.size(), 2u);
  EXPECT_GE(a.tx_done_times[1] - first_done, SimTime::from_us(50));
}

}  // namespace
}  // namespace muzha
