#include "mac/mac80211.h"

#include <gtest/gtest.h>

#include "phy/channel.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

PacketPtr ip_packet(std::uint32_t bytes, NodeId src, NodeId dst) {
  PacketPtr p = alloc_packet();
  p->size_bytes = bytes;
  p->ip.src = src;
  p->ip.dst = dst;
  return p;
}

// Two-or-three station MAC harness.
class MacTest : public ::testing::Test {
 protected:
  struct Station {
    std::unique_ptr<WirelessPhy> phy;
    std::unique_ptr<Mac80211> mac;
    std::vector<PacketPtr> received;
    int tx_done_ok = 0;
    int tx_done_fail = 0;
    std::vector<NodeId> link_failures;
  };

  Station& add_station(NodeId id, Position pos, MacParams params = {}) {
    auto st = std::make_unique<Station>();
    st->phy = std::make_unique<WirelessPhy>(sim, channel, id, pos);
    st->mac = std::make_unique<Mac80211>(sim, *st->phy, params);
    Station* raw = st.get();
    st->mac->set_rx_callback(
        [raw](PacketPtr pkt) { raw->received.push_back(std::move(pkt)); });
    st->mac->set_tx_done_callback([raw](bool ok) {
      if (ok) {
        ++raw->tx_done_ok;
      } else {
        ++raw->tx_done_fail;
      }
    });
    st->mac->set_link_failure_callback([raw](NodeId hop, PacketPtr) {
      raw->link_failures.push_back(hop);
    });
    stations.push_back(std::move(st));
    return *stations.back();
  }

  Simulator sim{1};
  PhyParams params;
  Channel channel{sim, params};
  std::vector<std::unique_ptr<Station>> stations;
};

TEST_F(MacTest, UnicastDeliversWithRtsCtsAndAck) {
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  a.mac->transmit(ip_packet(1000, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0]->size_bytes, 1000u);
  EXPECT_EQ(a.tx_done_ok, 1);
  EXPECT_EQ(a.tx_done_fail, 0);
  EXPECT_EQ(a.mac->rts_sent(), 1u);   // RTS threshold 0: always RTS
  EXPECT_EQ(a.mac->data_frames_sent(), 1u);
  EXPECT_EQ(a.mac->retries(), 0u);
  EXPECT_TRUE(a.mac->idle());
}

TEST_F(MacTest, RtsThresholdSkipsRtsForSmallFrames) {
  MacParams mp;
  mp.rts_threshold = Bytes(500);
  Station& a = add_station(0, {0, 0}, mp);
  Station& b = add_station(1, {200, 0}, mp);
  a.mac->transmit(ip_packet(100, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.mac->rts_sent(), 0u);
}

TEST_F(MacTest, BroadcastDeliversToAllNeighborsWithoutAck) {
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  Station& c = add_station(2, {-200, 0});
  a.mac->transmit(ip_packet(64, 0, kBroadcastId), kBroadcastId);
  sim.run_until(SimTime::from_ms(100));
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(a.tx_done_ok, 1);
  EXPECT_EQ(a.mac->rts_sent(), 0u);
}

TEST_F(MacTest, SequentialTransmissionsBothDeliver) {
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  a.mac->transmit(ip_packet(500, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  ASSERT_TRUE(a.mac->idle());
  a.mac->transmit(ip_packet(600, 0, 1), 1);
  sim.run_until(SimTime::from_ms(200));
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[1]->size_bytes, 600u);
}

TEST_F(MacTest, RetryExhaustionReportsLinkFailure) {
  Station& a = add_station(0, {0, 0});
  // No station 1 exists: every RTS times out.
  a.mac->transmit(ip_packet(1000, 0, 1), 1);
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(a.tx_done_fail, 1);
  ASSERT_EQ(a.link_failures.size(), 1u);
  EXPECT_EQ(a.link_failures[0], 1u);
  EXPECT_EQ(a.mac->drops_retry_limit(), 1u);
  // Short retry limit 7: exactly 7 RTS attempts on air.
  EXPECT_EQ(a.mac->rts_sent(), 7u);
  EXPECT_TRUE(a.mac->idle());
}

TEST_F(MacTest, RetriesRecoverFromTransientLoss) {
  channel.set_error_model(std::make_unique<UniformErrorModel>(Probability(0.4)));
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    a.mac->transmit(ip_packet(1000, 0, 1), 1);
    sim.run_until(sim.now() + SimTime::from_seconds(2));
    if (a.tx_done_ok == delivered + 1) ++delivered;
  }
  // 40% frame loss but 7 retries: essentially everything gets through.
  EXPECT_GE(delivered, 8);
  EXPECT_EQ(b.received.size(), static_cast<std::size_t>(a.tx_done_ok));
  EXPECT_GT(a.mac->retries(), 0u);
}

TEST_F(MacTest, DuplicateSuppressionOnRetriedData) {
  // Drop many frames so MAC-level ACKs get lost and data is retried; the
  // receiver must deliver each MSDU at most once.
  channel.set_error_model(std::make_unique<UniformErrorModel>(Probability(0.3)));
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    a.mac->transmit(ip_packet(1000, 0, 1), 1);
    sim.run_until(sim.now() + SimTime::from_seconds(2));
  }
  // Despite MAC-level retries (lost ACKs force data re-sends), each MSDU is
  // delivered at most once.
  EXPECT_LE(b.received.size(), static_cast<std::size_t>(n));
  // Every success reported to the sender corresponds to a delivery (the
  // reverse may not hold: data delivered but every MAC ACK lost).
  EXPECT_GE(b.received.size(), static_cast<std::size_t>(a.tx_done_ok));
  EXPECT_GT(a.mac->retries(), 0u);
}

TEST_F(MacTest, NavDefersThirdStation) {
  // c hears a's RTS and b's CTS; during the protected exchange c must not
  // transmit, so a's exchange completes without retries.
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  Station& c = add_station(2, {100, 100});
  a.mac->transmit(ip_packet(1400, 0, 1), 1);
  // c tries to send to b shortly after a's RTS leaves.
  sim.schedule_in(SimTime::from_us(400),
                  [&] { c.mac->transmit(ip_packet(1400, 2, 1), 1); });
  sim.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(a.tx_done_ok, 1);
  EXPECT_EQ(c.tx_done_ok, 1);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(a.mac->retries() + c.mac->retries(), 0u)
      << "NAV/CS should prevent collisions between coordinated stations";
}

TEST_F(MacTest, UtilizationAccountingGrowsWithTraffic) {
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {200, 0});
  EXPECT_EQ(b.mac->cumulative_busy_time(), SimTime::zero());
  a.mac->transmit(ip_packet(1400, 0, 1), 1);
  sim.run_until(SimTime::from_ms(100));
  // b sensed a's RTS + DATA plus its own CTS/ACK responses.
  SimTime busy = b.mac->cumulative_busy_time();
  EXPECT_GT(busy, SimTime::from_ms(5));
  EXPECT_LT(busy, SimTime::from_ms(20));
}

TEST_F(MacTest, IdleStationsAccumulateNoBusyTime) {
  Station& a = add_station(0, {0, 0});
  sim.run_until(SimTime::from_ms(50));
  EXPECT_EQ(a.mac->cumulative_busy_time(), SimTime::zero());
}

TEST_F(MacTest, SpatialReuseAllowsConcurrentDisjointExchanges) {
  // Two sender/receiver pairs far enough apart that neither pair senses the
  // other: both transfers complete, and in roughly the time one would take.
  Station& a = add_station(0, {0, 0});
  Station& b = add_station(1, {100, 0});
  Station& c = add_station(2, {1500, 0});
  Station& d = add_station(3, {1600, 0});
  a.mac->transmit(ip_packet(1400, 0, 1), 1);
  c.mac->transmit(ip_packet(1400, 2, 3), 3);
  sim.run_until(SimTime::from_ms(20));
  EXPECT_EQ(a.tx_done_ok, 1);
  EXPECT_EQ(c.tx_done_ok, 1);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(d.received.size(), 1u);
  EXPECT_EQ(a.mac->retries() + c.mac->retries(), 0u);
}

TEST_F(MacTest, TransmitWhileBusyAborts) {
  Station& a = add_station(0, {0, 0});
  add_station(1, {200, 0});
  a.mac->transmit(ip_packet(100, 0, 1), 1);
  EXPECT_FALSE(a.mac->idle());
  EXPECT_DEATH(a.mac->transmit(ip_packet(100, 0, 1), 1), "tx-done");
}

}  // namespace
}  // namespace muzha
