// Tests for the related-work protocols of the paper's Ch. 3:
// TCP-DOOR, ADTCP, TCP Jersey and TCP RoVegas.
#include <gtest/gtest.h>

#include "relwork/adtcp.h"
#include "relwork/tcp_door.h"
#include "relwork/tcp_jersey.h"
#include "relwork/tcp_rovegas.h"
#include "relwork/tcp_westwood.h"
#include "routing/static_routing.h"
#include "tests/tcp_test_harness.h"

namespace muzha {
namespace {

// ---------------------------------------------------------------------------
// TCP-DOOR
// ---------------------------------------------------------------------------

class DoorHarness : public TcpHarness<TcpDoor> {
 public:
  DoorHarness() : TcpHarness<TcpDoor>(make_cfg(), DoorConfig{}) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 32;
    return cfg;
  }
  void dup_with_seq(std::int64_t ackno, std::uint32_t dup_seq) {
    agent().receive(
        make_ack_with(ackno, [&](TcpHeader& h) { h.dup_seq = dup_seq; }));
  }
};

TEST(TcpDoorTest, DetectsReorderedDupAckStream) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  h.dup_with_seq(9, 2);
  h.dup_with_seq(9, 1);  // stream runs backwards: out-of-order delivery
  EXPECT_EQ(h.agent().ooo_events(), 1u);
  EXPECT_TRUE(h.agent().cc_disabled());
}

TEST(TcpDoorTest, DetectsAckRegression) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  h.ack(5);  // older than the cumulative point: reordered in flight
  EXPECT_EQ(h.agent().ooo_events(), 1u);
}

TEST(TcpDoorTest, SuppressesDecreaseWhileCcDisabled) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.ack(5);  // OOO event: disable congestion response for t1
  h.dup_acks(9, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);  // no halving
  EXPECT_EQ(h.agent().retransmissions(), 1u);  // still repairs the loss
}

TEST(TcpDoorTest, InstantRecoveryRestoresWindowState) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.dup_acks(9, 3);  // congestion response: cwnd halved-ish
  ASSERT_LT(h.agent().ssthresh().value(), before);
  // Out-of-order evidence arrives shortly after: undo the response.
  h.ack(5);
  EXPECT_EQ(h.agent().instant_recoveries(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);
  EXPECT_FALSE(h.agent().in_recovery());
}

TEST(TcpDoorTest, NoInstantRecoveryAfterT2Expires) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  h.dup_acks(9, 3);
  double in_recovery_cwnd = h.agent().cwnd().value();
  h.run_ms(2500);  // beyond t2 (2 s)
  std::uint64_t timeouts = h.agent().timeouts();
  h.ack(5);
  EXPECT_EQ(h.agent().instant_recoveries(), 0u);
  (void)in_recovery_cwnd;
  (void)timeouts;
}

TEST(TcpDoorTest, BehavesLikeNewRenoWithoutReordering) {
  DoorHarness h;
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.dup_acks(9, 3);
  EXPECT_EQ(h.agent().ooo_events(), 0u);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), before / 2.0);
}

// ---------------------------------------------------------------------------
// ADTCP sender
// ---------------------------------------------------------------------------

class AdtcpHarness : public TcpHarness<AdtcpSender> {
 public:
  AdtcpHarness() : TcpHarness<AdtcpSender>(make_cfg()) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 32;
    return cfg;
  }
  void dup_with_state(std::int64_t ackno, AdtcpState st, int n) {
    for (int i = 0; i < n; ++i) {
      agent().receive(
          make_ack_with(ackno, [&](TcpHeader& h) { h.net_state = st; }));
    }
  }
};

TEST(AdtcpSenderTest, CongestionStateTriggersNormalDecrease) {
  AdtcpHarness h;
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.dup_with_state(9, AdtcpState::kCongestion, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), before / 2.0);
  EXPECT_EQ(h.agent().non_congestion_losses(), 0u);
}

TEST(AdtcpSenderTest, ChannelErrorStateRetransmitsWithoutDecrease) {
  AdtcpHarness h;
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.dup_with_state(9, AdtcpState::kChannelError, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);
  EXPECT_EQ(h.agent().non_congestion_losses(), 1u);
  EXPECT_EQ(h.agent().retransmissions(), 1u);
}

TEST(AdtcpSenderTest, RouteChangeFreezesThroughTimeout) {
  AdtcpHarness h;
  h.start();
  h.ack_each_up_to(9);
  // Tell the sender the network is re-routing, then let the RTO fire.
  h.agent().receive(h.make_ack_with(
      10, [&](TcpHeader& h2) { h2.net_state = AdtcpState::kRouteChange; }));
  double before = h.agent().cwnd().value();
  h.run_ms(4000);
  EXPECT_GE(h.agent().timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);  // frozen, not collapsed
}

// ---------------------------------------------------------------------------
// ADTCP sink classification
// ---------------------------------------------------------------------------

class AdtcpSinkTest : public ::testing::Test {
 protected:
  AdtcpSinkTest() : channel(sim, PhyParams{}) {
    src = std::make_unique<Node>(sim, channel, 0, Position{0, 0});
    dst = std::make_unique<Node>(sim, channel, 1, Position{200, 0});
    auto rs = std::make_unique<StaticRouting>(*src);
    rs->add_route(1, 1);
    src->set_routing(std::move(rs));
    auto rd = std::make_unique<StaticRouting>(*dst);
    rd->add_route(0, 0);
    dst->set_routing(std::move(rd));
    TcpSink::Config sc;
    sc.port = 2000;
    sink = std::make_unique<AdtcpSink>(sim, *dst, sc);
    sink->start();
  }

  void deliver(std::int64_t seq, SimTime sent_at) {
    PacketPtr p = src->new_packet(1, IpProto::kTcp, 1500);
    TcpHeader h;
    h.seqno = seq;
    h.src_port = 1000;
    h.dst_port = 2000;
    h.ts = sent_at;
    p->l4 = h;
    sink->receive(std::move(p));
  }

  void advance_ms(std::int64_t ms) {
    sim.run_until(sim.now() + SimTime::from_ms(ms));
  }

  Simulator sim{1};
  Channel channel;
  std::unique_ptr<Node> src, dst;
  std::unique_ptr<AdtcpSink> sink;
};

TEST_F(AdtcpSinkTest, SteadyStreamIsNormal) {
  for (int i = 0; i < 50; ++i) {
    deliver(i, sim.now() - SimTime::from_ms(20));
    advance_ms(10);
  }
  EXPECT_EQ(sink->state(), AdtcpState::kNormal);
  EXPECT_LT(sink->por(), 0.05);
  EXPECT_LT(sink->plr(), 0.05);
}

TEST_F(AdtcpSinkTest, HeavyReorderingSignalsRouteChange) {
  // Alternate forward/backward sequence numbers inside the window.
  std::int64_t seqs[] = {0, 3, 1, 5, 2, 8, 4, 10, 6, 12, 7, 14, 9, 16, 11};
  for (std::int64_t s : seqs) {
    deliver(s, sim.now() - SimTime::from_ms(20));
    advance_ms(10);
  }
  EXPECT_GT(sink->por(), 0.15);
  EXPECT_EQ(sink->state(), AdtcpState::kRouteChange);
}

TEST_F(AdtcpSinkTest, SequenceGapsSignalChannelError) {
  // Every third segment lost, arrivals otherwise smooth and in order.
  std::int64_t s = 0;
  for (int i = 0; i < 40; ++i) {
    deliver(s, sim.now() - SimTime::from_ms(20));
    s += (i % 3 == 2) ? 2 : 1;  // skip one seq every 3 packets
    advance_ms(10);
  }
  EXPECT_GT(sink->plr(), 0.10);
  EXPECT_EQ(sink->state(), AdtcpState::kChannelError);
}

TEST_F(AdtcpSinkTest, GrowingQueueingDelaySignalsCongestion) {
  // Establish a baseline of smooth arrivals...
  for (int i = 0; i < 60; ++i) {
    deliver(i, sim.now() - SimTime::from_ms(20));
    advance_ms(10);
  }
  ASSERT_EQ(sink->state(), AdtcpState::kNormal);
  // ...then stretch arrival spacing while send spacing stays 10 ms (IDD up,
  // STT down): the congestion signature. Detection is transient — the
  // long-term baselines adapt if congestion persists — so assert the state
  // was reported during the onset.
  std::int64_t seq = 60;
  SimTime send_clock = sim.now();
  bool saw_congestion = false;
  for (int i = 0; i < 25; ++i) {
    deliver(seq++, send_clock);
    send_clock += SimTime::from_ms(10);
    advance_ms(60);
    saw_congestion |= sink->state() == AdtcpState::kCongestion;
  }
  EXPECT_TRUE(saw_congestion);
}

// ---------------------------------------------------------------------------
// TCP Jersey
// ---------------------------------------------------------------------------

class JerseyHarness : public TcpHarness<TcpJersey> {
 public:
  JerseyHarness() : TcpHarness<TcpJersey>(make_cfg()) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 32;
    return cfg;
  }
  // Acks segment `s` with a realistic timestamp echo so min-RTT is known.
  // muzha-lint: allow(raw-unit-double): harness helper takes RTT-literal seconds, converted to SimTime inside
  void ack_rtt(std::int64_t s, double rtt_s, bool ce = false) {
    agent().receive(make_ack_with(s, [&](TcpHeader& h) {
      h.ts_echo = sim().now() - SimTime::from_seconds(rtt_s);
      h.ce_echo = ce;
    }));
  }
};

TEST(TcpJerseyTest, RateEstimateTracksAckStream) {
  JerseyHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 10; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);  // one ACK every 10 ms => ~100 segments/s
  }
  EXPECT_GT(h.agent().rate_estimate(), SegmentsPerSecond(20.0));
  EXPECT_LT(h.agent().rate_estimate(), SegmentsPerSecond(200.0));
}

TEST(TcpJerseyTest, DupAcksSetWindowToAbeEstimate) {
  JerseyHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 10; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);
  }
  Segments ownd = h.agent().abe_window();
  h.dup_acks(10, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), ownd.value());
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), ownd.value());
}

TEST(TcpJerseyTest, CongestionWarningClampsOncePerRtt) {
  JerseyHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 20; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(5);
  }
  double big = h.agent().cwnd().value();
  ASSERT_GT(big, h.agent().abe_window().value());
  h.ack_rtt(21, 0.050, /*ce=*/true);
  EXPECT_EQ(h.agent().cw_clamps(), 1u);
  EXPECT_LE(h.agent().cwnd().value(), big);
  // A second CW echo within the same RTT must not clamp again.
  h.ack_rtt(22, 0.050, /*ce=*/true);
  EXPECT_EQ(h.agent().cw_clamps(), 1u);
}

TEST(TcpJerseyTest, TimeoutUsesAbeAsSsthresh) {
  JerseyHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 10; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);
  }
  Segments ownd = h.agent().abe_window();
  h.run_ms(4000);
  EXPECT_GE(h.agent().timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), ownd.value());
}

// ---------------------------------------------------------------------------
// TCP RoVegas
// ---------------------------------------------------------------------------

class RoVegasHarness : public TcpHarness<TcpRoVegas> {
 public:
  RoVegasHarness() : TcpHarness<TcpRoVegas>(make_cfg(), VegasConfig{}) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 64;
    return cfg;
  }
  // muzha-lint: allow(raw-unit-double): harness helper takes RTT/qdelay-literal seconds, converted to SimTime inside
  void ack_full(std::int64_t s, double rtt_s, double fwd_qdelay_s) {
    agent().receive(make_ack_with(s, [&](TcpHeader& h) {
      h.ts_echo = sim().now() - SimTime::from_seconds(rtt_s);
      h.qdelay_echo = SimTime::from_seconds(fwd_qdelay_s);
    }));
  }
};

TEST(TcpRoVegasTest, IgnoresBackwardPathCongestion) {
  RoVegasHarness h;
  h.start();
  h.run_ms(500);
  // Base RTT 50 ms established; then RTT inflates to 300 ms (ACK-path
  // congestion) while the forward path stays empty (qdelay 0).
  h.ack_full(0, 0.050, 0.0);
  double grown = 0;
  std::int64_t upto = 40;
  for (std::int64_t s = 1; s <= upto; ++s) {
    h.ack_full(s, 0.300, 0.0);
    grown = h.agent().cwnd().value();
  }
  // Plain Vegas would shrink (diff computed from inflated RTT); RoVegas
  // keeps growing because the forward path reports no queueing.
  EXPECT_GT(grown, 4.0);
}

TEST(TcpRoVegasTest, ReactsToForwardPathQueueing) {
  RoVegasHarness h;
  h.start();
  h.run_ms(500);
  h.ack_full(0, 0.050, 0.0);
  // Grow a bit first.
  std::int64_t upto = 12;
  for (std::int64_t s = 1; s <= upto; ++s) h.ack_full(s, 0.050, 0.0);
  double grown = h.agent().cwnd().value();
  // Forward queueing delay appears: diff rises, the window must not grow
  // further (and eventually shrinks).
  upto = h.agent().highest_ack() + 40;
  for (std::int64_t s = h.agent().highest_ack() + 1; s <= upto; ++s) {
    h.ack_full(s, 0.300, 0.250);
  }
  EXPECT_LT(h.agent().cwnd().value(), grown + 1.0);
}

// ---------------------------------------------------------------------------
// TCP Westwood
// ---------------------------------------------------------------------------

class WestwoodHarness : public TcpHarness<TcpWestwood> {
 public:
  WestwoodHarness() : TcpHarness<TcpWestwood>(make_cfg(), 0.9) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 32;
    return cfg;
  }
  // muzha-lint: allow(raw-unit-double): harness helper takes RTT-literal seconds, converted to SimTime inside
  void ack_rtt(std::int64_t s, double rtt_s) {
    agent().receive(make_ack_with(s, [&](TcpHeader& h) {
      h.ts_echo = sim().now() - SimTime::from_seconds(rtt_s);
    }));
  }
};

TEST(TcpWestwoodTest, BandwidthEstimateConverges) {
  WestwoodHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 40; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);  // 100 segments/s steady ACK stream
  }
  EXPECT_GT(h.agent().bandwidth_estimate(), SegmentsPerSecond(50.0));
  EXPECT_LT(h.agent().bandwidth_estimate(), SegmentsPerSecond(150.0));
}

TEST(TcpWestwoodTest, LossSetsSsthreshFromEstimateNotHalf) {
  WestwoodHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 20; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);
  }
  Segments eligible = h.agent().eligible_window();
  double before = h.agent().cwnd().value();
  h.dup_acks(20, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), eligible.value());
  EXPECT_LE(h.agent().cwnd().value(), before);
}

TEST(TcpWestwoodTest, TimeoutKeepsEstimateAsSsthresh) {
  WestwoodHarness h;
  h.start();
  h.run_ms(100);
  for (std::int64_t s = 0; s <= 10; ++s) {
    h.ack_rtt(s, 0.050);
    h.run_ms(10);
  }
  Segments eligible = h.agent().eligible_window();
  h.run_ms(4000);
  EXPECT_GE(h.agent().timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), eligible.value());
}

TEST(TcpRoVegasTest, FallsBackToVegasWithoutRouterSupport) {
  RoVegasHarness h;
  h.start();
  h.run_ms(500);
  // qdelay never set (no router support): compute_diff falls back to the
  // RTT-based Vegas estimate, so slow-start still terminates on queueing.
  h.ack(0);
  EXPECT_GE(h.agent().cwnd().value(), 1.0);  // smoke: no crash, sane window
}

}  // namespace
}  // namespace muzha
