// FNV-1a hashing of ExperimentResult plus the city-scale golden scenario,
// shared by the determinism and shard suites. The golden constants pinned
// against hash_result() freeze the full pipeline (placement RNG, waypoint
// draws, event interleaving, AODV churn) in one number; both suites must
// hash identically, so the helpers live here rather than per-file.
#pragma once

#include <cstdint>
#include <cstring>

#include "scenario/city.h"
#include "scenario/experiment.h"
#include "stats/time_series.h"

namespace muzha::testing {

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t hash_series(const TimeSeries& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::uint64_t t_bits, v_bits;
    std::memcpy(&t_bits, &s[i].t, 8);
    std::memcpy(&v_bits, &s[i].value, 8);
    h = fnv1a_u64(h, t_bits);
    h = fnv1a_u64(h, v_bits);
  }
  return h;
}

inline std::uint64_t hash_result(const ExperimentResult& r) {
  std::uint64_t h = 14695981039346656037ull;
  for (const FlowResult& f : r.flows) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(f.delivered));
    h = fnv1a_u64(h, f.packets_sent);
    h = fnv1a_u64(h, f.retransmissions);
    h = fnv1a_u64(h, f.timeouts);
    std::uint64_t tput_bits;
    std::memcpy(&tput_bits, &f.throughput, 8);
    h = fnv1a_u64(h, tput_bits);
    h = fnv1a_u64(h, hash_series(f.cwnd_trace));
    h = fnv1a_u64(h, hash_series(f.throughput_series));
  }
  h = fnv1a_u64(h, r.ifq_drops);
  h = fnv1a_u64(h, r.mac_retry_drops);
  h = fnv1a_u64(h, r.phy_collisions);
  h = fnv1a_u64(h, r.channel_error_losses);
  h = fnv1a_u64(h, r.cbr_packets_sent);
  return h;
}

// The 200-node mobile random-waypoint city of the golden pin
// Determinism.GoldenCityFieldPinned (hash 0x87CCB22252A3ED43). The shard
// suite replays it through the sharded engine at shards == 1, which must
// reproduce the same hash bit-for-bit.
inline ExperimentConfig city_golden_config() {
  CityConfig city;
  city.field.nodes = 200;
  city.field.width = Meters(3000.0);
  city.field.height = Meters(3000.0);
  city.field.mobile = true;
  city.placement = TopologyKind::kRandomField;
  city.ftp_flows = 4;
  city.cbr_flows = 2;
  city.variant = TcpVariant::kMuzha;
  city.flow_start_window = SimTime::from_seconds(2.0);
  city.duration = SimTime::from_seconds(10.0);
  city.seed = 42;
  city.flow_seed = 7;
  return make_city_config(city);
}

inline constexpr std::uint64_t kGoldenCityHash = 0x87CCB22252A3ED43ull;

}  // namespace muzha::testing
