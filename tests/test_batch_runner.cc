// BatchRunner: thread-count invariance (bitwise), submission-order
// preservation, and stability of the SplitMix64 seed-derivation scheme.
#include <gtest/gtest.h>

#include <set>

#include "scenario/batch_runner.h"
#include "tests/experiment_equal.h"

namespace muzha {
namespace {

using muzha::testing::expect_results_identical;

// muzha-lint: allow(raw-unit-double): test-matrix convenience parameter, converted to SimTime on the next line
ExperimentConfig chain_point(TcpVariant v, int hops, double duration_s) {
  ExperimentConfig cfg;
  cfg.hops = hops;
  cfg.duration = SimTime::from_seconds(duration_s);
  cfg.flows.push_back(
      {v, 0, static_cast<std::size_t>(hops), SimTime::zero(), 8});
  return cfg;
}

BatchRunner four_point_runner(int jobs) {
  BatchRunner runner({.jobs = jobs, .replications = 4, .base_seed = 42});
  runner.add_point(chain_point(TcpVariant::kNewReno, 3, 4.0));
  runner.add_point(chain_point(TcpVariant::kMuzha, 4, 4.0));
  runner.add_point(chain_point(TcpVariant::kVegas, 3, 4.0));
  runner.add_point(chain_point(TcpVariant::kSack, 2, 4.0));
  return runner;
}

TEST(BatchRunner, Jobs1AndJobs8ProduceBitwiseIdenticalResults) {
  auto serial = four_point_runner(1).run();
  auto parallel = four_point_runner(8).run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    ASSERT_EQ(serial[p].size(), parallel[p].size());
    for (std::size_t r = 0; r < serial[p].size(); ++r) {
      expect_results_identical(serial[p][r], parallel[p][r]);
    }
  }
}

TEST(BatchRunner, ResultsComeBackInSubmissionOrder) {
  // Durations descend so, under parallel execution, later submissions tend
  // to finish first; the variant recorded in each FlowResult tags the point.
  const TcpVariant order[] = {TcpVariant::kNewReno, TcpVariant::kVegas,
                              TcpVariant::kMuzha, TcpVariant::kSack};
  std::vector<ExperimentConfig> configs;
  for (std::size_t i = 0; i < std::size(order); ++i) {
    ExperimentConfig cfg =
        chain_point(order[i], 3, 8.0 - 2.0 * static_cast<double>(i));
    cfg.seed = 7;
    configs.push_back(std::move(cfg));
  }
  auto results = run_batch(configs, 4);
  ASSERT_EQ(results.size(), std::size(order));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].flows[0].variant, order[i]);
  }
}

TEST(BatchRunner, ReplicationsUseDistinctSeedsAndDiffer) {
  BatchRunner runner({.jobs = 2, .replications = 3, .base_seed = 5});
  ExperimentConfig cfg = chain_point(TcpVariant::kNewReno, 3, 5.0);
  cfg.flows[0].window = 32;  // enough contention for seeds to matter
  runner.add_point(cfg);
  auto results = runner.run();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].size(), 3u);
  // Some observable statistic should move across replications.
  bool any_differ = false;
  for (std::size_t r = 1; r < 3; ++r) {
    if (results[0][r].flows[0].packets_sent !=
            results[0][0].flows[0].packets_sent ||
        results[0][r].phy_collisions != results[0][0].phy_collisions ||
        results[0][r].flows[0].delivered != results[0][0].flows[0].delivered) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(run_batch({}, 4).empty());
  EXPECT_TRUE(BatchRunner({.jobs = 4}).run().empty());
}

TEST(SeedDerivation, IsPureAndCollisionFreeOverSweepGrid) {
  EXPECT_EQ(derive_run_seed(1, 0, 0), derive_run_seed(1, 0, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 999ULL}) {
    for (std::size_t p = 0; p < 64; ++p) {
      for (std::size_t r = 0; r < 16; ++r) {
        seen.insert(derive_run_seed(base, p, r));
      }
    }
  }
  // 3 bases x 64 points x 16 replications, all distinct.
  EXPECT_EQ(seen.size(), 3u * 64u * 16u);
}

TEST(SeedDerivation, SchemeIsFrozen) {
  // Pinned outputs of the SplitMix64 chain. If this test fails the
  // derivation changed, which silently re-seeds every recorded sweep —
  // don't update these constants without meaning to.
  EXPECT_EQ(derive_run_seed(1, 0, 0), 0xb18a02f46d8d86c3ULL);
  EXPECT_EQ(derive_run_seed(1, 0, 1), 0x6c5795e14b3b7e33ULL);
  EXPECT_EQ(derive_run_seed(1, 1, 0), 0x5775264a9a7e1b09ULL);
  EXPECT_EQ(derive_run_seed(2, 0, 0), 0x1956ecd1a275ec95ULL);
  static_assert(splitmix64(0) == 0xe220a8397b1dcdafULL,
                "SplitMix64 finalizer must match the reference stream");
}

}  // namespace
}  // namespace muzha
