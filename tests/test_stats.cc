#include <gtest/gtest.h>

#include "stats/fairness.h"
#include "stats/time_series.h"

namespace muzha {
namespace {

TEST(Fairness, EqualAllocationsScoreOne) {
  double x[] = {10.0, 10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(x), 1.0);
}

TEST(Fairness, SingleHogScoresOneOverN) {
  double x[] = {100.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(x), 0.25);
}

TEST(Fairness, ScaleInvariant) {
  double a[] = {1.0, 2.0, 3.0};
  double b[] = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(a), jain_fairness_index(b));
}

TEST(Fairness, KnownTwoFlowValue) {
  // (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8
  double x[] = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(x), 0.8);
}

TEST(Fairness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(zeros), 1.0);
  double one[] = {7.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(one), 1.0);
}

TEST(Fairness, BoundedBetweenOneOverNAndOne) {
  double x[] = {5.0, 1.0, 9.0, 2.5, 0.1};
  double j = jain_fairness_index(x);
  EXPECT_GE(j, 0.2);
  EXPECT_LE(j, 1.0);
}

TEST(CwndTracerTest, StepInterpolation) {
  CwndTracer t;
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(1.0)), 0.0);  // empty: zero everywhere
  t.add(Seconds(1.0), 2.0);
  t.add(Seconds(3.0), 5.0);
  t.add(Seconds(3.0), 6.0);  // same-instant update: last write wins
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(0.5)), 0.0);
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(1.0)), 2.0);
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(2.9)), 2.0);
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(3.0)), 6.0);
  EXPECT_DOUBLE_EQ(t.value_at(Seconds(100.0)), 6.0);
}

TEST(ThroughputSamplerTest, BinsAccumulateBits) {
  ThroughputSampler s(SimTime::from_seconds(1.0), /*payload_bytes=*/1000);
  EXPECT_TRUE(s.series().empty());
  s.record(Seconds(0.2), 4000);
  s.record(Seconds(0.9), 4000);
  s.record(Seconds(1.5), 2000);
  TimeSeries ts = s.series();
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0].t.value(), 0.5);  // bin centres
  EXPECT_DOUBLE_EQ(ts[0].value, 8000.0);  // bits/s over a 1 s bin
  EXPECT_DOUBLE_EQ(ts[1].t.value(), 1.5);
  EXPECT_DOUBLE_EQ(ts[1].value, 2000.0);
  EXPECT_DOUBLE_EQ(s.total_bits(), 10000.0);
}

TEST(ThroughputSamplerTest, EmptyBinsReportZero) {
  ThroughputSampler s(SimTime::from_ms(500), 1460);
  s.record(Seconds(0.1), 100);
  s.record(Seconds(2.1), 100);
  TimeSeries ts = s.series();
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_DOUBLE_EQ(ts[1].value, 0.0);
  EXPECT_DOUBLE_EQ(ts[2].value, 0.0);
  EXPECT_DOUBLE_EQ(ts[3].value, 0.0);
}

}  // namespace
}  // namespace muzha
