// Property-based sweeps (parameterized gtest): invariants that must hold for
// every (variant, hops, window, seed) combination.
#include <cctype>

#include <gtest/gtest.h>

#include "scenario/experiment.h"

namespace muzha {
namespace {

struct SweepParam {
  TcpVariant variant;
  int hops;
  int window;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = variant_name(p.variant);
  // gtest parameter names must be alphanumeric.
  std::erase_if(name, [](char c) { return !std::isalnum(c); });
  return name + "_h" + std::to_string(p.hops) + "_w" +
         std::to_string(p.window) + "_s" + std::to_string(p.seed);
}

class SingleFlowSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SingleFlowSweep, TransportInvariantsHold) {
  const SweepParam& p = GetParam();
  ExperimentConfig cfg;
  cfg.hops = p.hops;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = p.seed;
  cfg.flows.push_back(
      {p.variant, 0, static_cast<std::size_t>(p.hops), SimTime::zero(),
       p.window});
  auto res = run_experiment(cfg);
  const FlowResult& f = res.flows[0];

  // Liveness: the flow makes progress on every configuration.
  EXPECT_GT(f.delivered, 0) << "flow starved";

  // Conservation: in-order deliveries never exceed transmissions, and
  // retransmissions are a subset of transmissions.
  EXPECT_LE(f.delivered, static_cast<std::int64_t>(f.packets_sent));
  EXPECT_LT(f.retransmissions, f.packets_sent);

  // The window trace respects cwnd >= 1 at all times.
  for (const TimePoint& pt : f.cwnd_trace) {
    EXPECT_GE(pt.value, 1.0);
  }

  // Goodput is bounded by the channel rate.
  EXPECT_LT(f.throughput, BitsPerSecond(2e6));

  // Vegas's signature conservatism: almost no retransmissions.
  if (p.variant == TcpVariant::kVegas && p.hops <= 8) {
    EXPECT_LE(f.retransmissions, 20u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsHopsWindows, SingleFlowSweep,
    ::testing::Values(
        SweepParam{TcpVariant::kNewReno, 2, 8, 1},
        SweepParam{TcpVariant::kNewReno, 4, 32, 1},
        SweepParam{TcpVariant::kNewReno, 8, 8, 2},
        SweepParam{TcpVariant::kSack, 4, 8, 1},
        SweepParam{TcpVariant::kSack, 8, 32, 2},
        SweepParam{TcpVariant::kVegas, 4, 8, 1},
        SweepParam{TcpVariant::kVegas, 8, 32, 1},
        SweepParam{TcpVariant::kMuzha, 2, 8, 1},
        SweepParam{TcpVariant::kMuzha, 4, 32, 2},
        SweepParam{TcpVariant::kMuzha, 8, 8, 3},
        SweepParam{TcpVariant::kReno, 4, 8, 1},
        SweepParam{TcpVariant::kTahoe, 4, 8, 1},
        SweepParam{TcpVariant::kDoor, 4, 16, 1},
        SweepParam{TcpVariant::kAdtcp, 4, 16, 1},
        SweepParam{TcpVariant::kJersey, 4, 16, 1},
        SweepParam{TcpVariant::kRoVegas, 4, 16, 1},
        SweepParam{TcpVariant::kNewRenoEcn, 4, 16, 1},
        SweepParam{TcpVariant::kDoor, 8, 8, 2},
        SweepParam{TcpVariant::kJersey, 8, 32, 2},
        SweepParam{TcpVariant::kRoVegas, 8, 8, 2}),
    param_name);

// ---------------------------------------------------------------------------

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, MuzhaSurvivesRandomLoss) {
  double rate = GetParam();
  ExperimentConfig cfg;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(10.0);
  cfg.seed = 5;
  cfg.uniform_error_rate = rate;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  auto res = run_experiment(cfg);
  EXPECT_GT(res.flows[0].delivered, 10);
  if (rate > 0) {
    EXPECT_GT(res.channel_error_losses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, LossSweep,
                         ::testing::Values(0.0, 0.01, 0.02, 0.05, 0.10));

// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DeterministicAcrossRepeatedRuns) {
  ExperimentConfig cfg;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(4.0);
  cfg.seed = GetParam();
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 16});
  auto a = run_experiment(cfg);
  auto b = run_experiment(cfg);
  EXPECT_EQ(a.flows[0].delivered, b.flows[0].delivered);
  EXPECT_EQ(a.flows[0].retransmissions, b.flows[0].retransmissions);
  EXPECT_EQ(a.flows[0].cwnd_trace.size(), b.flows[0].cwnd_trace.size());
  EXPECT_EQ(a.phy_collisions, b.phy_collisions);
  EXPECT_EQ(a.ifq_drops, b.ifq_drops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u));

// ---------------------------------------------------------------------------

class DraiTableSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DraiTableSweep, ApplyIsMonotoneInDrai) {
  auto [drai, cwnd] = GetParam();
  // For any window, a higher DRAI level never yields a smaller next window.
  Segments lower =
      apply_drai_to_cwnd(static_cast<std::uint8_t>(drai), Segments(cwnd));
  if (drai < kDraiAggressiveAccel) {
    Segments higher =
        apply_drai_to_cwnd(static_cast<std::uint8_t>(drai + 1), Segments(cwnd));
    EXPECT_LE(lower, higher);
  }
  EXPECT_GE(lower, Segments(1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Table52, DraiTableSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1.0, 2.0, 4.0, 7.5, 32.0)));

}  // namespace
}  // namespace muzha
