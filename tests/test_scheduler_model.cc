// Model-checked scheduler test: random interleavings of the public API
// cross-checked against a naive reference model.
//
// The reference keeps events in a std::multimap ordered by the documented
// (time, seq) contract and replays run_until/step semantics by hand. Any
// divergence in firing order, now(), pending_events() or events_executed()
// after any operation fails the test with the generating seed in the name,
// so a failure reproduces deterministically. This is what gives us
// confidence the indexed-heap rewrite (eager cancellation, slot recycling,
// generation-checked handles) preserved the old scheduler's semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"

namespace muzha {
namespace {

// Reference model: the scheduler's contract, written the slow obvious way.
class ReferenceScheduler {
 public:
  using Key = std::pair<std::int64_t, std::uint64_t>;  // (time ns, seq)

  std::uint64_t schedule_at(std::int64_t t_ns, int token) {
    const std::uint64_t handle = next_handle_++;
    Key key{t_ns, next_seq_++};
    queue_.emplace(key, token);
    by_handle_.emplace(handle, key);
    return handle;
  }

  // True if the handle was pending (and is now removed), mirroring the
  // scheduler where cancelling a fired/cancelled id is a no-op.
  bool cancel(std::uint64_t handle) {
    auto it = by_handle_.find(handle);
    if (it == by_handle_.end()) return false;
    auto range = queue_.equal_range(it->second);
    for (auto q = range.first; q != range.second; ++q) {
      queue_.erase(q);
      break;
    }
    by_handle_.erase(it);
    return true;
  }

  bool step(std::vector<int>& fired) {
    if (queue_.empty()) return false;
    auto it = queue_.begin();
    now_ns_ = it->first.first;
    ++executed_;
    fired.push_back(it->second);
    erase_handle_of(it->first);
    queue_.erase(it);
    return true;
  }

  void run_until(std::int64_t t_end_ns, bool t_end_is_max,
                 std::vector<int>& fired) {
    while (!queue_.empty()) {
      if (queue_.begin()->first.first > t_end_ns) {
        now_ns_ = t_end_ns;
        return;
      }
      step(fired);
    }
    // Drained: the clock still advances to the horizon, except for the
    // run() = run_until(max) spelling which parks at the last event.
    if (now_ns_ < t_end_ns && !t_end_is_max) now_ns_ = t_end_ns;
  }

  std::int64_t now_ns() const { return now_ns_; }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  void erase_handle_of(const Key& key) {
    // muzha-lint: allow(unordered-iter): linear search for the unique matching value; exactly one entry matches, so visit order cannot affect the result
    for (auto it = by_handle_.begin(); it != by_handle_.end(); ++it) {
      if (it->second == key) {
        by_handle_.erase(it);
        return;
      }
    }
  }

  std::multimap<Key, int> queue_;
  std::unordered_map<std::uint64_t, Key> by_handle_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_handle_ = 1;
  std::int64_t now_ns_ = 0;
  std::uint64_t executed_ = 0;
};

void run_model_check(std::uint64_t seed, int ops) {
  Rng rng(seed);
  Scheduler sched;
  ReferenceScheduler ref;

  std::vector<int> fired_real;
  std::vector<int> fired_ref;
  // Parallel handle lists; index i holds the same logical event in both.
  std::vector<EventId> real_ids;
  std::vector<std::uint64_t> ref_ids;
  int next_token = 0;

  for (int op = 0; op < ops; ++op) {
    const int choice = static_cast<int>(rng.uniform_int(0, 99));
    if (choice < 40) {
      // schedule_at / schedule_in with delays that force plenty of (time,
      // seq) ties (delay 0 and small multiples of 10ns are common).
      const std::int64_t delay = rng.uniform_int(0, 12) * 10;
      const int token = next_token++;
      EventId id;
      if (choice < 20) {
        id = sched.schedule_at(SimTime::from_ns(sched.now().ns() + delay),
                               [token, &fired_real] {
                                 fired_real.push_back(token);
                               });
      } else {
        id = sched.schedule_in(SimTime::from_ns(delay),
                               [token, &fired_real] {
                                 fired_real.push_back(token);
                               });
      }
      real_ids.push_back(id);
      ref_ids.push_back(ref.schedule_at(ref.now_ns() + delay, token));
    } else if (choice < 60 && !real_ids.empty()) {
      // Cancel a random handle: pending, fired or already-cancelled alike.
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(real_ids.size()) - 1));
      sched.cancel(real_ids[pick]);
      ref.cancel(ref_ids[pick]);
    } else if (choice < 70) {
      const bool advanced = sched.step();
      EXPECT_EQ(advanced, ref.step(fired_ref));
    } else if (choice < 72) {
      sched.cancel(kInvalidEventId);
      sched.cancel((static_cast<EventId>(0x7fffffu) << 32) | 1u);  // never issued
    } else {
      const std::int64_t horizon = rng.uniform_int(0, 20) * 10;
      sched.run_until(SimTime::from_ns(sched.now().ns() + horizon));
      ref.run_until(ref.now_ns() + horizon, /*t_end_is_max=*/false, fired_ref);
    }

    ASSERT_EQ(sched.now().ns(), ref.now_ns()) << "op " << op;
    ASSERT_EQ(sched.pending_events(), ref.pending()) << "op " << op;
    ASSERT_EQ(sched.events_executed(), ref.executed()) << "op " << op;
    ASSERT_EQ(fired_real, fired_ref) << "op " << op;
  }

  // Drain both and compare the complete firing history.
  sched.run();
  ref.run_until(INT64_MAX, /*t_end_is_max=*/true, fired_ref);
  EXPECT_EQ(sched.now().ns(), ref.now_ns());
  EXPECT_EQ(fired_real, fired_ref);
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.events_executed(), ref.executed());
}

TEST(SchedulerModel, Seed1) { run_model_check(1, 4000); }
TEST(SchedulerModel, Seed2) { run_model_check(2, 4000); }
TEST(SchedulerModel, Seed3) { run_model_check(3, 4000); }
TEST(SchedulerModel, Seed42) { run_model_check(42, 4000); }
TEST(SchedulerModel, Seed2507) { run_model_check(2507, 4000); }

// Heavier single run: larger queue depths stress slot recycling, chunk
// growth and deep heap sifts rather than op-mix corner cases.
TEST(SchedulerModel, DeepQueueSeed7) { run_model_check(7, 20000); }

}  // namespace
}  // namespace muzha
