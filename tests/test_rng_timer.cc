#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace muzha {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(5);
  double first = r.uniform();
  r.uniform();
  r.seed(5);
  EXPECT_DOUBLE_EQ(r.uniform(), first);
}

TEST(Timer, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule_in(SimTime::from_ms(5));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), SimTime::from_ms(5));
  sim.run_until(SimTime::from_ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule_in(SimTime::from_ms(5));
  t.cancel();
  sim.run_until(SimTime::from_ms(10));
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RescheduleReplacesPrevious) {
  Simulator sim;
  std::vector<double> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now().to_seconds()); });
  t.schedule_in(SimTime::from_ms(5));
  t.schedule_in(SimTime::from_ms(20));  // replaces the 5 ms deadline
  sim.run_until(SimTime::from_ms(50));
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 0.020);
}

TEST(Timer, CanRescheduleFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) self->schedule_in(SimTime::from_ms(1));
  });
  self = &t;
  t.schedule_in(SimTime::from_ms(1));
  sim.run_until(SimTime::from_ms(100));
  EXPECT_EQ(fired, 3);
}

TEST(Timer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.schedule_in(SimTime::from_ms(1));
  }
  sim.run_until(SimTime::from_ms(10));
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace muzha
