// Allocation accounting for the packet pool: after warm-up, the channel's
// clone/deliver/free cycle must never touch the heap. Verified with the same
// counting global operator new as test_scheduler_alloc.cc.
//
// Sanitizer builds replace the allocator and may allocate internally, so
// the counting tests skip themselves there; the plain tier-1 build
// exercises them. (The DCHECK double-free death test lives in
// test_dcheck.cc, which the ASan leg runs with DCHECKs on.)
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "pkt/packet.h"
#include "pkt/packet_arena.h"

namespace {
std::size_t g_allocations = 0;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#define MUZHA_SKIP_IF_SANITIZED() \
  if (kSanitized) GTEST_SKIP() << "allocator replaced by sanitizer"
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace muzha {
namespace {

// Packet must stay free of heap-owning members (that is what makes pooled
// clone allocation-free); a std::vector smuggled into a header would compile
// but silently re-introduce per-clone allocations. TcpHeader's SACK list is
// the member that used to be a vector: its blocks must live inline, so the
// whole list is at least as large as its payload array.
static_assert(sizeof(SackList) >= sizeof(SackBlock) * kMaxSackBlocks,
              "SackList must store its blocks inline, not on the heap");

TEST(PacketArena, CountingAllocatorSeesAllocations) {
  MUZHA_SKIP_IF_SANITIZED();
  const std::size_t before = g_allocations;
  std::unique_ptr<int> p = std::make_unique<int>(1);
  EXPECT_GT(g_allocations, before);
}

TEST(PacketArena, AllocateReusesReleasedSlots) {
  PacketArena arena;
  Packet* a = arena.allocate();
  EXPECT_EQ(arena.outstanding(), 1u);
  arena.release(a);
  EXPECT_EQ(arena.outstanding(), 0u);
  Packet* b = arena.allocate();
  EXPECT_EQ(b, a) << "released slot must be recycled LIFO";
  arena.release(b);
}

TEST(PacketArena, WarmCloneReleaseCycleIsAllocationFree) {
  MUZHA_SKIP_IF_SANITIZED();
  // Warm-up: force one chunk into existence and let every intermediate
  // PacketPtr die back into the free list.
  Packet proto;
  proto.uid = 7;
  proto.size_bytes = 1500;
  TcpHeader h;
  h.seqno = 41;
  h.sacks.push_back({5, 9});
  proto.l4 = h;
  { PacketPtr warm = clone_packet(proto); }

  const std::size_t before = g_allocations;
  for (int round = 0; round < 1000; ++round) {
    PacketPtr p = clone_packet(proto);  // channel's per-receiver path
    ASSERT_EQ(p->uid, 7u);
    ASSERT_EQ(p->tcp().seqno, 41);
    p.reset();  // receiver consumed the frame
  }
  EXPECT_EQ(g_allocations, before)
      << "warm clone/free must not touch the heap";
}

TEST(PacketArena, WarmFanOutWithinChunkIsAllocationFree) {
  MUZHA_SKIP_IF_SANITIZED();
  Packet proto;
  proto.size_bytes = 512;
  // Warm a full chunk's worth of slots.
  {
    std::vector<PacketPtr> warm;
    warm.reserve(256);
    for (int i = 0; i < 256; ++i) warm.push_back(clone_packet(proto));
  }

  // The holding vector is the test's own; keep its capacity across rounds so
  // only the arena's behaviour is measured.
  std::vector<PacketPtr> in_flight;
  in_flight.reserve(200);
  const std::size_t before = g_allocations;
  for (int round = 0; round < 50; ++round) {
    // Broadcast fan-out shape: many live clones at once, then all released.
    for (int i = 0; i < 200; ++i) in_flight.push_back(clone_packet(proto));
    in_flight.clear();
  }
  EXPECT_EQ(g_allocations, before);
}

TEST(PacketArena, MakePacketAdvancesCallerCounter) {
  std::uint64_t uid = 10;
  PacketPtr a = make_packet(uid);
  PacketPtr b = make_packet(uid);
  EXPECT_EQ(a->uid, 11u);
  EXPECT_EQ(b->uid, 12u);
  EXPECT_EQ(uid, 12u);
}

TEST(PacketArena, AllocPacketIsDefaultInitialised) {
  // A recycled slot must not leak the previous occupant's fields.
  {
    PacketPtr dirty = alloc_packet();
    dirty->uid = 99;
    dirty->size_bytes = 1500;
    TcpHeader h;
    h.seqno = 1234;
    dirty->l4 = h;
  }
  PacketPtr fresh = alloc_packet();
  EXPECT_EQ(fresh->uid, 0u);
  EXPECT_EQ(fresh->size_bytes, 0u);
  EXPECT_FALSE(fresh->has_tcp());
}

TEST(PacketArena, GrowsByChunksAndTracksCapacity) {
  PacketArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  std::vector<Packet*> live;
  live.reserve(300);
  for (int i = 0; i < 300; ++i) live.push_back(arena.allocate());
  EXPECT_EQ(arena.outstanding(), 300u);
  EXPECT_EQ(arena.capacity(), 512u);  // two 256-slot chunks
  EXPECT_EQ(arena.pooled_free(), 212u);
  for (Packet* p : live) arena.release(p);
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_EQ(arena.pooled_free(), 512u);
}

TEST(PacketArena, TrimReturnsChunksAndArenaRegrows) {
  PacketArena arena;
  Packet* p = arena.allocate();
  arena.release(p);
  EXPECT_EQ(arena.capacity(), 256u);
  arena.trim();
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.pooled_free(), 0u);
  // The arena must come back cleanly after a trim.
  Packet* q = arena.allocate();
  EXPECT_EQ(arena.capacity(), 256u);
  arena.release(q);
}

#if MUZHA_DCHECK_ENABLED
using PacketArenaDeathTest = ::testing::Test;

TEST(PacketArenaDeathTest, DoubleFreeIsCaught) {
  EXPECT_DEATH(
      {
        PacketArena arena;
        Packet* p = arena.allocate();
        arena.release(p);
        arena.release(p);
      },
      "double free");
}

TEST(PacketArenaDeathTest, ForeignPointerIsCaught) {
  EXPECT_DEATH(
      {
        PacketArena arena;
        Packet foreign;
        arena.release(&foreign);
      },
      "not from this arena");
}
#endif  // MUZHA_DCHECK_ENABLED

}  // namespace
}  // namespace muzha
