// Timer edge cases around restart, self-cancellation and same-tick
// scheduling — the patterns protocol code (TCP RTO, MAC ACK/CTS timeouts)
// actually exercises, pinned against the rewritten event core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/timer.h"

namespace muzha {
namespace {

TEST(TimerEdge, RestartWhilePendingFiresOnceAtNewExpiry) {
  Simulator sim;
  std::vector<SimTime> fires;
  Timer timer(sim, [&] { fires.push_back(sim.now()); });
  timer.schedule_in(SimTime::from_ms(10));
  // Halfway there, push the deadline out; the first arming must be dead.
  sim.schedule_at(SimTime::from_ms(5),
                  [&] { timer.schedule_in(SimTime::from_ms(10)); });
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], SimTime::from_ms(15));
  EXPECT_FALSE(timer.pending());
}

TEST(TimerEdge, RestartAtExactExpiryTickStillFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  // The restart is queued before the timer is armed, so at the 10ms tick it
  // holds the earlier sequence number: it runs first and must cancel the
  // expiry event sitting in the same tick. The timer then fires only at
  // 20ms. (Armed the other way round, FIFO would fire the expiry first —
  // covered by SameTickScheduleFromCallbackRunsAfterEarlierSeq.)
  sim.schedule_at(SimTime::from_ms(10),
                  [&] { timer.schedule_in(SimTime::from_ms(10)); });
  timer.schedule_in(SimTime::from_ms(10));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::from_ms(20));
}

TEST(TimerEdge, CancelFromInsideOwnCallbackIsSafe) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer timer(sim, [&] {
    ++fired;
    self->cancel();  // the expiry event is already stale at this point
    EXPECT_FALSE(self->pending());
  });
  self = &timer;
  timer.schedule_in(SimTime::from_ms(1));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerEdge, RestartFromInsideOwnCallbackGoesPeriodic) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer timer(sim, [&] {
    if (++fired < 5) self->schedule_in(SimTime::from_ms(2));
  });
  self = &timer;
  timer.schedule_in(SimTime::from_ms(2));
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), SimTime::from_ms(10));
}

// An event scheduled from a firing callback for the *current* instant must
// run in this tick but after every event that was already queued for it —
// it gets a later FIFO sequence number, never a requeue-at-front.
TEST(TimerEdge, SameTickScheduleFromCallbackRunsAfterEarlierSeq) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_ms(1), [&] {
    order.push_back(1);
    sim.schedule_in(SimTime::zero(), [&] { order.push_back(4); });
    sim.schedule_at(sim.now(), [&] { order.push_back(5); });
  });
  sim.schedule_at(SimTime::from_ms(1), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::from_ms(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.now(), SimTime::from_ms(1));
}

TEST(TimerEdge, DestructionWhilePendingCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer timer(sim, [&] { ++fired; });
    timer.schedule_in(SimTime::from_ms(1));
    EXPECT_TRUE(timer.pending());
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerEdge, ExpiryReflectsLatestArming) {
  Simulator sim;
  Timer timer(sim, [] {});
  timer.schedule_in(SimTime::from_ms(10));
  EXPECT_EQ(timer.expiry(), SimTime::from_ms(10));
  timer.schedule_in(SimTime::from_ms(30));
  EXPECT_EQ(timer.expiry(), SimTime::from_ms(30));
  sim.run_until(SimTime::from_ms(5));
  timer.schedule_in(SimTime::from_ms(10));
  EXPECT_EQ(timer.expiry(), SimTime::from_ms(15));
}

}  // namespace
}  // namespace muzha
