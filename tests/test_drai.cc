// DRAI quantizer (Table 5.2) and bandwidth estimator tests.
#include "core/drai.h"

#include <gtest/gtest.h>

#include "core/bandwidth_estimator.h"
#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

TEST(Drai, QueueQuantizationThresholds) {
  DraiConfig cfg;  // 0.05 / 0.25 / 0.55 / 0.85
  EXPECT_EQ(drai_from_queue(0.00, cfg), kDraiAggressiveAccel);
  EXPECT_EQ(drai_from_queue(0.04, cfg), kDraiAggressiveAccel);
  EXPECT_EQ(drai_from_queue(0.05, cfg), kDraiModerateAccel);
  EXPECT_EQ(drai_from_queue(0.24, cfg), kDraiModerateAccel);
  EXPECT_EQ(drai_from_queue(0.25, cfg), kDraiStabilize);
  EXPECT_EQ(drai_from_queue(0.54, cfg), kDraiStabilize);
  EXPECT_EQ(drai_from_queue(0.55, cfg), kDraiModerateDecel);
  EXPECT_EQ(drai_from_queue(0.84, cfg), kDraiModerateDecel);
  EXPECT_EQ(drai_from_queue(0.85, cfg), kDraiAggressiveDecel);
  EXPECT_EQ(drai_from_queue(1.00, cfg), kDraiAggressiveDecel);
}

TEST(Drai, UtilizationQuantizationNeverPanics) {
  DraiConfig cfg;  // 0.50 / 0.80 / 0.96
  EXPECT_EQ(drai_from_utilization(0.10, cfg), kDraiAggressiveAccel);
  EXPECT_EQ(drai_from_utilization(0.60, cfg), kDraiModerateAccel);
  EXPECT_EQ(drai_from_utilization(0.90, cfg), kDraiStabilize);
  EXPECT_EQ(drai_from_utilization(0.99, cfg), kDraiModerateDecel);
  // A busy medium with an empty queue is never an aggressive-deceleration
  // emergency.
  EXPECT_EQ(drai_from_utilization(1.00, cfg), kDraiModerateDecel);
}

TEST(Drai, CombinedTakesTheMoreCongestedSignal) {
  DraiConfig cfg;
  EXPECT_EQ(compute_drai(0.0, 0.0, cfg), kDraiAggressiveAccel);
  EXPECT_EQ(compute_drai(0.9, 0.0, cfg), kDraiAggressiveDecel);
  EXPECT_EQ(compute_drai(0.0, 0.99, cfg), kDraiModerateDecel);
  EXPECT_EQ(compute_drai(0.3, 0.6, cfg), kDraiStabilize);
}

TEST(Drai, Table52WindowActions) {
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiAggressiveAccel, Segments(4.0)).value(), 8.0);
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiModerateAccel, Segments(4.0)).value(), 5.0);
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiStabilize, Segments(4.0)).value(), 4.0);
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiModerateDecel, Segments(4.0)).value(), 3.0);
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiAggressiveDecel, Segments(4.0)).value(), 2.0);
}

TEST(Drai, WindowActionsFloorAtOne) {
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiModerateDecel, Segments(1.0)).value(), 1.0);
  EXPECT_DOUBLE_EQ(apply_drai_to_cwnd(kDraiAggressiveDecel, Segments(1.5)).value(), 1.0);
}

TEST(Drai, ConfigurableThresholds) {
  DraiConfig cfg;
  cfg.q_aggressive_accel = 0.5;
  EXPECT_EQ(drai_from_queue(0.4, cfg), kDraiAggressiveAccel);
}

// ---------------------------------------------------------------------------
// BandwidthEstimator integration
// ---------------------------------------------------------------------------

TEST(BandwidthEstimator, IdleMediumReportsAggressiveAccel) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node n(sim, channel, 0, {0, 0});
  BandwidthEstimator est(sim, n.device());
  est.start();
  sim.run_until(SimTime::from_seconds(1));
  EXPECT_DOUBLE_EQ(est.utilization(), 0.0);
  EXPECT_EQ(est.current_drai(), kDraiAggressiveAccel);
  EXPECT_FALSE(est.should_mark());
}

TEST(BandwidthEstimator, BusyMediumLowersDrai) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node a(sim, channel, 0, {0, 0});
  Node b(sim, channel, 1, {200, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(1, 1);
  a.set_routing(std::move(ra));
  b.set_routing(std::make_unique<StaticRouting>(b));

  BandwidthEstimator est(sim, b.device());
  est.start();

  // Saturate the medium with back-to-back 1500 B frames from a to b.
  std::function<void()> pump = [&] {
    PacketPtr p = a.new_packet(1, IpProto::kNone, 1500);
    a.send(std::move(p));
    sim.schedule_in(SimTime::from_ms(2), pump);
  };
  pump();
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_GT(est.utilization(), 0.8);
  EXPECT_LT(est.current_drai(), kDraiAggressiveAccel);
}

TEST(BandwidthEstimator, FullQueueForcesMarking) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  NodeConfig cfg;
  cfg.ifq_capacity = 10;
  Node a(sim, channel, 0, {0, 0}, cfg);
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(1, 1);  // next hop does not exist: queue backs up
  a.set_routing(std::move(ra));

  BandwidthEstimator est(sim, a.device());
  est.start();
  for (int i = 0; i < 10; ++i) {
    a.send(a.new_packet(1, IpProto::kNone, 1500));
  }
  // Queue is now (nearly) full: deceleration region, marking on.
  EXPECT_LE(est.current_drai(), kDraiModerateDecel);
  EXPECT_TRUE(est.should_mark());
}

TEST(BandwidthEstimator, UtilizationDecaysWhenTrafficStops) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node a(sim, channel, 0, {0, 0});
  Node b(sim, channel, 1, {200, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(1, 1);
  a.set_routing(std::move(ra));
  b.set_routing(std::make_unique<StaticRouting>(b));
  BandwidthEstimator est(sim, b.device());
  est.start();
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(SimTime::from_ms(2 * i),
                    [&] { a.send(a.new_packet(1, IpProto::kNone, 1500)); });
  }
  sim.run_until(SimTime::from_ms(120));
  double busy = est.utilization();
  ASSERT_GT(busy, 0.5);
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_LT(est.utilization(), 0.05);
}

}  // namespace
}  // namespace muzha
