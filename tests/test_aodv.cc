#include "routing/aodv.h"

#include <gtest/gtest.h>

#include "net/node.h"
#include "phy/channel.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

class CollectAgent : public Agent {
 public:
  void receive(PacketPtr pkt) override { got.push_back(std::move(pkt)); }
  std::vector<PacketPtr> got;
};

// A chain of nodes with AODV installed; node i sits at (250*i, 0).
class AodvTest : public ::testing::Test {
 protected:
  void build(int n) {
    for (int i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<Node>(
          sim, channel, static_cast<NodeId>(i), Position{250.0 * i, 0}));
      auto aodv = std::make_unique<Aodv>(sim, *nodes.back(), params);
      aodvs.push_back(aodv.get());
      nodes.back()->set_routing(std::move(aodv));
    }
  }

  PacketPtr tcp_packet(Node& from, NodeId to, std::uint16_t port) {
    PacketPtr p = from.new_packet(to, IpProto::kTcp, 500);
    TcpHeader h;
    h.dst_port = port;
    p->l4 = h;
    return p;
  }

  Simulator sim{1};
  PhyParams phy_params;
  Channel channel{sim, phy_params};
  AodvParams params;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<Aodv*> aodvs;
};

TEST_F(AodvTest, DiscoversRouteAndDeliversBufferedPacket) {
  build(4);
  CollectAgent sink;
  nodes[3]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(2));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_TRUE(aodvs[0]->has_valid_route(3));
  EXPECT_EQ(aodvs[0]->rreqs_originated(), 1u);
  // The destination answered with exactly one RREP.
  EXPECT_EQ(aodvs[3]->rreps_sent(), 1u);
}

TEST_F(AodvTest, RouteIsShortestPath) {
  build(5);
  CollectAgent sink;
  nodes[4]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 4, 80));
  sim.run_until(SimTime::from_seconds(2));
  const Aodv::Route* r = aodvs[0]->find_route(4);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->hops, 4);
  EXPECT_EQ(r->next_hop, 1u);
}

TEST_F(AodvTest, ReverseRouteEstablishedAtDestination) {
  build(3);
  CollectAgent sink;
  nodes[2]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 2, 80));
  // Check within the reverse route's (deliberately short) RFC lifetime of
  // 2 * net-traversal-time.
  sim.run_until(SimTime::from_ms(500));
  EXPECT_TRUE(aodvs[2]->has_valid_route(0));
  // And per RFC 3561 it expires if unused.
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_FALSE(aodvs[2]->has_valid_route(0));
}

TEST_F(AodvTest, SecondPacketUsesCachedRouteWithoutNewRreq) {
  build(3);
  CollectAgent sink;
  nodes[2]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 2, 80));
  sim.run_until(SimTime::from_seconds(2));
  ASSERT_EQ(aodvs[0]->rreqs_originated(), 1u);
  nodes[0]->send(tcp_packet(*nodes[0], 2, 80));
  sim.run_until(SimTime::from_seconds(4));
  EXPECT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(aodvs[0]->rreqs_originated(), 1u);  // cache hit
}

TEST_F(AodvTest, UnreachableDestinationFailsDiscoveryAfterRetries) {
  build(2);
  // Destination id 9 does not exist.
  nodes[0]->send(tcp_packet(*nodes[0], 9, 80));
  sim.run_until(SimTime::from_seconds(30));
  EXPECT_EQ(aodvs[0]->discovery_failures(), 1u);
  // 1 initial + rreq_retries retransmissions.
  EXPECT_EQ(aodvs[0]->rreqs_originated(), 1u + params.rreq_retries);
  EXPECT_GE(aodvs[0]->drops_no_route(), 1u);
  EXPECT_FALSE(aodvs[0]->has_valid_route(9));
}

TEST_F(AodvTest, LinkFailureInvalidatesRoutesAndSendsRerr) {
  build(4);
  CollectAgent sink;
  nodes[3]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(2));
  ASSERT_TRUE(aodvs[1]->has_valid_route(3));

  // Simulate MAC retry exhaustion at node 1 toward node 2.
  aodvs[1]->on_link_failure(2, nullptr);
  EXPECT_FALSE(aodvs[1]->has_valid_route(3));
  EXPECT_EQ(aodvs[1]->rerrs_sent(), 1u);
  sim.run_until(SimTime::from_seconds(3));
  // The RERR propagated upstream: node 0 dropped its route too.
  EXPECT_FALSE(aodvs[0]->has_valid_route(3));
}

TEST_F(AodvTest, RediscoveryAfterLinkFailure) {
  build(4);
  CollectAgent sink;
  nodes[3]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(2));
  aodvs[1]->on_link_failure(2, nullptr);
  sim.run_until(SimTime::from_seconds(3));
  ASSERT_FALSE(aodvs[0]->has_valid_route(3));

  // Sending again triggers a fresh discovery that succeeds (links are fine;
  // the "failure" was transient contention).
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(6));
  EXPECT_TRUE(aodvs[0]->has_valid_route(3));
  EXPECT_EQ(sink.got.size(), 2u);
}

TEST_F(AodvTest, OriginatorSalvagesFailedPacketViaRediscovery) {
  build(3);
  CollectAgent sink;
  nodes[2]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 2, 80));
  sim.run_until(SimTime::from_seconds(2));
  ASSERT_EQ(sink.got.size(), 1u);

  // Hand a locally-originated packet back as a link failure: AODV should
  // re-discover and re-send rather than drop.
  aodvs[0]->on_link_failure(1, tcp_packet(*nodes[0], 2, 80));
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_EQ(sink.got.size(), 2u);
}

TEST_F(AodvTest, IntermediateNodeWithFreshRouteAnswersRreq) {
  build(4);
  CollectAgent sink;
  nodes[3]->register_agent(80, sink);
  // Prime node 1 with a route to 3 by running a discovery from node 0.
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(2));
  std::uint64_t rreps_from_dest = aodvs[3]->rreps_sent();

  // New discovery from node 1 itself: it already has a valid fresh route,
  // so route_packet short-circuits; force a fresh RREQ by asking node 0 to
  // discover again after invalidating only node 0's route.
  aodvs[0]->on_link_failure(1, nullptr);
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(4));
  EXPECT_EQ(sink.got.size(), 2u);
  // The destination did not need to answer again: an intermediate replied.
  EXPECT_EQ(aodvs[3]->rreps_sent() + aodvs[1]->rreps_sent() +
                aodvs[2]->rreps_sent(),
            rreps_from_dest + 1);
}

TEST_F(AodvTest, DuplicateRreqsAreSuppressed) {
  build(4);
  CollectAgent sink;
  nodes[3]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 3, 80));
  sim.run_until(SimTime::from_seconds(2));
  // Each intermediate node rebroadcast the flood exactly once: total
  // broadcast data frames = origin (1) + rebroadcasts (nodes 1, 2; node 3 is
  // the destination and replies instead). RREPs/data are unicast and counted
  // separately via rts_sent.
  std::uint64_t total_bcast = 0;
  for (auto& n : nodes) {
    total_bcast +=
        n->device().mac().data_frames_sent() - n->device().mac().rts_sent();
  }
  // Origin + 2 rebroadcasts + destination reply does not rebroadcast.
  // (data_frames_sent - rts_sent roughly counts broadcasts since every
  // unicast data frame was preceded by one RTS here; allow slack for MAC
  // retries.)
  EXPECT_LE(total_bcast, 6u);
}

TEST_F(AodvTest, ExpandingRingFindsNearbyDestinationCheaply) {
  params.expanding_ring = true;
  params.ttl_start = 2;
  build(7);  // 0..6 chain; destination 2 is within the first ring
  CollectAgent sink;
  nodes[2]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 2, 80));
  sim.run_until(SimTime::from_seconds(2));
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(aodvs[0]->rreqs_originated(), 1u);
  // TTL 2 stops the flood at node 2: nodes beyond never rebroadcast.
  EXPECT_EQ(nodes[4]->device().mac().data_frames_sent(), 0u);
  EXPECT_EQ(nodes[5]->device().mac().data_frames_sent(), 0u);
}

TEST_F(AodvTest, ExpandingRingEscalatesToFullFlood) {
  params.expanding_ring = true;
  params.ttl_start = 2;
  params.ttl_increment = 2;
  params.ttl_threshold = 7;
  build(11);  // destination 10 is 10 hops away: beyond every ring
  CollectAgent sink;
  nodes[10]->register_agent(80, sink);
  nodes[0]->send(tcp_packet(*nodes[0], 10, 80));
  sim.run_until(SimTime::from_seconds(10));
  ASSERT_EQ(sink.got.size(), 1u);
  // Rings at TTL 2, 4, 6 failed before the full-diameter flood succeeded.
  EXPECT_GE(aodvs[0]->rreqs_originated(), 4u);
  EXPECT_TRUE(aodvs[0]->has_valid_route(10));
}

TEST_F(AodvTest, ExpandingRingStillFailsForUnreachable) {
  params.expanding_ring = true;
  build(2);
  nodes[0]->send(tcp_packet(*nodes[0], 9, 80));
  sim.run_until(SimTime::from_seconds(60));
  EXPECT_EQ(aodvs[0]->discovery_failures(), 1u);
  // Ring attempts (TTL 2,4,6) + (1 + rreq_retries) full attempts.
  EXPECT_EQ(aodvs[0]->rreqs_originated(), 3u + 1u + params.rreq_retries);
}

TEST_F(AodvTest, BufferCapacityDropsExcessPackets) {
  params.send_buffer_capacity = 4;
  build(2);
  // No route yet: every packet is buffered while discovery runs; overflow
  // beyond capacity is dropped. Destination 9 never answers.
  for (int i = 0; i < 10; ++i) {
    nodes[0]->send(tcp_packet(*nodes[0], 9, 80));
  }
  EXPECT_EQ(aodvs[0]->drops_no_route(), 6u);
}

}  // namespace
}  // namespace muzha
