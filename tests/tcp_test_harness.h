// Legacy name for the sender test fixture.
//
// The topology, agent construction (one variadic constructor) and the single
// ACK-injection path all live in tests/harness/sender_fixture.h; the step
// DSL built on top of it lives in tests/harness/step_harness.h. Existing
// suites keep the TcpHarness spelling.
#pragma once

#include "tests/harness/sender_fixture.h"

namespace muzha {

template <class AgentT>
using TcpHarness = harness::SenderFixture<AgentT>;

}  // namespace muzha
