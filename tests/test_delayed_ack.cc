// Delayed-ACK receiver behaviour (RFC 1122 / RFC 5681).
#include <gtest/gtest.h>

#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "tcp/tcp_sink.h"

namespace muzha {
namespace {

class AckCollector : public Agent {
 public:
  void receive(PacketPtr pkt) override { acks.push_back(std::move(pkt)); }
  std::vector<PacketPtr> acks;
};

class DelayedAckTest : public ::testing::Test {
 protected:
  DelayedAckTest() : channel(sim, PhyParams{}) {
    src = std::make_unique<Node>(sim, channel, 0, Position{0, 0});
    dst = std::make_unique<Node>(sim, channel, 1, Position{200, 0});
    auto rs = std::make_unique<StaticRouting>(*src);
    rs->add_route(1, 1);
    src->set_routing(std::move(rs));
    auto rd = std::make_unique<StaticRouting>(*dst);
    rd->add_route(0, 0);
    dst->set_routing(std::move(rd));
    src->register_agent(1000, acks);

    TcpSink::Config sc;
    sc.port = 2000;
    sc.delayed_acks = true;
    sc.delack_timeout = SimTime::from_ms(100);
    sink = std::make_unique<TcpSink>(sim, *dst, sc);
    sink->start();
  }

  void deliver(std::int64_t seq) {
    PacketPtr p = src->new_packet(1, IpProto::kTcp, 1500);
    TcpHeader h;
    h.seqno = seq;
    h.src_port = 1000;
    h.dst_port = 2000;
    p->l4 = h;
    sink->receive(std::move(p));
  }

  void advance_ms(std::int64_t ms) {
    sim.run_until(sim.now() + SimTime::from_ms(ms));
  }

  Simulator sim{1};
  Channel channel;
  std::unique_ptr<Node> src, dst;
  std::unique_ptr<TcpSink> sink;
  AckCollector acks;
};

TEST_F(DelayedAckTest, EverySecondSegmentAcked) {
  deliver(0);
  advance_ms(10);
  EXPECT_EQ(acks.acks.size(), 0u);  // withheld
  deliver(1);
  advance_ms(10);
  ASSERT_EQ(acks.acks.size(), 1u);  // one cumulative ACK for both
  EXPECT_EQ(acks.acks[0]->tcp().seqno, 1);
  EXPECT_EQ(sink->acks_delayed(), 1u);
}

TEST_F(DelayedAckTest, TimeoutFlushesWithheldAck) {
  deliver(0);
  advance_ms(150);  // past the 100 ms delack timeout
  ASSERT_EQ(acks.acks.size(), 1u);
  EXPECT_EQ(acks.acks[0]->tcp().seqno, 0);
}

TEST_F(DelayedAckTest, OutOfOrderArrivalAcksImmediately) {
  deliver(0);
  advance_ms(10);
  ASSERT_EQ(acks.acks.size(), 0u);
  deliver(2);  // hole: must ACK immediately (dup ACK), flushing the held one
  advance_ms(10);
  ASSERT_EQ(acks.acks.size(), 2u);
  EXPECT_EQ(acks.acks[0]->tcp().seqno, 0);  // flushed withheld ACK
  EXPECT_EQ(acks.acks[1]->tcp().seqno, 0);  // duplicate for the hole
}

TEST_F(DelayedAckTest, HalvesAckTrafficOnLongStreams) {
  for (int i = 0; i < 40; ++i) {
    deliver(i);
    advance_ms(5);
  }
  advance_ms(200);  // flush any trailing withheld ACK
  EXPECT_LE(sink->acks_sent(), 21u);
  EXPECT_GE(sink->acks_sent(), 20u);
  EXPECT_EQ(sink->delivered(), 40);
}

}  // namespace
}  // namespace muzha
