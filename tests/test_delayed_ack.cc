// Delayed-ACK receiver behaviour (RFC 1122 / RFC 5681), expressed as
// receiver-side step scripts: inject data segments, expect the ACK stream.
#include <gtest/gtest.h>

#include "tests/harness/sink_harness.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

TEST(DelayedAckTest, EverySecondSegmentAcked) {
  SinkStepHarness h;
  h << InjectData{.seq = 0} << Tick{Seconds(0.01)}  //
    << ExpectNoAck{}                                // withheld
    << InjectData{.seq = 1} << Tick{Seconds(0.01)}  //
    << ExpectAck{.seq = 1}                          // one cumulative ACK
    << ExpectNoAck{};
  EXPECT_EQ(h.sink().acks_delayed(), 1u);
}

TEST(DelayedAckTest, TimeoutFlushesWithheldAck) {
  SinkStepHarness h;
  h << InjectData{.seq = 0}  //
    << Tick{Seconds(0.15)}   // past the 100 ms delack timeout
    << ExpectAck{.seq = 0}   //
    << ExpectNoAck{};
}

TEST(DelayedAckTest, OutOfOrderArrivalAcksImmediately) {
  SinkStepHarness h;
  h << InjectData{.seq = 0} << Tick{Seconds(0.01)}  //
    << ExpectNoAck{}
    // A hole must be ACKed immediately (dup ACK), flushing the held one.
    << InjectData{.seq = 2} << Tick{Seconds(0.01)}  //
    << ExpectAck{.seq = 0}                          // flushed withheld ACK
    << ExpectAck{.seq = 0}                          // duplicate for the hole
    << ExpectNoAck{};
}

TEST(DelayedAckTest, HalvesAckTrafficOnLongStreams) {
  SinkStepHarness h;
  for (int i = 0; i < 40; ++i) {
    h << InjectData{.seq = i} << Tick{Seconds(0.005)};
  }
  h << Tick{Seconds(0.2)}  // flush any trailing withheld ACK
    << ExpectDelivered{40};
  EXPECT_LE(h.sink().acks_sent(), 21u);
  EXPECT_GE(h.sink().acks_sent(), 20u);
}

}  // namespace
}  // namespace muzha
