#include "tcp/tcp_variants.h"

#include <gtest/gtest.h>

#include "tcp/tcp_vegas.h"
#include "tests/tcp_test_harness.h"

namespace muzha {
namespace {

// ---------------------------------------------------------------------------
// Base sender machinery (exercised through TcpNewReno)
// ---------------------------------------------------------------------------

TEST(TcpBase, StartSendsInitialWindow) {
  TcpHarness<TcpNewReno> h;
  h.start();
  // initial cwnd 1 => exactly one segment outstanding.
  EXPECT_EQ(h.agent().next_seq(), 1);
  EXPECT_EQ(h.agent().packets_sent(), 1u);
}

TEST(TcpBase, WindowCapRespected) {
  TcpConfig cfg;
  cfg.window = 4;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(20);  // grow cwnd well past the cap
  EXPECT_GT(h.agent().cwnd().value(), 4.0);
  // Outstanding segments never exceed window_.
  EXPECT_LE(h.agent().next_seq() - 1 - h.agent().highest_ack(), 4);
}

TEST(TcpBase, MaxPacketsStopsTheSource) {
  TcpConfig cfg;
  cfg.max_packets = 5;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(4);
  EXPECT_EQ(h.agent().next_seq(), 5);
  EXPECT_EQ(h.agent().packets_sent(), 5u);
}

TEST(TcpBase, CumulativeAckAdvancesPastHoles) {
  TcpConfig cfg;
  cfg.window = 16;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(3);
  // A single ACK can acknowledge several segments at once.
  std::int64_t before = h.agent().highest_ack();
  h.ack(before + 3);
  EXPECT_EQ(h.agent().highest_ack(), before + 3);
}

TEST(TcpBase, RetransmissionTimeoutCollapsesWindow) {
  TcpConfig cfg;
  cfg.window = 16;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(7);
  ASSERT_GT(h.agent().cwnd().value(), 4.0);
  // No more ACKs: the RTO (initial 3 s) fires.
  h.run_ms(4000);
  EXPECT_EQ(h.agent().timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
  EXPECT_GE(h.agent().retransmissions(), 1u);
}

TEST(TcpBase, RttSampleFeedsEstimator) {
  TcpHarness<TcpNewReno> h;
  h.start();
  h.run_ms(50);
  SimTime echo = h.sim().now() - SimTime::from_ms(40);
  h.agent().receive(h.make_ack(0, 5, false, {}, echo));
  EXPECT_TRUE(h.agent().rto_estimator().has_sample());
  EXPECT_NEAR(h.agent().rto_estimator().srtt().to_seconds(), 0.040, 0.001);
}

TEST(TcpBase, KarnRuleSkipsRetransmittedSegments) {
  TcpConfig cfg;
  cfg.window = 8;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.run_ms(4000);  // timeout retransmits segment 0
  ASSERT_GE(h.agent().retransmissions(), 1u);
  SimTime echo = h.sim().now() - SimTime::from_ms(40);
  h.agent().receive(h.make_ack(0, 5, false, {}, echo));
  EXPECT_FALSE(h.agent().rto_estimator().has_sample());
}

TEST(TcpBase, CwndListenerFiresOnChange) {
  TcpHarness<TcpNewReno> h;
  std::vector<double> values;
  h.agent().set_cwnd_listener(
      [&](SimTime, double v) { values.push_back(v); });
  h.start();
  h.ack_each_up_to(3);
  ASSERT_GE(values.size(), 3u);
  EXPECT_LT(values.front(), values.back());
}

// ---------------------------------------------------------------------------
// Slow start / congestion avoidance (Reno-family growth)
// ---------------------------------------------------------------------------

TEST(TcpGrowth, SlowStartDoublesPerRtt) {
  TcpConfig cfg;
  cfg.window = 64;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  // One ACK per segment: +1 each => after k ACKs, cwnd = 1 + k.
  h.ack_each_up_to(6);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 8.0);
}

TEST(TcpGrowth, CongestionAvoidanceIsLinear) {
  TcpConfig cfg;
  cfg.window = 64;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(6);  // cwnd 8
  // Force CA by crossing a timeout: ssthresh = 4, cwnd restarts at 1.
  h.run_ms(4000);
  h.ack_each_up_to(10);
  // cwnd grew 1 -> 4 in slow start, then +1/cwnd per ACK beyond ssthresh.
  double cwnd = h.agent().cwnd().value();
  EXPECT_GT(cwnd, 4.0);
  EXPECT_LT(cwnd, 6.0);
}

// ---------------------------------------------------------------------------
// Tahoe
// ---------------------------------------------------------------------------

TEST(TcpTahoeTest, TripleDupAckRestartsSlowStart) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpTahoe> h(cfg);
  h.start();
  h.ack_each_up_to(9);  // cwnd = 11
  double before = h.agent().cwnd().value();
  h.dup_acks(9, 3);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), before / 2.0);
  EXPECT_EQ(h.agent().retransmissions(), 1u);
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

TEST(TcpRenoTest, FastRecoveryHalvesAndInflates) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpReno> h(cfg);
  h.start();
  h.ack_each_up_to(9);  // cwnd 11
  h.dup_acks(9, 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), 5.5);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 8.5);  // ssthresh + 3
  EXPECT_EQ(h.agent().retransmissions(), 1u);
  // Additional dup ACKs inflate.
  h.dup_acks(9, 1);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 9.5);
  // The recovery-exiting ACK deflates to ssthresh.
  h.ack(h.agent().next_seq() - 1);
  EXPECT_FALSE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 5.5);
}

TEST(TcpRenoTest, BelowThresholdDupAcksDoNothing) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpReno> h(cfg);
  h.start();
  h.ack_each_up_to(9);
  double before = h.agent().cwnd().value();
  h.dup_acks(9, 2);
  EXPECT_FALSE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);
  EXPECT_EQ(h.agent().retransmissions(), 0u);
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

TEST(TcpNewRenoTest, PartialAckRetransmitsNextHoleWithoutExiting) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(9);  // cwnd 11, next_seq ~ 20s
  std::int64_t recover = h.agent().next_seq() - 1;
  h.dup_acks(9, 3);
  ASSERT_TRUE(h.agent().in_recovery());
  std::uint64_t retx_before = h.agent().retransmissions();

  // Partial ACK: seq 12 < recover point.
  h.ack(12);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_EQ(h.agent().retransmissions(), retx_before + 1);

  // Full ACK ends recovery and deflates to ssthresh.
  h.ack(recover);
  EXPECT_FALSE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), h.agent().ssthresh().value());
}

TEST(TcpNewRenoTest, MultipleLossesRecoverWithoutTimeout) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpNewReno> h(cfg);
  h.start();
  h.ack_each_up_to(9);
  std::int64_t recover = h.agent().next_seq() - 1;
  h.dup_acks(9, 3);
  // Three consecutive partial ACKs (three holes), then the full ACK.
  h.ack(11);
  h.ack(13);
  h.ack(15);
  h.ack(recover);
  EXPECT_FALSE(h.agent().in_recovery());
  EXPECT_EQ(h.agent().timeouts(), 0u);
  EXPECT_GE(h.agent().retransmissions(), 4u);
}

// ---------------------------------------------------------------------------
// SACK
// ---------------------------------------------------------------------------

TEST(TcpSackTest, ScoreboardTracksSackedBlocks) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpSack> h(cfg);
  h.start();
  h.ack_each_up_to(9);
  h.dup_acks(9, 3, false, {{12, 15}});
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_EQ(h.agent().scoreboard_size(), 3u);  // 12,13,14
}

TEST(TcpSackTest, RetransmitsOnlyHoles) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpSack> h(cfg);
  h.start();
  h.ack_each_up_to(9);  // cwnd 11; outstanding 10..20
  std::uint64_t sent_before = h.agent().packets_sent();
  // Everything from 11..19 sacked except 10: only 10 is a hole.
  h.dup_acks(9, 3, false, {{11, 20}});
  std::uint64_t retx = h.agent().retransmissions();
  EXPECT_GE(retx, 1u);
  (void)sent_before;
  // Full ACK clears the scoreboard.
  h.ack(h.agent().next_seq() - 1);
  EXPECT_EQ(h.agent().scoreboard_size(), 0u);
  EXPECT_FALSE(h.agent().in_recovery());
}

TEST(TcpSackTest, TimeoutClearsScoreboard) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpSack> h(cfg);
  h.start();
  h.ack_each_up_to(9);
  h.dup_acks(9, 3, false, {{12, 18}});
  ASSERT_GT(h.agent().scoreboard_size(), 0u);
  h.run_ms(5000);
  EXPECT_GE(h.agent().timeouts(), 1u);
  EXPECT_EQ(h.agent().scoreboard_size(), 0u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
}

// ---------------------------------------------------------------------------
// Vegas
// ---------------------------------------------------------------------------

class VegasHarness : public TcpHarness<TcpVegas> {
 public:
  VegasHarness() : TcpHarness<TcpVegas>(make_cfg(), VegasConfig{}) {}
  static TcpConfig make_cfg() {
    TcpConfig cfg;
    cfg.window = 64;
    return cfg;
  }
  // Acknowledge segment `s` with a crafted RTT.
  void ack_rtt(std::int64_t s, double rtt_s) {
    SimTime echo = sim().now() - SimTime::from_seconds(rtt_s);
    agent().receive(make_ack(s, 5, false, {}, echo));
  }
};

TEST(TcpVegasTest, SlowStartDoublesEveryOtherRtt) {
  VegasHarness h;
  h.start();
  h.run_ms(500);
  double cwnd0 = h.agent().cwnd().value();  // 1
  h.ack_rtt(0, 0.050);              // epoch 1 ends: grow epoch => x2
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), cwnd0 * 2);
  // Next epoch is a hold epoch even with headroom.
  h.ack_rtt(1, 0.050);
  h.ack_rtt(2, 0.050);  // crosses epoch boundary
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), cwnd0 * 2);
}

TEST(TcpVegasTest, ExitsSlowStartWhenQueueingDetected) {
  VegasHarness h;
  h.start();
  h.run_ms(500);
  h.ack_rtt(0, 0.050);  // baseRTT 50 ms, cwnd 2
  h.ack_rtt(1, 0.050);
  h.ack_rtt(2, 0.050);  // cwnd still 2 (hold epoch), cwnd 2... grows next
  h.ack_rtt(3, 0.050);
  ASSERT_GE(h.agent().cwnd().value(), 4.0);
  // RTT doubles: diff = cwnd*(1-50/100) = cwnd/2 > gamma -> leave slow start.
  double before = h.agent().cwnd().value();
  for (std::int64_t s = h.agent().highest_ack() + 1; s <= 12; ++s) {
    h.ack_rtt(s, 0.100);
  }
  EXPECT_LT(h.agent().cwnd().value(), before + 1.0);
  EXPECT_DOUBLE_EQ(h.agent().ssthresh().value(), 2.0);  // CA from now on
}

TEST(TcpVegasTest, CongestionAvoidanceNudgesWindow) {
  VegasHarness h;
  h.start();
  h.run_ms(500);
  // Drive into CA with a known base RTT.
  h.ack_rtt(0, 0.050);
  for (std::int64_t s = 1; s <= 12; ++s) h.ack_rtt(s, 0.100);
  ASSERT_DOUBLE_EQ(h.agent().ssthresh().value(), 2.0);
  double cwnd = h.agent().cwnd().value();

  // RTT back to base: diff ~ 0 < alpha => +1 at the next epoch boundary.
  std::int64_t upto = h.agent().highest_ack() + 8;
  for (std::int64_t s = h.agent().highest_ack() + 1; s <= upto; ++s) {
    h.ack_rtt(s, 0.050);
  }
  EXPECT_GT(h.agent().cwnd().value(), cwnd);

  // Large queueing: diff > beta => -1 per epoch. The first boundary may
  // still contain old base-RTT samples, so give it several epochs.
  double high = h.agent().cwnd().value();
  upto = h.agent().highest_ack() + 40;
  for (std::int64_t s = h.agent().highest_ack() + 1; s <= upto; ++s) {
    h.ack_rtt(s, 0.300);
  }
  EXPECT_LT(h.agent().cwnd().value(), high);
}

TEST(TcpVegasTest, LossReductionGentlerThanReno) {
  VegasHarness h;
  h.start();
  h.run_ms(500);
  h.ack_rtt(0, 0.050);
  h.ack_rtt(1, 0.050);
  h.ack_rtt(2, 0.050);
  h.ack_rtt(3, 0.050);
  double before = h.agent().cwnd().value();
  h.dup_acks(h.agent().highest_ack(), 3);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_NEAR(h.agent().cwnd().value(), std::max(before * 0.75, 2.0), 1e-9);
}

}  // namespace
}  // namespace muzha
