// Base TCP sender machinery and the four baseline variants, expressed as
// expect/inject step scripts (tests/harness). Cycle-exact per-variant
// conformance suites live in tests/conformance; this file covers base-class
// behaviour (windowing, RTO, Karn, listeners) plus one script per variant.
#include "tcp/tcp_variants.h"

#include <gtest/gtest.h>

#include <vector>

#include "tcp/tcp_vegas.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

template <class H>
void ack_each(H& h, std::int64_t upto) {
  for (std::int64_t s = 0; s <= upto; ++s) h << InjectAck{.seq = s};
}

// ---------------------------------------------------------------------------
// Base sender machinery (exercised through TcpNewReno)
// ---------------------------------------------------------------------------

TEST(TcpBase, StartSendsInitialWindow) {
  StepHarness<TcpNewReno> h;
  h << Push{}                                     // initial cwnd 1
    << ExpectSegment{.seq = 0, .is_retx = false}  //
    << ExpectNoSegment{}                          //
    << ExpectNextSeq{1};
  EXPECT_EQ(h.agent().packets_sent(), 1u);
}

TEST(TcpBase, WindowCapRespected) {
  TcpConfig cfg;
  cfg.window = 4;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 20);  // grow cwnd well past the cap
  h << ExpectNextSeq{25};  // never more than window_ = 4 outstanding
  EXPECT_GT(h.agent().cwnd().value(), 4.0);
  EXPECT_LE(h.agent().next_seq() - 1 - h.agent().highest_ack(), 4);
}

TEST(TcpBase, MaxPacketsStopsTheSource) {
  TcpConfig cfg;
  cfg.max_packets = 5;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 3);
  h << DrainSegments{}      //
    << InjectAck{.seq = 4}  // the source is out of data
    << ExpectNoSegment{}    //
    << ExpectNextSeq{5};
  EXPECT_EQ(h.agent().packets_sent(), 5u);
}

TEST(TcpBase, CumulativeAckAdvancesPastHoles) {
  TcpConfig cfg;
  cfg.window = 16;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 3);
  // A single ACK can acknowledge several segments at once.
  h << InjectAck{.seq = 6} << ExpectHighestAck{6};
}

TEST(TcpBase, RetransmissionTimeoutCollapsesWindow) {
  TcpConfig cfg;
  cfg.window = 16;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 7);  // cwnd 9, segments 8..16 outstanding
  h << ExpectCwnd{9.0} << DrainSegments{}
    // No more ACKs: the RTO (initial 3 s) fires.
    << Tick{Seconds(4.0)}                        //
    << ExpectRtoBackoff{1}                       //
    << ExpectCwnd{1.0}                           //
    << ExpectSegment{.seq = 8, .is_retx = true}  // go-back-N resend
    << ExpectNoSegment{};
  EXPECT_EQ(h.agent().timeouts(), 1u);
}

TEST(TcpBase, RttSampleFeedsEstimator) {
  StepHarness<TcpNewReno> h;
  h << Push{} << Tick{Seconds(0.05)}             //
    << InjectAck{.seq = 0, .rtt = Seconds(0.04)} //
    << ExpectRtoHasSample{true}                  //
    << ExpectSrtt{Seconds(0.04)};
}

TEST(TcpBase, KarnRuleSkipsRetransmittedSegments) {
  TcpConfig cfg;
  cfg.window = 8;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{}                                     //
    << Tick{Seconds(4.0)}                         // timeout: segment 0 retx
    << DrainSegments{}
    // The ACK for a retransmitted segment is ambiguous: never sampled.
    << InjectAck{.seq = 0, .rtt = Seconds(0.04)}  //
    << ExpectRtoHasSample{false};
  ASSERT_GE(h.agent().retransmissions(), 1u);
}

TEST(TcpBase, CwndListenerFiresOnChange) {
  StepHarness<TcpNewReno> h;
  std::vector<double> values;
  h.agent().set_cwnd_listener(
      [&](SimTime, double v) { values.push_back(v); });
  h << Push{};
  ack_each(h, 3);
  ASSERT_GE(values.size(), 3u);
  EXPECT_LT(values.front(), values.back());
}

// ---------------------------------------------------------------------------
// Slow start / congestion avoidance (Reno-family growth)
// ---------------------------------------------------------------------------

TEST(TcpGrowth, SlowStartAddsOneSegmentPerAck) {
  TcpConfig cfg;
  cfg.window = 64;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 6);  // +1 per ACK: cwnd = 1 + 7
  h << ExpectCwnd{8.0} << ExpectState{TcpPhase::kSlowStart};
}

TEST(TcpGrowth, CongestionAvoidanceIsLinear) {
  TcpConfig cfg;
  cfg.window = 64;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{};
  ack_each(h, 6);  // cwnd 8
  h << DrainSegments{}
    // Cross a timeout: ssthresh = cwnd/2 = 4, cwnd restarts at 1.
    << Tick{Seconds(4.0)}                        //
    << ExpectCwnd{1.0} << ExpectSsthresh{4.0}    //
    << ExpectSegment{.seq = 7, .is_retx = true}  //
    << InjectAck{.seq = 7} << InjectAck{.seq = 8} << InjectAck{.seq = 9}
    << ExpectCwnd{4.0}                            // slow start up to ssthresh
    << ExpectState{TcpPhase::kCongestionAvoidance}
    << InjectAck{.seq = 10}                       //
    << ExpectCwnd{4.25};                          // then +1/cwnd per ACK
}

// ---------------------------------------------------------------------------
// Tahoe
// ---------------------------------------------------------------------------

TEST(TcpTahoeTest, TripleDupAckRestartsSlowStart) {
  StepHarness<TcpTahoe> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << ExpectSegment{.seq = 10, .is_retx = true}  //
    << ExpectCwnd{1.0}                            // no fast recovery
    << ExpectSsthresh{5.5}                        //
    << ExpectNoSegment{};
  EXPECT_EQ(h.agent().retransmissions(), 1u);
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

TEST(TcpRenoTest, FastRecoveryHalvesAndInflates) {
  StepHarness<TcpReno> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << ExpectState{TcpPhase::kFastRecovery}       //
    << ExpectSsthresh{5.5} << ExpectCwnd{8.5}     // ssthresh + 3
    << ExpectSegment{.seq = 10, .is_retx = true}  //
    << InjectAck{.seq = 9}                        // additional dups inflate
    << ExpectCwnd{9.5}
    // The recovery-exiting ACK deflates to ssthresh.
    << InjectAck{.seq = 20}                        //
    << ExpectState{TcpPhase::kCongestionAvoidance} //
    << ExpectCwnd{5.5};
}

TEST(TcpRenoTest, BelowThresholdDupAcksDoNothing) {
  StepHarness<TcpReno> h;
  h << Push{};
  ack_each(h, 9);
  h << ExpectCwnd{11.0} << DrainSegments{}           //
    << InjectAck{.seq = 9} << InjectAck{.seq = 9}    //
    << ExpectDupacks{2} << ExpectCwnd{11.0}          //
    << ExpectState{TcpPhase::kSlowStart}             // not in recovery
    << ExpectNoSegment{};
  EXPECT_EQ(h.agent().retransmissions(), 0u);
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

TEST(TcpNewRenoTest, PartialAckRetransmitsNextHoleWithoutExiting) {
  StepHarness<TcpNewReno> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11, recovery point will be 20
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << ExpectSegment{.seq = 10, .is_retx = true}  //
    << InjectAck{.seq = 12}                       // partial: below 20
    << ExpectSegment{.seq = 13, .is_retx = true}  //
    << ExpectState{TcpPhase::kFastRecovery}
    // Full ACK ends recovery and deflates to ssthresh.
    << InjectAck{.seq = 20}                        //
    << ExpectState{TcpPhase::kCongestionAvoidance} //
    << ExpectCwnd{5.5} << ExpectSsthresh{5.5};
}

TEST(TcpNewRenoTest, MultipleLossesRecoverWithoutTimeout) {
  StepHarness<TcpNewReno> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  // Three consecutive partial ACKs (three holes), then the full ACK.
  h << ExpectSegment{.seq = 10, .is_retx = true}                          //
    << InjectAck{.seq = 11} << ExpectSegment{.seq = 12, .is_retx = true}  //
    << InjectAck{.seq = 13} << ExpectSegment{.seq = 14, .is_retx = true}  //
    << InjectAck{.seq = 15} << ExpectSegment{.seq = 16, .is_retx = true}  //
    << InjectAck{.seq = 20}                                               //
    << ExpectState{TcpPhase::kCongestionAvoidance};
  EXPECT_EQ(h.agent().timeouts(), 0u);
  EXPECT_GE(h.agent().retransmissions(), 4u);
}

// ---------------------------------------------------------------------------
// SACK
// ---------------------------------------------------------------------------

TEST(TcpSackTest, ScoreboardTracksSackedBlocks) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}};
  }
  h << ExpectState{TcpPhase::kFastRecovery}  //
    << ExpectSackScoreboard{3};              // 12, 13, 14
}

TEST(TcpSackTest, RetransmitsOnlyHoles) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11; outstanding 10..20
  h << DrainSegments{};
  // Everything from 11..19 sacked: the holes are 10 and 20, nothing else.
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 9, .sack_blocks = {{11, 20}}};
  }
  h << ExpectSegment{.seq = 10, .is_retx = true}  //
    << ExpectSegment{.seq = 20, .is_retx = true}  //
    << ExpectNoSegment{}
    // Full ACK clears the scoreboard.
    << InjectAck{.seq = 20}                        //
    << ExpectSackScoreboard{0}                     //
    << ExpectState{TcpPhase::kCongestionAvoidance};
}

TEST(TcpSackTest, TimeoutClearsScoreboard) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 9, .sack_blocks = {{12, 18}}};
  }
  h << ExpectSackScoreboard{6}   //
    << Tick{Seconds(5.0)}        //
    << ExpectSackScoreboard{0}   //
    << ExpectCwnd{1.0};
  EXPECT_GE(h.agent().timeouts(), 1u);
}

// ---------------------------------------------------------------------------
// Vegas
// ---------------------------------------------------------------------------

TEST(TcpVegasTest, SlowStartDoublesEveryOtherRtt) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(0.5)}                            //
    << InjectAck{.seq = 0, .rtt = Seconds(0.05)}               //
    << ExpectCwnd{2.0}                                         // grow epoch
    << InjectAck{.seq = 1, .rtt = Seconds(0.05)}               //
    << InjectAck{.seq = 2, .rtt = Seconds(0.05)}               //
    << ExpectCwnd{2.0};                                        // hold epoch
}

TEST(TcpVegasTest, ExitsSlowStartWhenQueueingDetected) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(0.5)};
  for (std::int64_t s = 0; s <= 3; ++s) {
    h << InjectAck{.seq = s, .rtt = Seconds(0.05)};  // baseRTT 50 ms
  }
  h << ExpectCwnd{4.0}
    // RTT doubles: diff = 4 * (1 - 50/100) = 2 > gamma at the next epoch
    // boundary -> leave slow start with a cwnd/8 trim instead of a loss.
    << InjectAck{.seq = 4, .rtt = Seconds(0.1)}  //
    << InjectAck{.seq = 5, .rtt = Seconds(0.1)}  //
    << ExpectCwnd{3.5} << ExpectSsthresh{2.0}    //
    << ExpectState{TcpPhase::kCongestionAvoidance};
}

TEST(TcpVegasTest, CongestionAvoidanceNudgesWindow) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(0.5)};
  for (std::int64_t s = 0; s <= 3; ++s) {
    h << InjectAck{.seq = s, .rtt = Seconds(0.05)};
  }
  h << InjectAck{.seq = 4, .rtt = Seconds(0.1)}  //
    << InjectAck{.seq = 5, .rtt = Seconds(0.1)}  // into CA with cwnd 3.5
    << ExpectSsthresh{2.0}
    // RTT back to base: diff ~ 0 < alpha => +1 at the boundary (ACK 9).
    << InjectAck{.seq = 6, .rtt = Seconds(0.05)}  //
    << InjectAck{.seq = 7, .rtt = Seconds(0.05)}  //
    << InjectAck{.seq = 8, .rtt = Seconds(0.05)}  //
    << InjectAck{.seq = 9, .rtt = Seconds(0.05)}  //
    << ExpectCwnd{4.5}
    // Heavy queueing: diff = 4.5 * (1 - 50/300) > beta => -1 at ACK 12.
    << InjectAck{.seq = 10, .rtt = Seconds(0.3)}  //
    << InjectAck{.seq = 11, .rtt = Seconds(0.3)}  //
    << InjectAck{.seq = 12, .rtt = Seconds(0.3)}  //
    << ExpectCwnd{3.5};
}

TEST(TcpVegasTest, LossReductionGentlerThanReno) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(0.5)};
  for (std::int64_t s = 0; s <= 3; ++s) {
    h << InjectAck{.seq = s, .rtt = Seconds(0.05)};
  }
  h << ExpectCwnd{4.0} << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 3};
  h << ExpectState{TcpPhase::kFastRecovery}  //
    << ExpectCwnd{3.0}                       // 3/4 of cwnd, not 1/2
    << ExpectSegment{.seq = 4, .is_retx = true};
}

}  // namespace
}  // namespace muzha
