// Route diversity on the grid topology: unlike the chain, a broken link has
// alternatives, so AODV should route around a failed relay.
#include <gtest/gtest.h>

#include "routing/aodv.h"
#include "scenario/mobility.h"
#include "scenario/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"

namespace muzha {
namespace {

class GridTest : public ::testing::Test {
 protected:
  // 3x3 grid, 200 m spacing (neighbours in range, diagonals not):
  //   6 7 8
  //   3 4 5
  //   0 1 2
  GridTest() {
    net = std::make_unique<Network>(2);
    build_grid(*net, 3, 3, Meters(200.0));
    net->use_aodv();
  }

  std::unique_ptr<Network> net;
};

TEST_F(GridTest, CornerToCornerDelivers) {
  TcpConfig tc;
  tc.dst = net->node(8).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  tc.window = 8;
  TcpNewReno agent(net->sim(), net->node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net->sim(), net->node(8), sc);
  sink.start();
  net->sim().schedule_at(SimTime::zero(), [&] { agent.start(); });
  net->run_until(SimTime::from_seconds(10));
  EXPECT_GT(sink.delivered(), 100);
  // Shortest corner-to-corner path is 4 hops.
  auto& aodv = dynamic_cast<Aodv&>(net->node(0).routing());
  const Aodv::Route* r = aodv.find_route(net->node(8).id());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->hops, 4);
}

TEST_F(GridTest, RoutesAroundDepartedRelay) {
  TcpConfig tc;
  tc.dst = net->node(8).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  tc.window = 8;
  TcpNewReno agent(net->sim(), net->node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net->sim(), net->node(8), sc);
  sink.start();
  net->sim().schedule_at(SimTime::zero(), [&] { agent.start(); });
  net->run_until(SimTime::from_seconds(5));
  std::int64_t before = sink.delivered();
  ASSERT_GT(before, 50);

  // The centre node (4) leaves for good at t = 5 s. Edge paths
  // (0-1-2-5-8 / 0-3-6-7-8) remain available.
  net->node(4).device().phy().set_position({5000, 5000});

  net->run_until(SimTime::from_seconds(25));
  std::int64_t after = sink.delivered();
  // The flow found a way around (the detour is still 4 hops).
  EXPECT_GT(after, before + 100);
  auto& aodv = dynamic_cast<Aodv&>(net->node(0).routing());
  const Aodv::Route* r = aodv.find_route(net->node(8).id());
  ASSERT_NE(r, nullptr);
  // Whatever the new route, it cannot go through the departed centre.
  EXPECT_NE(r->next_hop, net->node(4).id());
}

TEST_F(GridTest, CrossTrafficOnDisjointPathsCoexists) {
  // Flow A: 0 -> 2 (bottom row); flow B: 6 -> 8 (top row). The rows are
  // 400 m apart: out of decode range, inside carrier-sense range.
  TcpConfig ta;
  ta.dst = net->node(2).id();
  ta.src_port = 1000;
  ta.dst_port = 2000;
  ta.window = 8;
  TcpNewReno a(net->sim(), net->node(0), ta);
  TcpSink::Config sa;
  sa.port = 2000;
  TcpSink sink_a(net->sim(), net->node(2), sa);
  sink_a.start();

  TcpConfig tb;
  tb.dst = net->node(8).id();
  tb.src_port = 1001;
  tb.dst_port = 2001;
  tb.window = 8;
  TcpNewReno b(net->sim(), net->node(6), tb);
  TcpSink::Config sb;
  sb.port = 2001;
  TcpSink sink_b(net->sim(), net->node(8), sb);
  sink_b.start();

  net->sim().schedule_at(SimTime::zero(), [&] { a.start(); });
  net->sim().schedule_at(SimTime::zero(), [&] { b.start(); });
  net->run_until(SimTime::from_seconds(15));
  EXPECT_GT(sink_a.delivered(), 100);
  EXPECT_GT(sink_b.delivered(), 100);
}

}  // namespace
}  // namespace muzha
