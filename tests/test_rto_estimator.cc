#include "tcp/rto_estimator.h"

#include <gtest/gtest.h>

namespace muzha {
namespace {

TEST(RtoEstimator, StartsAtInitialRto) {
  RtoEstimator e;
  EXPECT_EQ(e.rto(), SimTime::from_seconds(3.0));
  EXPECT_FALSE(e.has_sample());
}

TEST(RtoEstimator, FirstSampleInitializesSrttAndVar) {
  RtoEstimator e;
  e.sample(SimTime::from_ms(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), SimTime::from_ms(100));
  EXPECT_EQ(e.rttvar(), SimTime::from_ms(50));
  // RTO = srtt + 4*rttvar = 300 ms.
  EXPECT_EQ(e.rto(), SimTime::from_ms(300));
}

TEST(RtoEstimator, ConvergesTowardStableRtt) {
  RtoEstimator e;
  for (int i = 0; i < 100; ++i) e.sample(SimTime::from_ms(80));
  EXPECT_NEAR(e.srtt().to_seconds(), 0.080, 0.001);
  // Variance decays toward zero; RTO clamps at the floor.
  EXPECT_EQ(e.rto(), SimTime::from_ms(200));
}

TEST(RtoEstimator, SpikesInflateRto) {
  RtoEstimator e;
  for (int i = 0; i < 20; ++i) e.sample(SimTime::from_ms(50));
  SimTime before = e.rto();
  e.sample(SimTime::from_ms(500));
  EXPECT_GT(e.rto(), before);
}

TEST(RtoEstimator, BackoffDoublesAndClampsAtMax) {
  RtoConfig cfg;
  cfg.max_rto = SimTime::from_seconds(10.0);
  RtoEstimator e(cfg);
  EXPECT_EQ(e.rto(), SimTime::from_seconds(3.0));
  e.backoff();
  EXPECT_EQ(e.rto(), SimTime::from_seconds(6.0));
  e.backoff();
  EXPECT_EQ(e.rto(), SimTime::from_seconds(10.0));  // clamped
  e.backoff();
  EXPECT_EQ(e.rto(), SimTime::from_seconds(10.0));
}

TEST(RtoEstimator, MinRtoFloorRespected) {
  RtoConfig cfg;
  cfg.min_rto = SimTime::from_ms(500);
  RtoEstimator e(cfg);
  for (int i = 0; i < 50; ++i) e.sample(SimTime::from_ms(10));
  EXPECT_EQ(e.rto(), SimTime::from_ms(500));
}

TEST(RtoEstimator, BackoffExponentCountsConsecutiveTimeouts) {
  RtoEstimator e;
  EXPECT_EQ(e.backoff_exponent(), 0);
  e.backoff();
  e.backoff();
  EXPECT_EQ(e.backoff_exponent(), 2);
  // A fresh sample ends the series and recomputes the RTO from it.
  e.sample(SimTime::from_ms(100));
  EXPECT_EQ(e.backoff_exponent(), 0);
  EXPECT_EQ(e.rto(), SimTime::from_ms(300));
}

TEST(RtoEstimator, ResetBackoffRestoresEstimate) {
  RtoEstimator e;
  e.sample(SimTime::from_ms(100));  // rto 300 ms
  e.backoff();
  e.backoff();
  EXPECT_EQ(e.rto(), SimTime::from_ms(1200));
  e.reset_backoff();
  EXPECT_EQ(e.rto(), SimTime::from_ms(300));
  EXPECT_EQ(e.backoff_exponent(), 0);
}

TEST(RtoEstimator, ResetBackoffWithoutSampleRestoresInitialRto) {
  RtoEstimator e;
  e.backoff();
  EXPECT_EQ(e.rto(), SimTime::from_seconds(6.0));
  e.reset_backoff();
  EXPECT_EQ(e.rto(), SimTime::from_seconds(3.0));
}

TEST(RtoEstimator, ResetBackoffIsNoOpOutsideASeries) {
  RtoEstimator e;
  e.sample(SimTime::from_ms(100));
  e.sample(SimTime::from_ms(200));
  SimTime before = e.rto();
  e.reset_backoff();  // exponent 0: must not clobber the fresh estimate
  EXPECT_EQ(e.rto(), before);
}

TEST(RtoEstimator, EwmaWeightsMatchRfc6298) {
  RtoEstimator e;
  e.sample(SimTime::from_ms(100));
  e.sample(SimTime::from_ms(200));
  // srtt = 0.875*100 + 0.125*200 = 112.5 ms
  EXPECT_NEAR(e.srtt().to_seconds(), 0.1125, 1e-6);
  // rttvar = 0.75*50 + 0.25*|200-100| = 62.5 ms
  EXPECT_NEAR(e.rttvar().to_seconds(), 0.0625, 1e-6);
}

}  // namespace
}  // namespace muzha
