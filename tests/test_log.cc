#include "sim/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace muzha {
namespace {

std::string capture(Logger& lg, LogLevel level, const char* msg) {
  std::string path = "/tmp/muzha_log_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  lg.set_sink(f);
  lg.log(level, SimTime::from_seconds(1.5), "mac", "%s", msg);
  std::fclose(f);
  lg.set_sink(nullptr);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(Logger, DefaultLevelSuppressesDebug) {
  Logger lg;
  EXPECT_FALSE(lg.enabled(LogLevel::kDebug));
  EXPECT_TRUE(lg.enabled(LogLevel::kWarn));
  EXPECT_TRUE(lg.enabled(LogLevel::kError));
  EXPECT_EQ(capture(lg, LogLevel::kDebug, "hidden"), "");
}

TEST(Logger, FormatsTimeComponentAndMessage) {
  Logger lg;
  std::string line = capture(lg, LogLevel::kError, "boom 42");
  EXPECT_NE(line.find("1.500000"), std::string::npos);
  EXPECT_NE(line.find("ERROR"), std::string::npos);
  EXPECT_NE(line.find("mac"), std::string::npos);
  EXPECT_NE(line.find("boom 42"), std::string::npos);
}

TEST(Logger, LevelChangeTakesEffect) {
  Logger lg;
  lg.set_level(LogLevel::kTrace);
  EXPECT_TRUE(lg.enabled(LogLevel::kDebug));
  EXPECT_NE(capture(lg, LogLevel::kDebug, "now visible"), "");
  lg.set_level(LogLevel::kOff);
  EXPECT_FALSE(lg.enabled(LogLevel::kError));
}

}  // namespace
}  // namespace muzha
