// The MUZHA_DCHECK invariant layer: enabled it must abort on violation; in
// release builds it must compile out completely — the condition is not even
// evaluated, so instrumentation on hot paths is free.
#include <gtest/gtest.h>

#include "phy/channel.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "pkt/packet_arena.h"
#include "sim/assert.h"
#include "sim/sim_time.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace muzha {
namespace {

TEST(Dcheck, ConditionIsNotEvaluatedWhenCompiledOut) {
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  MUZHA_DCHECK(probe(), "probe must only run when the layer is enabled");
#if MUZHA_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(AssertDeathTest, MuzhaAssertIsAlwaysOn) {
  EXPECT_DEATH(MUZHA_ASSERT(false, "always-on tier"), "MUZHA_ASSERT failed");
}

#if MUZHA_DCHECK_ENABLED

TEST(DcheckDeathTest, FailingInvariantAborts) {
  EXPECT_DEATH(MUZHA_DCHECK(1 == 2, "impossible"), "MUZHA_DCHECK failed");
}

TEST(DcheckDeathTest, NegativeTimerDelayIsCaught) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_DEATH(t.schedule_in(SimTime::from_ns(-1)), "non-negative");
}

TEST(DcheckDeathTest, WrongLayerHeaderAccessIsCaught) {
  std::uint64_t uid = 0;
  PacketPtr p = make_packet(uid);  // l4 is monostate: no TCP header
  EXPECT_DEATH(p->tcp(), "layer discipline");
}

TEST(DcheckDeathTest, PacketArenaDoubleFreeIsCaught) {
  EXPECT_DEATH(
      {
        PacketArena arena;
        Packet* p = arena.allocate();
        arena.release(p);
        arena.release(p);
      },
      "double free");
}

TEST(DcheckDeathTest, ChannelDoubleAttachIsCaught) {
  Simulator sim;
  Channel channel(sim, PhyParams{});
  WirelessPhy phy(sim, channel, 0, {0.0, 0.0});  // ctor attaches
  EXPECT_DEATH(channel.attach(phy), "attached twice");
}

TEST(DcheckDeathTest, SackListOverflowIsCaught) {
  SackList sacks;
  for (int i = 0; i < kMaxSackBlocks; ++i) sacks.push_back({i, i + 1});
  EXPECT_DEATH(sacks.push_back({99, 100}), "SackList overflow");
}

#endif  // MUZHA_DCHECK_ENABLED

}  // namespace
}  // namespace muzha
