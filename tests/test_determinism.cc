// Determinism guard: the same (config, seed) run twice back-to-back in one
// process must produce byte-identical ExperimentResults. Any hidden static
// state (a global counter, a shared cache, a leaked logging sink) carried
// from the first run into the second shows up here as a diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "scenario/batch_runner.h"
#include "scenario/city.h"
#include "scenario/experiment.h"
#include "tests/experiment_equal.h"
#include "tests/experiment_hash.h"

namespace muzha {
namespace {

using muzha::testing::city_golden_config;
using muzha::testing::expect_results_identical;
using muzha::testing::fnv1a_u64;
using muzha::testing::hash_result;
using muzha::testing::hash_series;
using muzha::testing::kGoldenCityHash;

void expect_rerun_identical(const ExperimentConfig& cfg) {
  ExperimentResult first = run_experiment(cfg);
  ExperimentResult second = run_experiment(cfg);
  expect_results_identical(first, second);
}

TEST(Determinism, ChainScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 11;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 8});
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::from_seconds(2.0), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, CrossScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kCross;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 23;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 32});
  cfg.flows.push_back({TcpVariant::kVegas, 5, 8, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RandomLossScenarioIsRepeatableInProcess) {
  // Exercises the channel error-model RNG path on top of MAC backoff draws.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 31;
  cfg.uniform_error_rate = 0.03;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RedEcnScenarioIsRepeatableInProcess) {
  // RED keeps its own average-queue state; a leak across runs would skew
  // marking in the rerun.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 17;
  cfg.flows.push_back({TcpVariant::kNewRenoEcn, 0, 3, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, InterleavedDifferentConfigsDoNotContaminate) {
  // Run A, then B, then A again: the second A must match the first even
  // though an unrelated simulation executed in between.
  ExperimentConfig a;
  a.hops = 3;
  a.duration = SimTime::from_seconds(6.0);
  a.seed = 5;
  a.flows.push_back({TcpVariant::kSack, 0, 3, SimTime::zero(), 8});

  ExperimentConfig b;
  b.topology = TopologyKind::kCross;
  b.hops = 4;
  b.duration = SimTime::from_seconds(6.0);
  b.seed = 6;
  b.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  b.flows.push_back({TcpVariant::kMuzha, 5, 8, SimTime::zero(), 8});

  ExperimentResult first = run_experiment(a);
  run_experiment(b);
  ExperimentResult again = run_experiment(a);
  expect_results_identical(first, again);
}

// ---------------------------------------------------------------------------
// Golden pin: one 3-hop Muzha chain with every metric frozen in-test.
//
// The rerun tests above catch state leaks *within* a process but would not
// notice if a code change shifted every run identically. These constants
// were captured before the indexed-heap scheduler rewrite and must survive
// any event-core change bit-for-bit: the (time, seq) FIFO contract promises
// the exact same event interleaving, RNG draw order and therefore the exact
// same floating-point metric stream. If an intentional protocol change
// shifts them, re-capture and update the constants in the same commit.

// fnv1a_u64 / hash_series / hash_result now live in
// tests/experiment_hash.h, shared with the shard suite (test_shard.cc),
// which must reproduce the same hashes through the sharded engine.

TEST(Determinism, GoldenThreeHopMuzhaChainPinned) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});

  ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  const FlowResult& f = r.flows[0];

  EXPECT_EQ(f.delivered, 272);
  EXPECT_EQ(f.packets_sent, 274u);
  EXPECT_EQ(f.retransmissions, 0u);
  EXPECT_EQ(f.timeouts, 0u);
  EXPECT_EQ(f.marked_loss_events, 0u);
  EXPECT_EQ(f.unmarked_loss_events, 0u);
  EXPECT_EQ(r.ifq_drops, 0u);
  EXPECT_EQ(r.mac_retry_drops, 2u);
  EXPECT_EQ(r.phy_collisions, 267u);
  EXPECT_EQ(r.channel_error_losses, 0u);

  // Throughput compared on exact bits, not with a tolerance: determinism
  // means the double is identical, not merely close.
  std::uint64_t tput_bits;
  std::memcpy(&tput_bits, &f.throughput, 8);
  EXPECT_EQ(tput_bits, 0x41183d0000000000ull);

  ASSERT_EQ(f.cwnd_trace.size(), 64u);
  EXPECT_EQ(hash_series(f.cwnd_trace), 0xfa87cfb1cab94ea9ull);
  ASSERT_EQ(f.throughput_series.size(), 8u);
  EXPECT_EQ(hash_series(f.throughput_series), 0x040b1a758d6fefd1ull);
}

// The spatial-index channel (the default above) must reproduce the golden
// chain bit-for-bit under the brute-force reference scan too: the index is a
// pure lookup-structure change, invisible to the event schedule.
TEST(Determinism, GoldenChainIdenticalUnderBruteForceChannel) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});

  ExperimentResult indexed = run_experiment(cfg);
  cfg.brute_force_channel = true;
  ExperimentResult brute = run_experiment(cfg);
  expect_results_identical(indexed, brute);
}

// ---------------------------------------------------------------------------
// City-scale golden pin: a 200-node mobile random-waypoint field. This is
// the scenario class the spatial index exists for; the pin freezes the full
// pipeline (placement RNG, waypoint draws, grid maintenance under motion,
// AODV churn) in one number set. Captured with the spatial index enabled;
// the brute-force cross-check below proves the numbers are mode-independent.

TEST(Determinism, GoldenCityFieldPinned) {
  ExperimentResult r = run_experiment(city_golden_config());
  ASSERT_EQ(r.flows.size(), 4u);
  // Golden constant captured at pin time (seed 42, flow_seed 7; the config
  // and hash live in tests/experiment_hash.h). If an intentional protocol
  // or scenario-generator change shifts it, re-capture and update in the
  // same commit.
  EXPECT_EQ(hash_result(r), kGoldenCityHash);
}

TEST(Determinism, GoldenCityFieldIdenticalUnderBruteForceChannel) {
  ExperimentConfig cfg = city_golden_config();
  ExperimentResult indexed = run_experiment(cfg);
  cfg.brute_force_channel = true;
  ExperimentResult brute = run_experiment(cfg);
  expect_results_identical(indexed, brute);
}

TEST(Determinism, CityBatchIsJobsInvariant) {
  // Same city sweep on 1 worker and on 8: bitwise-identical results, the
  // test_batch_runner contract extended to the field topologies.
  auto build = [](int jobs) {
    BatchRunner runner({jobs, 2, 99});
    CityConfig city;
    city.field.nodes = 60;
    city.field.width = Meters(1500.0);
    city.field.height = Meters(1500.0);
    city.placement = TopologyKind::kManhattanGrid;
    city.ftp_flows = 2;
    city.duration = SimTime::from_seconds(5.0);
    city.flow_seed = 3;
    runner.add_point(make_city_config(city));
    city.placement = TopologyKind::kRandomField;
    runner.add_point(make_city_config(city));
    return runner.run();
  };
  auto one = build(1);
  auto eight = build(8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t p = 0; p < one.size(); ++p) {
    ASSERT_EQ(one[p].size(), eight[p].size());
    for (std::size_t rep = 0; rep < one[p].size(); ++rep) {
      expect_results_identical(one[p][rep], eight[p][rep]);
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation-layout perturbation: rerunning under a deliberately scrambled
// heap must still be byte-identical.
//
// The rerun tests above execute both runs on a near-identical heap, so a
// hazard that keys behavior off pointer *values* (pointer-keyed maps,
// hash<T*>, unordered buckets whose layout tracks allocation history) can
// pass them by accident. Between the two runs here we churn the allocator
// with thousands of varied-size blocks and keep a deterministic subset of
// them alive across the second run, so every node/agent/packet pool lands at
// different addresses. Only address-independent state survives this.

TEST(Determinism, RepeatableUnderPerturbedAllocation) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});

  ExperimentResult first = run_experiment(cfg);

  // Deterministic churn (no RNG): sizes cycle through a fixed pattern, every
  // third block stays alive so freed holes fragment the size classes the
  // simulator allocates from.
  std::vector<std::unique_ptr<char[]>> pins;
  pins.reserve(4096 / 3 + 1);
  for (int i = 0; i < 4096; ++i) {
    std::size_t size = 16 + static_cast<std::size_t>((i * 37) % 4013);
    auto block = std::make_unique<char[]>(size);
    block[0] = static_cast<char>(i);  // touch it so it is really committed
    if (i % 3 == 0) pins.push_back(std::move(block));
  }

  ExperimentResult second = run_experiment(cfg);
  expect_results_identical(first, second);
}

}  // namespace
}  // namespace muzha
