// Determinism guard: the same (config, seed) run twice back-to-back in one
// process must produce byte-identical ExperimentResults. Any hidden static
// state (a global counter, a shared cache, a leaked logging sink) carried
// from the first run into the second shows up here as a diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "scenario/experiment.h"
#include "tests/experiment_equal.h"

namespace muzha {
namespace {

using muzha::testing::expect_results_identical;

void expect_rerun_identical(const ExperimentConfig& cfg) {
  ExperimentResult first = run_experiment(cfg);
  ExperimentResult second = run_experiment(cfg);
  expect_results_identical(first, second);
}

TEST(Determinism, ChainScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 11;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 8});
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::from_seconds(2.0), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, CrossScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kCross;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 23;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 32});
  cfg.flows.push_back({TcpVariant::kVegas, 5, 8, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RandomLossScenarioIsRepeatableInProcess) {
  // Exercises the channel error-model RNG path on top of MAC backoff draws.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 31;
  cfg.uniform_error_rate = 0.03;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RedEcnScenarioIsRepeatableInProcess) {
  // RED keeps its own average-queue state; a leak across runs would skew
  // marking in the rerun.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 17;
  cfg.flows.push_back({TcpVariant::kNewRenoEcn, 0, 3, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, InterleavedDifferentConfigsDoNotContaminate) {
  // Run A, then B, then A again: the second A must match the first even
  // though an unrelated simulation executed in between.
  ExperimentConfig a;
  a.hops = 3;
  a.duration = SimTime::from_seconds(6.0);
  a.seed = 5;
  a.flows.push_back({TcpVariant::kSack, 0, 3, SimTime::zero(), 8});

  ExperimentConfig b;
  b.topology = TopologyKind::kCross;
  b.hops = 4;
  b.duration = SimTime::from_seconds(6.0);
  b.seed = 6;
  b.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  b.flows.push_back({TcpVariant::kMuzha, 5, 8, SimTime::zero(), 8});

  ExperimentResult first = run_experiment(a);
  run_experiment(b);
  ExperimentResult again = run_experiment(a);
  expect_results_identical(first, again);
}

// ---------------------------------------------------------------------------
// Golden pin: one 3-hop Muzha chain with every metric frozen in-test.
//
// The rerun tests above catch state leaks *within* a process but would not
// notice if a code change shifted every run identically. These constants
// were captured before the indexed-heap scheduler rewrite and must survive
// any event-core change bit-for-bit: the (time, seq) FIFO contract promises
// the exact same event interleaving, RNG draw order and therefore the exact
// same floating-point metric stream. If an intentional protocol change
// shifts them, re-capture and update the constants in the same commit.

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_series(const TimeSeries& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::uint64_t t_bits, v_bits;
    std::memcpy(&t_bits, &s[i].t, 8);
    std::memcpy(&v_bits, &s[i].value, 8);
    h = fnv1a_u64(h, t_bits);
    h = fnv1a_u64(h, v_bits);
  }
  return h;
}

TEST(Determinism, GoldenThreeHopMuzhaChainPinned) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});

  ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  const FlowResult& f = r.flows[0];

  EXPECT_EQ(f.delivered, 272);
  EXPECT_EQ(f.packets_sent, 274u);
  EXPECT_EQ(f.retransmissions, 0u);
  EXPECT_EQ(f.timeouts, 0u);
  EXPECT_EQ(f.marked_loss_events, 0u);
  EXPECT_EQ(f.unmarked_loss_events, 0u);
  EXPECT_EQ(r.ifq_drops, 0u);
  EXPECT_EQ(r.mac_retry_drops, 2u);
  EXPECT_EQ(r.phy_collisions, 267u);
  EXPECT_EQ(r.channel_error_losses, 0u);

  // Throughput compared on exact bits, not with a tolerance: determinism
  // means the double is identical, not merely close.
  std::uint64_t tput_bits;
  std::memcpy(&tput_bits, &f.throughput, 8);
  EXPECT_EQ(tput_bits, 0x41183d0000000000ull);

  ASSERT_EQ(f.cwnd_trace.size(), 64u);
  EXPECT_EQ(hash_series(f.cwnd_trace), 0xfa87cfb1cab94ea9ull);
  ASSERT_EQ(f.throughput_series.size(), 8u);
  EXPECT_EQ(hash_series(f.throughput_series), 0x040b1a758d6fefd1ull);
}

// ---------------------------------------------------------------------------
// Allocation-layout perturbation: rerunning under a deliberately scrambled
// heap must still be byte-identical.
//
// The rerun tests above execute both runs on a near-identical heap, so a
// hazard that keys behavior off pointer *values* (pointer-keyed maps,
// hash<T*>, unordered buckets whose layout tracks allocation history) can
// pass them by accident. Between the two runs here we churn the allocator
// with thousands of varied-size blocks and keep a deterministic subset of
// them alive across the second run, so every node/agent/packet pool lands at
// different addresses. Only address-independent state survives this.

TEST(Determinism, RepeatableUnderPerturbedAllocation) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});

  ExperimentResult first = run_experiment(cfg);

  // Deterministic churn (no RNG): sizes cycle through a fixed pattern, every
  // third block stays alive so freed holes fragment the size classes the
  // simulator allocates from.
  std::vector<std::unique_ptr<char[]>> pins;
  pins.reserve(4096 / 3 + 1);
  for (int i = 0; i < 4096; ++i) {
    std::size_t size = 16 + static_cast<std::size_t>((i * 37) % 4013);
    auto block = std::make_unique<char[]>(size);
    block[0] = static_cast<char>(i);  // touch it so it is really committed
    if (i % 3 == 0) pins.push_back(std::move(block));
  }

  ExperimentResult second = run_experiment(cfg);
  expect_results_identical(first, second);
}

}  // namespace
}  // namespace muzha
