// Determinism guard: the same (config, seed) run twice back-to-back in one
// process must produce byte-identical ExperimentResults. Any hidden static
// state (a global counter, a shared cache, a leaked logging sink) carried
// from the first run into the second shows up here as a diff.
#include <gtest/gtest.h>

#include "scenario/experiment.h"
#include "tests/experiment_equal.h"

namespace muzha {
namespace {

using muzha::testing::expect_results_identical;

void expect_rerun_identical(const ExperimentConfig& cfg) {
  ExperimentResult first = run_experiment(cfg);
  ExperimentResult second = run_experiment(cfg);
  expect_results_identical(first, second);
}

TEST(Determinism, ChainScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 11;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 8});
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::from_seconds(2.0), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, CrossScenarioIsRepeatableInProcess) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kCross;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 23;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 32});
  cfg.flows.push_back({TcpVariant::kVegas, 5, 8, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RandomLossScenarioIsRepeatableInProcess) {
  // Exercises the channel error-model RNG path on top of MAC backoff draws.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 31;
  cfg.uniform_error_rate = 0.03;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});
  expect_rerun_identical(cfg);
}

TEST(Determinism, RedEcnScenarioIsRepeatableInProcess) {
  // RED keeps its own average-queue state; a leak across runs would skew
  // marking in the rerun.
  ExperimentConfig cfg;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(8.0);
  cfg.seed = 17;
  cfg.flows.push_back({TcpVariant::kNewRenoEcn, 0, 3, SimTime::zero(), 32});
  expect_rerun_identical(cfg);
}

TEST(Determinism, InterleavedDifferentConfigsDoNotContaminate) {
  // Run A, then B, then A again: the second A must match the first even
  // though an unrelated simulation executed in between.
  ExperimentConfig a;
  a.hops = 3;
  a.duration = SimTime::from_seconds(6.0);
  a.seed = 5;
  a.flows.push_back({TcpVariant::kSack, 0, 3, SimTime::zero(), 8});

  ExperimentConfig b;
  b.topology = TopologyKind::kCross;
  b.hops = 4;
  b.duration = SimTime::from_seconds(6.0);
  b.seed = 6;
  b.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  b.flows.push_back({TcpVariant::kMuzha, 5, 8, SimTime::zero(), 8});

  ExperimentResult first = run_experiment(a);
  run_experiment(b);
  ExperimentResult again = run_experiment(a);
  expect_results_identical(first, again);
}

}  // namespace
}  // namespace muzha
