// Unit tests for the TCP Muzha sender: Table 4.1's event/behaviour matrix
// and the Table 5.2 multi-level rate adjustment.
#include "core/tcp_muzha.h"

#include <gtest/gtest.h>

#include "tests/tcp_test_harness.h"

namespace muzha {
namespace {

TEST(TcpMuzhaTest, StartsInCongestionAvoidanceWithWindowTwo) {
  TcpHarness<TcpMuzha> h;
  h.start();
  // No slow start: the session begins with cwnd 2 in CA.
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 2.0);
  EXPECT_EQ(h.agent().next_seq(), 2);
}

TEST(TcpMuzhaTest, ModerateAccelerationAddsOnePerRtt) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiModerateAccel);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 3.0);
  EXPECT_EQ(h.agent().rate_adjustments(), 1u);
  EXPECT_EQ(h.agent().last_epoch_mrai(), kDraiModerateAccel);
}

TEST(TcpMuzhaTest, AggressiveAccelerationDoublesPerRtt) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 4.0);
}

TEST(TcpMuzhaTest, StabilizeHoldsWindow) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiStabilize);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 2.0);
}

TEST(TcpMuzhaTest, ModerateDecelerationSubtractsOne) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiModerateAccel);  // cwnd 3
  h.ack_each_up_to(h.agent().next_seq() - 1, kDraiModerateDecel);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 2.0);
}

TEST(TcpMuzhaTest, AggressiveDecelerationHalves) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);  // cwnd 4
  h.ack_each_up_to(h.agent().next_seq() - 1, kDraiAggressiveDecel);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 2.0);
}

TEST(TcpMuzhaTest, WindowNeverFallsBelowOne) {
  TcpHarness<TcpMuzha> h;
  h.start();
  for (int i = 0; i < 6; ++i) {
    h.ack_each_up_to(h.agent().next_seq() - 1, kDraiAggressiveDecel);
  }
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
}

TEST(TcpMuzhaTest, AppliesMostConservativeMraiOfTheEpoch) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiModerateAccel);  // epoch 1 ends; cwnd 3; next epoch spans
                                 // everything sent so far
  std::int64_t boundary = h.agent().next_seq() - 1;
  // Mixed recommendations inside one epoch: min(5, 1, 5) = 1 wins.
  h.ack(1, kDraiAggressiveAccel);
  h.ack(2, kDraiAggressiveDecel);
  h.ack_each_up_to(boundary, kDraiAggressiveAccel);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.5);  // 3 halved
}

TEST(TcpMuzhaTest, MarkedTripleDupAckHalvesAndEntersFF) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);      // cwnd 4
  h.ack(1, kDraiAggressiveAccel);
  h.ack_each_up_to(5, kDraiModerateAccel);
  double before = h.agent().cwnd().value();
  h.dup_acks(5, 3, /*marked=*/true);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before / 2.0);
  EXPECT_EQ(h.agent().marked_loss_events(), 1u);
  EXPECT_EQ(h.agent().unmarked_loss_events(), 0u);
  EXPECT_EQ(h.agent().retransmissions(), 1u);
}

TEST(TcpMuzhaTest, UnmarkedTripleDupAckRetransmitsWithoutSlowdown) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  h.ack_each_up_to(4, kDraiModerateAccel);
  double before = h.agent().cwnd().value();
  h.dup_acks(4, 3, /*marked=*/false);
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before);  // random loss: no reduction
  EXPECT_EQ(h.agent().unmarked_loss_events(), 1u);
  EXPECT_EQ(h.agent().retransmissions(), 1u);
}

TEST(TcpMuzhaTest, PartialAckInFFRetransmitsNextHole) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  h.ack_each_up_to(4, kDraiModerateAccel);
  std::int64_t recover = h.agent().next_seq() - 1;
  h.dup_acks(4, 3, true);
  std::uint64_t retx = h.agent().retransmissions();
  h.ack(6);  // partial
  EXPECT_TRUE(h.agent().in_recovery());
  EXPECT_EQ(h.agent().retransmissions(), retx + 1);
  double cwnd_in_ff = h.agent().cwnd().value();
  h.ack(recover);  // full ACK: back to CA, window untouched
  EXPECT_FALSE(h.agent().in_recovery());
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), cwnd_in_ff);
}

TEST(TcpMuzhaTest, NoDraiAdjustmentsDuringFF) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  h.ack_each_up_to(4, kDraiModerateAccel);
  h.dup_acks(4, 3, true);
  std::uint64_t adj = h.agent().rate_adjustments();
  h.ack(6, kDraiAggressiveAccel);  // partial ACK carries accel advice
  EXPECT_EQ(h.agent().rate_adjustments(), adj);  // ignored inside FF
}

TEST(TcpMuzhaTest, TimeoutResetsWindowToOneAndStaysInCA) {
  TcpHarness<TcpMuzha> h;
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  ASSERT_GT(h.agent().cwnd().value(), 1.0);
  h.run_ms(4000);
  EXPECT_EQ(h.agent().timeouts(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 1.0);
  EXPECT_FALSE(h.agent().in_recovery());
  // Recovery from the timeout is plain CA driven by router advice again —
  // the adjustment lands at the first post-timeout epoch boundary.
  std::int64_t first_unacked = h.agent().highest_ack() + 1;
  h.ack(first_unacked, kDraiModerateAccel);        // inside the epoch
  h.ack(first_unacked + 1, kDraiModerateAccel);    // crosses the boundary
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 2.0);
}

TEST(TcpMuzhaTest, LossDiscriminationOffTreatsAllLossAsCongestion) {
  TcpHarness<TcpMuzha> h;
  h.agent().set_loss_discrimination(false);
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  h.ack_each_up_to(4, kDraiModerateAccel);
  double before = h.agent().cwnd().value();
  h.dup_acks(4, 3, /*marked=*/false);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before / 2.0);
  EXPECT_EQ(h.agent().marked_loss_events(), 1u);
}

TEST(TcpMuzhaTest, DupAcksBeyondThresholdKeepPipeFed) {
  TcpConfig cfg;
  cfg.window = 16;
  TcpHarness<TcpMuzha> h(cfg);
  h.start();
  h.ack(0, kDraiAggressiveAccel);
  h.ack_each_up_to(4, kDraiAggressiveAccel);
  h.dup_acks(4, 3, false);
  std::uint64_t sent = h.agent().packets_sent();
  h.dup_acks(4, 2, false);
  // send_much may emit new segments while recovering (window permitting).
  EXPECT_GE(h.agent().packets_sent(), sent);
}

TEST(TcpMuzhaTest, InitialCwndConfigurableAboveTwo) {
  TcpConfig cfg;
  cfg.initial_cwnd = Segments(4.0);
  TcpHarness<TcpMuzha> h(cfg);
  h.start();
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 4.0);
}

}  // namespace
}  // namespace muzha
