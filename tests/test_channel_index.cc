// Differential tests: the spatial-index channel against the brute-force
// reference scan.
//
// Two identical worlds are built — same seed, same node positions, same
// scripted transmissions and mobility — one over ChannelMode::kSpatialIndex
// and one over kBruteForce. Every observable the channel produces (carrier
// busy/idle transitions, decoded frames, corruption flags, and the order in
// which all of it happens) must match event for event. The brute-force scan
// is the oracle: anything the grid gets wrong — a missed boundary receiver,
// a stale cell after a move, a candidate visited out of attach order (which
// would permute error-model RNG draws) — shows up as a log diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/spatial_grid.h"
#include "phy/wireless_phy.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

// One observable event, in the order the simulation produced it.
struct LogEvent {
  std::int64_t t_ns;
  NodeId phy;
  enum Kind : std::uint8_t { kCarrier, kRx } kind;
  bool flag;          // kCarrier: busy; kRx: corrupted
  std::uint64_t uid;  // kRx with a decodable frame: packet uid (0 otherwise)

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

// A full simulation world over one channel mode.
class World {
 public:
  World(ChannelMode mode, std::uint64_t seed,
        const std::vector<Position>& positions, double error_rate)
      : sim_(seed), channel_(sim_, PhyParams{}, mode) {
    if (error_rate > 0.0) {
      channel_.set_error_model(
          std::make_unique<UniformErrorModel>(Probability(error_rate)));
    }
    phys_.reserve(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      phys_.push_back(std::make_unique<WirelessPhy>(
          sim_, channel_, static_cast<NodeId>(i), positions[i]));
      WirelessPhy* phy = phys_.back().get();
      NodeId id = static_cast<NodeId>(i);
      phy->set_channel_state_callback([this, id](bool busy) {
        log_.push_back({sim_.now().ns(), id, LogEvent::kCarrier, busy, 0});
      });
      phy->set_rx_callback([this, id](PacketPtr pkt, bool corrupted) {
        log_.push_back({sim_.now().ns(), id, LogEvent::kRx, corrupted,
                        pkt ? pkt->uid : 0});
      });
    }
  }

  // Schedules a broadcast data transmission at `t`; skipped (identically in
  // both worlds, since their states match) when the node is mid-TX.
  void transmit_at(SimTime t, std::size_t node, std::uint32_t bytes) {
    sim_.schedule_at(t, [this, node, bytes] {
      WirelessPhy* phy = phys_[node].get();
      if (phy->transmitting()) return;
      PacketPtr p = alloc_packet();
      p->uid = ++uid_counter_;
      p->size_bytes = bytes;
      p->mac.type = MacFrameType::kData;
      p->mac.src = phy->id();
      p->mac.dst = kBroadcastId;
      phy->start_tx(std::move(p), false);
    });
  }

  void move_at(SimTime t, std::size_t node, Position pos) {
    sim_.schedule_at(t, [this, node, pos] {
      phys_[node]->set_position(pos);
    });
  }

  void run_until(SimTime t) { sim_.run_until(t); }

  const std::vector<LogEvent>& log() const { return log_; }

 private:
  Simulator sim_;
  Channel channel_;
  std::vector<std::unique_ptr<WirelessPhy>> phys_;
  std::vector<LogEvent> log_;
  std::uint64_t uid_counter_ = 0;
};

void expect_logs_identical(const World& index, const World& brute) {
  const auto& a = index.log();
  const auto& b = brute.log();
  ASSERT_EQ(a.size(), b.size()) << "delivery event counts diverge";
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i] == b[i])
        << "event " << i << " diverges: index saw t=" << a[i].t_ns << " phy "
        << a[i].phy << " kind " << static_cast<int>(a[i].kind) << " flag "
        << a[i].flag << " uid " << a[i].uid << "; brute saw t=" << b[i].t_ns
        << " phy " << b[i].phy << " kind " << static_cast<int>(b[i].kind)
        << " flag " << b[i].flag << " uid " << b[i].uid;
  }
}

// Applies the same randomized script to both worlds and compares.
void run_differential(const std::vector<Position>& positions,
                      std::uint64_t seed, double error_rate, int transmissions,
                      int moves, Meters field_side) {
  World index(ChannelMode::kSpatialIndex, seed, positions, error_rate);
  World brute(ChannelMode::kBruteForce, seed, positions, error_rate);

  // Script randomness is separate from both worlds' simulation RNGs.
  Rng script(seed ^ 0x5C819Cull);
  SimTime horizon = SimTime::from_ms(200);
  for (int i = 0; i < transmissions; ++i) {
    SimTime t = SimTime::from_ns(script.uniform_int(0, horizon.ns()));
    std::size_t node = static_cast<std::size_t>(
        script.uniform_int(0, static_cast<std::int64_t>(positions.size()) - 1));
    std::uint32_t bytes =
        static_cast<std::uint32_t>(script.uniform_int(40, 1500));
    index.transmit_at(t, node, bytes);
    brute.transmit_at(t, node, bytes);
  }
  for (int i = 0; i < moves; ++i) {
    SimTime t = SimTime::from_ns(script.uniform_int(0, horizon.ns()));
    std::size_t node = static_cast<std::size_t>(
        script.uniform_int(0, static_cast<std::int64_t>(positions.size()) - 1));
    Position pos{script.uniform(0.0, field_side.value()),
                 script.uniform(0.0, field_side.value())};
    index.move_at(t, node, pos);
    brute.move_at(t, node, pos);
  }
  index.run_until(horizon + SimTime::from_ms(50));
  brute.run_until(horizon + SimTime::from_ms(50));
  expect_logs_identical(index, brute);
}

std::vector<Position> random_positions(int n, Meters side, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Position> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0.0, side.value()),
                   rng.uniform(0.0, side.value())});
  }
  return out;
}

TEST(ChannelIndexDifferential, RandomizedDenseField) {
  // ~2 CS ranges square: most nodes hear most transmissions.
  run_differential(random_positions(40, Meters(1200.0), 7), 7, 0.0,
                   /*transmissions=*/80, /*moves=*/0, Meters(1200.0));
}

TEST(ChannelIndexDifferential, RandomizedSparseFieldWithMobility) {
  // ~6 CS ranges square: cells matter; nodes roam across cell boundaries
  // mid-run.
  run_differential(random_positions(60, Meters(3500.0), 21), 21, 0.0,
                   /*transmissions=*/120, /*moves=*/150, Meters(3500.0));
}

TEST(ChannelIndexDifferential, RandomizedWithErrorModel) {
  // The error model draws once per decodable receiver, in delivery order; a
  // permuted candidate order would de-synchronise the corruption pattern
  // even if the delivery *set* matched.
  run_differential(random_positions(50, Meters(2000.0), 33), 33, 0.3,
                   /*transmissions=*/100, /*moves=*/60, Meters(2000.0));
}

TEST(ChannelIndexDifferential, ExactBoundaryDistances) {
  PhyParams params;
  double rx = params.rx_range.value();  // 250
  double cs = params.cs_range.value();  // 550
  std::vector<Position> positions{
      {0.0, 0.0},        // transmitter
      {rx, 0.0},         // exactly decode range: must decode
      {rx + 1e-9, 0.0},  // just past decode range: energy only
      {cs, 0.0},         // exactly CS range: energy only
      {cs + 1e-9, 0.0},  // just past CS range: silent
      {cs - 1e-9, 0.0},  // just inside CS range, same cell edge
      {-cs, 0.0},        // exactly CS range on the negative side
      {cs, cs},          // corner cell, out of range (dist = cs*sqrt(2))
      {0.0, cs},         // exactly CS range straight up
  };
  World index(ChannelMode::kSpatialIndex, 3, positions, 0.0);
  World brute(ChannelMode::kBruteForce, 3, positions, 0.0);
  for (World* w : {&index, &brute}) {
    w->transmit_at(SimTime::from_us(10), 0, 500);
    w->run_until(SimTime::from_ms(20));
  }
  expect_logs_identical(index, brute);

  // Spot-check the semantics on the index side, not just agreement: node 1
  // decoded, node 4 and node 7 heard nothing.
  int rx_events = 0;
  bool node1_rx = false, node4_touched = false, node7_touched = false;
  for (const LogEvent& e : index.log()) {
    if (e.kind == LogEvent::kRx) {
      ++rx_events;
      if (e.phy == 1) node1_rx = !e.flag;
    }
    if (e.phy == 4) node4_touched = true;
    if (e.phy == 7) node7_touched = true;
  }
  EXPECT_EQ(rx_events, 1);  // only the exactly-at-rx_range node decodes
  EXPECT_TRUE(node1_rx);
  EXPECT_FALSE(node4_touched);
  EXPECT_FALSE(node7_touched);
}

TEST(ChannelIndexDifferential, CellEdgePositions) {
  PhyParams params;
  double cell = params.cs_range.value();  // cell side == 550
  // Nodes pinned to cell-boundary coordinates, where floor(x/cell) is most
  // sensitive: origin, exact edges, negative coordinates.
  std::vector<Position> positions{
      {0.0, 0.0},
      {cell, 0.0},
      {2.0 * cell, 0.0},       // two cells over: outside CS of node 0
      {-cell, 0.0},
      {cell, cell},
      {-0.0, -0.0},            // negative zero must land with positive zero
      {cell - 1e-12, cell - 1e-12},
  };
  run_differential(positions, 9, 0.0, /*transmissions=*/30, /*moves=*/40,
                   Meters(2.0 * cell));
}

TEST(ChannelIndexDifferential, MovesFarOutAndBack) {
  // A node leaves the populated region entirely (its own distant cell) and
  // returns; deliveries must track both transitions.
  std::vector<Position> positions{{0.0, 0.0}, {100.0, 0.0}, {200.0, 0.0}};
  World index(ChannelMode::kSpatialIndex, 5, positions, 0.0);
  World brute(ChannelMode::kBruteForce, 5, positions, 0.0);
  for (World* w : {&index, &brute}) {
    w->transmit_at(SimTime::from_ms(1), 0, 300);
    w->move_at(SimTime::from_ms(10), 1, {50'000.0, 50'000.0});
    w->transmit_at(SimTime::from_ms(20), 0, 300);
    w->move_at(SimTime::from_ms(30), 1, {100.0, 0.0});
    w->transmit_at(SimTime::from_ms(40), 0, 300);
    w->run_until(SimTime::from_ms(60));
  }
  expect_logs_identical(index, brute);
  // Sanity on the index side: node 1 decoded the 1st and 3rd frame only.
  int node1_rx = 0;
  for (const LogEvent& e : index.log()) {
    if (e.kind == LogEvent::kRx && e.phy == 1 && !e.flag) ++node1_rx;
  }
  EXPECT_EQ(node1_rx, 2);
}

// ---------------------------------------------------------------------------
// SpatialGrid unit coverage: backref integrity through swap-pop removal,
// cell migration and table rehash. The grid never dereferences the phy
// pointer, so entries are tagged by order key alone here.
TEST(ChannelIndexDifferential, InCellMovesCrossRangeBoundaries) {
  // Regression for the deferred-rebucketing fast path: every move here stays
  // inside the mover's 550 m cell, so the grid is never updated — delivery
  // must still track the live position as it crosses the decode (250 m) and
  // carrier-sense (550 m... not reachable in-cell, but the rx edge is)
  // boundaries relative to the transmitter. A stale cached entry position
  // would freeze node 1's receptions at the initial 100 m distance.
  std::vector<Position> positions{{10.0, 10.0}, {110.0, 10.0}};
  World index(ChannelMode::kSpatialIndex, 13, positions, 0.0);
  World brute(ChannelMode::kBruteForce, 13, positions, 0.0);
  for (World* w : {&index, &brute}) {
    w->transmit_at(SimTime::from_ms(1), 0, 300);   // 100 m: decodes
    w->move_at(SimTime::from_ms(10), 1, {340.0, 10.0});
    w->transmit_at(SimTime::from_ms(20), 0, 300);  // 330 m: energy only
    w->move_at(SimTime::from_ms(30), 1, {220.0, 10.0});
    w->transmit_at(SimTime::from_ms(40), 0, 300);  // 210 m: decodes again
    w->run_until(SimTime::from_ms(60));
  }
  expect_logs_identical(index, brute);
  int node1_rx = 0;
  for (const LogEvent& e : index.log()) {
    if (e.kind == LogEvent::kRx && e.phy == 1 && !e.flag) ++node1_rx;
  }
  EXPECT_EQ(node1_rx, 2);
}

// ---------------------------------------------------------------------------

// Real PHYs for the grid unit tests: gather() reads each owner's live
// position, so entries must point at actual WirelessPhy objects. The channel
// runs in brute-force mode so these PHYs are not auto-indexed — each test
// owns its own standalone SpatialGrid and inserts into it directly.
class GridPhys {
 public:
  GridPhys() : sim_(1), channel_(sim_, PhyParams{}, ChannelMode::kBruteForce) {}

  WirelessPhy* make(Position pos) {
    phys_.push_back(std::make_unique<WirelessPhy>(
        sim_, channel_, static_cast<NodeId>(phys_.size()), pos));
    return phys_.back().get();
  }

 private:
  Simulator sim_;
  Channel channel_;
  std::vector<std::unique_ptr<WirelessPhy>> phys_;
};

std::vector<std::uint64_t> gathered_orders(const SpatialGrid& grid,
                                           Position center) {
  std::vector<SpatialGrid::Entry> out;
  grid.gather(center, out);
  std::vector<std::uint64_t> orders;
  orders.reserve(out.size());
  for (const auto& e : out) orders.push_back(e.order);
  std::sort(orders.begin(), orders.end());
  return orders;
}

TEST(ChannelIndexGrid, GatherCoversThreeByThreeNeighborhood) {
  GridPhys world;
  SpatialGrid grid(Meters(550.0));
  std::vector<SpatialGrid::Item> items(5);
  const Position pos[5] = {
      {0.0, 0.0},     // origin cell
      {549.0, 0.0},   // same cell
      {551.0, 0.0},   // east neighbor
      {-1.0, -1.0},   // southwest neighbor
      {1200.0, 0.0},  // two cells east
  };
  for (std::uint64_t i = 0; i < 5; ++i) {
    grid.insert(world.make(pos[i]), pos[i], i, &items[i]);
  }
  EXPECT_EQ(gathered_orders(grid, {100.0, 100.0}),
            (std::vector<std::uint64_t>{0, 1, 2, 3}));
  // From the far cell, only its own 3x3 neighborhood is visible.
  EXPECT_EQ(gathered_orders(grid, {1200.0, 0.0}),
            (std::vector<std::uint64_t>{2, 4}));
}

TEST(ChannelIndexGrid, SwapPopRemovalKeepsBackrefsCurrent) {
  GridPhys world;
  SpatialGrid grid(Meters(550.0));
  std::vector<SpatialGrid::Item> items(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    Position p{10.0 * static_cast<double>(i), 0.0};
    grid.insert(world.make(p), p, i, &items[i]);
  }
  // Removing the first entry swap-pops the last into its slot; the last
  // entry's backref must follow, or this second removal corrupts the cell.
  grid.remove(&items[0]);
  grid.remove(&items[3]);
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(gathered_orders(grid, {0.0, 0.0}),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_FALSE(items[0].valid());
  EXPECT_FALSE(items[3].valid());
}

TEST(ChannelIndexGrid, MoveMigratesBetweenCells) {
  GridPhys world;
  SpatialGrid grid(Meters(550.0));
  std::vector<SpatialGrid::Item> items(2);
  WirelessPhy* a = world.make({10.0, 10.0});
  WirelessPhy* b = world.make({20.0, 20.0});
  grid.insert(a, a->position(), 0, &items[0]);
  grid.insert(b, b->position(), 1, &items[1]);
  a->set_position({5000.0, 5000.0});  // far cell
  grid.move(&items[0], a->position());
  EXPECT_EQ(gathered_orders(grid, {0.0, 0.0}),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(gathered_orders(grid, {5000.0, 5000.0}),
            (std::vector<std::uint64_t>{0}));
  a->set_position({15.0, 15.0});  // back home
  grid.move(&items[0], a->position());
  EXPECT_EQ(gathered_orders(grid, {0.0, 0.0}),
            (std::vector<std::uint64_t>{0, 1}));
  // In-place move within the same cell.
  b->set_position({30.0, 30.0});
  grid.move(&items[1], b->position());
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(gathered_orders(grid, {0.0, 0.0}),
            (std::vector<std::uint64_t>{0, 1}));
}

TEST(ChannelIndexGrid, SameCellAnswersWithoutGridUpdate) {
  GridPhys world;
  SpatialGrid grid(Meters(550.0));
  SpatialGrid::Item item;
  WirelessPhy* a = world.make({100.0, 100.0});
  grid.insert(a, a->position(), 0, &item);
  // Anywhere in [0, 550) x [0, 550) is the same cell; crossing either axis
  // boundary is not. Negative coordinates bucket into cell -1 (floor).
  EXPECT_TRUE(grid.same_cell(item, {549.9, 0.1}));
  EXPECT_TRUE(grid.same_cell(item, {0.0, 549.9}));
  EXPECT_FALSE(grid.same_cell(item, {550.0, 100.0}));
  EXPECT_FALSE(grid.same_cell(item, {100.0, -0.1}));
  // After a migrating move the cached coordinates must track the new cell.
  a->set_position({700.0, 100.0});
  grid.move(&item, a->position());
  EXPECT_TRUE(grid.same_cell(item, {600.0, 0.0}));
  EXPECT_FALSE(grid.same_cell(item, {549.0, 100.0}));
}

TEST(ChannelIndexGrid, GatherReturnsLivePositions) {
  // In-cell moves leave stored entry positions stale by design; gather()
  // must surface the owner's current doubles (what a brute scan would read).
  GridPhys world;
  SpatialGrid grid(Meters(550.0));
  SpatialGrid::Item item;
  WirelessPhy* a = world.make({10.0, 10.0});
  grid.insert(a, a->position(), 0, &item);
  a->set_position({540.0, 260.0});  // same cell: no grid update issued
  ASSERT_TRUE(grid.same_cell(item, a->position()));
  std::vector<SpatialGrid::Entry> out;
  grid.gather({100.0, 100.0}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pos.x, 540.0);
  EXPECT_EQ(out[0].pos.y, 260.0);
}

TEST(ChannelIndexGrid, RehashRewritesEveryBackref) {
  SpatialGrid grid(Meters(550.0));
  // 200 entries in 200 distinct cells forces multiple rehashes of the
  // initial 64-bucket table.
  constexpr int kN = 200;
  GridPhys world;
  std::vector<SpatialGrid::Item> items(kN);
  for (int i = 0; i < kN; ++i) {
    Position p{550.0 * 2.0 * i + 1.0, 0.0};
    grid.insert(world.make(p), p, static_cast<std::uint64_t>(i), &items[i]);
  }
  EXPECT_EQ(grid.size(), static_cast<std::size_t>(kN));
  // Every backref must still resolve: gather each entry's own neighborhood
  // (cells are 2 apart, so each sees only itself), then remove through the
  // backref without tripping the stale-item DCHECK.
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(gathered_orders(grid, {550.0 * 2.0 * i + 1.0, 0.0}),
              (std::vector<std::uint64_t>{static_cast<std::uint64_t>(i)}));
  }
  for (int i = 0; i < kN; ++i) grid.remove(&items[i]);
  EXPECT_EQ(grid.size(), 0u);
}

}  // namespace
}  // namespace muzha
