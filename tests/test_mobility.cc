#include "scenario/mobility.h"

#include <gtest/gtest.h>

#include "routing/aodv.h"
#include "scenario/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"

namespace muzha {
namespace {

TEST(LinearMobilityTest, MovesAtConfiguredVelocity) {
  Network net(1);
  Node& n = net.add_node({0, 0});
  LinearMobility::Config cfg;
  cfg.vx = MetersPerSecond(10.0);
  cfg.vy = MetersPerSecond(-5.0);
  LinearMobility mob(net.sim(), n, cfg);
  mob.start();
  net.run_until(SimTime::from_seconds(10));
  Position p = n.device().phy().position();
  EXPECT_NEAR(p.x, 100.0, 2.0);
  EXPECT_NEAR(p.y, -50.0, 1.0);
}

TEST(LinearMobilityTest, StopsAtStopTime) {
  Network net(1);
  Node& n = net.add_node({0, 0});
  LinearMobility::Config cfg;
  cfg.vx = MetersPerSecond(10.0);
  cfg.stop_after = SimTime::from_seconds(2.0);
  LinearMobility mob(net.sim(), n, cfg);
  mob.start();
  net.run_until(SimTime::from_seconds(10));
  EXPECT_NEAR(n.device().phy().position().x, 20.0, 2.0);
}

TEST(RandomWaypointTest, StaysInsideTheArena) {
  Network net(7);
  Node& n = net.add_node({500, 500});
  RandomWaypointMobility::Config cfg;
  cfg.min_x = 0;
  cfg.max_x = 1000;
  cfg.min_y = 0;
  cfg.max_y = 1000;
  cfg.min_speed = MetersPerSecond(5);
  cfg.max_speed = MetersPerSecond(20);
  cfg.pause = SimTime::from_seconds(0.5);
  RandomWaypointMobility mob(net.sim(), n, cfg);
  mob.start();
  for (int t = 1; t <= 120; ++t) {
    net.run_until(SimTime::from_seconds(t));
    Position p = n.device().phy().position();
    EXPECT_GE(p.x, -1.0);
    EXPECT_LE(p.x, 1001.0);
    EXPECT_GE(p.y, -1.0);
    EXPECT_LE(p.y, 1001.0);
  }
}

TEST(RandomWaypointTest, ActuallyMoves) {
  Network net(7);
  Node& n = net.add_node({500, 500});
  RandomWaypointMobility::Config cfg;
  RandomWaypointMobility mob(net.sim(), n, cfg);
  mob.start();
  net.run_until(SimTime::from_seconds(30));
  Position p = n.device().phy().position();
  double moved = std::abs(p.x - 500) + std::abs(p.y - 500);
  EXPECT_GT(moved, 10.0);
}

// A relay wanders out of range mid-transfer: the MAC reports link failure,
// AODV issues a RERR, and when the relay returns the flow recovers — the
// route-failure lifecycle of the paper's Sec. 2.3.
TEST(MobilityIntegration, FlowSurvivesRelayExcursion) {
  Network net(3);
  // 200 m spacing leaves 50 m of slack below the 250 m decode range, so the
  // links only break once the relay's lateral offset exceeds ~150 m.
  build_chain(net, 2, /*spacing=*/Meters(200.0));
  net.use_aodv();

  TcpConfig tc;
  tc.dst = net.node(2).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  tc.window = 8;
  TcpNewReno agent(net.sim(), net.node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net.sim(), net.node(2), sc);
  sink.start();
  net.sim().schedule_at(SimTime::zero(), [&] { agent.start(); });

  // The relay (node 1) wanders perpendicular to the chain, breaking both
  // links once its lateral offset exceeds ~150 m, then comes back.
  LinearMobility::Config mc;
  mc.vy = MetersPerSecond(50.0);
  LinearMobility mob(net.sim(), net.node(1), mc);
  net.sim().schedule_at(SimTime::from_seconds(5),
                        [&] { mob.start(); });
  net.sim().schedule_at(SimTime::from_seconds(10),
                        [&] { mob.set_velocity(MetersPerSecond(0.0), MetersPerSecond(-50.0)); });
  net.sim().schedule_at(SimTime::from_seconds(15),
                        [&] { mob.set_velocity(MetersPerSecond(0.0), MetersPerSecond(0.0)); });

  net.run_until(SimTime::from_seconds(8));
  std::int64_t mid = sink.delivered();
  EXPECT_GT(mid, 50);  // transferred before the excursion broke the links

  // Leave plenty of time for the backed-off RTO to fire after the relay
  // returns at t = 15 s.
  net.run_until(SimTime::from_seconds(60));
  std::int64_t final_count = sink.delivered();
  // The flow recovered after the relay returned.
  EXPECT_GT(final_count, mid + 50);
  // The excursion really did break links.
  auto& aodv0 = dynamic_cast<Aodv&>(net.node(0).routing());
  auto& aodv1 = dynamic_cast<Aodv&>(net.node(1).routing());
  EXPECT_GT(aodv0.rreqs_originated(), 1u);
  (void)aodv1;
}

}  // namespace
}  // namespace muzha
