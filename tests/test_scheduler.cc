#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace muzha {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_ms(30));
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelativeToNow) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_in(SimTime::from_ms(5), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, SimTime::from_ms(15));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelInvalidOrFiredIdIsNoOp) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.run();
  s.cancel(id);              // already fired
  s.cancel(kInvalidEventId);  // invalid
  s.cancel(9999);             // never issued
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(20), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(30), [&] { ++fired; });
  s.run_until(SimTime::from_ms(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), SimTime::from_ms(20));
  s.run_until(SimTime::from_ms(40));
  EXPECT_EQ(fired, 3);
  // Clock advances to the requested horizon even after the queue drains.
  EXPECT_EQ(s.now(), SimTime::from_ms(40));
}

TEST(Scheduler, EventsScheduledDuringCallbackRun) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(1), [&] {
    order.push_back(1);
    s.schedule_in(SimTime::zero(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, StepExecutesExactlyOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingEventsAccountsForCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(SimTime::from_ms(1), [] {});
  s.schedule_at(SimTime::from_ms(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(SimTime::from_ms(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(SchedulerDeath, SchedulingInThePastAborts) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(10), [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(SimTime::from_ms(5), [] {}), "past");
}

}  // namespace
}  // namespace muzha
