#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace muzha {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_ms(30));
}

TEST(Scheduler, SimultaneousEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInIsRelativeToNow) {
  Scheduler s;
  SimTime seen;
  s.schedule_at(SimTime::from_ms(10), [&] {
    s.schedule_in(SimTime::from_ms(5), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, SimTime::from_ms(15));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelInvalidOrFiredIdIsNoOp) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.run();
  s.cancel(id);              // already fired
  s.cancel(kInvalidEventId);  // invalid
  s.cancel(9999);             // never issued
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(20), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(30), [&] { ++fired; });
  s.run_until(SimTime::from_ms(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), SimTime::from_ms(20));
  s.run_until(SimTime::from_ms(40));
  EXPECT_EQ(fired, 3);
  // Clock advances to the requested horizon even after the queue drains.
  EXPECT_EQ(s.now(), SimTime::from_ms(40));
}

TEST(Scheduler, EventsScheduledDuringCallbackRun) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_ms(1), [&] {
    order.push_back(1);
    s.schedule_in(SimTime::zero(), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, StepExecutesExactlyOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingEventsAccountsForCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(SimTime::from_ms(1), [] {});
  s.schedule_at(SimTime::from_ms(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

// Regression: the pre-rewrite scheduler tracked cancellations in a side set
// and computed pending_events() as heap size minus set size. Cancelling an
// id that had already fired leaked a set entry and underflowed the size_t
// subtraction. Pin the count across every schedule -> fire -> cancel order.
TEST(Scheduler, PendingEventsStableWhenCancellingFiredIds) {
  Scheduler s;
  EventId a = s.schedule_at(SimTime::from_ms(1), [] {});
  EventId b = s.schedule_at(SimTime::from_ms(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  EXPECT_TRUE(s.step());  // fires a
  EXPECT_EQ(s.pending_events(), 1u);
  s.cancel(a);  // already fired: must not underflow or shadow-count
  EXPECT_EQ(s.pending_events(), 1u);
  s.cancel(a);  // repeated stale cancel is still a no-op
  EXPECT_EQ(s.pending_events(), 1u);
  s.cancel(b);
  EXPECT_EQ(s.pending_events(), 0u);
  s.cancel(b);  // cancel after cancel
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.step());
}

// Many fire-then-cancel cycles must not accumulate hidden state: pending
// stays exact and the queue still drains (the old cancelled_ set grew
// monotonically here).
TEST(Scheduler, RepeatedStaleCancelsDoNotAccumulate) {
  Scheduler s;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    EventId id = s.schedule_in(SimTime::from_us(1), [] {});
    EXPECT_EQ(s.pending_events(), 1u);
    s.run();
    s.cancel(id);
    EXPECT_EQ(s.pending_events(), 0u);
  }
  EXPECT_EQ(s.events_executed(), 1000u);
}

// A slot is recycled after cancel/fire; the stale handle carries the old
// generation and must not touch the slot's next tenant.
TEST(Scheduler, StaleHandleDoesNotCancelRecycledSlot) {
  Scheduler s;
  int fired = 0;
  EventId a = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.cancel(a);
  EventId b = s.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  s.cancel(a);  // stale: same slot, older generation
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_NE(a, b);
}

TEST(Scheduler, CancelFromInsideAnotherCallback) {
  Scheduler s;
  int fired = 0;
  EventId victim = s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  s.schedule_at(SimTime::from_ms(1), [&] { s.cancel(victim); });
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, CancellingOwnIdFromItsCallbackIsNoOp) {
  Scheduler s;
  int fired = 0;
  EventId self = kInvalidEventId;
  self = s.schedule_at(SimTime::from_ms(1), [&] {
    ++fired;
    s.cancel(self);  // our id is stale by the time we run
  });
  s.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, MoveOnlyCapturesAreAccepted) {
  Scheduler s;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  s.schedule_at(SimTime::from_ms(1),
                [p = std::move(payload), &seen] { seen = *p + 1; });
  s.run();
  EXPECT_EQ(seen, 42);
}

// Destroying a scheduler with events still queued must release their
// callbacks (the unique_ptr captures here leak under ASan otherwise).
TEST(Scheduler, DestructorReleasesPendingCallbacks) {
  auto flag = std::make_shared<int>(0);
  {
    Scheduler s;
    s.schedule_at(SimTime::from_ms(1), [p = std::make_unique<int>(7)] {});
    s.schedule_at(SimTime::from_ms(2), [flag] {});
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);
}

TEST(Scheduler, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(SimTime::from_ms(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(SchedulerDeath, SchedulingInThePastAborts) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(10), [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(SimTime::from_ms(5), [] {}), "past");
}

}  // namespace
}  // namespace muzha
