// Positive-side tests for the strong quantity types in sim/units.h: literal
// and operator algebra, cross-dimension conversions, the checked
// Seconds <-> SimTime bridge, and the Probability range DCHECK. The
// negative side (expressions that must NOT compile) lives in
// tests/compile_fail/.
#include <gtest/gtest.h>

#include <type_traits>

#include "sim/units.h"

namespace muzha {
namespace {

// ---------------------------------------------------------------------------
// Static pins: zero-overhead claims, checked at compile time so a future
// edit that adds a vtable, a second member, or a non-trivial ctor fails here.
// ---------------------------------------------------------------------------

static_assert(sizeof(Meters) == sizeof(double));
static_assert(sizeof(Bytes) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Segments>);
static_assert(std::is_trivially_destructible_v<BitsPerSecond>);
static_assert(!std::is_convertible_v<double, Meters>);    // explicit ctor
static_assert(!std::is_convertible_v<double, Segments>);
static_assert(!std::is_convertible_v<Meters, double>);    // no implicit out
static_assert(std::is_same_v<Meters::rep, double>);
static_assert(std::is_same_v<Bytes::rep, std::int64_t>);

// Literal algebra is constexpr end to end.
static_assert((250.0_m).value() == 250.0);
static_assert((1.5_km).value() == 1500.0);
static_assert((2_Mbps).value() == 2e6);
static_assert((1500_B).value() == 1500);
static_assert((1.0_s + 500.0_ms).value() == 1.5);
static_assert((3.0_m / 1.5_s).value() == 2.0);      // -> MetersPerSecond
static_assert((10_mps * 2.0_s).value() == 20.0);    // -> Meters
static_assert(to_bits(100_B).value() == 800);
static_assert(to_bytes(Bits(800)).value() == 100);
static_assert((4.0_seg / 2.0_s).value() == 2.0);    // -> SegmentsPerSecond
static_assert(2.0_m / 1.0_m == 2.0);                // ratio is dimensionless
static_assert(500.0_m > 250.0_m);
static_assert(-(3.0_m) == Meters(-3.0));

TEST(Units, SameDimensionArithmetic) {
  Meters d = 100.0_m;
  d += 50.0_m;
  d -= 25.0_m;
  d *= 2.0;
  d /= 5.0;
  EXPECT_DOUBLE_EQ(d.value(), 50.0);
  EXPECT_EQ(3 * 10.0_m, 30.0_m);
  EXPECT_EQ(10.0_m * 3, 30.0_m);
}

TEST(Units, CrossDimensionConversions) {
  // Propagation delay: 250 m at c.
  Seconds prop = 250.0_m / MetersPerSecond(3.0e8);
  EXPECT_DOUBLE_EQ(prop.value(), 250.0 / 3.0e8);
  // Serialization delay: 1500 B at 2 Mbps = 6 ms.
  Seconds ser = to_bits(1500_B) / 2_Mbps;
  EXPECT_DOUBLE_EQ(ser.value(), 0.006);
  // Window growth: 5 segments/s over 2 s.
  EXPECT_DOUBLE_EQ((SegmentsPerSecond(5.0) * 2.0_s).value(), 10.0);
  EXPECT_DOUBLE_EQ((2.0_s * SegmentsPerSecond(5.0)).value(), 10.0);
}

TEST(Units, PowerLogLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(to_milliwatts(0.0_dBm).value(), 1.0);
  EXPECT_DOUBLE_EQ(to_milliwatts(20.0_dBm).value(), 100.0);
  EXPECT_DOUBLE_EQ(to_dbm(1.0_mW).value(), 0.0);
  EXPECT_NEAR(to_dbm(to_milliwatts(-17.3_dBm)).value(), -17.3, 1e-12);
}

// ---------------------------------------------------------------------------
// Seconds <-> SimTime: the bridge between the floating model currency and
// the integer-ns event clock must round-trip exactly at ns boundaries and
// round half-away-from-zero off them (matching SimTime::from_seconds).
// ---------------------------------------------------------------------------

TEST(Units, SimTimeRoundTripAtNsBoundaries) {
  EXPECT_EQ(to_sim_time(Seconds(0.0)), SimTime::zero());
  EXPECT_EQ(to_sim_time(1.0_s), SimTime::from_seconds(1.0));
  EXPECT_EQ(to_sim_time(0.000000001_s), SimTime::from_ns(1));
  EXPECT_EQ(to_sim_time(Seconds(-1e-9)), SimTime::from_ns(-1));
  // A SimTime representable in double converts back to the same tick count.
  for (std::int64_t ns : {0L, 1L, 999L, 1'000'000L, 1'234'567'890L}) {
    SimTime t = SimTime::from_ns(ns);
    EXPECT_EQ(to_sim_time(to_seconds(t)), t) << ns << " ns";
  }
}

TEST(Units, SimTimeRoundsLikeFromSeconds) {
  // Sub-ns values round to the nearest tick, identically to the SimTime
  // factory the rest of the simulator uses.
  EXPECT_EQ(to_sim_time(Seconds(1.4e-9)), SimTime::from_seconds(1.4e-9));
  EXPECT_EQ(to_sim_time(Seconds(1.6e-9)), SimTime::from_seconds(1.6e-9));
  EXPECT_EQ(to_sim_time(Seconds(-1.6e-9)), SimTime::from_seconds(-1.6e-9));
}

TEST(Units, ProbabilityAcceptsUnitInterval) {
  EXPECT_DOUBLE_EQ(Probability(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability(0.5).value(), 0.5);
  EXPECT_DOUBLE_EQ(Probability(1.0).value(), 1.0);
  EXPECT_LT(Probability(0.1), Probability(0.2));
}

#if MUZHA_DCHECK_ENABLED
TEST(UnitsDeath, ProbabilityRejectsOutOfRange) {
  EXPECT_DEATH(Probability(1.5), "probability");
  EXPECT_DEATH(Probability(-0.1), "probability");
}

TEST(UnitsDeath, SimTimeConversionRejectsOverflowAndNan) {
  EXPECT_DEATH(to_sim_time(Seconds(1e10)), "overflow");
  EXPECT_DEATH(to_sim_time(Seconds(std::nan(""))), "non-finite");
}
#endif

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_DOUBLE_EQ(Meters().value(), 0.0);
  EXPECT_EQ(Bytes().value(), 0);
  EXPECT_DOUBLE_EQ(Probability().value(), 0.0);
}

}  // namespace
}  // namespace muzha
