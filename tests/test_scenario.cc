// Scenario-layer tests: topology builders, experiment config handling, and
// the Table 5.1 simulation parameters.
#include <gtest/gtest.h>

#include "scenario/experiment.h"
#include "scenario/network.h"

namespace muzha {
namespace {

TEST(Topology, ChainHasHopsPlusOneNodes) {
  Network net(1);
  auto ids = build_chain(net, 4);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(net.size(), 5u);
  // 250 m spacing: consecutive nodes in range, non-consecutive not.
  Meters d01 = distance(net.node(0).device().phy().position(),
                        net.node(1).device().phy().position());
  Meters d02 = distance(net.node(0).device().phy().position(),
                        net.node(2).device().phy().position());
  EXPECT_DOUBLE_EQ(d01.value(), 250.0);
  EXPECT_DOUBLE_EQ(d02.value(), 500.0);
}

TEST(Topology, FourHopCrossHasNineNodes) {
  // Fig 5.15: "4-hop Cross Topology with 9 Nodes".
  Network net(1);
  CrossTopology topo = build_cross(net, 4);
  EXPECT_EQ(net.size(), 9u);
  EXPECT_EQ(topo.horizontal.size(), 5u);
  EXPECT_EQ(topo.vertical.size(), 5u);
  // The centre node is shared between the arms.
  EXPECT_EQ(topo.horizontal[2], topo.vertical[2]);
}

TEST(Topology, CrossArmsAreOrthogonal) {
  Network net(1);
  CrossTopology topo = build_cross(net, 4);
  Position center =
      net.node(topo.horizontal[2]).device().phy().position();
  EXPECT_DOUBLE_EQ(center.x, 0.0);
  EXPECT_DOUBLE_EQ(center.y, 0.0);
  Position h_end = net.node(topo.horizontal[4]).device().phy().position();
  Position v_end = net.node(topo.vertical[4]).device().phy().position();
  EXPECT_DOUBLE_EQ(h_end.x, 500.0);
  EXPECT_DOUBLE_EQ(h_end.y, 0.0);
  EXPECT_DOUBLE_EQ(v_end.x, 0.0);
  EXPECT_DOUBLE_EQ(v_end.y, 500.0);
}

TEST(Topology, OddHopCrossRejected) {
  Network net(1);
  EXPECT_DEATH(build_cross(net, 3), "even");
}

TEST(Table51, DefaultParametersMatchThePaper) {
  // Table 5.1: link bandwidth 2 Mbps, transmission range 250 m, 802.11 MAC,
  // 50-packet drop-tail IFQ, AODV routing.
  PhyParams phy;
  EXPECT_EQ(phy.data_rate, BitsPerSecond(2'000'000));
  EXPECT_DOUBLE_EQ(phy.rx_range.value(), 250.0);
  NodeConfig node;
  EXPECT_EQ(node.ifq_capacity, 50u);
  MacParams mac;
  EXPECT_EQ(mac.cw_min, 31u);
  EXPECT_EQ(mac.cw_max, 1023u);
  EXPECT_EQ(mac.slot, SimTime::from_us(20));
  EXPECT_EQ(mac.sifs, SimTime::from_us(10));
  EXPECT_EQ(mac.difs, SimTime::from_us(50));
}

TEST(Table51, SegmentSizeMatchesThePaper) {
  // Sec. 5.3: packet size 1460 bytes (payload) => 1500 B IP datagrams.
  EXPECT_EQ(kPayloadBytes, 1460u);
  EXPECT_EQ(kSegmentBytes, 1500u);
}

TEST(ExperimentApi, VariantNamesAreStable) {
  EXPECT_STREQ(variant_name(TcpVariant::kMuzha), "Muzha");
  EXPECT_STREQ(variant_name(TcpVariant::kNewReno), "NewReno");
  EXPECT_STREQ(variant_name(TcpVariant::kSack), "SACK");
  EXPECT_STREQ(variant_name(TcpVariant::kVegas), "Vegas");
  EXPECT_STREQ(variant_name(TcpVariant::kReno), "Reno");
  EXPECT_STREQ(variant_name(TcpVariant::kTahoe), "Tahoe");
}

TEST(ExperimentApi, FactoryBuildsEveryVariant) {
  Network net(1);
  build_chain(net, 1);
  net.use_static_routing();
  for (TcpVariant v :
       {TcpVariant::kTahoe, TcpVariant::kReno, TcpVariant::kNewReno,
        TcpVariant::kSack, TcpVariant::kVegas, TcpVariant::kMuzha}) {
    TcpConfig cfg;
    cfg.dst = 1;
    auto agent = make_tcp_agent(v, net.sim(), net.node(0), cfg);
    ASSERT_NE(agent, nullptr) << variant_name(v);
  }
}

TEST(ExperimentApi, MuzhaRoutersEnabledAutomatically) {
  ExperimentConfig cfg;
  cfg.hops = 2;
  cfg.duration = SimTime::from_seconds(5.0);
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 2, SimTime::zero(), 8});
  auto res = run_experiment(cfg);
  // With router assistance on, some DRAI feedback must reach the sender:
  // the window changes beyond its initial value.
  EXPECT_GT(res.flows[0].cwnd_trace.size(), 0u);
}

TEST(ExperimentApi, RoutersOffDegradesMuzhaToBlindAccel) {
  ExperimentConfig cfg;
  cfg.hops = 2;
  cfg.duration = SimTime::from_seconds(5.0);
  cfg.muzha_routers = ExperimentConfig::Routers::kOff;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 2, SimTime::zero(), 8});
  auto res = run_experiment(cfg);
  // Without routers every ACK echoes MRAI 5: Muzha doubles every RTT until
  // the advertised window cap; it still delivers (the cap saves it).
  EXPECT_GT(res.flows[0].delivered, 50);
}

TEST(ExperimentApi, ThroughputComputedOverFlowLifetime) {
  ExperimentConfig cfg;
  cfg.hops = 1;
  cfg.duration = SimTime::from_seconds(10.0);
  cfg.flows.push_back(
      {TcpVariant::kNewReno, 0, 1, SimTime::from_seconds(5.0), 8});
  auto res = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(res.flows[0].duration.value(), 5.0);
  EXPECT_GT(res.flows[0].throughput, BitsPerSecond(0.0));
}

TEST(ExperimentApi, AggregateHelpers) {
  ExperimentConfig cfg;
  cfg.hops = 2;
  cfg.duration = SimTime::from_seconds(5.0);
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 2, SimTime::zero(), 8});
  cfg.flows.push_back({TcpVariant::kNewReno, 2, 0, SimTime::zero(), 8});
  auto res = run_experiment(cfg);
  auto thr = res.flow_throughputs();
  ASSERT_EQ(thr.size(), 2u);
  EXPECT_DOUBLE_EQ(res.total_throughput().value(), thr[0] + thr[1]);
}

TEST(ExperimentApiDeath, RejectsEmptyFlows) {
  ExperimentConfig cfg;
  EXPECT_DEATH(run_experiment(cfg), "at least one flow");
}

TEST(ExperimentApiDeath, RejectsOutOfRangeEndpoints) {
  ExperimentConfig cfg;
  cfg.hops = 2;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 99, SimTime::zero(), 8});
  EXPECT_DEATH(run_experiment(cfg), "out of range");
}

TEST(NetworkApi, StaticRoutingAccessorChecksType) {
  Network net(1);
  build_chain(net, 2);
  net.use_aodv();
  EXPECT_DEATH(net.static_routing(0), "not using static routing");
}

}  // namespace
}  // namespace muzha
