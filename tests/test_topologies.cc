#include <gtest/gtest.h>

#include "scenario/network.h"

namespace muzha {
namespace {

Meters dist(Network& net, std::size_t a, std::size_t b) {
  return distance(net.node(a).device().phy().position(),
                  net.node(b).device().phy().position());
}

TEST(GridTopology, RowMajorLayout) {
  Network net(1);
  auto ids = build_grid(net, 3, 4, Meters(200.0));
  ASSERT_EQ(ids.size(), 12u);
  // Node (r=1, c=2) sits at (400, 200).
  Position p = net.node(1 * 4 + 2).device().phy().position();
  EXPECT_DOUBLE_EQ(p.x, 400.0);
  EXPECT_DOUBLE_EQ(p.y, 200.0);
  // Horizontal and vertical neighbours are in decode range; diagonals not.
  EXPECT_LE(dist(net, 0, 1), Meters(250.0));
  EXPECT_LE(dist(net, 0, 4), Meters(250.0));
  EXPECT_GT(dist(net, 0, 5), Meters(250.0));
}

TEST(GridTopology, SingleRowIsAChain) {
  Network net(1);
  auto ids = build_grid(net, 1, 5, Meters(250.0));
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_DOUBLE_EQ(dist(net, 0, 4).value(), 1000.0);
}

TEST(ParallelChainsTopology, ChainsInterfereButDoNotConnect) {
  Network net(1);
  auto pc = build_parallel_chains(net, 4, Meters(250.0), Meters(300.0));
  ASSERT_EQ(pc.top.size(), 5u);
  ASSERT_EQ(pc.bottom.size(), 5u);
  // Vertically opposite nodes: 300 m apart — outside decode range (250),
  // inside carrier-sense range (550): pure interference coupling.
  Meters d = dist(net, 0, 5);
  EXPECT_GT(d, net.channel().params().rx_range);
  EXPECT_LT(d, net.channel().params().cs_range);
}

TEST(RandomTopology, ProducesConnectedGraph) {
  Network net(3);
  auto ids = build_random_connected(net, 12, Meters(800), Meters(800));
  ASSERT_EQ(ids.size(), 12u);
  // Verify connectivity with a BFS over decode-range links.
  Meters range = net.channel().params().rx_range;
  std::vector<bool> seen(12, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v = 0; v < 12; ++v) {
      if (!seen[v] && dist(net, u, v) <= range) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(reached, 12u);
}

TEST(RandomTopology, DeterministicPerSeed) {
  Network a(9), b(9);
  build_random_connected(a, 8, Meters(600), Meters(600));
  build_random_connected(b, 8, Meters(600), Meters(600));
  for (std::size_t i = 0; i < 8; ++i) {
    Position pa = a.node(i).device().phy().position();
    Position pb = b.node(i).device().phy().position();
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(RandomTopologyDeath, ImpossibleDensityAborts) {
  Network net(1);
  // 2 nodes in a 100 km arena: essentially never connected.
  EXPECT_DEATH(build_random_connected(net, 2, Meters(100000), Meters(100000), 3),
               "connected");
}

}  // namespace
}  // namespace muzha
