#include "sim/sim_time.h"

#include <gtest/gtest.h>

namespace muzha {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, FactoryUnits) {
  EXPECT_EQ(SimTime::from_ns(7).ns(), 7);
  EXPECT_EQ(SimTime::from_us(3).ns(), 3'000);
  EXPECT_EQ(SimTime::from_ms(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
}

TEST(SimTime, FromSecondsRounds) {
  // 1 ns expressed in seconds should round-trip exactly.
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(2.5e-9).ns(), 3);  // rounds half up
}

TEST(SimTime, Conversions) {
  SimTime t = SimTime::from_us(1500);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 0.0015);
  EXPECT_DOUBLE_EQ(t.to_ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_us(), 1500.0);
}

TEST(SimTime, Arithmetic) {
  SimTime a = SimTime::from_us(10);
  SimTime b = SimTime::from_us(4);
  EXPECT_EQ((a + b).ns(), 14'000);
  EXPECT_EQ((a - b).ns(), 6'000);
  EXPECT_EQ((a * 3).ns(), 30'000);
  EXPECT_EQ((3 * a).ns(), 30'000);
  EXPECT_EQ((a / 2).ns(), 5'000);
  EXPECT_EQ(a / b, 2);  // integer ratio
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::from_ns(100);
  t += SimTime::from_ns(50);
  EXPECT_EQ(t.ns(), 150);
  t -= SimTime::from_ns(25);
  EXPECT_EQ(t.ns(), 125);
}

TEST(SimTime, Comparisons) {
  SimTime a = SimTime::from_ns(1);
  SimTime b = SimTime::from_ns(2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, SimTime::from_ns(1));
}

TEST(SimTime, ScaledFraction) {
  SimTime t = SimTime::from_ns(1000);
  EXPECT_EQ(t.scaled(0.875).ns(), 875);
  EXPECT_EQ(t.scaled(0.25).ns(), 250);
  EXPECT_EQ(t.scaled(2.0).ns(), 2000);
}

TEST(SimTime, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::max(), SimTime::from_seconds(1e9));
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::from_seconds(1.25).to_string(), "1.250000s");
}

}  // namespace
}  // namespace muzha
