// Allocation accounting for the event core: once the pool is warm,
// schedule/fire/cancel of any callback that fits the inline buffer must not
// touch the heap at all. Verified with a counting global operator new.
//
// Sanitizer builds replace the allocator and may allocate internally, so
// the counting tests skip themselves there; the plain tier-1 build
// exercises them.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "sim/inline_callback.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace {
std::size_t g_allocations = 0;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#define MUZHA_SKIP_IF_SANITIZED() \
  if (kSanitized) GTEST_SKIP() << "allocator replaced by sanitizer"
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace muzha {
namespace {

// Capture shapes representative of the stack's hot callbacks.
struct FourPointers {
  void* a;
  void* b;
  void* c;
  void* d;
};
static_assert(EventCallback::stored_inline<FourPointers>());

TEST(SchedulerAlloc, CountingAllocatorSeesAllocations) {
  MUZHA_SKIP_IF_SANITIZED();
  const std::size_t before = g_allocations;
  std::unique_ptr<int> p = std::make_unique<int>(1);
  EXPECT_GT(g_allocations, before);
}

TEST(SchedulerAlloc, InlineBudgetHoldsTypicalCaptures) {
  // A `this` pointer plus a handful of scalars — the common protocol-timer
  // shape — and a full PacketPtr-sized capture both stay inline.
  static_assert(kInlineCallbackSize >= 48);
  static_assert(EventCallback::stored_inline<decltype([] {})>());
  struct SixWords {
    std::uint64_t w[6];
  };
  static_assert(EventCallback::stored_inline<SixWords>());
  struct SevenWords {
    std::uint64_t w[7];
  };
  static_assert(!EventCallback::stored_inline<SevenWords>());
}

TEST(SchedulerAlloc, WarmSchedulerScheduleFireIsAllocationFree) {
  MUZHA_SKIP_IF_SANITIZED();
  Scheduler s;
  s.reserve(64);
  long sum = 0;

  // One warm-up pass grows nothing further: reserve() sized meta_, heap_,
  // free_ and the chunk pool, but the pool constructs slots on first use.
  for (int i = 0; i < 64; ++i) {
    s.schedule_in(SimTime::from_us(i), [&sum, i] { sum += i; });
  }
  s.run();

  const std::size_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 64; ++i) {
      s.schedule_in(SimTime::from_us(i), [&sum, i] { sum += i; });
    }
    s.run();
  }
  EXPECT_EQ(g_allocations, before) << "schedule/fire of inline callbacks "
                                      "must not allocate on a warm scheduler";
  EXPECT_EQ(sum, (63 * 64 / 2) * 11);
}

TEST(SchedulerAlloc, CancelIsAllocationFree) {
  MUZHA_SKIP_IF_SANITIZED();
  Scheduler s;
  s.reserve(64);
  EventId ids[64];
  for (int i = 0; i < 64; ++i) {
    ids[i] = s.schedule_in(SimTime::from_us(i + 1), [] {});
  }
  s.run();  // warm: every slot constructed, free list at capacity

  const std::size_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 64; ++i) {
      ids[i] = s.schedule_in(SimTime::from_us(i + 1), [] {});
    }
    for (int i = 0; i < 64; ++i) s.cancel(ids[i]);
  }
  EXPECT_EQ(g_allocations, before);
}

TEST(SchedulerAlloc, LargeCapturesFallBackToExactlyOneAllocation) {
  MUZHA_SKIP_IF_SANITIZED();
  Scheduler s;
  s.reserve(4);
  s.schedule_in(SimTime::zero(), [] {});
  s.run();  // warm

  struct Big {
    std::uint64_t words[9];
  };
  static_assert(!EventCallback::stored_inline<Big>());
  const std::size_t before = g_allocations;
  long out = 0;
  s.schedule_in(SimTime::zero(), [big = Big{{1, 2, 3, 4, 5, 6, 7, 8, 9}},
                                  &out] { out = static_cast<long>(big.words[8]); });
  EXPECT_EQ(g_allocations, before + 1);
  s.run();
  EXPECT_EQ(out, 9);
  EXPECT_EQ(g_allocations, before + 1);
}

TEST(SchedulerAlloc, TimerRestartChurnIsAllocationFree) {
  MUZHA_SKIP_IF_SANITIZED();
  Simulator sim;
  sim.scheduler().reserve(8);
  int fired = 0;
  Timer timer(sim, [&fired] { ++fired; });
  timer.schedule_in(SimTime::from_us(10));
  sim.run();  // warm
  ASSERT_EQ(fired, 1);

  const std::size_t before = g_allocations;
  for (int i = 0; i < 1000; ++i) {
    timer.schedule_in(SimTime::from_us(10));  // cancel + rearm each round
  }
  sim.run();
  EXPECT_EQ(g_allocations, before);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace muzha
