// Receiver-side step DSL: drives a TcpSink with injected data segments and
// expects the ACK stream it emits (delayed-ACK coalescing, duplicate ACKs on
// holes, cumulative-ACK values).
//
// The mirror image of step_harness.h: data segments are injected directly
// into the sink, while its ACKs travel over the real channel back to the
// source node where a capture agent records them — so clock ticks are part
// of every script, exactly like the delayed-ACK timers they exercise.
#pragma once

#include <deque>
#include <memory>
#include <sstream>
#include <string>

#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_sink.h"
#include "tests/harness/script_recorder.h"

namespace muzha {
namespace harness {

class SinkStepHarness {
 public:
  explicit SinkStepHarness(TcpSink::Config sc = default_config())
      : channel_(sim_, PhyParams{}) {
    src_ = std::make_unique<Node>(sim_, channel_, 0, Position{0, 0});
    dst_ = std::make_unique<Node>(sim_, channel_, 1, Position{200, 0});
    auto rs = std::make_unique<StaticRouting>(*src_);
    rs->add_route(1, 1);
    src_->set_routing(std::move(rs));
    auto rd = std::make_unique<StaticRouting>(*dst_);
    rd->add_route(0, 0);
    dst_->set_routing(std::move(rd));
    src_->register_agent(1000, collector_);

    sc.port = 2000;
    sink_ = std::make_unique<TcpSink>(sim_, *dst_, sc);
    sink_->start();
  }

  static TcpSink::Config default_config() {
    TcpSink::Config sc;
    sc.delayed_acks = true;
    sc.delack_timeout = SimTime::from_ms(100);
    return sc;
  }

  TcpSink& sink() { return *sink_; }
  Simulator& sim() { return sim_; }

  void advance(Seconds dt) { sim_.run_until(sim_.now() + to_sim_time(dt)); }

  void deliver(std::int64_t seq) {
    PacketPtr p = src_->new_packet(1, IpProto::kTcp, 1500);
    TcpHeader h;
    h.seqno = seq;
    h.src_port = 1000;
    h.dst_port = 2000;
    p->l4 = h;
    sink_->receive(std::move(p));
  }

  bool ack_pending() const { return !collector_.acks.empty(); }
  std::size_t acks_pending() const { return collector_.acks.size(); }
  std::int64_t pop_ack() {
    std::int64_t seq = collector_.acks.front();
    collector_.acks.pop_front();
    return seq;
  }
  std::string pending_summary() const {
    std::ostringstream out;
    out << collector_.acks.size() << " ACK(s) pending: [";
    for (std::size_t i = 0; i < collector_.acks.size(); ++i) {
      if (i > 0) out << ", ";
      out << collector_.acks[i];
    }
    out << "]";
    return out.str();
  }

  template <class StepT>
  SinkStepHarness& execute(const StepT& step) {
    if (recorder_.failed()) return *this;
    recorder_.begin_step(sim_.now(), step.describe());
    step.apply(*this);
    return *this;
  }

  template <class StepT>
  SinkStepHarness& operator<<(const StepT& step) {
    return execute(step);
  }

  void step_fail(const std::string& why) { recorder_.fail_current_step(why); }
  const ScriptRecorder& recorder() const { return recorder_; }

 private:
  class AckCollector : public Agent {
   public:
    void receive(PacketPtr pkt) override {
      acks.push_back(pkt->tcp().seqno);
    }
    std::deque<std::int64_t> acks;
  };

  Simulator sim_{1};
  Channel channel_;
  std::unique_ptr<Node> src_, dst_;
  std::unique_ptr<TcpSink> sink_;
  AckCollector collector_;
  ScriptRecorder recorder_;
};

// ---------------------------------------------------------------------------
// Sink-side steps (Tick from step_harness.h works here too)
// ---------------------------------------------------------------------------

// Injects one data segment into the sink.
struct InjectData {
  std::int64_t seq = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "InjectData{seq=" << seq << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    h.deliver(seq);
  }
};

// Consumes the oldest ACK the sink has emitted and checks its cumulative
// ackno.
struct ExpectAck {
  std::int64_t seq = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectAck{seq=" << seq << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    if (!h.ack_pending()) {
      h.step_fail("no ACK was sent");
      return;
    }
    std::int64_t got = h.pop_ack();
    if (got != seq) {
      std::ostringstream why;
      why << "ACK carries seq " << got << ", expected " << seq;
      h.step_fail(why.str());
    }
  }
};

// The sink must not have emitted any unconsumed ACK (e.g. a withheld
// delayed ACK).
struct ExpectNoAck {
  std::string describe() const { return "ExpectNoAck"; }
  template <class H>
  void apply(H& h) const {
    if (h.ack_pending()) h.step_fail(h.pending_summary());
  }
};

// In-order delivery count reported by the sink.
struct ExpectDelivered {
  std::int64_t count = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectDelivered{" << count << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::int64_t got = h.sink().delivered();
    if (got != count) {
      std::ostringstream why;
      why << "sink delivered " << got << " segment(s), expected " << count;
      h.step_fail(why.str());
    }
  }
};

}  // namespace harness
}  // namespace muzha
