// Executed-script recorder behind the conformance step DSL (see
// DESIGN.md "Conformance harness").
//
// Every step a harness executes appends one line to the script. When an
// expectation fails, the whole executed script is printed with the failing
// step highlighted — the CS144 diagnostic model: the assertion message *is*
// the reproduction recipe, so a red test names the exact cycle that
// diverged, not just the final mismatched number.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace muzha {
namespace harness {

class ScriptRecorder {
 public:
  // Called by the harness before a step runs.
  void begin_step(SimTime now, std::string description) {
    std::ostringstream line;
    line << "step " << script_.size() + 1 << "  t=" << now.to_seconds()
         << "s  " << description;
    script_.push_back(line.str());
  }

  // Fails the current (= last recorded) step: emits one non-fatal gtest
  // failure carrying the full executed script, and latches `failed()` so the
  // harness skips every subsequent step.
  void fail_current_step(const std::string& why) {
    ADD_FAILURE() << format_failure(why);
    failed_ = true;
  }

  bool failed() const { return failed_; }
  std::size_t steps_executed() const { return script_.size(); }

  std::string format_failure(const std::string& why) const {
    std::ostringstream out;
    out << "conformance step script failed:\n";
    for (std::size_t i = 0; i < script_.size(); ++i) {
      const bool failing = (i + 1 == script_.size());
      out << (failing ? ">>> " : "    ") << script_[i] << "\n";
    }
    out << "      " << why;
    return out.str();
  }

 private:
  std::vector<std::string> script_;
  bool failed_ = false;
};

}  // namespace harness
}  // namespace muzha
