// Topology + injection core shared by every TCP-sender test harness.
//
// The agent sits on a real node (its data segments go out over a real
// channel and vanish at the far node, which has no sink registered), while
// tests inject synthetic ACK packets directly via Agent::receive(). This
// gives cycle-exact control over the congestion-control state machines.
//
// All ACK construction funnels through make_ack()/inject(): the step DSL
// (step_harness.h) and the legacy convenience helpers below share this one
// injection path.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "tcp/tcp_agent.h"

namespace muzha {
namespace harness {

template <class AgentT>
class SenderFixture {
 public:
  // Extra arguments beyond TcpConfig are forwarded to the agent constructor
  // (e.g. VegasConfig, DoorConfig, a Westwood gain).
  template <class... Extra>
  explicit SenderFixture(TcpConfig cfg = {}, Extra&&... extra)
      : channel_(sim_, PhyParams{}) {
    src_ = std::make_unique<Node>(sim_, channel_, 0, Position{0, 0});
    dst_ = std::make_unique<Node>(sim_, channel_, 1, Position{200, 0});
    auto rs = std::make_unique<StaticRouting>(*src_);
    rs->add_route(1, 1);
    src_->set_routing(std::move(rs));
    auto rd = std::make_unique<StaticRouting>(*dst_);
    rd->add_route(0, 0);
    dst_->set_routing(std::move(rd));

    cfg.dst = 1;
    cfg.src_port = 1000;
    cfg.dst_port = 2000;
    agent_ = std::make_unique<AgentT>(sim_, *src_, cfg,
                                      std::forward<Extra>(extra)...);
  }

  AgentT& agent() { return *agent_; }
  Simulator& sim() { return sim_; }
  Node& src() { return *src_; }

  void start() {
    agent_->start();
    run_ms(1);
  }

  // Starts the agent without advancing the clock (step-DSL entry point: the
  // initial burst is observable before any time passes).
  void start_agent() { agent_->start(); }

  void run_ms(std::int64_t ms) {
    sim_.run_until(sim_.now() + SimTime::from_ms(ms));
  }

  void advance(Seconds dt) { sim_.run_until(sim_.now() + to_sim_time(dt)); }

  PacketPtr make_ack(std::int64_t ackno, std::uint8_t mrai = 5,
                     bool marked = false, SackList sacks = {},
                     SimTime ts_echo = SimTime::zero()) {
    PacketPtr p = dst_->new_packet(0, IpProto::kTcp, 40);
    TcpHeader h;
    h.is_ack = true;
    h.seqno = ackno;
    h.src_port = 2000;
    h.dst_port = 1000;
    h.mrai = mrai;
    h.marked = marked;
    h.sacks = sacks;
    h.ts_echo = ts_echo;
    p->l4 = std::move(h);
    return p;
  }

  // Crafts an ACK and lets the caller adjust any header field.
  template <class Fn>
  PacketPtr make_ack_with(std::int64_t ackno, Fn&& mutate) {
    PacketPtr p = make_ack(ackno);
    mutate(p->tcp());
    return p;
  }

  // The single injection path: every synthetic packet enters here.
  void inject(PacketPtr p) { agent_->receive(std::move(p)); }

  // Injects one cumulative ACK (ackno = highest in-order segment).
  void ack(std::int64_t ackno, std::uint8_t mrai = 5) {
    inject(make_ack(ackno, mrai));
  }

  // Injects `n` duplicate ACKs for `ackno`.
  void dup_acks(std::int64_t ackno, int n, bool marked = false,
                SackList sacks = {}) {
    for (int i = 0; i < n; ++i) {
      inject(make_ack(ackno, 5, marked, sacks));
    }
  }

  // Acks everything up to `upto` one segment at a time (growing cwnd).
  void ack_each_up_to(std::int64_t upto, std::uint8_t mrai = 5) {
    for (std::int64_t s = agent_->highest_ack() + 1; s <= upto; ++s) {
      ack(s, mrai);
    }
  }

 private:
  Simulator sim_{1};
  Channel channel_;
  std::unique_ptr<Node> src_, dst_;
  std::unique_ptr<AgentT> agent_;
};

}  // namespace harness
}  // namespace muzha
