// Self-test for the conformance step DSL: the diagnostic contract (a failing
// step prints the full executed script with the failing step highlighted),
// skip-after-failure semantics, and the segment tap's retransmission
// detection.
#include "tests/harness/step_harness.h"

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include "tcp/tcp_variants.h"
#include "tests/harness/sink_harness.h"

namespace muzha {
namespace {

using namespace harness;

// Runs `script` and returns the message of the single non-fatal failure it
// must produce.
template <class Fn>
std::string capture_failure_message(Fn&& script) {
  testing::TestPartResultArray failures;
  {
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ONLY_CURRENT_THREAD,
        &failures);
    script();
  }
  EXPECT_EQ(failures.size(), 1);
  if (failures.size() != 1) return {};
  EXPECT_EQ(failures.GetTestPartResult(0).type(),
            testing::TestPartResult::kNonFatalFailure);
  return failures.GetTestPartResult(0).message();
}

TEST(StepHarnessDiagnostics, FailingStepPrintsFullExecutedScript) {
  StepHarness<TcpNewReno> h;
  std::string msg = capture_failure_message([&] {
    h << Push{}                    // sends segment 0
      << ExpectSegment{.seq = 0}   //
      << InjectAck{.seq = 0}       // cwnd 1 -> 2
      << ExpectCwnd{999.0};        // deliberately wrong
  });
  // Every executed step appears in the assertion message...
  EXPECT_NE(msg.find("conformance step script failed"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("step 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Push"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ExpectSegment{seq=0}"), std::string::npos) << msg;
  EXPECT_NE(msg.find("InjectAck{seq=0}"), std::string::npos) << msg;
  // ...the failing one is highlighted with a marker and the reason follows.
  EXPECT_NE(msg.find(">>> step 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ExpectCwnd{999}"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cwnd is 2"), std::string::npos) << msg;
}

TEST(StepHarnessDiagnostics, StepsAfterFailureAreSkipped) {
  StepHarness<TcpNewReno> h;
  (void)capture_failure_message([&] {
    h << Push{} << ExpectCwnd{999.0};
  });
  ASSERT_TRUE(h.recorder().failed());
  std::size_t executed = h.recorder().steps_executed();
  SimTime before = h.sim().now();
  h << Tick{Seconds(5.0)} << ExpectCwnd{0.0};  // must both be skipped
  EXPECT_EQ(h.recorder().steps_executed(), executed);
  EXPECT_EQ(h.sim().now(), before);
}

TEST(StepHarnessDiagnostics, ExpectSegmentReportsMissingSegment) {
  StepHarness<TcpNewReno> h;
  std::string msg = capture_failure_message([&] {
    h << Push{} << ExpectSegment{.seq = 0} << ExpectSegment{.seq = 1};
  });
  EXPECT_NE(msg.find("no segment was sent"), std::string::npos) << msg;
}

TEST(StepHarnessDiagnostics, ExpectNoSegmentListsPendingSegments) {
  StepHarness<TcpNewReno> h;
  std::string msg = capture_failure_message([&] {
    h << Push{} << ExpectNoSegment{};  // segment 0 is pending
  });
  EXPECT_NE(msg.find("1 segment(s) pending"), std::string::npos) << msg;
}

TEST(StepHarnessTap, MarksRetransmissionsBySeqnoReuse) {
  StepHarness<TcpNewReno> h;
  h << Push{}                                       //
    << ExpectSegment{.seq = 0, .is_retx = false}    //
    << ExpectNoSegment{}                            //
    << Tick{Seconds(3.5)}                           // initial RTO is 3 s
    << ExpectRtoBackoff{1}                          //
    << ExpectSegment{.seq = 0, .is_retx = true}     // go-back-N resend
    << ExpectNoSegment{};
}

TEST(StepHarnessTap, DrainSegmentsDiscardsCapturedOutput) {
  TcpConfig cfg;
  cfg.window = 8;
  StepHarness<TcpNewReno> h(cfg);
  h << Push{} << InjectAck{.seq = 0} << InjectAck{.seq = 1}  //
    << DrainSegments{} << ExpectNoSegment{};
}

TEST(SinkStepHarnessDiagnostics, FailingStepPrintsFullExecutedScript) {
  SinkStepHarness h;
  std::string msg = capture_failure_message([&] {
    h << InjectData{0}            // delayed-ACK sink withholds the ACK
      << Tick{Seconds(0.010)}     //
      << ExpectAck{0};            // deliberately early: still withheld
  });
  EXPECT_NE(msg.find("InjectData{seq=0}"), std::string::npos) << msg;
  EXPECT_NE(msg.find(">>> step 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no ACK was sent"), std::string::npos) << msg;
}

}  // namespace
}  // namespace muzha
