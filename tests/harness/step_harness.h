// Declarative expect/inject step DSL over TcpAgent subclasses.
//
// A conformance test is a script of steps chained through operator<<:
//
//   StepHarness<TcpNewReno> h;
//   h << Push{}                       // start the sender
//     << ExpectSegment{.seq = 0}      // initial window of one
//     << ExpectNoSegment{}
//     << InjectAck{.seq = 0}          // crafted cumulative ACK
//     << ExpectCwnd{2.0}
//     << ExpectSegment{.seq = 1} << ExpectSegment{.seq = 2};
//
// Steps both *inject* events (ACKs, clock ticks) and *expect* observable
// reactions (segments on the wire, window/threshold values, phase, RTO
// backoff). Each executed step is recorded; a failing expectation prints the
// whole executed script with the failing step highlighted (script_recorder.h)
// and skips the remainder, so one red test reads as a full repro script.
//
// Outgoing segments are observed at the node's IP layer through a TraceSink
// (kLocalSend events), synchronously with the agent's output call — no
// simulated time needs to pass for an ExpectSegment to see the reaction to
// an injected ACK.
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/tcp_muzha.h"
#include "net/trace.h"
#include "tcp/tcp_vegas.h"
#include "tests/harness/script_recorder.h"
#include "tests/harness/sender_fixture.h"

namespace muzha {
namespace harness {

// ---------------------------------------------------------------------------
// Segment tap: captures the sender's outgoing data segments
// ---------------------------------------------------------------------------

class SegmentTap : public TraceSink {
 public:
  struct Segment {
    std::int64_t seq = 0;
    bool is_retx = false;
    SimTime at;
  };

  void on_event(const TraceEvent& ev) override {
    if (ev.kind != TraceEventKind::kLocalSend ||
        ev.proto != IpProto::kTcp || ev.is_ack) {
      return;
    }
    // Any re-send of a previously captured seqno is a retransmission — the
    // same definition TcpAgent::output applies to its own counter.
    const bool retx = !seen_.insert(ev.seqno).second;
    captured_.push_back(Segment{ev.seqno, retx, ev.time});
  }

  bool empty() const { return captured_.empty(); }
  std::size_t size() const { return captured_.size(); }
  const Segment& front() const { return captured_.front(); }
  Segment pop() {
    Segment s = captured_.front();
    captured_.pop_front();
    return s;
  }
  void drain() { captured_.clear(); }

  std::string pending_summary(std::size_t limit = 8) const {
    std::ostringstream out;
    out << captured_.size() << " segment(s) pending: [";
    for (std::size_t i = 0; i < captured_.size() && i < limit; ++i) {
      if (i > 0) out << ", ";
      out << captured_[i].seq << (captured_[i].is_retx ? "R" : "");
    }
    if (captured_.size() > limit) out << ", ...";
    out << "]";
    return out.str();
  }

 private:
  std::set<std::int64_t> seen_;
  std::deque<Segment> captured_;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

// Drives one AgentT (any TcpAgent subclass) with a script of steps. A step
// is any type with `std::string describe() const` and
// `template <class H> void apply(H&) const`; variant-specific expectations
// (Vegas diff, Muzha MRAI, SACK scoreboard) simply fail to compile when the
// script is applied to a sender that lacks the introspection hook.
template <class AgentT>
class StepHarness : public SenderFixture<AgentT> {
 public:
  template <class... Extra>
  explicit StepHarness(TcpConfig cfg = {}, Extra&&... extra)
      : SenderFixture<AgentT>(cfg, std::forward<Extra>(extra)...) {
    this->src().set_trace_sink(&tap_);
  }

  template <class StepT>
  StepHarness& execute(const StepT& step) {
    if (recorder_.failed()) return *this;  // skip the rest of the script
    recorder_.begin_step(this->sim().now(), step.describe());
    step.apply(*this);
    return *this;
  }

  template <class StepT>
  StepHarness& operator<<(const StepT& step) {
    return execute(step);
  }

  void step_fail(const std::string& why) { recorder_.fail_current_step(why); }

  SegmentTap& tap() { return tap_; }
  const ScriptRecorder& recorder() const { return recorder_; }

 private:
  SegmentTap tap_;
  ScriptRecorder recorder_;
};

// ---------------------------------------------------------------------------
// Inject steps
// ---------------------------------------------------------------------------

// Starts the sender: registers the agent and emits the initial window.
struct Push {
  std::string describe() const { return "Push"; }
  template <class H>
  void apply(H& h) const {
    h.start_agent();
  }
};

// Advances the simulated clock (fires RTO and delayed-ACK timers).
struct Tick {
  Seconds dt{0.0};
  std::string describe() const {
    std::ostringstream out;
    out << "Tick{" << dt.value() << "s}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    h.advance(dt);
  }
};

// Injects one crafted ACK. `drai` is the echoed MRAI (Muzha), `ecn` the
// marked-duplicate congestion bit, `rtt` > 0 stamps a timestamp echo so the
// sender draws an RTT sample of exactly `rtt`.
struct InjectAck {
  std::int64_t seq = 0;
  std::uint8_t drai = kDraiAggressiveAccel;
  bool ecn = false;
  SackList sack_blocks{};
  Seconds rtt{0.0};

  std::string describe() const {
    std::ostringstream out;
    out << "InjectAck{seq=" << seq;
    if (drai != kDraiAggressiveAccel) {
      out << ", drai=" << static_cast<int>(drai);
    }
    if (ecn) out << ", ecn";
    if (!sack_blocks.empty()) {
      out << ", sacks=";
      for (const SackBlock& b : sack_blocks) {
        out << "[" << b.begin << "," << b.end << ")";
      }
    }
    if (rtt > Seconds(0.0)) out << ", rtt=" << rtt.value() << "s";
    out << "}";
    return out.str();
  }

  template <class H>
  void apply(H& h) const {
    SimTime ts_echo = SimTime::zero();
    if (rtt > Seconds(0.0)) ts_echo = h.sim().now() - to_sim_time(rtt);
    h.inject(h.make_ack(seq, drai, ecn, sack_blocks, ts_echo));
  }
};

// Discards every captured-but-unconsumed segment; the script then asserts
// only about segments emitted from this point on.
struct DrainSegments {
  std::string describe() const { return "DrainSegments"; }
  template <class H>
  void apply(H& h) const {
    h.tap().drain();
  }
};

// ---------------------------------------------------------------------------
// Expect steps
// ---------------------------------------------------------------------------

// Consumes the oldest unconsumed outgoing segment and checks its seqno (and
// optionally whether it was a retransmission).
struct ExpectSegment {
  std::int64_t seq = 0;
  std::optional<bool> is_retx{};

  std::string describe() const {
    std::ostringstream out;
    out << "ExpectSegment{seq=" << seq;
    if (is_retx.has_value()) {
      out << (*is_retx ? ", retx" : ", first-transmission");
    }
    out << "}";
    return out.str();
  }

  template <class H>
  void apply(H& h) const {
    if (h.tap().empty()) {
      h.step_fail("no segment was sent");
      return;
    }
    SegmentTap::Segment got = h.tap().pop();
    std::ostringstream why;
    if (got.seq != seq) {
      why << "sent seq " << got.seq << ", expected " << seq;
      h.step_fail(why.str());
      return;
    }
    if (is_retx.has_value() && got.is_retx != *is_retx) {
      why << "seq " << got.seq << " was "
          << (got.is_retx ? "a retransmission" : "a first transmission")
          << ", expected the opposite";
      h.step_fail(why.str());
    }
  }
};

// The sender must not have any unconsumed outgoing segment.
struct ExpectNoSegment {
  std::string describe() const { return "ExpectNoSegment"; }
  template <class H>
  void apply(H& h) const {
    if (!h.tap().empty()) h.step_fail(h.tap().pending_summary());
  }
};

namespace detail {
inline bool near(double got, double want, double tol) {
  double d = got - want;
  if (d < 0) d = -d;
  return d <= tol;
}
}  // namespace detail

struct ExpectCwnd {
  double value = 0.0;
  double tol = 1e-9;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectCwnd{" << value << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    double got = h.agent().cwnd().value();
    if (!detail::near(got, value, tol)) {
      std::ostringstream why;
      why << "cwnd is " << got << ", expected " << value << " (tol " << tol
          << ")";
      h.step_fail(why.str());
    }
  }
};

struct ExpectSsthresh {
  double value = 0.0;
  double tol = 1e-9;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectSsthresh{" << value << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    double got = h.agent().ssthresh().value();
    if (!detail::near(got, value, tol)) {
      std::ostringstream why;
      why << "ssthresh is " << got << ", expected " << value << " (tol "
          << tol << ")";
      h.step_fail(why.str());
    }
  }
};

struct ExpectState {
  TcpPhase phase = TcpPhase::kCongestionAvoidance;
  std::string describe() const {
    return std::string("ExpectState{") + tcp_phase_name(phase) + "}";
  }
  template <class H>
  void apply(H& h) const {
    TcpPhase got = h.agent().phase();
    if (got != phase) {
      std::ostringstream why;
      why << "phase is " << tcp_phase_name(got) << ", expected "
          << tcp_phase_name(phase);
      h.step_fail(why.str());
    }
  }
};

// Exponential-backoff exponent of the RTO estimator: 0 outside a backoff
// series, k after k consecutive timeouts without forward progress.
struct ExpectRtoBackoff {
  int exponent = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectRtoBackoff{" << exponent << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    int got = h.agent().rto_estimator().backoff_exponent();
    if (got != exponent) {
      std::ostringstream why;
      why << "backoff exponent is " << got << ", expected " << exponent;
      h.step_fail(why.str());
    }
  }
};

struct ExpectRto {
  Seconds value{0.0};
  Seconds tol{1e-9};
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectRto{" << value.value() << "s}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    Seconds got = to_seconds(h.agent().rto_estimator().rto());
    if (!detail::near(got.value(), value.value(), tol.value())) {
      std::ostringstream why;
      why << "RTO is " << got.value() << "s, expected " << value.value()
          << "s";
      h.step_fail(why.str());
    }
  }
};

struct ExpectHighestAck {
  std::int64_t seq = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectHighestAck{" << seq << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::int64_t got = h.agent().highest_ack();
    if (got != seq) {
      std::ostringstream why;
      why << "highest_ack is " << got << ", expected " << seq;
      h.step_fail(why.str());
    }
  }
};

struct ExpectNextSeq {
  std::int64_t seq = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectNextSeq{" << seq << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::int64_t got = h.agent().next_seq();
    if (got != seq) {
      std::ostringstream why;
      why << "next_seq is " << got << ", expected " << seq;
      h.step_fail(why.str());
    }
  }
};

struct ExpectDupacks {
  int count = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectDupacks{" << count << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    int got = h.agent().dupacks();
    if (got != count) {
      std::ostringstream why;
      why << "dupack count is " << got << ", expected " << count;
      h.step_fail(why.str());
    }
  }
};

struct ExpectRtoHasSample {
  bool has_sample = true;
  std::string describe() const {
    return has_sample ? "ExpectRtoHasSample{true}"
                      : "ExpectRtoHasSample{false}";
  }
  template <class H>
  void apply(H& h) const {
    bool got = h.agent().rto_estimator().has_sample();
    if (got != has_sample) {
      std::ostringstream why;
      why << "rto estimator " << (got ? "has" : "has no")
          << " sample, expected the opposite";
      h.step_fail(why.str());
    }
  }
};

struct ExpectSrtt {
  Seconds value{0.0};
  Seconds tol{1e-3};
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectSrtt{" << value.value() << "s}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    Seconds got = to_seconds(h.agent().rto_estimator().srtt());
    if (!detail::near(got.value(), value.value(), tol.value())) {
      std::ostringstream why;
      why << "srtt is " << got.value() << "s, expected " << value.value()
          << "s";
      h.step_fail(why.str());
    }
  }
};

// --- Variant-specific expectations (compile only where the hook exists) ----

// Vegas: last end-of-epoch backlog estimate diff = cwnd * (1 - base/RTT).
struct ExpectVegasDiff {
  double value = 0.0;
  double tol = 1e-6;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectVegasDiff{" << value << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    double got = h.agent().last_diff();
    if (!detail::near(got, value, tol)) {
      std::ostringstream why;
      why << "vegas diff is " << got << ", expected " << value;
      h.step_fail(why.str());
    }
  }
};

struct ExpectBaseRtt {
  Seconds value{0.0};
  Seconds tol{1e-6};
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectBaseRtt{" << value.value() << "s}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    Seconds got = h.agent().base_rtt();
    if (!detail::near(got.value(), value.value(), tol.value())) {
      std::ostringstream why;
      why << "base RTT is " << got.value() << "s, expected " << value.value()
          << "s";
      h.step_fail(why.str());
    }
  }
};

// Muzha: MRAI applied at the last completed epoch boundary.
struct ExpectLastMrai {
  std::uint8_t mrai = kDraiAggressiveAccel;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectLastMrai{" << static_cast<int>(mrai) << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::uint8_t got = h.agent().last_epoch_mrai();
    if (got != mrai) {
      std::ostringstream why;
      why << "last epoch MRAI is " << static_cast<int>(got) << ", expected "
          << static_cast<int>(mrai);
      h.step_fail(why.str());
    }
  }
};

// Muzha: most conservative MRAI heard so far in the epoch in progress.
struct ExpectPendingMrai {
  std::uint8_t mrai = kDraiAggressiveAccel;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectPendingMrai{" << static_cast<int>(mrai) << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::uint8_t got = h.agent().pending_epoch_mrai();
    if (got != mrai) {
      std::ostringstream why;
      why << "pending epoch MRAI is " << static_cast<int>(got)
          << ", expected " << static_cast<int>(mrai);
      h.step_fail(why.str());
    }
  }
};

// SACK: number of selectively-acknowledged segments on the scoreboard.
struct ExpectSackScoreboard {
  std::size_t size = 0;
  std::string describe() const {
    std::ostringstream out;
    out << "ExpectSackScoreboard{" << size << "}";
    return out.str();
  }
  template <class H>
  void apply(H& h) const {
    std::size_t got = h.agent().scoreboard_size();
    if (got != size) {
      std::ostringstream why;
      why << "scoreboard holds " << got << " segment(s), expected " << size;
      h.step_fail(why.str());
    }
  }
};

}  // namespace harness
}  // namespace muzha
