#include "stats/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace muzha {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Export, CsvHeaderAndRows) {
  std::vector<NamedSeries> data;
  data.push_back({"a", {{Seconds(0.0), 1.0}, {Seconds(1.0), 2.0}}});
  data.push_back({"b", {{Seconds(0.5), 10.0}}});
  std::string path = "/tmp/muzha_test_export.csv";
  ASSERT_TRUE(write_csv(path, data));
  std::string text = slurp(path);
  EXPECT_NE(text.find("t,a,b"), std::string::npos);
  // Union of times: 0, 0.5, 1 -> three data rows.
  int newlines = 0;
  for (char c : text) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 4);  // header + 3 rows
  // Step semantics: at t=0.5, series a still holds its t=0 value.
  EXPECT_NE(text.find("0.500000,1.000000,10.000000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Export, CsvEmptySeries) {
  std::string path = "/tmp/muzha_test_export_empty.csv";
  ASSERT_TRUE(write_csv(path, {}));
  EXPECT_EQ(slurp(path), "t\n");
  std::remove(path.c_str());
}

TEST(Export, CsvFailsOnBadPath) {
  EXPECT_FALSE(write_csv("/nonexistent-dir/x.csv", {}));
}

TEST(Export, GnuplotScriptReferencesEveryColumn) {
  std::vector<NamedSeries> data;
  data.push_back({"flow1", {{Seconds(0.0), 1.0}}});
  data.push_back({"flow2", {{Seconds(0.0), 2.0}}});
  std::string path = "/tmp/muzha_test_export.gp";
  ASSERT_TRUE(write_gnuplot_script(path, "data.csv", "Title", data, "kbps"));
  std::string text = slurp(path);
  EXPECT_NE(text.find("using 1:2"), std::string::npos);
  EXPECT_NE(text.find("using 1:3"), std::string::npos);
  EXPECT_NE(text.find("set title 'Title'"), std::string::npos);
  EXPECT_NE(text.find("set ylabel 'kbps'"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace muzha
