#include <gtest/gtest.h>

#include "app/cbr.h"
#include "app/ftp.h"
#include "routing/static_routing.h"
#include "scenario/network.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_variants.h"

namespace muzha {
namespace {

TEST(CbrApp, SendsAtConfiguredRate) {
  Network net(1);
  build_chain(net, 1, Meters(200.0));
  net.use_static_routing();
  net.static_routing(0).add_route(1, 1);

  CbrApp::Config cfg;
  cfg.dst = net.node(1).id();
  cfg.packet_size_bytes = 500;
  cfg.rate = BitsPerSecond(400'000);  // 100 packets/s
  cfg.start_time = SimTime::from_seconds(1.0);
  CbrApp cbr(net.sim(), net.node(0), cfg);
  cbr.install();

  net.run_until(SimTime::from_seconds(3.0));
  // Two seconds at 100 pkt/s.
  EXPECT_NEAR(static_cast<double>(cbr.packets_sent()), 200.0, 5.0);
  // Destination saw them (counted as local deliveries even with no agent).
  EXPECT_GT(net.node(1).delivered_local(), 150u);
}

TEST(CbrApp, StopsAtStopTime) {
  Network net(1);
  build_chain(net, 1, Meters(200.0));
  net.use_static_routing();
  net.static_routing(0).add_route(1, 1);
  CbrApp::Config cfg;
  cfg.dst = net.node(1).id();
  cfg.rate = BitsPerSecond(409'600);
  cfg.start_time = SimTime::zero();
  cfg.stop_time = SimTime::from_seconds(1.0);
  CbrApp cbr(net.sim(), net.node(0), cfg);
  cbr.install();
  net.run_until(SimTime::from_seconds(5.0));
  std::uint64_t at_stop = cbr.packets_sent();
  EXPECT_GT(at_stop, 50u);
  EXPECT_LT(at_stop, 150u);  // nothing after t = 1 s
}

TEST(FtpApp, StartsAgentAtConfiguredTime) {
  Network net(1);
  build_chain(net, 1, Meters(200.0));
  net.use_static_routing();
  net.static_routing(0).add_route(1, 1);
  net.static_routing(1).add_route(0, 0);

  TcpConfig tc;
  tc.dst = net.node(1).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  TcpNewReno agent(net.sim(), net.node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net.sim(), net.node(1), sc);
  sink.start();

  FtpApp ftp(net.sim(), agent, SimTime::from_seconds(2.0));
  ftp.install();
  EXPECT_EQ(ftp.start_time(), SimTime::from_seconds(2.0));

  net.run_until(SimTime::from_seconds(1.9));
  EXPECT_EQ(agent.packets_sent(), 0u);  // not started yet
  net.run_until(SimTime::from_seconds(5.0));
  EXPECT_GT(agent.packets_sent(), 50u);
  EXPECT_GT(sink.delivered(), 50);
}

TEST(CbrBackgroundTraffic, DegradesTcpThroughput) {
  // TCP alone vs TCP + CBR cross-load on a 2-hop chain.
  auto run = [](bool with_cbr) {
    Network net(3);
    build_chain(net, 2, Meters(200.0));
    net.use_static_routing();
    net.static_routing(0).add_route(2, 1);
    net.static_routing(1).add_route(2, 2);
    net.static_routing(1).add_route(0, 0);
    net.static_routing(2).add_route(0, 1);

    TcpConfig tc;
    tc.dst = net.node(2).id();
    tc.src_port = 1000;
    tc.dst_port = 2000;
    tc.window = 8;
    TcpNewReno agent(net.sim(), net.node(0), tc);
    TcpSink::Config sc;
    sc.port = 2000;
    TcpSink sink(net.sim(), net.node(2), sc);
    sink.start();
    net.sim().schedule_at(SimTime::zero(), [&] { agent.start(); });

    CbrApp::Config cc;
    cc.dst = net.node(0).id();
    cc.packet_size_bytes = 1000;
    cc.rate = BitsPerSecond(600'000);
    cc.start_time = SimTime::zero();
    CbrApp cbr(net.sim(), net.node(2), cc);
    if (with_cbr) cbr.install();

    net.run_until(SimTime::from_seconds(10));
    return sink.delivered();
  };
  std::int64_t clean = run(false);
  std::int64_t loaded = run(true);
  EXPECT_GT(clean, 100);
  EXPECT_LT(loaded, clean);
}

}  // namespace
}  // namespace muzha
