// Differential and property battery for the sharded event cores
// (src/scenario/sharded_experiment.h).
//
// Three layers of evidence that sharding never changes the physics:
//
//  1. Differential: the engine at shards == 1 must be BIT-IDENTICAL to the
//     classic single-core run_experiment() — on the 200-node city golden
//     pin and on randomized dense/sparse/mobile/manhattan fields. The
//     window loop slices run_until() into lookahead epochs; slicing a
//     sequential schedule cannot reorder it.
//
//  2. Determinism: shards > 1 draws per-shard RNG streams (a different,
//     equally valid sample), so it is pinned by its own golden hashes and
//     must reproduce them run-to-run and for every shard_jobs value — the
//     (tx_time, src_shard, seq) merge order is the only cross-shard channel
//     and is independent of thread scheduling.
//
//  3. Causality: the conservative lookahead keeps every boundary frame in
//     the receiving shard's future. Channel::deliver MUZHA_DCHECKs the
//     invariant (and the scheduler MUZHA_ASSERTs it unconditionally); the
//     property test runs randomized boundary traffic between tightly
//     coupled shards under those checks, and the death test proves the trap
//     actually fires when the lookahead is forced past the propagation
//     bound.
#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/city.h"
#include "scenario/experiment.h"
#include "scenario/sharded_experiment.h"
#include "tests/experiment_equal.h"
#include "tests/experiment_hash.h"

namespace muzha {
namespace {

using muzha::testing::city_golden_config;
using muzha::testing::expect_results_identical;
using muzha::testing::hash_result;
using muzha::testing::kGoldenCityHash;

// ---------------------------------------------------------------------------
// Deterministic merge order: (tx_time, src_shard, seq), a strict total order.

BoundaryMessage msg(std::int64_t t_ns, std::uint32_t shard, std::uint64_t seq) {
  BoundaryMessage m;
  m.tx_time = SimTime::from_ns(t_ns);
  m.src_shard = shard;
  m.seq = seq;
  return m;
}

TEST(ShardMergeOrder, TimeDominates) {
  EXPECT_TRUE(boundary_message_order(msg(1, 9, 9), msg(2, 0, 0)));
  EXPECT_FALSE(boundary_message_order(msg(2, 0, 0), msg(1, 9, 9)));
}

TEST(ShardMergeOrder, ShardBreaksTimeTies) {
  EXPECT_TRUE(boundary_message_order(msg(5, 0, 7), msg(5, 1, 0)));
  EXPECT_FALSE(boundary_message_order(msg(5, 1, 0), msg(5, 0, 7)));
}

TEST(ShardMergeOrder, SeqBreaksShardTies) {
  EXPECT_TRUE(boundary_message_order(msg(5, 2, 3), msg(5, 2, 4)));
  EXPECT_FALSE(boundary_message_order(msg(5, 2, 4), msg(5, 2, 3)));
}

TEST(ShardMergeOrder, IsStrict) {
  // Irreflexive on equal keys — required by std::sort.
  EXPECT_FALSE(boundary_message_order(msg(5, 2, 3), msg(5, 2, 3)));
}

// ---------------------------------------------------------------------------
// Territory geometry and the lookahead bound.

TEST(ShardGeometry, BoxGapIsZeroWhenTouchingOrOverlapping) {
  ShardBox a{0.0, 100.0, 0.0, 100.0};
  EXPECT_EQ(shard_box_gap(a, ShardBox{50.0, 150.0, 50.0, 150.0}), 0.0);
  EXPECT_EQ(shard_box_gap(a, ShardBox{100.0, 200.0, 0.0, 100.0}), 0.0);
}

TEST(ShardGeometry, BoxGapAxisAndDiagonal) {
  ShardBox a{0.0, 100.0, 0.0, 100.0};
  EXPECT_DOUBLE_EQ(shard_box_gap(a, ShardBox{400.0, 500.0, 0.0, 100.0}),
                   300.0);
  // Diagonal separation: dx = 300, dy = 400 -> 500.
  EXPECT_DOUBLE_EQ(shard_box_gap(a, ShardBox{400.0, 500.0, 500.0, 600.0}),
                   500.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(shard_box_gap(ShardBox{400.0, 500.0, 0.0, 100.0}, a),
                   300.0);
}

TEST(ShardGeometry, PointToBoxDistance) {
  ShardBox b{100.0, 200.0, 100.0, 200.0};
  EXPECT_EQ(shard_box_distance({150.0, 150.0}, b), 0.0);  // inside
  EXPECT_DOUBLE_EQ(shard_box_distance({0.0, 150.0}, b), 100.0);
  EXPECT_DOUBLE_EQ(shard_box_distance({70.0, 60.0}, b), 50.0);  // 30-40-50
}

TEST(ShardCuts, CutsWidestGapsAndSnapsToCells) {
  // Two clusters with a wide gap; the raw midpoint is 6 and no multiple of
  // 550 lies strictly inside (2, 10), so the cut stays at the midpoint.
  std::vector<double> cuts =
      shard_cuts({0.0, 1.0, 2.0, 10.0, 11.0, 12.0}, 2, Meters(550.0));
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(cuts[0], 6.0);

  // With 5 m cells the multiple 5 falls inside (2, 10): the cut aligns with
  // the cell boundary instead of the raw midpoint.
  cuts = shard_cuts({0.0, 1.0, 2.0, 10.0, 11.0, 12.0}, 2, Meters(5.0));
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_DOUBLE_EQ(cuts[0], 5.0);
}

TEST(ShardCuts, ReturnsSortedCutsForThreeShards) {
  // Gaps: (2,10) width 8 and (12,17) width 5 are the two widest.
  std::vector<double> cuts =
      shard_cuts({0.0, 2.0, 10.0, 12.0, 17.0, 18.0}, 3, Meters(550.0));
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_DOUBLE_EQ(cuts[0], 6.0);
  EXPECT_DOUBLE_EQ(cuts[1], 14.5);
}

TEST(ShardLookahead, PropagationAcrossTheGap) {
  // 300 m at 3e8 m/s is exactly 1000 ns.
  std::vector<ShardBox> boxes{{0.0, 100.0, 0.0, 100.0},
                              {400.0, 500.0, 0.0, 100.0}};
  SimTime l = conservative_lookahead(boxes, Meters(550.0),
                                     MetersPerSecond(3.0e8),
                                     SimTime::from_ms(10));
  EXPECT_EQ(l, SimTime::from_ns(1000));
}

TEST(ShardLookahead, TouchingTerritoriesFloorAtOneNanosecond) {
  std::vector<ShardBox> boxes{{0.0, 100.0, 0.0, 100.0},
                              {100.0, 200.0, 0.0, 100.0}};
  SimTime l = conservative_lookahead(boxes, Meters(550.0),
                                     MetersPerSecond(3.0e8),
                                     SimTime::from_ms(10));
  EXPECT_EQ(l, SimTime::from_ns(1));
}

TEST(ShardLookahead, DecoupledShardsUseMaxEpoch) {
  // Gap 600 m > carrier-sense range 550 m: no frame ever crosses, the
  // window is bounded only by max_epoch.
  std::vector<ShardBox> boxes{{0.0, 100.0, 0.0, 100.0},
                              {700.0, 800.0, 0.0, 100.0}};
  SimTime l = conservative_lookahead(boxes, Meters(550.0),
                                     MetersPerSecond(3.0e8),
                                     SimTime::from_ms(10));
  EXPECT_EQ(l, SimTime::from_ms(10));
}

TEST(ShardLookahead, ClampedByMaxEpoch) {
  // A coupled pair whose propagation delay exceeds max_epoch still honours
  // the epoch bound.
  std::vector<ShardBox> boxes{{0.0, 100.0, 0.0, 100.0},
                              {400.0, 500.0, 0.0, 100.0}};
  SimTime l = conservative_lookahead(boxes, Meters(550.0),
                                     MetersPerSecond(3.0e8),
                                     SimTime::from_ns(400));
  EXPECT_EQ(l, SimTime::from_ns(400));
}

TEST(ShardLookahead, MinimumOverCoupledPairsOnly) {
  // Three territories: (0,1) gap 300 -> 1000 ns, (1,2) gap 600 decoupled,
  // (0,2) gap 1200 decoupled. The minimum is over coupled pairs only.
  std::vector<ShardBox> boxes{{0.0, 100.0, 0.0, 100.0},
                              {400.0, 500.0, 0.0, 100.0},
                              {1100.0, 1200.0, 0.0, 100.0}};
  SimTime l = conservative_lookahead(boxes, Meters(550.0),
                                     MetersPerSecond(3.0e8),
                                     SimTime::from_ms(10));
  EXPECT_EQ(l, SimTime::from_ns(1000));
}

// ---------------------------------------------------------------------------
// Differential: engine at shards == 1 vs the classic single-core path.
// run_experiment() dispatches to the engine only when cfg.shards != 1, so
// calling run_sharded_experiment() directly pits the window loop against
// the plain run_until() on identical configs.

TEST(ShardK1Differential, CityGoldenPinReproducedThroughTheEngine) {
  ExperimentResult r = run_sharded_experiment(city_golden_config());
  ASSERT_EQ(r.flows.size(), 4u);
  EXPECT_EQ(hash_result(r), kGoldenCityHash);
}

TEST(ShardK1Differential, ChainAndCrossTopologies) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 3;
  cfg.duration = SimTime::from_seconds(4.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 3, SimTime::zero(), 8});
  expect_results_identical(run_experiment(cfg), run_sharded_experiment(cfg));

  cfg.topology = TopologyKind::kCross;
  cfg.hops = 4;
  cfg.flows.push_back({TcpVariant::kNewReno, 5, 8, SimTime::zero(), 16});
  expect_results_identical(run_experiment(cfg), run_sharded_experiment(cfg));
}

TEST(ShardK1Differential, StaticRoutingChain) {
  // Covers the engine's global-BFS static-route rebuild (positions read
  // back from the built network on the K == 1 path).
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 4;
  cfg.static_routing = true;
  cfg.duration = SimTime::from_seconds(4.0);
  cfg.seed = 9;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 16});
  expect_results_identical(run_experiment(cfg), run_sharded_experiment(cfg));
}

TEST(ShardK1Differential, RandomizedFields) {
  // Dense static, sparse mobile, and manhattan mobile fields over several
  // seeds: every combination must be bit-identical through the engine.
  struct FieldCase {
    int nodes;
    double side;
    bool mobile;
    TopologyKind kind;
  };
  const FieldCase cases[] = {
      {48, 1200.0, false, TopologyKind::kRandomField},   // dense static
      {30, 2500.0, true, TopologyKind::kRandomField},    // sparse mobile
      {36, 1400.0, true, TopologyKind::kManhattanGrid},  // manhattan mobile
  };
  const std::uint64_t seeds[] = {1, 23, 4242};
  for (const FieldCase& fc : cases) {
    for (std::uint64_t seed : seeds) {
      ExperimentConfig cfg;
      cfg.topology = fc.kind;
      cfg.field.nodes = fc.nodes;
      cfg.field.width = Meters(fc.side);
      cfg.field.height = Meters(fc.side);
      cfg.field.mobile = fc.mobile;
      cfg.duration = SimTime::from_seconds(3.0);
      cfg.seed = seed;
      cfg.flows = make_random_flows(2, fc.nodes, TcpVariant::kMuzha,
                                    seed * 31 + 7, SimTime::from_seconds(1.0));
      SCOPED_TRACE(::testing::Message()
                   << "nodes=" << fc.nodes << " side=" << fc.side
                   << " mobile=" << fc.mobile << " seed=" << seed);
      expect_results_identical(run_experiment(cfg),
                               run_sharded_experiment(cfg));
    }
  }
}

// ---------------------------------------------------------------------------
// shards > 1: golden pins plus run-to-run and thread-count invariance.

// Four-district mobile city: strips 1000 m wide separated by 1100 m of
// empty ground (decoupled at carrier-sense range, so the barrier runs at
// max_epoch), one Muzha flow per district.
ExperimentConfig district_city() {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kRandomField;
  cfg.field.nodes = 120;
  cfg.field.districts = 4;
  cfg.field.district_gap = Meters(1100.0);
  cfg.field.width = Meters(4 * 1000.0 + 3 * 1100.0);
  cfg.field.height = Meters(1000.0);
  cfg.field.mobile = true;
  cfg.duration = SimTime::from_seconds(3.0);
  cfg.seed = 42;
  cfg.flows = make_random_district_flows(4, cfg.field, TcpVariant::kMuzha, 7,
                                         SimTime::from_seconds(1.0));
  return cfg;
}

// Golden hashes for the district city at shards == 2 and 4, captured at pin
// time. The per-shard RNG streams make these distinct from the shards == 1
// hash of the same config — each is its own frozen sample. A shift means
// the sharded schedule changed; re-capture only with an intentional change.
constexpr std::uint64_t kGoldenDistrictCityShards2 = 0x6213A00032998930ull;
constexpr std::uint64_t kGoldenDistrictCityShards4 = 0x0F287CD4D54A9009ull;

TEST(ShardDeterminism, GoldenDistrictCityShards2Pinned) {
  ExperimentConfig cfg = district_city();
  cfg.shards = 2;
  ExperimentResult r = run_experiment(cfg);
  std::int64_t delivered = 0;
  for (const FlowResult& f : r.flows) delivered += f.delivered;
  EXPECT_GT(delivered, 0);  // the pin must freeze real traffic, not silence
  EXPECT_EQ(hash_result(r), kGoldenDistrictCityShards2);
}

TEST(ShardDeterminism, GoldenDistrictCityShards4Pinned) {
  ExperimentConfig cfg = district_city();
  cfg.shards = 4;
  ExperimentResult r = run_experiment(cfg);
  std::int64_t delivered = 0;
  for (const FlowResult& f : r.flows) delivered += f.delivered;
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(hash_result(r), kGoldenDistrictCityShards4);
}

TEST(ShardDeterminism, RepeatableAndJobsInvariant) {
  // Same config, shards = 2: twice at the default worker count, once on a
  // single worker, once on three (more workers than shards). All four must
  // be bitwise identical — OS scheduling must never reach the physics.
  ExperimentConfig cfg = district_city();
  cfg.shards = 2;
  ExperimentResult a = run_experiment(cfg);
  ExperimentResult b = run_experiment(cfg);
  expect_results_identical(a, b);
  cfg.shard_jobs = 1;
  expect_results_identical(a, run_experiment(cfg));
  cfg.shard_jobs = 3;
  expect_results_identical(a, run_experiment(cfg));
}

TEST(ShardDeterminism, FourShardsJobsInvariant) {
  ExperimentConfig cfg = district_city();
  cfg.shards = 4;
  ExperimentResult a = run_experiment(cfg);
  cfg.shard_jobs = 1;
  expect_results_identical(a, run_experiment(cfg));
  cfg.shard_jobs = 2;
  expect_results_identical(a, run_experiment(cfg));
}

// ---------------------------------------------------------------------------
// Coupled shards: cross-boundary physics and the causality property.

// Two dense static clusters `gap` metres apart (both within carrier-sense
// coupling for gap < 550), one flow inside each cluster. The static-field
// partitioner cuts in the gap; every transmission near the boundary ships
// to the other shard and interferes there.
// muzha-lint: allow(raw-unit-double): test-matrix convenience parameter, converted to Meters below
ExperimentConfig coupled_clusters(std::uint64_t seed, double gap_m,
                                  SimTime duration) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kRandomField;
  cfg.field.nodes = 20;
  cfg.field.districts = 2;
  cfg.field.district_gap = Meters(gap_m);
  cfg.field.width = Meters(2 * 150.0 + gap_m);  // strips 150 m wide
  cfg.field.height = Meters(400.0);
  cfg.field.mobile = false;
  cfg.duration = duration;
  cfg.seed = seed;
  cfg.static_routing = true;
  cfg.flows = make_random_district_flows(2, cfg.field, TcpVariant::kNewReno,
                                         seed ^ 0xF10Eull,
                                         SimTime::from_ms(1));
  return cfg;
}

TEST(ShardCausality, RandomBoundaryTrafficHoldsTheInvariant) {
  // Randomized coupled boundary traffic, microsecond-scale lookahead, many
  // barrier rounds. Channel::deliver MUZHA_DCHECKs that every injected
  // frame arrives in the receiver's future, and Scheduler::schedule_at
  // MUZHA_ASSERTs it unconditionally — surviving the run IS the property.
  // Identical results across worker counts then pin the merge order.
  for (std::uint64_t seed : {3ull, 14ull, 159ull}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    ExperimentConfig cfg = coupled_clusters(seed, 300.0, SimTime::from_ms(60));
    cfg.shards = 2;
    ExperimentResult a = run_experiment(cfg);
    ExperimentResult b = run_experiment(cfg);
    expect_results_identical(a, b);
    cfg.shard_jobs = 1;
    expect_results_identical(a, run_experiment(cfg));
  }
}

TEST(ShardCausality, CrossShardTrafficReachesTheOtherShard) {
  // A flow whose source and destination land in different shards: frames
  // relay through the boundary exchange (the 200 m gap is within the 250 m
  // decode range, so BFS routes straight across the cut). Delivery > 0
  // proves boundary messages carry real traffic, not just interference.
  ExperimentConfig cfg = coupled_clusters(5, 200.0, SimTime::from_ms(400));
  cfg.flows.clear();
  FlowSpec f;
  f.variant = TcpVariant::kNewReno;
  f.src = 0;  // node 0 -> district 0 -> left shard
  f.dst = 1;  // node 1 -> district 1 -> right shard
  f.start_time = SimTime::from_ms(1);
  f.window = 8;
  cfg.flows.push_back(f);
  cfg.shards = 2;
  ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.flows[0].delivered, 0);
  expect_results_identical(r, run_experiment(cfg));
}

TEST(ShardCausalityDeath, ForcedOversizedLookaheadTripsTheTrap) {
  // Force the window three orders of magnitude past the propagation bound:
  // a frame transmitted early in a 5 ms window reaches the other shard's
  // past, and the run must die — on the causality MUZHA_DCHECK in
  // Channel::deliver when debug checks are compiled in, else on the
  // scheduler's unconditional cannot-schedule-in-the-past MUZHA_ASSERT.
  ExperimentConfig cfg = coupled_clusters(3, 300.0, SimTime::from_ms(60));
  cfg.shards = 2;
  ShardDebugOptions dbg;
  dbg.force_lookahead = SimTime::from_ms(5);
  EXPECT_DEATH(run_sharded_experiment(cfg, dbg),
               "causality violated|in the past");
}

// ---------------------------------------------------------------------------
// Engine guard rails.

TEST(ShardGuardDeath, RejectsShardedChainTopology) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.flows.push_back({TcpVariant::kNewReno, 0, 4, SimTime::zero(), 8});
  cfg.shards = 2;
  EXPECT_DEATH(run_experiment(cfg), "field topology");
}

TEST(ShardGuardDeath, RejectsMobileFieldWithFewerDistrictsThanShards) {
  ExperimentConfig cfg = district_city();  // 4 districts
  cfg.shards = 8;
  EXPECT_DEATH(run_experiment(cfg), "district");
}

}  // namespace
}  // namespace muzha
