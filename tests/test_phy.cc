#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/wireless_phy.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

PacketPtr data_packet(std::uint32_t bytes, NodeId src = 0,
                      NodeId dst = kBroadcastId) {
  PacketPtr p = alloc_packet();
  p->size_bytes = bytes;
  p->mac.type = MacFrameType::kData;
  p->mac.src = src;
  p->mac.dst = dst;
  return p;
}

struct RxLog {
  int ok = 0;
  int corrupted = 0;
  PacketPtr last;
  void attach(WirelessPhy& phy) {
    phy.set_rx_callback([this](PacketPtr pkt, bool corr) {
      if (corr) {
        ++corrupted;
      } else {
        ++ok;
        last = std::move(pkt);
      }
    });
  }
};

class PhyTest : public ::testing::Test {
 protected:
  Simulator sim{1};
  PhyParams params;
  Channel channel{sim, params};
};

TEST_F(PhyTest, TxDurationIncludesPlcpAndRate) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  // 250 bytes at 2 Mbps = 1 ms + 192 us PLCP.
  EXPECT_EQ(a.tx_duration(Bytes(250), false), SimTime::from_us(1192));
  // Basic rate is 1 Mbps.
  EXPECT_EQ(a.tx_duration(Bytes(250), true), SimTime::from_us(2192));
}

TEST_F(PhyTest, DeliversWithinDecodeRange) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {250, 0});
  RxLog log;
  log.attach(b);
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 1);
  EXPECT_EQ(log.corrupted, 0);
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_received_ok(), 1u);
}

TEST_F(PhyTest, EnergyOnlyBetweenDecodeAndCsRange) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {400, 0});  // 250 < d <= 550
  RxLog log;
  log.attach(b);
  bool saw_busy = false;
  b.set_channel_state_callback([&](bool busy) { saw_busy |= busy; });
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 0);
  EXPECT_EQ(log.corrupted, 0);
  EXPECT_TRUE(saw_busy);  // carrier sensed even though undecodable
}

TEST_F(PhyTest, SilentBeyondCsRange) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {600, 0});
  RxLog log;
  log.attach(b);
  bool saw_busy = false;
  b.set_channel_state_callback([&](bool busy) { saw_busy |= busy; });
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok + log.corrupted, 0);
  EXPECT_FALSE(saw_busy);
}

TEST_F(PhyTest, PropagationDelayAppliesPerReceiver) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {250, 0});
  SimTime rx_time;
  b.set_rx_callback([&](PacketPtr, bool) { rx_time = sim.now(); });
  a.start_tx(data_packet(100), false);
  sim.run();
  SimTime air = a.tx_duration(Bytes(100 + kMacDataOverheadBytes), false);
  SimTime prop = SimTime::from_seconds(250.0 / 3.0e8);
  EXPECT_EQ(rx_time, air + prop);
}

TEST_F(PhyTest, EqualDistanceOverlapCollides) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {500, 0});
  WirelessPhy c(sim, channel, 2, {250, 0});  // 250 from both
  RxLog log;
  log.attach(c);
  a.start_tx(data_packet(1000), false);
  sim.schedule_in(SimTime::from_us(100),
                  [&] { b.start_tx(data_packet(1000, 1), false); });
  sim.run();
  EXPECT_EQ(log.ok, 0);
  EXPECT_EQ(log.corrupted, 1);
  EXPECT_GE(c.collisions(), 1u);
}

TEST_F(PhyTest, CaptureSurvivesFarInterferer) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy c(sim, channel, 2, {250, 0});   // wanted rx at 250 m from a
  WirelessPhy b(sim, channel, 1, {750, 0});   // interferer 500 m from c
  RxLog log;
  log.attach(c);
  a.start_tx(data_packet(1000), false);
  sim.schedule_in(SimTime::from_us(100),
                  [&] { b.start_tx(data_packet(1000, 1), false); });
  sim.run();
  // 500 >= 1.78 * 250, so the overlapping far signal is captured over.
  EXPECT_EQ(log.ok, 1);
  EXPECT_EQ(log.corrupted, 0);
}

TEST_F(PhyTest, CaptureLocksOntoStrongFrameDespiteFarEnergy) {
  WirelessPhy b(sim, channel, 1, {750, 0});  // far talker first
  WirelessPhy c(sim, channel, 2, {250, 0});
  WirelessPhy a(sim, channel, 0, {0, 0});
  RxLog log;
  log.attach(c);
  b.start_tx(data_packet(1500, 1), false);  // long frame: energy at c
  sim.schedule_in(SimTime::from_us(500),
                  [&] { a.start_tx(data_packet(100), false); });
  sim.run();
  // c was sensing b's far signal but still locks onto a's strong frame.
  EXPECT_EQ(log.ok, 1);
}

TEST_F(PhyTest, HalfDuplexTxDuringRxCorruptsReception) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy c(sim, channel, 2, {250, 0});
  RxLog log;
  log.attach(c);
  a.start_tx(data_packet(1000), false);
  sim.schedule_in(SimTime::from_us(500),
                  [&] { c.start_tx(data_packet(50, 2), false); });
  sim.run();
  EXPECT_EQ(log.ok, 0);
  EXPECT_EQ(log.corrupted, 1);
}

TEST_F(PhyTest, CarrierBusyDuringOwnTx) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  EXPECT_FALSE(a.carrier_busy());
  a.start_tx(data_packet(1000), false);
  EXPECT_TRUE(a.carrier_busy());
  EXPECT_TRUE(a.transmitting());
  sim.run();
  EXPECT_FALSE(a.carrier_busy());
}

TEST_F(PhyTest, UniformErrorModelCorruptsFrames) {
  channel.set_error_model(
      std::make_unique<UniformErrorModel>(Probability(1.0)));
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {250, 0});
  RxLog log;
  log.attach(b);
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 0);
  EXPECT_EQ(log.corrupted, 1);
  EXPECT_EQ(channel.frames_corrupted_by_error(), 1u);
}

TEST_F(PhyTest, DetachStopsDelivery) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  auto b = std::make_unique<WirelessPhy>(sim, channel, 1, Position{100, 0});
  WirelessPhy c(sim, channel, 2, {200, 0});
  RxLog log_b, log_c;
  log_b.attach(*b);
  log_c.attach(c);
  ASSERT_EQ(channel.attached_count(), 3u);

  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log_b.ok, 1);
  EXPECT_EQ(log_c.ok, 1);

  channel.detach(*b);
  EXPECT_EQ(channel.attached_count(), 2u);
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log_b.ok, 1) << "detached PHY must not receive";
  EXPECT_EQ(log_c.ok, 2) << "remaining PHYs still receive";

  // Detach is idempotent, and a detached PHY may move freely.
  channel.detach(*b);
  b->set_position({300, 0});
  EXPECT_EQ(channel.attached_count(), 2u);
}

TEST_F(PhyTest, DestructorDetaches) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  {
    WirelessPhy b(sim, channel, 1, {100, 0});
    EXPECT_EQ(channel.attached_count(), 2u);
  }
  EXPECT_EQ(channel.attached_count(), 1u);
  // Transmitting after b died must not touch the dead PHY (ASan would
  // catch the dangling phys_/grid pointer this guards against).
  a.start_tx(data_packet(100), false);
  sim.run();
}

TEST_F(PhyTest, ReattachAfterDetachReceivesAgain) {
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {100, 0});
  RxLog log;
  log.attach(b);
  channel.detach(b);
  channel.attach(b);  // legal: detach cleared the attachment
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 1);
}

TEST_F(PhyTest, MovedReceiverTracksIndexAcrossCells) {
  // Move a receiver across a cell boundary (cell side = cs_range = 550 m)
  // and back; deliveries must follow its true position both times.
  WirelessPhy a(sim, channel, 0, {0, 0});
  WirelessPhy b(sim, channel, 1, {100, 0});
  RxLog log;
  log.attach(b);

  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 1);

  b.set_position({2000, 2000});  // far cell, out of CS range
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 1);

  b.set_position({0, 200});  // back within decode range
  a.start_tx(data_packet(100), false);
  sim.run();
  EXPECT_EQ(log.ok, 2);
}

TEST(ErrorModel, BerScalesWithFrameSize) {
  Rng rng(1);
  BerErrorModel em(Probability(1e-4));
  Packet small;
  small.size_bytes = 40;
  Packet big;
  big.size_bytes = 1460;
  int small_bad = 0, big_bad = 0;
  for (int i = 0; i < 4000; ++i) {
    if (em.should_corrupt(small, Meters(0.0), SimTime(), rng)) ++small_bad;
    if (em.should_corrupt(big, Meters(0.0), SimTime(), rng)) ++big_bad;
  }
  EXPECT_GT(big_bad, small_bad * 5);
}

TEST(ErrorModel, GilbertElliottProducesBursts) {
  Rng rng(1);
  GilbertElliottErrorModel::Config cfg;
  cfg.mean_good = Seconds(0.5);
  cfg.mean_bad = Seconds(0.1);
  cfg.bad_loss_prob = Probability(1.0);
  GilbertElliottErrorModel em(cfg);
  Packet p;
  p.size_bytes = 100;
  int losses = 0, transitions = 0;
  bool prev = false;
  for (int i = 0; i < 10000; ++i) {
    SimTime now = SimTime::from_us(i * 1000);
    bool bad = em.should_corrupt(p, Meters(0.0), now, rng);
    if (bad) ++losses;
    if (bad != prev) ++transitions;
    prev = bad;
  }
  EXPECT_GT(losses, 300);       // ~1/6 of the time in BAD
  EXPECT_LT(losses, 4000);
  EXPECT_LT(transitions, losses);  // losses cluster in bursts
}

// Regression pin for the clock-owning Gilbert-Elliott rewrite: the model now
// advances its own SimTime state machine from the `now` passed to
// should_corrupt(), so the burst structure is a pure function of (seed,
// sample times). Pins the first state transitions and the loss count so a
// future refactor of the exponential dwell sampling is caught.
TEST(ErrorModel, GilbertElliottDeterministicStateSequence) {
  Rng rng(7);
  GilbertElliottErrorModel::Config cfg;
  cfg.mean_good = Seconds(1.0);
  cfg.mean_bad = Seconds(0.05);
  cfg.bad_loss_prob = Probability(1.0);
  GilbertElliottErrorModel em(cfg);
  Packet p;
  p.size_bytes = 100;
  EXPECT_FALSE(em.in_bad_state());
  std::vector<int> bad_onsets;  // sample index where GOOD->BAD was observed
  bool prev = false;
  int losses = 0;
  for (int i = 0; i < 20000; ++i) {
    SimTime now = SimTime::from_us(i * 500);  // 0.5 ms sampling grid
    bool bad = em.should_corrupt(p, Meters(0.0), now, rng);
    if (bad) ++losses;
    if (bad && !prev) bad_onsets.push_back(i);
    prev = bad;
  }
  // Golden values for (seed 7, this config, 0.5 ms grid). These pin the
  // dwell-time sampling order; any change to the state machine moves them.
  ASSERT_GE(bad_onsets.size(), 3u);
  // The model toggles GOOD->BAD on the very first sample (state_until_
  // starts at t=0), so onset 0 is part of the pinned behaviour.
  EXPECT_EQ(bad_onsets[0], 0);
  EXPECT_EQ(bad_onsets[1], 2256);
  EXPECT_EQ(bad_onsets[2], 3898);
  EXPECT_EQ(losses, 1202);
}

}  // namespace
}  // namespace muzha
