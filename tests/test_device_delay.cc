// Device-level accumulation of per-hop queueing delay (the RoVegas IP
// option) and the queue-gradient DRAI extension.
#include <gtest/gtest.h>

#include "core/bandwidth_estimator.h"
#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "sim/simulator.h"

namespace muzha {
namespace {

class CollectAgent : public Agent {
 public:
  void receive(PacketPtr pkt) override { got.push_back(std::move(pkt)); }
  std::vector<PacketPtr> got;
};

TEST(QueueDelayOption, BackloggedQueueAccumulatesDelay) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node a(sim, channel, 0, {0, 0});
  Node b(sim, channel, 1, {200, 0});
  auto ra = std::make_unique<StaticRouting>(a);
  ra->add_route(1, 1);
  a.set_routing(std::move(ra));
  b.set_routing(std::make_unique<StaticRouting>(b));
  CollectAgent sink;
  b.register_agent(80, sink);

  // Burst of packets: all but the first wait in a's IFQ.
  for (int i = 0; i < 5; ++i) {
    PacketPtr p = a.new_packet(1, IpProto::kTcp, 1500);
    TcpHeader h;
    h.dst_port = 80;
    h.seqno = i;
    p->l4 = h;
    a.send(std::move(p));
  }
  sim.run_until(SimTime::from_seconds(1));
  ASSERT_EQ(sink.got.size(), 5u);
  // First packet went straight to the MAC: zero queueing delay.
  EXPECT_EQ(sink.got[0]->ip.accum_queue_delay, SimTime::zero());
  // Later packets queued behind earlier airtime: strictly growing delay.
  for (std::size_t i = 2; i < sink.got.size(); ++i) {
    EXPECT_GT(sink.got[i]->ip.accum_queue_delay,
              sink.got[i - 1]->ip.accum_queue_delay);
  }
  // A 1500 B frame takes ~6.4 ms of air: the 5th packet waited several.
  EXPECT_GT(sink.got[4]->ip.accum_queue_delay, SimTime::from_ms(10));
}

TEST(QueueGradient, RisingQueueCapsDrai) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node a(sim, channel, 0, {0, 0});
  DraiConfig cfg;
  cfg.use_queue_gradient = true;
  cfg.gradient_stabilize = SegmentsPerSecond(5.0);
  BandwidthEstimator est(sim, a.device(), cfg);
  est.start();

  // Idle: full acceleration.
  sim.run_until(SimTime::from_ms(200));
  EXPECT_EQ(est.current_drai(), kDraiAggressiveAccel);

  // Queue grows ~40 pkt/s (via direct enqueue; nothing drains it since the
  // routing never sends). Occupancy stays < 25% of the 50-slot IFQ, so any
  // DRAI reduction comes from the gradient alone.
  std::uint64_t uid = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::from_ms(200 + i * 25), [&a, &uid] {
      a.device().queue().enqueue(make_packet(uid), 1);
    });
  }
  sim.run_until(SimTime::from_ms(460));
  EXPECT_GT(est.queue_gradient(), SegmentsPerSecond(10.0));
  EXPECT_LE(est.current_drai(), kDraiModerateDecel);
}

TEST(QueueGradient, DisabledByDefault) {
  Simulator sim{1};
  Channel channel(sim, PhyParams{});
  Node a(sim, channel, 0, {0, 0});
  BandwidthEstimator est(sim, a.device(), DraiConfig{});
  est.start();
  std::uint64_t uid = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::from_ms(200 + i * 25), [&a, &uid] {
      a.device().queue().enqueue(make_packet(uid), 1);
    });
  }
  sim.run_until(SimTime::from_ms(460));
  // 10/50 occupancy = moderate accel band; without the gradient option the
  // rising queue does not cap the level below that.
  EXPECT_EQ(est.current_drai(), kDraiModerateAccel);
}

}  // namespace
}  // namespace muzha
