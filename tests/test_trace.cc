// Packet tracing tests: every milestone of a packet's life is observable.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/node.h"
#include "phy/channel.h"
#include "routing/static_routing.h"
#include "stats/trace_sinks.h"

namespace muzha {
namespace {

class CollectAgent : public Agent {
 public:
  void receive(PacketPtr pkt) override { got.push_back(std::move(pkt)); }
  std::vector<PacketPtr> got;
};

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : channel(sim, PhyParams{}) {
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_unique<Node>(
          sim, channel, static_cast<NodeId>(i), Position{200.0 * i, 0}));
      nodes.back()->set_trace_sink(&trace);
    }
    for (int i = 0; i < 3; ++i) {
      auto r = std::make_unique<StaticRouting>(*nodes[i]);
      if (i < 2) r->add_route(2, static_cast<NodeId>(i + 1));
      if (i > 0) r->add_route(0, static_cast<NodeId>(i - 1));
      nodes[i]->set_routing(std::move(r));
    }
    nodes[2]->register_agent(80, sink_agent);
  }

  PacketPtr tcp_data(std::int64_t seq) {
    PacketPtr p = nodes[0]->new_packet(2, IpProto::kTcp, 1500);
    TcpHeader h;
    h.seqno = seq;
    h.dst_port = 80;
    p->l4 = h;
    return p;
  }

  Simulator sim{1};
  Channel channel;
  std::vector<std::unique_ptr<Node>> nodes;
  VectorTraceSink trace;
  CollectAgent sink_agent;
};

TEST_F(TraceTest, RecordsFullPacketLifecycle) {
  PacketPtr p = tcp_data(7);
  std::uint64_t uid = p->uid;
  nodes[0]->send(std::move(p));
  sim.run_until(SimTime::from_ms(200));

  EXPECT_EQ(trace.count(TraceEventKind::kLocalSend, uid), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kForward, uid), 1u);  // at node 1
  EXPECT_EQ(trace.count(TraceEventKind::kDeliver, uid), 1u);  // at node 2

  // Events carry the right coordinates.
  for (const TraceEvent& ev : trace.events()) {
    if (ev.uid != uid) continue;
    EXPECT_EQ(ev.src, 0u);
    EXPECT_EQ(ev.dst, 2u);
    EXPECT_EQ(ev.proto, IpProto::kTcp);
    EXPECT_EQ(ev.seqno, 7);
    EXPECT_FALSE(ev.is_ack);
  }
}

TEST_F(TraceTest, EventsAreTimeOrdered) {
  nodes[0]->send(tcp_data(0));
  nodes[0]->send(tcp_data(1));
  sim.run_until(SimTime::from_ms(500));
  const auto& evs = trace.events();
  ASSERT_GE(evs.size(), 4u);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GE(evs[i].time, evs[i - 1].time);
  }
}

TEST_F(TraceTest, TtlDropTraced) {
  PacketPtr p = tcp_data(0);
  p->ip.ttl = 1;
  std::uint64_t uid = p->uid;
  nodes[0]->send(std::move(p));
  sim.run_until(SimTime::from_ms(200));
  EXPECT_EQ(trace.count(TraceEventKind::kDropTtl, uid), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kDeliver, uid), 0u);
}

TEST_F(TraceTest, UnknownPortDropTraced) {
  PacketPtr p = tcp_data(0);
  p->tcp().dst_port = 9999;
  std::uint64_t uid = p->uid;
  nodes[0]->send(std::move(p));
  sim.run_until(SimTime::from_ms(200));
  EXPECT_EQ(trace.count(TraceEventKind::kDropNoAgent, uid), 1u);
}

TEST_F(TraceTest, IfqOverflowTraced) {
  // Shrink node 0's pipe by flooding far more than the IFQ holds while the
  // MAC is still busy with the first frame.
  for (int i = 0; i < 60; ++i) {
    nodes[0]->send(tcp_data(i));
  }
  EXPECT_GT(trace.count(TraceEventKind::kDropIfq), 0u);
}

TEST_F(TraceTest, NoSinkMeansNoOverhead) {
  nodes[0]->set_trace_sink(nullptr);
  nodes[1]->set_trace_sink(nullptr);
  nodes[2]->set_trace_sink(nullptr);
  nodes[0]->send(tcp_data(0));
  sim.run_until(SimTime::from_ms(200));
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(sink_agent.got.size(), 1u);  // traffic unaffected
}

TEST(FileTraceSinkTest, WritesParseableLines) {
  std::string path = "/tmp/muzha_trace_test.txt";
  {
    FileTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    TraceEvent ev;
    ev.time = SimTime::from_ms(1500);
    ev.node = 3;
    ev.kind = TraceEventKind::kForward;
    ev.uid = 42;
    ev.src = 0;
    ev.dst = 4;
    ev.proto = IpProto::kTcp;
    ev.size_bytes = 1500;
    ev.seqno = 9;
    sink.on_event(ev);
    EXPECT_EQ(sink.lines_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("1.500000"), std::string::npos);
  EXPECT_NE(line.find("fwd"), std::string::npos);
  EXPECT_NE(line.find("node=3"), std::string::npos);
  EXPECT_NE(line.find("0->4"), std::string::npos);
  EXPECT_NE(line.find("seq=9"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FileTraceSinkTest, BadPathReportsNotOk) {
  FileTraceSink sink("/nonexistent-dir/trace.txt");
  EXPECT_FALSE(sink.ok());
  sink.on_event(TraceEvent{});  // must not crash
  EXPECT_EQ(sink.lines_written(), 0u);
}

}  // namespace
}  // namespace muzha
