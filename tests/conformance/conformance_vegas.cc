// TCP Vegas conformance: slow start doubling every other RTT, gamma-exit to
// congestion avoidance, alpha/beta window nudges and the gentler (3/4) loss
// reaction — all pinned cycle-exactly with RTT-stamped ACKs.
#include <gtest/gtest.h>

#include "tcp/tcp_vegas.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

constexpr Seconds kFastRtt{0.05};

TEST(VegasConformance, SlowStartDoublesEveryOtherEpoch) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(1.0)}  // let now > 0 so ts_echo is valid
    << ExpectSegment{.seq = 0} << ExpectState{TcpPhase::kSlowStart}
    // Epoch boundaries land on ACKs 0, 1 and 3 (epoch end = next_seq at the
    // previous boundary). Doubling happens on the 1st and 3rd boundaries.
    << InjectAck{.seq = 0, .rtt = kFastRtt} << ExpectCwnd{2.0}  //
    << InjectAck{.seq = 1, .rtt = kFastRtt} << ExpectCwnd{2.0}  // off epoch
    << InjectAck{.seq = 2, .rtt = kFastRtt} << ExpectCwnd{2.0}  // mid epoch
    << InjectAck{.seq = 3, .rtt = kFastRtt} << ExpectCwnd{4.0}  //
    << ExpectBaseRtt{Seconds(0.05)};
}

TEST(VegasConformance, QueueingDelayEndsSlowStartBeforeLoss) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(1.0)};
  for (std::int64_t s = 0; s <= 3; ++s) h << InjectAck{.seq = s, .rtt = kFastRtt};
  h << ExpectCwnd{4.0}
    // RTT inflates to 3x baseRTT: at the next epoch boundary (ACK 5),
    // diff = 4 * (1 - 0.05/0.15) = 8/3 > gamma, so slow start ends with a
    // cwnd/8 trim instead of a loss.
    << InjectAck{.seq = 4, .rtt = Seconds(0.15)}        //
    << InjectAck{.seq = 5, .rtt = Seconds(0.15)}        //
    << ExpectVegasDiff{8.0 / 3.0}                       //
    << ExpectCwnd{3.5}                                  // 4 - 4/8
    << ExpectSsthresh{2.0}                              //
    << ExpectState{TcpPhase::kCongestionAvoidance};
}

TEST(VegasConformance, CongestionAvoidanceNudgesWindowByOne) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(1.0)};
  for (std::int64_t s = 0; s <= 3; ++s) h << InjectAck{.seq = s, .rtt = kFastRtt};
  h << InjectAck{.seq = 4, .rtt = Seconds(0.15)}  //
    << InjectAck{.seq = 5, .rtt = Seconds(0.15)} << ExpectCwnd{3.5}
    // Fast epoch (diff 0 < alpha): +1 at the boundary (ACK 9).
    << InjectAck{.seq = 6, .rtt = kFastRtt}  //
    << InjectAck{.seq = 7, .rtt = kFastRtt}  //
    << InjectAck{.seq = 8, .rtt = kFastRtt} << ExpectCwnd{3.5}
    << InjectAck{.seq = 9, .rtt = kFastRtt} << ExpectCwnd{4.5}
    // Slow epoch (diff = 4.5 * (1 - 0.05/0.3) = 3.75 > beta): -1 at the
    // boundary (ACK 12).
    << InjectAck{.seq = 10, .rtt = Seconds(0.3)}  //
    << InjectAck{.seq = 11, .rtt = Seconds(0.3)} << ExpectCwnd{4.5}
    << InjectAck{.seq = 12, .rtt = Seconds(0.3)} << ExpectCwnd{3.5}
    << ExpectVegasDiff{3.75};
}

TEST(VegasConformance, LossReactionIsGentlerThanReno) {
  StepHarness<TcpVegas> h;
  h << Push{} << Tick{Seconds(1.0)};
  for (std::int64_t s = 0; s <= 3; ++s) h << InjectAck{.seq = s, .rtt = kFastRtt};
  h << ExpectCwnd{4.0} << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 3};
  h << ExpectSegment{.seq = 4, .is_retx = true}  //
    << ExpectSsthresh{3.0}                       // 3/4 of cwnd, not 1/2
    << ExpectCwnd{3.0}                           //
    << ExpectState{TcpPhase::kFastRecovery};
}

}  // namespace
}  // namespace muzha
