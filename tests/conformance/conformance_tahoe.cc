// TCP Tahoe conformance: fast retransmit followed by a slow-start restart
// (no fast recovery), pinned cycle-exactly with the step DSL.
#include <gtest/gtest.h>

#include "tcp/tcp_variants.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

// Grows the window by acking segments 0..upto one at a time.
template <class H>
void ack_each(H& h, std::int64_t upto) {
  for (std::int64_t s = 0; s <= upto; ++s) h << InjectAck{.seq = s};
}

TEST(TahoeConformance, SlowStartSendsTwoSegmentsPerAck) {
  StepHarness<TcpTahoe> h;
  h << Push{}                                      //
    << ExpectSegment{.seq = 0, .is_retx = false}   // initial window of one
    << ExpectNoSegment{}                           //
    << ExpectState{TcpPhase::kSlowStart}           //
    << InjectAck{.seq = 0}                         //
    << ExpectCwnd{2.0}                             // +1 per ACK
    << ExpectSegment{.seq = 1} << ExpectSegment{.seq = 2}
    << ExpectNoSegment{}                           //
    << InjectAck{.seq = 1}                         //
    << ExpectCwnd{3.0}                             //
    << ExpectSegment{.seq = 3} << ExpectSegment{.seq = 4}
    << ExpectNoSegment{};
}

TEST(TahoeConformance, TripleDupAckRetransmitsAndRestartsSlowStart) {
  StepHarness<TcpTahoe> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11, segments 10..20 outstanding
  h << ExpectCwnd{11.0} << DrainSegments{}        //
    << InjectAck{.seq = 9} << InjectAck{.seq = 9} // two dups: quiet
    << ExpectDupacks{2} << ExpectNoSegment{}      //
    << InjectAck{.seq = 9}                        // third: fast retransmit
    << ExpectSegment{.seq = 10, .is_retx = true}  //
    << ExpectCwnd{1.0}                            // no fast recovery
    << ExpectSsthresh{5.5}                        // cwnd / 2
    << ExpectState{TcpPhase::kFastRecovery}       //
    << InjectAck{.seq = 20}                       // recovery point reached
    << ExpectState{TcpPhase::kSlowStart}          // restart from slow start
    << ExpectCwnd{2.0};
}

TEST(TahoeConformance, TimeoutCollapsesWindowAndGoesBackN) {
  StepHarness<TcpTahoe> h;
  h << Push{}                                     //
    << ExpectSegment{.seq = 0}                    //
    << Tick{Seconds(3.5)}                         // initial RTO is 3 s
    << ExpectRtoBackoff{1}                        //
    << ExpectCwnd{1.0}                            //
    << ExpectSsthresh{2.0}                        // max(cwnd/2, 2)
    << ExpectSegment{.seq = 0, .is_retx = true}   // go-back-N resend
    << ExpectNoSegment{};
}

TEST(TahoeConformance, BelowThresholdDupAcksLeaveStateUntouched) {
  StepHarness<TcpTahoe> h;
  h << Push{};
  ack_each(h, 4);  // cwnd 6
  h << ExpectCwnd{6.0} << DrainSegments{}         //
    << InjectAck{.seq = 4} << InjectAck{.seq = 4} //
    << ExpectCwnd{6.0} << ExpectNoSegment{}       //
    << ExpectState{TcpPhase::kSlowStart};
}

}  // namespace
}  // namespace muzha
