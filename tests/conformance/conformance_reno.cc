// TCP Reno conformance: fast retransmit + fast recovery with window
// inflation per duplicate ACK and deflation to ssthresh on the
// recovery-exiting ACK.
#include <gtest/gtest.h>

#include "tcp/tcp_variants.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

template <class H>
void ack_each(H& h, std::int64_t upto) {
  for (std::int64_t s = 0; s <= upto; ++s) h << InjectAck{.seq = s};
}

TEST(RenoConformance, TripleDupAckHalvesAndInflatesByThreshold) {
  StepHarness<TcpReno> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11, next_seq 21, segments 10..20 outstanding
  h << ExpectCwnd{11.0} << ExpectNextSeq{21} << DrainSegments{}  //
    << InjectAck{.seq = 9} << InjectAck{.seq = 9}                //
    << ExpectNoSegment{}                                         //
    << InjectAck{.seq = 9}                                       //
    << ExpectSegment{.seq = 10, .is_retx = true}                 //
    << ExpectSsthresh{5.5}                                       //
    << ExpectCwnd{8.5}                 // ssthresh + 3 dup ACKs
    << ExpectState{TcpPhase::kFastRecovery};
}

TEST(RenoConformance, InflationReleasesNewDataOncePipeDrains) {
  StepHarness<TcpReno> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << ExpectSegment{.seq = 10, .is_retx = true} << ExpectCwnd{8.5};
  // Each further dup ACK inflates by one; the effective window reaches the
  // pipe (11 outstanding) only after four more, releasing exactly seq 21.
  h << InjectAck{.seq = 9} << ExpectCwnd{9.5} << ExpectNoSegment{}    //
    << InjectAck{.seq = 9} << ExpectCwnd{10.5} << ExpectNoSegment{}   //
    << InjectAck{.seq = 9} << ExpectCwnd{11.5} << ExpectNoSegment{}   //
    << InjectAck{.seq = 9} << ExpectCwnd{12.5}                        //
    << ExpectSegment{.seq = 21, .is_retx = false}                     //
    << ExpectNoSegment{};
}

TEST(RenoConformance, RecoveryExitDeflatesToSsthreshThenGrowsLinearly) {
  StepHarness<TcpReno> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << InjectAck{.seq = 20}                      // any new ACK exits recovery
    << ExpectState{TcpPhase::kCongestionAvoidance}
    << ExpectCwnd{5.5}                           // deflate to ssthresh
    << DrainSegments{}                           //
    << InjectAck{.seq = 21}                      //
    << ExpectCwnd{5.5 + 1.0 / 5.5};              // CA: +1/cwnd per ACK
}

}  // namespace
}  // namespace muzha
