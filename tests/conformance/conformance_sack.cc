// TCP SACK conformance (RFC 3517 style): scoreboard absorption, pipe-gated
// hole retransmission in ascending order, and scoreboard teardown on both
// recovery exit and timeout.
#include <gtest/gtest.h>

#include "tcp/tcp_variants.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

template <class H>
void ack_each(H& h, std::int64_t upto) {
  for (std::int64_t s = 0; s <= upto; ++s) h << InjectAck{.seq = s};
}

TEST(SackConformance, PipeEstimateGatesTheRetransmission) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);  // cwnd 11, segments 10..20 outstanding
  h << ExpectCwnd{11.0} << DrainSegments{}
    // First dup ACK carries SACK blocks: scoreboard fills, nothing sent.
    << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}}  //
    << ExpectSackScoreboard{3} << ExpectNoSegment{}    //
    << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}}  //
    << ExpectNoSegment{}
    // Third dup enters recovery: pipe = 11 outstanding - 3 sacked - 1 = 7,
    // which is above cwnd 5.5, so the hole is NOT retransmitted yet.
    << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}}         //
    << ExpectSsthresh{5.5} << ExpectCwnd{5.5}                 //
    << ExpectState{TcpPhase::kFastRecovery} << ExpectNoSegment{}
    << InjectAck{.seq = 9} << ExpectNoSegment{}               // pipe 6
    << InjectAck{.seq = 9}                                    // pipe 5 < 5.5
    << ExpectSegment{.seq = 10, .is_retx = true}              //
    << ExpectNoSegment{};
}

TEST(SackConformance, HolesRetransmitInAscendingSequenceOrder) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{}
    << InjectAck{.seq = 9, .sack_blocks = {{11, 20}}}  //
    << ExpectSackScoreboard{9} << ExpectNoSegment{}    //
    << InjectAck{.seq = 9, .sack_blocks = {{11, 20}}}  //
    << ExpectNoSegment{}
    // Recovery entry: pipe = 11 - 9 - 1 = 1, well under cwnd 5.5, so both
    // holes (10 and 20) go out immediately, lowest first.
    << InjectAck{.seq = 9, .sack_blocks = {{11, 20}}}  //
    << ExpectSegment{.seq = 10, .is_retx = true}       //
    << ExpectSegment{.seq = 20, .is_retx = true}       //
    << ExpectNoSegment{};
}

TEST(SackConformance, FullAckClearsScoreboardAndDeflates) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}};
  }
  h << ExpectSackScoreboard{3} << ExpectState{TcpPhase::kFastRecovery}
    << InjectAck{.seq = 20}                          // full ACK
    << ExpectSackScoreboard{0} << ExpectCwnd{5.5}    //
    << ExpectState{TcpPhase::kCongestionAvoidance}   //
    << ExpectSegment{.seq = 21, .is_retx = false};
}

TEST(SackConformance, TimeoutClearsScoreboardAndCollapsesWindow) {
  StepHarness<TcpSack> h;
  h << Push{};
  ack_each(h, 9);
  h << DrainSegments{};
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 9, .sack_blocks = {{12, 15}}};
  }
  h << ExpectSackScoreboard{3} << ExpectNoSegment{}  // pipe still too full
    << Tick{Seconds(3.5)}                            // initial RTO is 3 s
    << ExpectRtoBackoff{1}                           //
    << ExpectSackScoreboard{0}                       //
    << ExpectCwnd{1.0}                               //
    << ExpectState{TcpPhase::kSlowStart}             //
    << ExpectSegment{.seq = 10, .is_retx = true}     // go-back-N resend
    << ExpectNoSegment{};
}

}  // namespace
}  // namespace muzha
