// TCP Muzha conformance: router-assisted window control (Table 5.2 DRAI
// ladder applied once per RTT epoch), the two-phase CA/FF machine of
// Table 4.1, and Sec. 4.7's marked/unmarked loss discrimination.
#include <gtest/gtest.h>

#include "core/tcp_muzha.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

TEST(MuzhaConformance, StartsInCongestionAvoidanceWithWindowTwo) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    << ExpectSegment{.seq = 0} << ExpectSegment{.seq = 1}  //
    << ExpectNoSegment{}                                   //
    << ExpectCwnd{2.0}                       // no slow start (Sec. 4.8)
    << ExpectSsthresh{0.0}                   // parked: CA is the only phase
    << ExpectState{TcpPhase::kCongestionAvoidance};
}

TEST(MuzhaConformance, EpochAppliesMostConservativeMraiHeard) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    // First epoch ends immediately at ACK 0: moderate accel -> +1.
    << InjectAck{.seq = 0, .drai = kDraiModerateAccel}  //
    << ExpectCwnd{3.0} << ExpectLastMrai{kDraiModerateAccel}
    // Next epoch runs to ACK 2. A stabilize heard mid-epoch pins the
    // pending minimum even though a later ACK says aggressive accel.
    << InjectAck{.seq = 1, .drai = kDraiStabilize}         //
    << ExpectPendingMrai{kDraiStabilize} << ExpectCwnd{3.0}
    << InjectAck{.seq = 2, .drai = kDraiAggressiveAccel}   //
    << ExpectLastMrai{kDraiStabilize} << ExpectCwnd{3.0};  // min wins: hold
}

TEST(MuzhaConformance, DecelerationLevelsShrinkTheWindow) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    << InjectAck{.seq = 0, .drai = kDraiAggressiveAccel}  //
    << ExpectCwnd{4.0}                                    // x2
    // Epoch to ACK 2 hears moderate deceleration: -1.
    << InjectAck{.seq = 1, .drai = kDraiModerateDecel}  //
    << InjectAck{.seq = 2, .drai = kDraiModerateDecel}  //
    << ExpectCwnd{3.0}
    // Epoch to ACK 6 hears one aggressive deceleration among accels: x0.5.
    << InjectAck{.seq = 3, .drai = kDraiAggressiveDecel}  //
    << ExpectPendingMrai{kDraiAggressiveDecel}            //
    << InjectAck{.seq = 4, .drai = kDraiAggressiveAccel}  //
    << InjectAck{.seq = 5, .drai = kDraiAggressiveAccel}  //
    << InjectAck{.seq = 6, .drai = kDraiAggressiveAccel}  //
    << ExpectCwnd{1.5} << ExpectLastMrai{kDraiAggressiveDecel};
}

TEST(MuzhaConformance, UnmarkedTripleDupRetransmitsWithoutSlowingDown) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    << InjectAck{.seq = 0, .drai = kDraiAggressiveAccel}  //
    << ExpectCwnd{4.0} << DrainSegments{}                 //
    << InjectAck{.seq = 0} << InjectAck{.seq = 0}         //
    << ExpectNoSegment{}                                  //
    << InjectAck{.seq = 0}                                // random/link loss
    << ExpectSegment{.seq = 1, .is_retx = true}           //
    << ExpectCwnd{4.0}                                    // window untouched
    << ExpectState{TcpPhase::kFastRecovery};
}

TEST(MuzhaConformance, MarkedTripleDupHalvesTheWindow) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    << InjectAck{.seq = 0, .drai = kDraiAggressiveAccel}  //
    << ExpectCwnd{4.0} << DrainSegments{};
  for (int i = 0; i < 3; ++i) {
    h << InjectAck{.seq = 0, .ecn = true};  // router congestion mark
  }
  h << ExpectSegment{.seq = 1, .is_retx = true}  //
    << ExpectCwnd{2.0}                           // congestion loss: halve
    << ExpectState{TcpPhase::kFastRecovery};
}

TEST(MuzhaConformance, PartialAckRetransmitsHoleAndFullAckReturnsToCa) {
  StepHarness<TcpMuzha> h;
  h << Push{}
    << InjectAck{.seq = 0, .drai = kDraiAggressiveAccel}  //
    << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 0};
  h << ExpectSegment{.seq = 1, .is_retx = true}  // recovery point is 4
    << InjectAck{.seq = 2}                       // partial ACK
    << ExpectSegment{.seq = 3, .is_retx = true}  //
    << ExpectState{TcpPhase::kFastRecovery}      //
    << InjectAck{.seq = 4}                       // full ACK
    << ExpectState{TcpPhase::kCongestionAvoidance}
    << ExpectCwnd{4.0}                           // no further window change
    << ExpectPendingMrai{kDraiAggressiveAccel};  // epoch minimum reset
}

TEST(MuzhaConformance, TimeoutCollapsesToOneAndReentersCa) {
  StepHarness<TcpMuzha> h;
  h << Push{} << DrainSegments{}                 //
    << Tick{Seconds(3.5)}                        // initial RTO is 3 s
    << ExpectRtoBackoff{1}                       //
    << ExpectCwnd{1.0}                           //
    << ExpectState{TcpPhase::kCongestionAvoidance}  // never slow start
    << ExpectSegment{.seq = 0, .is_retx = true}  // go-back-N resend
    << ExpectNoSegment{};
}

}  // namespace
}  // namespace muzha
