// Golden RTO-backoff conformance: the full exponential series is pinned both
// at the estimator level and end-to-end through the step DSL — doubling per
// timeout, saturation at max_rto, and the reset to the estimate on forward
// progress (a new cumulative ACK).
#include <gtest/gtest.h>

#include "tcp/rto_estimator.h"
#include "tcp/tcp_variants.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

TEST(RtoGolden, EstimatorBackoffLadderAndReset) {
  RtoEstimator est;
  EXPECT_EQ(est.rto(), SimTime::from_seconds(3.0));  // initial RTO
  EXPECT_EQ(est.backoff_exponent(), 0);

  est.sample(SimTime::from_ms(100));  // srtt 100ms, rttvar 50ms
  EXPECT_EQ(est.srtt(), SimTime::from_ms(100));
  EXPECT_EQ(est.rto(), SimTime::from_ms(300));

  est.backoff();
  EXPECT_EQ(est.rto(), SimTime::from_ms(600));
  EXPECT_EQ(est.backoff_exponent(), 1);
  est.backoff();
  EXPECT_EQ(est.rto(), SimTime::from_ms(1200));
  EXPECT_EQ(est.backoff_exponent(), 2);
  est.backoff();
  EXPECT_EQ(est.rto(), SimTime::from_ms(2400));
  EXPECT_EQ(est.backoff_exponent(), 3);

  est.reset_backoff();  // forward progress: back to srtt + 4 * rttvar
  EXPECT_EQ(est.rto(), SimTime::from_ms(300));
  EXPECT_EQ(est.backoff_exponent(), 0);
}

TEST(RtoGolden, EstimatorSaturatesAtMaxRtoWhileExponentKeepsCounting) {
  RtoConfig cfg;
  cfg.max_rto = SimTime::from_seconds(1.0);
  RtoEstimator est(cfg);
  est.sample(SimTime::from_ms(100));
  est.backoff();  // 600ms
  est.backoff();  // 1200ms -> capped at 1s
  EXPECT_EQ(est.rto(), SimTime::from_seconds(1.0));
  EXPECT_EQ(est.backoff_exponent(), 2);
  est.backoff();  // stays capped
  EXPECT_EQ(est.rto(), SimTime::from_seconds(1.0));
  EXPECT_EQ(est.backoff_exponent(), 3);
  est.reset_backoff();
  EXPECT_EQ(est.rto(), SimTime::from_ms(300));
}

TEST(RtoGolden, EstimatorResetWithoutSampleRestoresInitialRto) {
  RtoEstimator est;
  est.backoff();
  EXPECT_EQ(est.rto(), SimTime::from_seconds(6.0));
  est.reset_backoff();
  EXPECT_EQ(est.rto(), SimTime::from_seconds(3.0));
  // At exponent zero the reset is a no-op (never clobbers a fresh estimate).
  est.reset_backoff();
  EXPECT_EQ(est.rto(), SimTime::from_seconds(3.0));
}

TEST(RtoGolden, AgentBackoffLadderPinnedThroughStepDsl) {
  StepHarness<TcpTahoe> h;
  h << Push{} << ExpectSegment{.seq = 0}             // seg 0 in flight
    << Tick{Seconds(1.0)}                            //
    << InjectAck{.seq = 0, .rtt = Seconds(0.1)}      // RTT sample: 100ms
    << ExpectSrtt{Seconds(0.1)} << ExpectRto{Seconds(0.3)}
    << ExpectRtoBackoff{0}                           //
    << ExpectSegment{.seq = 1} << ExpectSegment{.seq = 2}  // timer at t=1.3
    << Tick{Seconds(0.35)}                           // 1st timeout (t=1.3)
    << ExpectRtoBackoff{1} << ExpectRto{Seconds(0.6)}
    << ExpectSegment{.seq = 1, .is_retx = true} << ExpectNoSegment{}
    << Tick{Seconds(0.6)}                            // 2nd timeout (t=1.9)
    << ExpectRtoBackoff{2} << ExpectRto{Seconds(1.2)}
    << ExpectSegment{.seq = 1, .is_retx = true}      //
    << Tick{Seconds(1.2)}                            // 3rd timeout (t=3.1)
    << ExpectRtoBackoff{3} << ExpectRto{Seconds(2.4)}
    << ExpectSegment{.seq = 1, .is_retx = true}
    // Forward progress ends the series: the RTO drops straight back to the
    // estimate, not to half the backed-off value.
    << InjectAck{.seq = 2}                           //
    << ExpectRtoBackoff{0} << ExpectRto{Seconds(0.3)};
}

TEST(RtoGolden, AgentRtoSaturatesAtConfiguredCap) {
  TcpConfig cfg;
  cfg.rto.max_rto = SimTime::from_seconds(1.0);
  StepHarness<TcpTahoe> h(cfg);
  h << Push{} << Tick{Seconds(1.0)}                  //
    << InjectAck{.seq = 0, .rtt = Seconds(0.1)}      //
    << ExpectRto{Seconds(0.3)} << DrainSegments{}    // timer at t=1.3
    << Tick{Seconds(0.35)}                           // t=1.35, timeout 1.3
    << ExpectRtoBackoff{1} << ExpectRto{Seconds(0.6)}
    << Tick{Seconds(0.6)}                            // t=1.95, timeout 1.9
    << ExpectRtoBackoff{2} << ExpectRto{Seconds(1.0)}  // 1.2s capped to 1s
    << Tick{Seconds(1.0)}                            // t=2.95, timeout 2.9
    << ExpectRtoBackoff{3} << ExpectRto{Seconds(1.0)}  // stays capped
    << DrainSegments{}                               //
    << InjectAck{.seq = 1}                           //
    << ExpectRtoBackoff{0} << ExpectRto{Seconds(0.3)};
}

TEST(RtoGolden, KarnRuleSkipsRetransmittedSegmentsButStillResetsBackoff) {
  StepHarness<TcpTahoe> h;
  h << Push{} << Tick{Seconds(1.0)}                  //
    << InjectAck{.seq = 0, .rtt = Seconds(0.1)}      //
    << ExpectSrtt{Seconds(0.1)} << DrainSegments{}   //
    << Tick{Seconds(0.35)}                           // timeout: seg 1 retx
    << ExpectRtoBackoff{1}
    // The ACK for the retransmitted segment must not be sampled (ambiguous
    // RTT), but it is forward progress, so the backoff series still ends.
    << InjectAck{.seq = 1, .rtt = Seconds(0.5)}      //
    << ExpectSrtt{Seconds(0.1)}                      // unchanged
    << ExpectRtoBackoff{0} << ExpectRto{Seconds(0.3)};
}

}  // namespace
}  // namespace muzha
