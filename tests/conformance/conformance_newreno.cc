// TCP NewReno conformance (RFC 3782): partial ACKs retransmit the next hole
// and keep the sender in fast recovery until the recovery point is
// cumulatively acknowledged.
#include <gtest/gtest.h>

#include "tcp/tcp_variants.h"
#include "tests/harness/step_harness.h"

namespace muzha {
namespace {

using namespace harness;

template <class H>
void ack_each(H& h, std::int64_t upto) {
  for (std::int64_t s = 0; s <= upto; ++s) h << InjectAck{.seq = s};
}

// Grows to cwnd 11 with segments 10..20 outstanding, then enters recovery
// via three duplicate ACKs (recovery point = 20).
template <class H>
void enter_recovery(H& h) {
  h << Push{};
  ack_each(h, 9);
  h << ExpectCwnd{11.0} << ExpectNextSeq{21} << DrainSegments{};
  for (int i = 0; i < 3; ++i) h << InjectAck{.seq = 9};
  h << ExpectSegment{.seq = 10, .is_retx = true}  //
    << ExpectSsthresh{5.5} << ExpectCwnd{8.5}     //
    << ExpectState{TcpPhase::kFastRecovery};
}

TEST(NewRenoConformance, PartialAckRetransmitsNextHoleAndStaysInRecovery) {
  StepHarness<TcpNewReno> h;
  enter_recovery(h);
  h << InjectAck{.seq = 12}                      // partial: 3 newly acked
    << ExpectSegment{.seq = 13, .is_retx = true} // next hole goes out now
    << ExpectCwnd{6.5}                           // 8.5 - 3 acked + 1
    << ExpectState{TcpPhase::kFastRecovery}      //
    << ExpectNoSegment{};
}

TEST(NewRenoConformance, FullAckExitsRecoveryAndDeflatesToSsthresh) {
  StepHarness<TcpNewReno> h;
  enter_recovery(h);
  h << InjectAck{.seq = 20}                      // recovery point reached
    << ExpectState{TcpPhase::kCongestionAvoidance}
    << ExpectCwnd{5.5}                           //
    << ExpectSegment{.seq = 21, .is_retx = false};
}

TEST(NewRenoConformance, MultipleHolesRecoverWithoutTimeout) {
  StepHarness<TcpNewReno> h;
  enter_recovery(h);
  h << InjectAck{.seq = 11}                      // hole at 12
    << ExpectSegment{.seq = 12, .is_retx = true} << ExpectCwnd{7.5}
    << InjectAck{.seq = 13}                      // hole at 14
    << ExpectSegment{.seq = 14, .is_retx = true} << ExpectCwnd{6.5}
    << InjectAck{.seq = 15}                      // hole at 16
    << ExpectSegment{.seq = 16, .is_retx = true} << ExpectCwnd{5.5}
    << ExpectState{TcpPhase::kFastRecovery}      //
    << InjectAck{.seq = 20}                      //
    << ExpectState{TcpPhase::kCongestionAvoidance} << ExpectCwnd{5.5}
    << ExpectRtoBackoff{0};                      // never fired the timer
}

TEST(NewRenoConformance, LinearGrowthResumesAfterRecovery) {
  StepHarness<TcpNewReno> h;
  enter_recovery(h);
  h << InjectAck{.seq = 20} << ExpectCwnd{5.5} << DrainSegments{}  //
    << InjectAck{.seq = 21}                                        //
    << ExpectCwnd{5.5 + 1.0 / 5.5};
}

}  // namespace
}  // namespace muzha
