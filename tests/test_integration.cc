// End-to-end integration tests: full stack (PHY + 802.11 MAC + AODV + TCP)
// over the paper's topologies.
#include <gtest/gtest.h>

#include "scenario/experiment.h"

namespace muzha {
namespace {

ExperimentConfig single_flow(TcpVariant v, int hops, int window,
                             // muzha-lint: allow(raw-unit-double): test-matrix convenience parameter, converted to SimTime below
                             double duration_s, std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.hops = hops;
  cfg.duration = SimTime::from_seconds(duration_s);
  cfg.seed = seed;
  cfg.flows.push_back(
      {v, 0, static_cast<std::size_t>(hops), SimTime::zero(), 8});
  cfg.flows[0].window = window;
  return cfg;
}

TEST(Integration, NewRenoDeliversOverFourHopChain) {
  auto res = run_experiment(single_flow(TcpVariant::kNewReno, 4, 8, 10.0));
  const FlowResult& f = res.flows[0];
  EXPECT_GT(f.delivered, 50);
  EXPECT_GT(f.throughput, BitsPerSecond(20e3));
  // Conservation: the sink cannot deliver more than the sender emitted.
  EXPECT_LE(f.delivered, static_cast<std::int64_t>(f.packets_sent));
}

TEST(Integration, MuzhaDeliversOverFourHopChain) {
  auto res = run_experiment(single_flow(TcpVariant::kMuzha, 4, 8, 10.0));
  EXPECT_GT(res.flows[0].delivered, 100);
  // Router assistance active: DRAI adjustments actually happened.
  EXPECT_GT(res.flows[0].throughput, BitsPerSecond(50e3));
}

TEST(Integration, FiniteTransferCompletesExactly) {
  ExperimentConfig cfg = single_flow(TcpVariant::kNewReno, 2, 8, 30.0);
  // A bounded transfer: exactly 200 segments, then the source stops.
  cfg.flows[0].window = 8;
  // (max_packets plumbed through TcpConfig inside run_experiment is not
  // exposed in FlowSpec; use a 2-hop static-routing run long enough that an
  // unbounded source would deliver far more, then check monotone counters.)
  auto res = run_experiment(cfg);
  const FlowResult& f = res.flows[0];
  EXPECT_GT(f.delivered, 200);
  EXPECT_GE(f.packets_sent, static_cast<std::uint64_t>(f.delivered));
  EXPECT_LE(f.retransmissions, f.packets_sent);
}

TEST(Integration, StaticRoutingMatchesAodvOnQuietChain) {
  ExperimentConfig cfg = single_flow(TcpVariant::kVegas, 4, 8, 10.0);
  auto aodv_res = run_experiment(cfg);
  cfg.static_routing = true;
  auto static_res = run_experiment(cfg);
  // Both routing substrates carry the flow; static routing skips discovery
  // and link-failure stalls so it should do at least as well.
  EXPECT_GT(aodv_res.flows[0].delivered, 100);
  EXPECT_GT(static_res.flows[0].delivered, 100);
  EXPECT_GE(static_res.flows[0].delivered, aodv_res.flows[0].delivered / 2);
}

TEST(Integration, DeterministicGivenSeed) {
  auto a = run_experiment(single_flow(TcpVariant::kNewReno, 4, 8, 5.0, 9));
  auto b = run_experiment(single_flow(TcpVariant::kNewReno, 4, 8, 5.0, 9));
  EXPECT_EQ(a.flows[0].delivered, b.flows[0].delivered);
  EXPECT_EQ(a.flows[0].packets_sent, b.flows[0].packets_sent);
  EXPECT_EQ(a.flows[0].retransmissions, b.flows[0].retransmissions);
  EXPECT_EQ(a.phy_collisions, b.phy_collisions);
}

TEST(Integration, SeedsChangeOutcomes) {
  auto a = run_experiment(single_flow(TcpVariant::kNewReno, 4, 32, 5.0, 1));
  auto b = run_experiment(single_flow(TcpVariant::kNewReno, 4, 32, 5.0, 2));
  // Backoff draws differ; some observable statistic should move.
  EXPECT_TRUE(a.flows[0].packets_sent != b.flows[0].packets_sent ||
              a.phy_collisions != b.phy_collisions ||
              a.flows[0].delivered != b.flows[0].delivered);
}

TEST(Integration, RandomLossDegradesButDoesNotKillThroughput) {
  ExperimentConfig cfg = single_flow(TcpVariant::kMuzha, 4, 8, 10.0);
  auto clean = run_experiment(cfg);
  cfg.uniform_error_rate = 0.05;
  auto lossy = run_experiment(cfg);
  EXPECT_GT(lossy.channel_error_losses, 0u);
  EXPECT_GT(lossy.flows[0].delivered, 20);
  EXPECT_LT(lossy.flows[0].delivered, clean.flows[0].delivered);
}

TEST(Integration, MuzhaClassifiesRandomLossAsUnmarked) {
  ExperimentConfig cfg = single_flow(TcpVariant::kMuzha, 4, 8, 15.0);
  cfg.uniform_error_rate = 0.03;
  auto res = run_experiment(cfg);
  // With random channel loss and no congestion, unmarked (random) loss
  // events should dominate marked (congestion) ones.
  EXPECT_GT(res.flows[0].unmarked_loss_events, res.flows[0].marked_loss_events);
}

TEST(Integration, CwndTraceIsRecorded) {
  auto res = run_experiment(single_flow(TcpVariant::kMuzha, 4, 8, 5.0));
  const TimeSeries& trace = res.flows[0].cwnd_trace;
  ASSERT_GT(trace.size(), 5u);
  for (const TimePoint& p : trace) {
    EXPECT_GE(p.value, 1.0);
    EXPECT_GE(p.t, Seconds(0.0));
    EXPECT_LE(p.t, Seconds(5.0));
  }
}

TEST(Integration, ThroughputSeriesSumsToDelivered) {
  auto res = run_experiment(single_flow(TcpVariant::kNewReno, 4, 8, 10.0));
  const FlowResult& f = res.flows[0];
  double bits = 0;
  for (const TimePoint& p : f.throughput_series) bits += p.value;  // 1 s bins
  EXPECT_NEAR(bits, static_cast<double>(f.delivered) * kPayloadBytes * 8.0,
              1.0);
}

TEST(Integration, TwoFlowsOnChainBothProgress) {
  ExperimentConfig cfg;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(20.0);
  cfg.seed = 3;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  cfg.flows.push_back(
      {TcpVariant::kMuzha, 0, 4, SimTime::from_seconds(5.0), 8});
  auto res = run_experiment(cfg);
  EXPECT_GT(res.flows[0].delivered, 50);
  EXPECT_GT(res.flows[1].delivered, 50);
}

TEST(Integration, CrossTopologyCarriesBothFlows) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kCross;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(20.0);
  cfg.seed = 2;
  cfg.flows.push_back({TcpVariant::kMuzha, 0, 4, SimTime::zero(), 8});
  cfg.flows.push_back({TcpVariant::kMuzha, 5, 8, SimTime::zero(), 8});
  auto res = run_experiment(cfg);
  // Both flows move data through the shared centre.
  EXPECT_GT(res.flows[0].delivered + res.flows[1].delivered, 100);
}

TEST(Integration, LongChainStillDelivers) {
  auto res = run_experiment(single_flow(TcpVariant::kMuzha, 16, 8, 10.0));
  EXPECT_GT(res.flows[0].delivered, 30);
}

TEST(Integration, SubstrateCountersAreConsistent) {
  auto res = run_experiment(single_flow(TcpVariant::kNewReno, 8, 32, 10.0));
  // MAC retry drops imply at least as many PHY-level collisions or losses
  // occurred; both counters must be present and sane (no underflow).
  EXPECT_LT(res.mac_retry_drops, 10000u);
  EXPECT_LT(res.ifq_drops, 100000u);
}

}  // namespace
}  // namespace muzha
