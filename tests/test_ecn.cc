// RED/ECN marker and ECN-capable NewReno tests.
#include "relwork/ecn.h"

#include <gtest/gtest.h>

#include "phy/channel.h"
#include "scenario/experiment.h"
#include "tests/tcp_test_harness.h"

namespace muzha {
namespace {

class RedTest : public ::testing::Test {
 protected:
  RedTest() : channel(sim, PhyParams{}) {
    node = std::make_unique<Node>(sim, channel, 0, Position{0, 0});
  }
  // Fills the (never-draining: no routing) queue to `n` packets.
  void fill_queue(int n) {
    // Block the MAC by keeping a packet pending to a nonexistent neighbor:
    // easier to just enqueue directly.
    for (int i = 0; i < n; ++i) {
      std::uint64_t uid = 0;
      node->device().queue().enqueue(make_packet(uid), 1, sim.now());
    }
  }

  Simulator sim{1};
  Channel channel;
  std::unique_ptr<Node> node;
};

TEST_F(RedTest, NeverMarksBelowMinThreshold) {
  RedParams p;
  p.min_th = 5;
  RedEcnMarker red(sim, node->device(), p);
  fill_queue(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(red.should_mark());
  }
  EXPECT_EQ(red.marks(), 0u);
}

TEST_F(RedTest, AlwaysMarksAboveMaxThreshold) {
  RedParams p;
  p.weight = 1.0;  // avg == instantaneous for a crisp test
  p.min_th = 5;
  p.max_th = 15;
  RedEcnMarker red(sim, node->device(), p);
  fill_queue(20);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(red.should_mark());
  }
}

TEST_F(RedTest, MarkingProbabilityGrowsWithAverage) {
  RedParams p;
  p.weight = 1.0;
  p.min_th = 5;
  p.max_th = 25;
  p.max_p = 0.2;
  RedEcnMarker low(sim, node->device(), p);
  fill_queue(8);  // just above min_th
  int low_marks = 0;
  for (int i = 0; i < 3000; ++i) {
    if (low.should_mark()) ++low_marks;
  }
  // Drain and refill closer to max_th.
  while (!node->device().queue().empty()) node->device().queue().dequeue();
  RedEcnMarker high(sim, node->device(), p);
  fill_queue(22);
  int high_marks = 0;
  for (int i = 0; i < 3000; ++i) {
    if (high.should_mark()) ++high_marks;
  }
  EXPECT_GT(low_marks, 0);
  EXPECT_GT(high_marks, low_marks * 2);
}

TEST_F(RedTest, AverageTracksQueueSmoothly) {
  RedParams p;
  p.weight = 0.1;
  RedEcnMarker red(sim, node->device(), p);
  fill_queue(10);
  for (int i = 0; i < 5; ++i) red.should_mark();
  double early = red.avg_queue();
  for (int i = 0; i < 100; ++i) red.should_mark();
  double late = red.avg_queue();
  EXPECT_LT(early, late);
  EXPECT_NEAR(late, 10.0, 0.5);
}

TEST_F(RedTest, NeverGivesRateAdvice) {
  RedEcnMarker red(sim, node->device(), RedParams{});
  EXPECT_EQ(red.current_drai(), kDraiAggressiveAccel);
}

// ---------------------------------------------------------------------------

TEST(TcpNewRenoEcnTest, EchoedMarkHalvesOncePerRtt) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpNewRenoEcn> h(cfg);
  h.start();
  h.ack_each_up_to(9);  // cwnd 11
  double before = h.agent().cwnd().value();
  h.agent().receive(
      h.make_ack_with(10, [](TcpHeader& t) { t.ce_echo = true; }));
  EXPECT_EQ(h.agent().ecn_reductions(), 1u);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), before / 2.0);
  // Second mark inside the same RTT: ignored.
  h.agent().receive(
      h.make_ack_with(11, [](TcpHeader& t) { t.ce_echo = true; }));
  EXPECT_EQ(h.agent().ecn_reductions(), 1u);
}

TEST(TcpNewRenoEcnTest, UnmarkedAcksBehaveLikeNewReno) {
  TcpConfig cfg;
  cfg.window = 32;
  TcpHarness<TcpNewRenoEcn> h(cfg);
  h.start();
  h.ack_each_up_to(5);
  EXPECT_DOUBLE_EQ(h.agent().cwnd().value(), 7.0);  // slow-start growth
  EXPECT_EQ(h.agent().ecn_reductions(), 0u);
}

TEST(TcpNewRenoEcnTest, EndToEndOverRedRouters) {
  ExperimentConfig cfg;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(10.0);
  cfg.flows.push_back({TcpVariant::kNewRenoEcn, 0, 4, SimTime::zero(), 32});
  auto res = run_experiment(cfg);
  EXPECT_GT(res.flows[0].delivered, 100);
}

}  // namespace
}  // namespace muzha
