// Bitwise deep-equality checks for ExperimentResult, shared by the batch
// runner and determinism suites: two runs of the same (config, seed) must
// agree on every field, doubles included.
#pragma once

#include <gtest/gtest.h>

#include "scenario/experiment.h"

namespace muzha::testing {

inline bool series_equal(const TimeSeries& a, const TimeSeries& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t || a[i].value != b[i].value) return false;
  }
  return true;
}

inline void expect_results_identical(const ExperimentResult& a,
                                     const ExperimentResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    const FlowResult& fa = a.flows[i];
    const FlowResult& fb = b.flows[i];
    EXPECT_EQ(fa.variant, fb.variant) << "flow " << i;
    EXPECT_EQ(fa.delivered, fb.delivered) << "flow " << i;
    EXPECT_EQ(fa.duration, fb.duration) << "flow " << i;
    EXPECT_EQ(fa.throughput, fb.throughput) << "flow " << i;
    EXPECT_EQ(fa.packets_sent, fb.packets_sent) << "flow " << i;
    EXPECT_EQ(fa.retransmissions, fb.retransmissions) << "flow " << i;
    EXPECT_EQ(fa.timeouts, fb.timeouts) << "flow " << i;
    EXPECT_EQ(fa.marked_loss_events, fb.marked_loss_events) << "flow " << i;
    EXPECT_EQ(fa.unmarked_loss_events, fb.unmarked_loss_events) << "flow " << i;
    EXPECT_TRUE(series_equal(fa.cwnd_trace, fb.cwnd_trace)) << "flow " << i;
    EXPECT_TRUE(series_equal(fa.throughput_series, fb.throughput_series))
        << "flow " << i;
  }
  EXPECT_EQ(a.ifq_drops, b.ifq_drops);
  EXPECT_EQ(a.mac_retry_drops, b.mac_retry_drops);
  EXPECT_EQ(a.phy_collisions, b.phy_collisions);
  EXPECT_EQ(a.channel_error_losses, b.channel_error_losses);
  EXPECT_EQ(a.cbr_packets_sent, b.cbr_packets_sent);
}

}  // namespace muzha::testing
