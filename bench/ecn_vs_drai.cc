// Single-bit vs multi-level router feedback (the paper's Sec. 3.2 / 4.6
// argument: "ECN ... can be viewed as an extreme case of multi-level DRAI.
// But this approach is too brief for sender to gain further network
// status").
//
// Compares, over chains of growing length: plain NewReno (no router help),
// NewReno + RED/ECN (single-bit marks), and TCP Muzha (5-level DRAI).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int seeds = quick ? 1 : 3;
  std::vector<int> hop_counts = quick ? std::vector<int>{4}
                                      : std::vector<int>{4, 8, 16};
  const TcpVariant contenders[] = {
      TcpVariant::kNewReno, TcpVariant::kNewRenoEcn, TcpVariant::kMuzha};

  std::printf("=== Feedback granularity: none vs 1-bit ECN vs 5-level DRAI "
              "(kbps / retx) ===\n%-8s", "hops");
  for (TcpVariant v : contenders) std::printf("%22s", variant_name(v));
  std::printf("\n");

  for (int hops : hop_counts) {
    std::printf("%-8d", hops);
    for (TcpVariant v : contenders) {
      double thr = 0, retx = 0;
      for (int s = 0; s < seeds; ++s) {
        auto res =
            run_experiment(chain_single_flow(v, hops, 32, Seconds(30.0), 1 + s));
        thr += res.flows[0].throughput.value() / 1e3 / seeds;
        retx += static_cast<double>(res.flows[0].retransmissions) / seeds;
      }
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.1f / %.0f", thr, retx);
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
