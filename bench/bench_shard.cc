// Sharded-execution benchmark (google-benchmark): one full city-scale
// experiment per item, on a configurable number of shard event cores.
//
// The shard count is a process-wide flag, not a benchmark argument, so the
// same benchmark NAMES exist in every recording and compare_bench.py lines
// them up directly:
//
//   bench_shard --shards=1 --benchmark_out=BENCH_shard_pre.json
//   bench_shard --shards=4 --benchmark_out=BENCH_shard_post.json
//   python3 bench/compare_bench.py BENCH_shard_pre.json BENCH_shard_post.json
//       (add --require 'BM_CityRun/nodes:1000=2' to gate the ratio)
//
// Scenario model: a four-district mobile city. Districts are 4.5 km-wide
// random-waypoint strips separated by 1.1 km of empty ground — wider than
// carrier-sense range, so the shard territories are decoupled and the
// lookahead barrier runs at shard_max_epoch (the cheap regime sharding
// targets; tightly coupled shards are exercised by tests/test_shard.cc,
// not measured here). Density is ~25 nodes/km² (≈5 rx-range neighbors, so
// AODV actually finds multi-hop routes); Muzha flows with router
// assistance give each core a production event mix.
//
// The flag exists so the pre/post recordings (and the CI gate) measure the
// SAME binary: shards=1 runs the classic single-core path through
// run_experiment's dispatch, shards=4 the parallel engine. Note the two
// are different RNG samples of the same scenario distribution (per-shard
// seed streams), so this compares throughput, not bit-identical work;
// bit-level equivalence at shards=1 is the test suite's job.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include "scenario/city.h"
#include "scenario/experiment.h"
#include "scenario/sharded_experiment.h"

namespace {

using namespace muzha;

int g_shards = 1;
int g_jobs = 0;  // 0 = one worker per shard

ExperimentConfig city_run_config(int nodes) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kRandomField;
  cfg.field.nodes = nodes;
  cfg.field.districts = 4;
  cfg.field.district_gap = Meters(1100.0);
  cfg.field.width = Meters(4 * 2500.0 + 3 * 1100.0);
  cfg.field.height = Meters(4000.0);
  cfg.field.mobile = true;
  cfg.duration = SimTime::from_seconds(2.0);
  cfg.seed = 12345;
  cfg.flows = make_random_district_flows(8, cfg.field, TcpVariant::kMuzha,
                                         777, SimTime::from_ms(500));
  cfg.shards = g_shards;
  cfg.shard_jobs = g_jobs;
  return cfg;
}

// One complete experiment per item: build, run, collect, tear down. The
// item rate is experiments/second, so POST/PRE in compare_bench.py is the
// end-to-end speedup of sharding the run.
void BM_CityRun(benchmark::State& state) {
  ExperimentConfig cfg = city_run_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ExperimentResult r = run_experiment(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
// UseRealTime is load-bearing: at shards > 1 the main thread sleeps on the
// phase barrier while workers burn the CPU, so the default CPU-time rate
// would be meaningless. Wall clock is the quantity sharding improves.
BENCHMARK(BM_CityRun)
    ->ArgNames({"nodes"})
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main, same contract as bench_channel.cc: sanitized builds refuse
// to write --benchmark_out files (sanitizer timings must never become
// baselines), plus --shards/--jobs consumed before benchmark's own flag
// parsing.
int main(int argc, char** argv) {
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    std::string_view arg(argv[in]);
#ifdef MUZHA_SANITIZED
    if (arg.rfind("--benchmark_out", 0) == 0) {
      std::fprintf(stderr,
                   "bench_shard: refusing --benchmark_out in a sanitized "
                   "build (MUZHA_SANITIZE is set); sanitizer timings must "
                   "not become baselines\n");
      return 1;
    }
#endif
    if (arg.rfind("--shards=", 0) == 0) {
      g_shards = std::atoi(arg.substr(9).data());
      if (g_shards < 1 || g_shards > 64) {
        std::fprintf(stderr, "bench_shard: --shards must be in [1, 64]\n");
        return 1;
      }
      continue;  // strip: benchmark would reject the unknown flag
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      g_jobs = std::atoi(arg.substr(7).data());
      if (g_jobs < 0) {
        std::fprintf(stderr, "bench_shard: --jobs must be >= 0\n");
        return 1;
      }
      continue;
    }
    argv[out++] = argv[in];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
