// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/experiment.h"

namespace muzha::bench {

inline constexpr TcpVariant kPaperVariants[] = {
    TcpVariant::kMuzha, TcpVariant::kNewReno, TcpVariant::kSack,
    TcpVariant::kVegas};

// Single flow over an h-hop chain (Simulation 1 & 2 setup).
inline ExperimentConfig chain_single_flow(TcpVariant v, int hops, int window,
                                          double duration_s,
                                          std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = hops;
  cfg.duration = SimTime::from_seconds(duration_s);
  cfg.seed = seed;
  cfg.flows.push_back({v, 0, static_cast<std::size_t>(hops),
                       SimTime::zero(), window});
  return cfg;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace muzha::bench
