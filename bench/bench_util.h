// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/batch_runner.h"
#include "scenario/experiment.h"
#include "stats/replicated_stats.h"

namespace muzha::bench {

inline constexpr TcpVariant kPaperVariants[] = {
    TcpVariant::kMuzha, TcpVariant::kNewReno, TcpVariant::kSack,
    TcpVariant::kVegas};

// Common bench flags: --quick (fewer points/replications for smoke runs) and
// --jobs N (worker threads for the batch pool; 0 = all hardware cores).
struct BenchArgs {
  bool quick = false;
  int jobs = 0;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  auto usage = [&]() {
    std::fprintf(stderr, "usage: %s [--quick] [--jobs N]\n", argv[0]);
    std::exit(2);
  };
  auto parse_jobs = [&](const char* s) {
    char* end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0') usage();
    args.jobs = static_cast<int>(v);
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--quick") {
      args.quick = true;
    } else if (a == "--jobs" && i + 1 < argc) {
      parse_jobs(argv[++i]);
    } else if (a.rfind("--jobs=", 0) == 0) {
      parse_jobs(a.c_str() + 7);
    } else {
      usage();
    }
  }
  return args;
}

// Single flow over an h-hop chain (Simulation 1 & 2 setup). The seed is a
// placeholder: BatchRunner overwrites it with the derived per-run seed.
inline ExperimentConfig chain_single_flow(TcpVariant v, int hops, int window,
                                          Seconds duration,
                                          std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = hops;
  cfg.duration = to_sim_time(duration);
  cfg.seed = seed;
  cfg.flows.push_back({v, 0, static_cast<std::size_t>(hops),
                       SimTime::zero(), window});
  return cfg;
}

// Aggregates one per-run metric over a point's replications.
template <typename Fn>
inline ReplicatedStats replication_stats(const std::vector<ExperimentResult>& reps,
                                         Fn metric) {
  ReplicatedStats s;
  for (const ExperimentResult& r : reps) s.add(metric(r));
  return s;
}

// "mean±sd" table cell (sd omitted for single-replication runs).
inline std::string stat_cell(const ReplicatedStats& s, double scale = 1.0) {
  char buf[48];
  if (s.count() > 1) {
    std::snprintf(buf, sizeof(buf), "%.1f±%.1f", s.mean() / scale,
                  s.stddev() / scale);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", s.mean() / scale);
  }
  return buf;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace muzha::bench
