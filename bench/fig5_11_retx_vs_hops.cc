// Figures 5.11-5.13: number of retransmissions vs hop count for
// window_ in {4, 8, 32} (Simulation 2).
//
// Paper shape to reproduce: Vegas stays near zero at every length;
// NewReno/SACK retransmit heavily (aggressive slow-start growth); Muzha
// stays lowest of the window-probing protocols at short chains, with the
// gap narrowing as the advertised window grows.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int windows[] = {4, 8, 32};
  std::vector<int> hop_counts = quick ? std::vector<int>{4, 8}
                                      : std::vector<int>{4, 8, 16, 24, 32};
  const int seeds = quick ? 1 : 3;
  const double duration_s = 30.0;

  for (int window : windows) {
    std::printf("\n=== Fig 5.%d: Retransmissions vs hops (window_=%d) ===\n",
                window == 4 ? 11 : (window == 8 ? 12 : 13), window);
    std::printf("%-8s", "hops");
    for (TcpVariant v : kPaperVariants) std::printf("%12s", variant_name(v));
    std::printf("   (retransmitted segments, 30 s)\n");
    for (int hops : hop_counts) {
      std::printf("%-8d", hops);
      for (TcpVariant v : kPaperVariants) {
        double sum = 0;
        for (int s = 0; s < seeds; ++s) {
          auto res = run_experiment(
              chain_single_flow(v, hops, window, duration_s, 1 + s));
          sum += static_cast<double>(res.flows[0].retransmissions);
        }
        std::printf("%12.1f", sum / seeds);
      }
      std::printf("\n");
    }
  }
  return 0;
}
