// Figures 5.11-5.13: number of retransmissions vs hop count for
// window_ in {4, 8, 32} (Simulation 2). Mean ± stddev over seed
// replications, sweep parallelised by the batch runner (--jobs N).
//
// Paper shape to reproduce: Vegas stays near zero at every length;
// NewReno/SACK retransmit heavily (aggressive slow-start growth); Muzha
// stays lowest of the window-probing protocols at short chains, with the
// gap narrowing as the advertised window grows.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  BenchArgs args = parse_bench_args(argc, argv);
  const int windows[] = {4, 8, 32};
  std::vector<int> hop_counts = args.quick ? std::vector<int>{4, 8}
                                           : std::vector<int>{4, 8, 16, 24, 32};
  const std::size_t seeds = args.quick ? 1 : 3;
  const Seconds duration(30.0);

  BatchRunner runner({.jobs = args.jobs, .replications = seeds, .base_seed = 1});
  for (int window : windows) {
    for (int hops : hop_counts) {
      for (TcpVariant v : kPaperVariants) {
        runner.add_point(chain_single_flow(v, hops, window, duration));
      }
    }
  }
  auto results = runner.run();

  std::size_t point = 0;
  for (int window : windows) {
    std::printf("\n=== Fig 5.%d: Retransmissions vs hops (window_=%d) ===\n",
                window == 4 ? 11 : (window == 8 ? 12 : 13), window);
    std::printf("%-8s", "hops");
    for (TcpVariant v : kPaperVariants) std::printf("%16s", variant_name(v));
    std::printf("   (retransmitted segments, 30 s, mean±sd over %zu seed%s)\n",
                seeds, seeds == 1 ? "" : "s");
    for (int hops : hop_counts) {
      std::printf("%-8d", hops);
      for (std::size_t i = 0; i < std::size(kPaperVariants); ++i) {
        ReplicatedStats s = replication_stats(
            results[point++], [](const ExperimentResult& r) {
              return static_cast<double>(r.flows[0].retransmissions);
            });
        std::printf("%16s", stat_cell(s).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
