// Channel delivery micro-benchmarks (google-benchmark): per-transmission
// cost at city scale, under the spatial index and under the brute-force
// reference scan.
//
// The channel mode is a process-wide flag, not a benchmark argument, so the
// same benchmark NAMES exist in both recordings and compare_bench.py lines
// them up directly:
//
//   bench_channel --channel_mode=brute --benchmark_out=BENCH_channel_pre.json
//   bench_channel --channel_mode=index --benchmark_out=BENCH_channel_post.json
//   python3 bench/compare_bench.py BENCH_channel_pre.json
//       BENCH_channel_post.json --require 'BM_ChannelTransmit/nodes:1000=5'
//
// Field model: BM_ChannelTransmit deploys its nodes over one fixed
// city-scale region (18 x 18 km), so the node count IS the field density:
// nodes:100 is the sparse field, nodes:1000 the dense one (10x the node
// density, ~3 carrier-sense neighbors per transmitter — a connected multihop
// ad hoc field). This is the regime the index targets: the brute-force scan
// pays for every node in the region on every transmission, the grid only
// for the 3x3 cell neighborhood.
//
// BM_ChannelTransmitCrowded is the deliberate worst case: the region is
// shrunk until ~16 nodes sit inside carrier-sense range, so per-transmission
// cost is dominated by genuine delivery work (two scheduled signal events
// per in-range receiver in BOTH modes) rather than by receiver lookup. The
// index still wins, but modestly — the recorded ratio documents that the
// speedup comes from skipping out-of-range nodes, not from magic.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "net/node.h"
#include "phy/channel.h"
#include "phy/wireless_phy.h"
#include "pkt/packet.h"
#include "pkt/packet_arena.h"
#include "scenario/city.h"
#include "scenario/experiment.h"
#include "scenario/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace muzha;

ChannelMode g_mode = ChannelMode::kSpatialIndex;

// The fixed deployment region for BM_ChannelTransmit: at 1000 nodes the
// mean carrier-sense degree is n * pi * cs^2 / side^2 ~ 2.9.
constexpr double kRegionSide = 18'000.0;

// Field side giving ~`target_neighbors` nodes within cs_range on average:
// solves n * pi * cs^2 / side^2 = target.
Meters field_side(int nodes, double target_neighbors, Meters cs_range) {
  double cs = cs_range.value();
  return Meters(std::sqrt(static_cast<double>(nodes) * 3.141592653589793 *
                          cs * cs / target_neighbors));
}

// A production field: full Node stacks (device, MAC, queues) placed by the
// city generator — NOT a packed array of bare PHYs. The memory layout
// matters: the brute-force scan walks PHYs that sit a whole node's heap
// footprint apart, exactly as in a real Experiment, so its cache behavior
// here is what a city run actually pays.
struct Field {
  Network net;
  std::vector<NodeId> ids;
  Meters side;

  Field(int nodes, Meters field_side_m)
      : net(12345, PhyParams{}, NodeConfig{}, g_mode), side(field_side_m) {
    FieldConfig fc;
    fc.nodes = nodes;
    fc.width = side;
    fc.height = side;
    ids = build_random_field(net, fc);
  }

  WirelessPhy& phy(std::size_t i) { return net.node(i).device().phy(); }
};

Packet broadcast_packet() {
  Packet pkt;
  pkt.size_bytes = 1000;
  pkt.mac.type = MacFrameType::kData;
  pkt.mac.dst = kBroadcastId;
  pkt.ip.dst = kBroadcastId;  // decodable receivers count-and-drop, no replies
  return pkt;
}

// One broadcast transmission per item, rotating the sender; the simulator
// drains every signal event before the next transmission, so the item cost
// is the full deliver-to-neighborhood cycle.
void run_transmit_loop(benchmark::State& state, Field& field) {
  Packet pkt = broadcast_packet();
  SimTime duration = SimTime::from_us(500);
  std::size_t sender = 0;
  for (auto _ : state) {
    field.net.channel().transmit(field.phy(sender), pkt, duration);
    field.net.sim().run();
    sender = (sender + 1) % field.ids.size();
  }
  state.SetItemsProcessed(state.iterations());
}

// Fixed 18 km region: nodes:100 = sparse field, nodes:1000 = dense field.
void BM_ChannelTransmit(benchmark::State& state) {
  Field field(static_cast<int>(state.range(0)), Meters(kRegionSide));
  run_transmit_loop(state, field);
}
BENCHMARK(BM_ChannelTransmit)->ArgNames({"nodes"})->Arg(100)->Arg(1000);

// Worst case: region shrunk to ~16 carrier-sense neighbors per transmitter,
// where per-receiver delivery work (identical in both modes) dominates.
void BM_ChannelTransmitCrowded(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Field field(nodes,
              field_side(nodes, 16.0, PhyParams{}.cs_range));
  run_transmit_loop(state, field);
}
BENCHMARK(BM_ChannelTransmitCrowded)->ArgNames({"nodes"})->Arg(1000);

// Mobility maintenance: one set_position per item (random-waypoint tick
// shape). Under the index this pays the grid update (usually in-place, a
// cell migration when the step crosses a cell edge); under brute force it is
// a bare store — the price of keeping the index current, which the transmit
// speedup has to beat.
void BM_ChannelMobilityChurn(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Field field(nodes, Meters(kRegionSide));
  Meters side = field.side;
  Rng rng(99);
  std::size_t mover = 0;
  for (auto _ : state) {
    WirelessPhy& phy = field.phy(mover);
    Position p = phy.position();
    // 50 m steps wander across cell boundaries without leaving the field.
    p.x = std::fmin(std::fmax(p.x + rng.uniform(-50.0, 50.0), 0.0),
                    side.value());
    p.y = std::fmin(std::fmax(p.y + rng.uniform(-50.0, 50.0), 0.0),
                    side.value());
    phy.set_position(p);
    mover = (mover + 1) % field.ids.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelMobilityChurn)->ArgNames({"nodes"})->Arg(1000);

// Packet clone cost: the arena free-list path vs the operator-new path it
// replaced. (Both run in every mode; they do not touch the channel.)
void BM_PacketCloneArena(benchmark::State& state) {
  Packet proto;
  proto.size_bytes = 1500;
  TcpHeader h;
  h.seqno = 7;
  proto.l4 = h;
  { PacketPtr warm = clone_packet(proto); }  // warm the thread arena
  for (auto _ : state) {
    PacketPtr p = clone_packet(proto);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketCloneArena);

void BM_PacketCloneHeap(benchmark::State& state) {
  Packet proto;
  proto.size_bytes = 1500;
  TcpHeader h;
  h.seqno = 7;
  proto.l4 = h;
  for (auto _ : state) {
    std::unique_ptr<Packet> p = std::make_unique<Packet>(proto);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketCloneHeap);

}  // namespace

// Custom main, same contract as microbench.cc: sanitized builds refuse to
// write --benchmark_out files (sanitizer timings must never become
// baselines), plus the --channel_mode flag consumed before benchmark's own
// flag parsing.
int main(int argc, char** argv) {
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    std::string_view arg(argv[in]);
#ifdef MUZHA_SANITIZED
    if (arg.rfind("--benchmark_out", 0) == 0) {
      std::fprintf(stderr,
                   "bench_channel: refusing --benchmark_out in a sanitized "
                   "build (MUZHA_SANITIZE is set); sanitizer timings must "
                   "not become baselines\n");
      return 1;
    }
#endif
    if (arg == "--channel_mode=brute") {
      g_mode = ChannelMode::kBruteForce;
      continue;  // strip: benchmark would reject the unknown flag
    }
    if (arg == "--channel_mode=index") {
      g_mode = ChannelMode::kSpatialIndex;
      continue;
    }
    if (arg.rfind("--channel_mode", 0) == 0) {
      std::fprintf(stderr,
                   "bench_channel: --channel_mode must be 'brute' or "
                   "'index'\n");
      return 1;
    }
    argv[out++] = argv[in];
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
