// Ablation: sensitivity of TCP Muzha to the (empirical) DRAI thresholds.
//
// The paper leaves the router DRAI formula open (Sec. 4.6: "further
// empirical research is needed"). This bench sweeps the two dominant knobs —
// the utilization level below which routers still recommend acceleration,
// and the queue-occupancy band mapped to deceleration — over an 8-hop chain.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int seeds = quick ? 1 : 3;
  const int hops = 8;
  const Seconds duration(30.0);

  std::printf("=== Ablation: DRAI thresholds, Muzha on an %d-hop chain ===\n",
              hops);
  std::printf("%-24s %-24s %12s %8s %8s\n", "u thresholds (5/4/3)",
              "q thresholds (5/4/3/2)", "thr (kbps)", "retx", "timeouts");

  struct Knobs {
    double u5, u4, u3;
    double q5, q4, q3, q2;
    bool gradient = false;  // future-work queue-growth extension
  };
  const Knobs sweeps[] = {
      {0.50, 0.80, 0.96, 0.05, 0.25, 0.55, 0.85, false},  // default
      {0.30, 0.60, 0.90, 0.05, 0.25, 0.55, 0.85, false},  // timid utilization
      {0.70, 0.90, 0.99, 0.05, 0.25, 0.55, 0.85, false},  // greedy utilization
      {0.50, 0.80, 0.96, 0.02, 0.10, 0.30, 0.60, false},  // twitchy queue
      {0.50, 0.80, 0.96, 0.20, 0.50, 0.75, 0.95, false},  // tolerant queue
      {0.50, 0.80, 0.96, 0.05, 0.25, 0.55, 0.85, true},   // + queue gradient
  };

  for (const Knobs& k : sweeps) {
    double thr = 0, retx = 0, to = 0;
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig cfg =
          chain_single_flow(TcpVariant::kMuzha, hops, 32, duration, 1 + s);
      cfg.drai.u_aggressive_accel = k.u5;
      cfg.drai.u_moderate_accel = k.u4;
      cfg.drai.u_stabilize = k.u3;
      cfg.drai.q_aggressive_accel = k.q5;
      cfg.drai.q_moderate_accel = k.q4;
      cfg.drai.q_stabilize = k.q3;
      cfg.drai.q_moderate_decel = k.q2;
      cfg.drai.use_queue_gradient = k.gradient;
      auto res = run_experiment(cfg);
      thr += res.flows[0].throughput.value() / 1e3;
      retx += static_cast<double>(res.flows[0].retransmissions);
      to += static_cast<double>(res.flows[0].timeouts);
    }
    char ubuf[32], qbuf[48];
    std::snprintf(ubuf, sizeof(ubuf), "%.2f/%.2f/%.2f", k.u5, k.u4, k.u3);
    std::snprintf(qbuf, sizeof(qbuf), "%.2f/%.2f/%.2f/%.2f%s", k.q5, k.q4,
                  k.q3, k.q2, k.gradient ? " +grad" : "");
    std::printf("%-24s %-24s %12.1f %8.1f %8.1f\n", ubuf, qbuf, thr / seeds,
                retx / seeds, to / seeds);
  }
  return 0;
}
