// Related-work shootout: Muzha against the Ch. 3 protocols it is positioned
// against — TCP-DOOR and ADTCP (end-to-end) and TCP Jersey and TCP RoVegas
// (router-assisted) — plus NewReno and Westwood baselines, across the
// paper's three stress axes: path length, random loss, and advertised
// window. Mean over seed replications, parallelised by the batch runner.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  BenchArgs args = parse_bench_args(argc, argv);
  const std::size_t seeds = args.quick ? 1 : 3;
  const Seconds duration(30.0);
  const TcpVariant contenders[] = {
      TcpVariant::kMuzha,  TcpVariant::kJersey, TcpVariant::kRoVegas,
      TcpVariant::kWestwood, TcpVariant::kDoor, TcpVariant::kAdtcp,
      TcpVariant::kNewReno,
  };

  struct Scenario {
    const char* label;
    int hops;
    int window;
    double loss;
  };
  std::vector<Scenario> scenarios = {
      {"4-hop w8", 4, 8, 0.0},
      {"8-hop w32", 8, 32, 0.0},
  };
  if (!args.quick) {
    scenarios.push_back({"16-hop w32", 16, 32, 0.0});
    scenarios.push_back({"8-hop 3% loss", 8, 32, 0.03});
    scenarios.push_back({"8-hop 5% loss", 8, 32, 0.05});
  }

  BatchRunner runner({.jobs = args.jobs, .replications = seeds, .base_seed = 1});
  for (const Scenario& sc : scenarios) {
    for (TcpVariant v : contenders) {
      ExperimentConfig cfg =
          chain_single_flow(v, sc.hops, sc.window, duration);
      cfg.uniform_error_rate = sc.loss;
      runner.add_point(std::move(cfg));
    }
  }
  auto results = runner.run();

  std::printf("=== Related-work shootout (kbps, mean over %zu seed%s) ===\n%-16s",
              seeds, seeds == 1 ? "" : "s", "scenario");
  for (TcpVariant v : contenders) std::printf("%10s", variant_name(v));
  std::printf("\n");
  std::size_t point = 0;
  for (const Scenario& sc : scenarios) {
    std::printf("%-16s", sc.label);
    for (std::size_t i = 0; i < std::size(contenders); ++i) {
      ReplicatedStats s = replication_stats(
          results[point++],
          [](const ExperimentResult& r) { return r.flows[0].throughput.value(); });
      std::printf("%10.1f", s.mean() / 1e3);
    }
    std::printf("\n");
  }
  return 0;
}
