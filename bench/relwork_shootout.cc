// Related-work shootout: Muzha against the Ch. 3 protocols it is positioned
// against — TCP-DOOR and ADTCP (end-to-end) and TCP Jersey and TCP RoVegas
// (router-assisted) — plus the NewReno baseline, across the paper's three
// stress axes: path length, random loss, and advertised window.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int seeds = quick ? 1 : 3;
  const double duration_s = 30.0;
  const TcpVariant contenders[] = {
      TcpVariant::kMuzha,  TcpVariant::kJersey, TcpVariant::kRoVegas,
      TcpVariant::kWestwood, TcpVariant::kDoor, TcpVariant::kAdtcp, TcpVariant::kNewReno,
  };

  auto run_row = [&](const char* label, int hops, int window, double loss) {
    std::printf("%-16s", label);
    for (TcpVariant v : contenders) {
      double thr = 0;
      for (int s = 0; s < seeds; ++s) {
        ExperimentConfig cfg =
            chain_single_flow(v, hops, window, duration_s, 1 + s);
        cfg.uniform_error_rate = loss;
        auto res = run_experiment(cfg);
        thr += res.flows[0].throughput_bps / 1e3 / seeds;
      }
      std::printf("%10.1f", thr);
    }
    std::printf("\n");
  };

  std::printf("=== Related-work shootout (kbps) ===\n%-16s", "scenario");
  for (TcpVariant v : contenders) std::printf("%10s", variant_name(v));
  std::printf("\n");

  run_row("4-hop w8", 4, 8, 0.0);
  run_row("8-hop w32", 8, 32, 0.0);
  if (!quick) {
    run_row("16-hop w32", 16, 32, 0.0);
    run_row("8-hop 3% loss", 8, 32, 0.03);
    run_row("8-hop 5% loss", 8, 32, 0.05);
  }
  return 0;
}
