#!/usr/bin/env python3
"""Compare two google-benchmark JSON files (events/sec per case).

Usage:
    compare_bench.py PRE.json POST.json [--require NAME=RATIO ...]

For every benchmark present in both files the script reports the POST/PRE
ratio of items_per_second. Each file may contain several repetitions of a
benchmark (--benchmark_repetitions, or several runs concatenated into the
"benchmarks" array); the per-case value is the BEST repetition. On a shared
box the minimum-time/maximum-throughput repetition is the standard
noise-robust statistic (same rationale as Python's timeit): interference
only ever makes a run slower, never faster.

--require NAME=RATIO makes the script exit non-zero unless POST/PRE for
NAME is at least RATIO, e.g.:

    compare_bench.py baselines/BENCH_scheduler_pre.json BENCH_scheduler.json \
        --require BM_SchedulerScheduleRun/65536=1.5 \
        --require BM_SchedulerCancelHalf/4096=1.5
"""

import argparse
import json
import sys


def best_by_case(path):
    with open(path) as f:
        data = json.load(f)
    best = {}
    for bench in data.get("benchmarks", []):
        # Skip _mean/_median/_stddev aggregate rows; keep raw repetitions.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("run_name", bench["name"])
        value = bench.get("items_per_second")
        if value is None:
            # Fall back to inverse wall time for cases without a rate counter.
            rt = bench.get("real_time")
            value = 1e9 / rt if rt else None
        if value is None:
            continue
        best[name] = max(best.get(name, 0.0), value)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("pre")
    ap.add_argument("post")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME=RATIO",
                    help="fail unless POST/PRE for NAME is >= RATIO")
    args = ap.parse_args()

    pre = best_by_case(args.pre)
    post = best_by_case(args.post)

    width = max((len(n) for n in pre | post), default=10)
    print(f"{'benchmark':<{width}}  {'pre':>12}  {'post':>12}  ratio")
    ratios = {}
    for name in sorted(pre | post):
        a, b = pre.get(name), post.get(name)
        if a and b:
            ratios[name] = b / a
            print(f"{name:<{width}}  {a:12.4g}  {b:12.4g}  {b / a:5.2f}x")
        else:
            print(f"{name:<{width}}  "
                  f"{a and f'{a:12.4g}' or '           -'}  "
                  f"{b and f'{b:12.4g}' or '           -'}      -")

    failed = False
    for req in args.require:
        name, _, want = req.partition("=")
        want = float(want)
        got = ratios.get(name)
        if got is None:
            print(f"FAIL {name}: missing from one of the inputs", file=sys.stderr)
            failed = True
        elif got < want:
            print(f"FAIL {name}: {got:.2f}x < required {want:.2f}x", file=sys.stderr)
            failed = True
        else:
            print(f"ok   {name}: {got:.2f}x >= {want:.2f}x")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
