// Figures 5.19-5.22 (Simulation 3B): throughput dynamics of three staggered
// flows of the same variant over a 4-hop chain, entering at 0 / 10 / 20 s.
//
// Paper shape to reproduce: the three Muzha flows converge quickly and
// smoothly to a fair share; NewReno/SACK/Vegas converge slowly and
// oscillate.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "stats/fairness.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Seconds duration = quick ? Seconds(30.0) : Seconds(60.0);
  const Seconds starts[] = {Seconds(0.0), Seconds(10.0), Seconds(20.0)};

  for (TcpVariant v : kPaperVariants) {
    int fig = v == TcpVariant::kMuzha ? 19
              : v == TcpVariant::kNewReno ? 20
              : v == TcpVariant::kSack ? 21
                                        : 22;
    std::printf("\n=== Fig 5.%d: throughput dynamics, three %s flows ===\n",
                fig, variant_name(v));
    ExperimentConfig cfg;
    cfg.topology = TopologyKind::kChain;
    cfg.hops = 4;
    cfg.duration = to_sim_time(duration);
    cfg.seed = 7;
    cfg.throughput_bin = SimTime::from_seconds(1.0);
    for (Seconds st : starts) {
      cfg.flows.push_back({v, 0, 4, to_sim_time(st), 32});
    }
    auto res = run_experiment(cfg);

    // Print per-second throughput rows: t, flow1, flow2, flow3 (kbps).
    std::size_t bins = 0;
    for (const FlowResult& f : res.flows) {
      bins = std::max(bins, f.throughput_series.size());
    }
    std::printf("%6s %10s %10s %10s   (kbps)\n", "t(s)", "flow1", "flow2",
                "flow3");
    for (std::size_t b = 0; b < bins; ++b) {
      double t = -1;
      double vals[3] = {0, 0, 0};
      for (std::size_t fi = 0; fi < res.flows.size(); ++fi) {
        const TimeSeries& ts = res.flows[fi].throughput_series;
        if (b < ts.size()) {
          t = ts[b].t.value();
          vals[fi] = ts[b].value / 1e3;
        }
      }
      std::printf("%6.1f %10.1f %10.1f %10.1f\n", t, vals[0], vals[1],
                  vals[2]);
    }

    // Steady-state fairness over the final third of the run (all flows on).
    double share[3] = {0, 0, 0};
    int n = 0;
    for (std::size_t fi = 0; fi < res.flows.size(); ++fi) {
      const TimeSeries& ts = res.flows[fi].throughput_series;
      int cnt = 0;
      for (const TimePoint& pt : ts) {
        if (pt.t.value() >= duration.value() * 2.0 / 3.0) {
          share[fi] += pt.value;
          ++cnt;
        }
      }
      if (cnt > 0) share[fi] /= cnt;
      n = cnt;
    }
    (void)n;
    std::printf("steady-state shares (kbps): %.1f / %.1f / %.1f, Jain=%.3f\n",
                share[0] / 1e3, share[1] / 1e3, share[2] / 1e3,
                jain_fairness_index(share));
  }
  return 0;
}
