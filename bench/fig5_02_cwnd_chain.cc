// Figures 5.2-5.7: congestion-window evolution of each variant over 4-, 8-
// and 16-hop chains (Simulation 1). Two views per figure pair: the full
// 0-10 s run (sampled every 100 ms) and the 0-2 s start-up detail (sampled
// every 25 ms).
//
// Paper shape to reproduce: Muzha rises promptly and stabilizes (with some
// vibration) and holds its window through random loss; Vegas sits flat and
// low; NewReno/SACK saw-tooth hard and collapse repeatedly.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace {

void print_trace(const char* label, const muzha::TimeSeries& trace,
                 muzha::Seconds t_end, muzha::Seconds step) {
  std::printf("%s t_s:", label);
  muzha::CwndTracer stepper;  // reuse step interpolation via a local copy
  (void)stepper;
  // Step-interpolate the change-event series onto a regular grid.
  std::size_t idx = 0;
  double v = 0.0;
  for (double t = 0.0; t <= t_end.value() + 1e-9; t += step.value()) {
    while (idx < trace.size() && trace[idx].t.value() <= t) {
      v = trace[idx].value;
      ++idx;
    }
    std::printf(" %.1f", v);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::vector<int> hop_counts = quick ? std::vector<int>{4}
                                      : std::vector<int>{4, 8, 16};
  const int window = 32;  // let the variants show their window dynamics
  const Seconds duration(10.0);

  for (int hops : hop_counts) {
    int fig = hops == 4 ? 2 : (hops == 8 ? 4 : 6);
    std::printf("\n=== Fig 5.%d/5.%d: CWND vs time, %d-hop chain ===\n", fig,
                fig + 1, hops);
    for (TcpVariant v : kPaperVariants) {
      auto res = run_experiment(
          chain_single_flow(v, hops, window, duration, /*seed=*/1));
      const FlowResult& f = res.flows[0];
      char label[64];
      std::snprintf(label, sizeof(label), "%-8s [0-10s]", variant_name(v));
      print_trace(label, f.cwnd_trace, duration, Seconds(0.1));
      std::snprintf(label, sizeof(label), "%-8s [0-2s] ", variant_name(v));
      print_trace(label, f.cwnd_trace, Seconds(2.0), Seconds(0.025));
      std::printf("%-8s summary: thr=%.1f kbps retx=%llu timeouts=%llu\n",
                  variant_name(v), f.throughput.value() / 1e3,
                  static_cast<unsigned long long>(f.retransmissions),
                  static_cast<unsigned long long>(f.timeouts));
    }
  }
  return 0;
}
