// Simulator micro-benchmarks (google-benchmark): event scheduling costs,
// channel fan-out, MAC exchange rate, and whole-stack simulation rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include "bench/bench_util.h"
#include "scenario/experiment.h"
#include "sim/scheduler.h"
#include "sim/timer.h"

namespace {

using namespace muzha;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    long sum = 0;
    for (int i = 0; i < n; ++i) {
      sched.schedule_at(SimTime::from_ns(i * 100), [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (int i = 0; i < n; ++i) {
      ids.push_back(sched.schedule_at(SimTime::from_ns(i * 10), [] {}));
    }
    for (int i = 0; i < n; i += 2) sched.cancel(ids[i]);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(4096);

// Steady-state cancel churn: a sliding window of pending events where every
// step schedules one event and cancels the oldest — the protocol-timer
// pattern (RTO/CTS/ACK timers are nearly always cancelled, not fired).
void BM_SchedulerCancelHeavy(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const int ops = 65536;
  for (auto _ : state) {
    Scheduler sched;
    std::vector<EventId> ids(window);
    for (int i = 0; i < window; ++i) {
      ids[i] = sched.schedule_at(SimTime::from_ns(1000 + i), [] {});
    }
    for (int i = 0; i < ops; ++i) {
      sched.cancel(ids[i % window]);
      ids[i % window] =
          sched.schedule_at(SimTime::from_ns(1000 + window + i), [] {});
    }
    for (EventId id : ids) sched.cancel(id);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(256);

// Timer restart churn: reschedule an armed Timer (cancel + schedule through
// the Simulator facade), letting it actually expire every `window` restarts.
void BM_SchedulerTimerChurn(benchmark::State& state) {
  const int ops = 65536;
  for (auto _ : state) {
    Simulator sim(1);
    long fired = 0;
    Timer timer(sim, [&fired] { ++fired; });
    for (int i = 0; i < ops; ++i) {
      timer.schedule_in(SimTime::from_us(10));
      if (i % 64 == 63) sim.run_until(sim.now() + SimTime::from_us(20));
    }
    timer.cancel();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SchedulerTimerChurn);

// One simulated second of a saturated chain, whole stack (PHY+MAC+AODV+TCP).
void BM_ChainSimulatedSecond(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto cfg = bench::chain_single_flow(TcpVariant::kNewReno, hops, 32,
                                        Seconds(1.0), /*seed=*/1);
    auto res = run_experiment(cfg);
    benchmark::DoNotOptimize(res.flows[0].delivered);
  }
}
BENCHMARK(BM_ChainSimulatedSecond)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// Muzha-specific: full router-assist path enabled.
void BM_MuzhaChainSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = bench::chain_single_flow(TcpVariant::kMuzha, 8, 32,
                                        Seconds(1.0), 1);
    auto res = run_experiment(cfg);
    benchmark::DoNotOptimize(res.flows[0].delivered);
  }
}
BENCHMARK(BM_MuzhaChainSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): sanitized builds refuse to write
// --benchmark_out files, so an ASan/TSan run can never be recorded as a
// baseline under bench/baselines/ and compared against real timings.
int main(int argc, char** argv) {
#ifdef MUZHA_SANITIZED
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      std::fprintf(stderr,
                   "microbench: refusing --benchmark_out in a sanitized build "
                   "(MUZHA_SANITIZE is set); sanitizer timings must not "
                   "become baselines\n");
      return 1;
    }
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
