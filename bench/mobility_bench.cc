// Mobility stress (the paper's stated future work): an 8-hop chain whose
// interior relays wander with random-waypoint motion inside a corridor,
// producing genuine route failures. Compares how each variant's throughput
// degrades from the static baseline.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "scenario/mobility.h"
#include "tcp/tcp_sink.h"

namespace {

using namespace muzha;

double run_once(TcpVariant v, bool mobile, double max_speed,
                std::uint64_t seed) {
  const int hops = 8;
  const Seconds duration(40.0);
  const Meters spacing = Meters(200.0);  // 50 m slack below decode range
  Network net(seed);
  build_chain(net, hops, spacing);
  net.use_aodv();
  if (v == TcpVariant::kMuzha || v == TcpVariant::kJersey) {
    net.enable_muzha_routers();
  }

  TcpConfig tc;
  tc.dst = net.node(hops).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  tc.window = 16;
  auto agent = make_tcp_agent(v, net.sim(), net.node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net.sim(), net.node(hops), sc);
  sink.start();
  TcpAgent* raw = agent.get();
  net.sim().schedule_at(SimTime::zero(), [raw] { raw->start(); });

  std::vector<std::unique_ptr<RandomWaypointMobility>> movers;
  if (mobile) {
    // Interior relays wander in a band around their chain slots; the band
    // is sized so links break intermittently rather than permanently.
    for (int i = 1; i < hops; ++i) {
      RandomWaypointMobility::Config mc;
      mc.min_x = 200.0 * i - 35;
      mc.max_x = 200.0 * i + 35;
      mc.min_y = -35;
      mc.max_y = 35;
      mc.min_speed = MetersPerSecond(1.0);
      mc.max_speed = MetersPerSecond(max_speed);
      mc.pause = SimTime::from_seconds(1.0);
      movers.push_back(std::make_unique<RandomWaypointMobility>(
          net.sim(), net.node(i), mc));
      movers.back()->start();
    }
  }

  net.run_until(to_sim_time(duration));
  return static_cast<double>(sink.delivered()) * 1460 * 8 / duration.value() / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int seeds = quick ? 1 : 3;
  const double speeds[] = {0.0, 5.0, 15.0};

  std::printf("=== Mobility stress: 8-hop chain, wandering relays (kbps) "
              "===\n%-14s", "max speed");
  const TcpVariant variants[] = {TcpVariant::kMuzha, TcpVariant::kNewReno,
                                 TcpVariant::kSack, TcpVariant::kVegas};
  for (TcpVariant v : variants) std::printf("%10s", variant_name(v));
  std::printf("\n");

  for (double sp : speeds) {
    std::printf("%-14s", sp == 0 ? "static" :
                (sp < 10 ? "5 m/s" : "15 m/s"));
    for (TcpVariant v : variants) {
      double thr = 0;
      for (int s = 1; s <= seeds; ++s) {
        thr += run_once(v, sp > 0, sp, static_cast<std::uint64_t>(s)) / seeds;
      }
      std::printf("%10.1f", thr);
    }
    std::printf("\n");
  }
  return 0;
}
