// Figures 5.8-5.10: throughput vs number of hops for window_ in {4, 8, 32},
// single FTP flow over an h-hop chain (Simulation 2). Mean ± stddev over
// seed replications, all points executed concurrently by the batch runner
// (--jobs N, default all cores).
//
// Paper shape to reproduce: Vegas wins below ~8 hops then flattens low;
// Muzha beats NewReno/SACK by ~5-10%; throughput falls steeply with hops.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  BenchArgs args = parse_bench_args(argc, argv);
  const int windows[] = {4, 8, 32};
  std::vector<int> hop_counts = args.quick ? std::vector<int>{4, 8}
                                           : std::vector<int>{4, 8, 16, 24, 32};
  const std::size_t seeds = args.quick ? 1 : 3;
  const Seconds duration(30.0);

  // One point per (window, hops, variant); the runner replicates each across
  // seeds and sweeps everything on the pool at once.
  BatchRunner runner({.jobs = args.jobs, .replications = seeds, .base_seed = 1});
  for (int window : windows) {
    for (int hops : hop_counts) {
      for (TcpVariant v : kPaperVariants) {
        runner.add_point(chain_single_flow(v, hops, window, duration));
      }
    }
  }
  auto results = runner.run();

  std::size_t point = 0;
  for (int window : windows) {
    std::printf("\n=== Fig 5.%d: Throughput vs hops (window_=%d) ===\n",
                window == 4 ? 8 : (window == 8 ? 9 : 10), window);
    std::printf("%-8s", "hops");
    for (TcpVariant v : kPaperVariants) std::printf("%16s", variant_name(v));
    std::printf("   (kbps, mean±sd over %zu seed%s)\n", seeds,
                seeds == 1 ? "" : "s");
    for (int hops : hop_counts) {
      std::printf("%-8d", hops);
      for (std::size_t i = 0; i < std::size(kPaperVariants); ++i) {
        ReplicatedStats s = replication_stats(
            results[point++],
            [](const ExperimentResult& r) { return r.flows[0].throughput.value(); });
        std::printf("%16s", stat_cell(s, 1e3).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
