// Figures 5.8-5.10: throughput vs number of hops for window_ in {4, 8, 32},
// single FTP flow over an h-hop chain (Simulation 2). Averaged over seeds.
//
// Paper shape to reproduce: Vegas wins below ~8 hops then flattens low;
// Muzha beats NewReno/SACK by ~5-10%; throughput falls steeply with hops.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  // --quick: fewer seeds / hop counts for smoke runs.
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int windows[] = {4, 8, 32};
  std::vector<int> hop_counts = quick ? std::vector<int>{4, 8}
                                      : std::vector<int>{4, 8, 16, 24, 32};
  const int seeds = quick ? 1 : 3;
  const double duration_s = 30.0;

  for (int window : windows) {
    std::printf("\n=== Fig 5.%d: Throughput vs hops (window_=%d) ===\n",
                window == 4 ? 8 : (window == 8 ? 9 : 10), window);
    std::printf("%-8s", "hops");
    for (TcpVariant v : kPaperVariants) std::printf("%12s", variant_name(v));
    std::printf("   (kbps)\n");
    for (int hops : hop_counts) {
      std::printf("%-8d", hops);
      for (TcpVariant v : kPaperVariants) {
        double sum = 0.0;
        for (int s = 0; s < seeds; ++s) {
          auto res = run_experiment(
              chain_single_flow(v, hops, window, duration_s, 1 + s));
          sum += res.flows[0].throughput_bps;
        }
        std::printf("%12.1f", sum / seeds / 1e3);
      }
      std::printf("\n");
    }
  }
  return 0;
}
