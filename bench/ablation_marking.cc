// Ablation: value of Muzha's marked/unmarked loss discrimination (Sec. 4.7).
//
// Sweeps a uniform random per-frame loss rate over an 8-hop chain and
// compares (a) Muzha with discrimination, (b) Muzha treating every triple
// dup-ACK as congestion, and (c) NewReno. The gap between (a) and (b)
// isolates what the router-assisted marking buys under random loss.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const double error_rates[] = {0.0, 0.01, 0.03, 0.05};
  const int seeds = quick ? 1 : 3;
  const int hops = 8;
  const Seconds duration(30.0);

  std::printf("=== Ablation: random-loss discrimination, %d-hop chain ===\n",
              hops);
  std::printf("%-10s %18s %18s %14s   (kbps; halvings = marked-loss events)\n",
              "loss rate", "Muzha", "Muzha(no-disc)", "NewReno");
  for (double er : error_rates) {
    double thr[3] = {0, 0, 0};
    double halvings[2] = {0, 0};
    for (int s = 0; s < seeds; ++s) {
      for (int mode = 0; mode < 3; ++mode) {
        ExperimentConfig cfg = chain_single_flow(
            mode == 2 ? TcpVariant::kNewReno : TcpVariant::kMuzha, hops, 32,
            duration, 1 + s);
        cfg.uniform_error_rate = er;
        cfg.muzha_loss_discrimination = (mode == 0);
        auto res = run_experiment(cfg);
        thr[mode] += res.flows[0].throughput.value() / 1e3;
        if (mode < 2) {
          halvings[mode] +=
              static_cast<double>(res.flows[0].marked_loss_events);
        }
      }
    }
    std::printf("%-10.2f %11.1f (%4.1f) %11.1f (%4.1f) %14.1f\n", er,
                thr[0] / seeds, halvings[0] / seeds, thr[1] / seeds,
                halvings[1] / seeds, thr[2] / seeds);
  }
  return 0;
}
