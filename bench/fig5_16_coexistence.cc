// Figures 5.16-5.18 (Simulation 3A): fairness when two flows cross.
//
// Cross topology of Fig 5.15: one flow travels the horizontal arm, one the
// vertical arm, sharing the centre node; h in {4, 6, 8}; 50 s runs.
//
// Paper shape to reproduce: NewReno steals nearly all bandwidth from Vegas
// (low Jain index); NewReno + Muzha share fairly (index near 1) with higher
// aggregate throughput. Fig 5.14's Jain index is the metric itself.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "stats/fairness.h"

namespace {

struct Pairing {
  muzha::TcpVariant a;
  muzha::TcpVariant b;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::vector<int> hop_counts = quick ? std::vector<int>{4}
                                      : std::vector<int>{4, 6, 8};
  // Medium capture makes per-seed splits extreme in both directions; the
  // paper's qualitative fairness story only emerges in the seed average.
  const int seeds = quick ? 1 : 5;
  const double duration_s = 50.0;
  const Pairing pairings[] = {
      {TcpVariant::kNewReno, TcpVariant::kVegas},   // Fig 5.16
      {TcpVariant::kNewReno, TcpVariant::kMuzha},   // Fig 5.17
      {TcpVariant::kMuzha, TcpVariant::kMuzha},     // intra-protocol baseline
      {TcpVariant::kNewReno, TcpVariant::kNewReno},
  };

  std::printf("=== Fig 5.16-5.18: coexisting flows on an h-hop cross ===\n");
  std::printf("(Jain/run = mean per-seed index, short-term fairness;\n"
              " Jain/avg = index of seed-averaged shares, long-term "
              "fairness)\n");
  std::printf("%-22s %-5s %14s %14s %12s %10s %10s\n", "pairing", "hops",
              "flowA (kbps)", "flowB (kbps)", "total", "Jain/run",
              "Jain/avg");
  for (const Pairing& p : pairings) {
    for (int hops : hop_counts) {
      double a_sum = 0, b_sum = 0, j_sum = 0;
      for (int s = 0; s < seeds; ++s) {
        ExperimentConfig cfg;
        cfg.topology = TopologyKind::kCross;
        cfg.hops = hops;
        cfg.duration = SimTime::from_seconds(duration_s);
        cfg.seed = 1 + s;
        // Horizontal arm nodes come first (0..hops), vertical arm shares the
        // centre; flow A runs across the horizontal arm, flow B across the
        // vertical one.
        std::size_t h0 = 0, h1 = static_cast<std::size_t>(hops);
        std::size_t v0 = static_cast<std::size_t>(hops) + 1;
        std::size_t v1 = static_cast<std::size_t>(2 * hops);
        // Router assistance is on whenever a Muzha flow participates.
        cfg.flows.push_back({p.a, h0, h1, SimTime::zero(), 32});
        cfg.flows.push_back({p.b, v0, v1, SimTime::zero(), 32});
        auto res = run_experiment(cfg);
        double a = res.flows[0].throughput_bps / 1e3;
        double b = res.flows[1].throughput_bps / 1e3;
        double thr[] = {a, b};
        a_sum += a;
        b_sum += b;
        j_sum += jain_fairness_index(thr);
      }
      char name[64];
      std::snprintf(name, sizeof(name), "%s vs %s", variant_name(p.a),
                    variant_name(p.b));
      double means[] = {a_sum / seeds, b_sum / seeds};
      std::printf("%-22s %-5d %14.1f %14.1f %12.1f %10.3f %10.3f\n", name,
                  hops, means[0], means[1], (a_sum + b_sum) / seeds,
                  j_sum / seeds, jain_fairness_index(means));
    }
  }
  return 0;
}
