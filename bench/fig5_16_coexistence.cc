// Figures 5.16-5.18 (Simulation 3A): fairness when two flows cross.
//
// Cross topology of Fig 5.15: one flow travels the horizontal arm, one the
// vertical arm, sharing the centre node; h in {4, 6, 8}; 50 s runs. Seed
// replications run concurrently on the batch pool (--jobs N).
//
// Paper shape to reproduce: NewReno steals nearly all bandwidth from Vegas
// (low Jain index); NewReno + Muzha share fairly (index near 1) with higher
// aggregate throughput. Fig 5.14's Jain index is the metric itself.
#include <cstdio>

#include "bench/bench_util.h"
#include "stats/fairness.h"

namespace {

struct Pairing {
  muzha::TcpVariant a;
  muzha::TcpVariant b;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace muzha;
  using namespace muzha::bench;

  BenchArgs args = parse_bench_args(argc, argv);
  std::vector<int> hop_counts = args.quick ? std::vector<int>{4}
                                           : std::vector<int>{4, 6, 8};
  // Medium capture makes per-seed splits extreme in both directions; the
  // paper's qualitative fairness story only emerges in the seed average.
  const std::size_t seeds = args.quick ? 1 : 5;
  const Seconds duration(50.0);
  const Pairing pairings[] = {
      {TcpVariant::kNewReno, TcpVariant::kVegas},   // Fig 5.16
      {TcpVariant::kNewReno, TcpVariant::kMuzha},   // Fig 5.17
      {TcpVariant::kMuzha, TcpVariant::kMuzha},     // intra-protocol baseline
      {TcpVariant::kNewReno, TcpVariant::kNewReno},
  };

  BatchRunner runner({.jobs = args.jobs, .replications = seeds, .base_seed = 1});
  for (const Pairing& p : pairings) {
    for (int hops : hop_counts) {
      ExperimentConfig cfg;
      cfg.topology = TopologyKind::kCross;
      cfg.hops = hops;
      cfg.duration = to_sim_time(duration);
      // Horizontal arm nodes come first (0..hops), vertical arm shares the
      // centre; flow A runs across the horizontal arm, flow B across the
      // vertical one.
      std::size_t h0 = 0, h1 = static_cast<std::size_t>(hops);
      std::size_t v0 = static_cast<std::size_t>(hops) + 1;
      std::size_t v1 = static_cast<std::size_t>(2 * hops);
      // Router assistance is on whenever a Muzha flow participates.
      cfg.flows.push_back({p.a, h0, h1, SimTime::zero(), 32});
      cfg.flows.push_back({p.b, v0, v1, SimTime::zero(), 32});
      runner.add_point(std::move(cfg));
    }
  }
  auto results = runner.run();

  std::printf("=== Fig 5.16-5.18: coexisting flows on an h-hop cross ===\n");
  std::printf("(Jain/run = mean per-seed index, short-term fairness;\n"
              " Jain/avg = index of seed-averaged shares, long-term "
              "fairness)\n");
  std::printf("%-22s %-5s %16s %16s %12s %10s %10s\n", "pairing", "hops",
              "flowA (kbps)", "flowB (kbps)", "total", "Jain/run",
              "Jain/avg");
  std::size_t point = 0;
  for (const Pairing& p : pairings) {
    for (int hops : hop_counts) {
      ReplicatedStats a_stats, b_stats, jain_stats;
      for (const ExperimentResult& res : results[point++]) {
        double a = res.flows[0].throughput.value() / 1e3;
        double b = res.flows[1].throughput.value() / 1e3;
        double thr[] = {a, b};
        a_stats.add(a);
        b_stats.add(b);
        jain_stats.add(jain_fairness_index(thr));
      }
      char name[64];
      std::snprintf(name, sizeof(name), "%s vs %s", variant_name(p.a),
                    variant_name(p.b));
      double means[] = {a_stats.mean(), b_stats.mean()};
      std::printf("%-22s %-5d %16s %16s %12.1f %10.3f %10.3f\n", name, hops,
                  stat_cell(a_stats).c_str(), stat_cell(b_stats).c_str(),
                  a_stats.mean() + b_stats.mean(), jain_stats.mean(),
                  jain_fairness_index(means));
    }
  }
  return 0;
}
