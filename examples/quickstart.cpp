// Quickstart: one TCP Muzha flow over a 4-hop 802.11 chain (the paper's
// Fig 5.1 setup), printing goodput, retransmissions and the final window.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "scenario/experiment.h"

int main() {
  using namespace muzha;

  ExperimentConfig cfg;
  cfg.topology = TopologyKind::kChain;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(30.0);
  cfg.seed = 42;
  cfg.flows.push_back({TcpVariant::kMuzha, /*src=*/0, /*dst=*/4,
                       /*start_time=*/SimTime::zero(), /*window=*/8});

  ExperimentResult res = run_experiment(cfg);
  const FlowResult& f = res.flows[0];

  std::printf("TCP Muzha over a 4-hop chain, 30 s\n");
  std::printf("  goodput          : %.1f kbps\n", f.throughput.value() / 1e3);
  std::printf("  segments delivered: %lld\n",
              static_cast<long long>(f.delivered));
  std::printf("  packets sent     : %llu\n",
              static_cast<unsigned long long>(f.packets_sent));
  std::printf("  retransmissions  : %llu\n",
              static_cast<unsigned long long>(f.retransmissions));
  std::printf("  timeouts         : %llu\n",
              static_cast<unsigned long long>(f.timeouts));
  std::printf("  loss events      : %llu congestion-marked, %llu random\n",
              static_cast<unsigned long long>(f.marked_loss_events),
              static_cast<unsigned long long>(f.unmarked_loss_events));
  std::printf("  substrate        : %llu IFQ drops, %llu MAC retry drops, "
              "%llu collisions\n",
              static_cast<unsigned long long>(res.ifq_drops),
              static_cast<unsigned long long>(res.mac_retry_drops),
              static_cast<unsigned long long>(res.phy_collisions));
  std::printf("  final cwnd trace points: %zu\n", f.cwnd_trace.size());
  return 0;
}
