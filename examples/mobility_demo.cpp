// Mobility demo (the paper's stated future work): a relay in a 2-hop chain
// walks away mid-transfer and comes back. Watch the MAC detect the broken
// link, AODV tear the route down and rediscover it, and TCP ride through the
// outage — the full route-failure lifecycle of the paper's Sec. 2.3.
//
// Usage: mobility_demo [variant: muzha|newreno]
#include <cstdio>
#include <cstring>

#include "routing/aodv.h"
#include "scenario/experiment.h"
#include "scenario/mobility.h"
#include "stats/time_series.h"
#include "tcp/tcp_sink.h"

int main(int argc, char** argv) {
  using namespace muzha;

  TcpVariant variant = TcpVariant::kMuzha;
  if (argc > 1 && std::strcmp(argv[1], "newreno") == 0) {
    variant = TcpVariant::kNewReno;
  }

  Network net(/*seed=*/4);
  build_chain(net, 2, /*spacing=*/Meters(200.0));  // slack below the 250 m range
  net.use_aodv();
  if (variant == TcpVariant::kMuzha) net.enable_muzha_routers();

  TcpConfig tc;
  tc.dst = net.node(2).id();
  tc.src_port = 1000;
  tc.dst_port = 2000;
  tc.window = 16;
  auto agent = make_tcp_agent(variant, net.sim(), net.node(0), tc);
  TcpSink::Config sc;
  sc.port = 2000;
  TcpSink sink(net.sim(), net.node(2), sc);
  sink.start();
  ThroughputSampler sampler(SimTime::from_seconds(1.0));
  sampler.attach(sink);
  TcpAgent* raw = agent.get();
  net.sim().schedule_at(SimTime::zero(), [raw] { raw->start(); });

  // The relay wanders off perpendicular to the chain at t=10 s (links break
  // once its offset exceeds ~150 m) and returns by t=20 s.
  LinearMobility::Config mc;
  mc.vy = MetersPerSecond(50.0);
  LinearMobility mob(net.sim(), net.node(1), mc);
  net.sim().schedule_at(SimTime::from_seconds(10), [&] { mob.start(); });
  net.sim().schedule_at(SimTime::from_seconds(15),
                        [&] { mob.set_velocity(MetersPerSecond(0.0), MetersPerSecond(-50.0)); });
  net.sim().schedule_at(SimTime::from_seconds(20),
                        [&] { mob.set_velocity(MetersPerSecond(0.0), MetersPerSecond(0.0)); });

  net.run_until(SimTime::from_seconds(40));

  std::printf("%s over a 2-hop chain; relay absent ~t=13..17 s\n\n",
              variant_name(variant));
  std::printf("%6s %12s\n", "t(s)", "kbps");
  for (const TimePoint& p : sampler.series()) {
    int bars = static_cast<int>(p.value / 1e4);
    std::printf("%6.1f %12.1f  %.*s\n", p.t.value(), p.value / 1e3, bars,
                "########################################################");
  }
  auto& aodv0 = dynamic_cast<Aodv&>(net.node(0).routing());
  std::printf("\nAODV at the source: %llu route discoveries, %llu RERRs "
              "heard network-wide\n",
              static_cast<unsigned long long>(aodv0.rreqs_originated()),
              static_cast<unsigned long long>(
                  dynamic_cast<Aodv&>(net.node(1).routing()).rerrs_sent() +
                  aodv0.rerrs_sent()));
  std::printf("TCP: %llu timeouts, %llu retransmissions, %lld segments "
              "delivered\n",
              static_cast<unsigned long long>(raw->timeouts()),
              static_cast<unsigned long long>(raw->retransmissions()),
              static_cast<long long>(sink.delivered()));
  return 0;
}
