// Random-loss discrimination demo (Sec. 4.7 of the paper).
//
// Runs TCP Muzha and TCP NewReno over the same 8-hop chain while the channel
// randomly corrupts frames, and shows how Muzha's marked/unmarked duplicate
// ACKs let it retransmit random losses *without* collapsing its window,
// while NewReno treats every loss as congestion.
//
// Usage: random_loss_demo [loss_rate]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.h"

int main(int argc, char** argv) {
  using namespace muzha;

  double loss = argc > 1 ? std::atof(argv[1]) : 0.03;
  const int hops = 8;
  const double seconds = 30.0;

  std::printf("8-hop chain, %.0f%% uniform random frame loss, %.0f s\n\n",
              loss * 100, seconds);

  for (TcpVariant v : {TcpVariant::kMuzha, TcpVariant::kNewReno}) {
    ExperimentConfig cfg;
    cfg.hops = hops;
    cfg.duration = SimTime::from_seconds(seconds);
    cfg.seed = 11;
    cfg.uniform_error_rate = loss;
    cfg.flows.push_back({v, 0, hops, SimTime::zero(), 32});
    auto res = run_experiment(cfg);
    const FlowResult& f = res.flows[0];
    std::printf("%s:\n", variant_name(v));
    std::printf("  goodput         : %.1f kbps\n", f.throughput.value() / 1e3);
    std::printf("  retransmissions : %llu\n",
                static_cast<unsigned long long>(f.retransmissions));
    std::printf("  timeouts        : %llu\n",
                static_cast<unsigned long long>(f.timeouts));
    if (v == TcpVariant::kMuzha) {
      std::printf("  loss events     : %llu classified congestion (halved), "
                  "%llu classified random (window kept)\n",
                  static_cast<unsigned long long>(f.marked_loss_events),
                  static_cast<unsigned long long>(f.unmarked_loss_events));
    }
    std::printf("\n");
  }
  std::printf("Muzha keeps its window through random loss because unmarked\n"
              "duplicate ACKs identify the loss as non-congestion.\n");
  return 0;
}
