// Fairness / coexistence demo (Simulation 3A of the paper).
//
// Two flows cross at the centre of a 9-node cross topology (Fig 5.15). The
// paper's point: a Reno-style competitor starves TCP Vegas, while TCP Muzha
// shares with TCP NewReno because router DRAI feedback tells it to back off
// before it hogs the medium.
//
// Usage: fairness_coexistence [hops(even)] [seconds]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.h"
#include "stats/fairness.h"

namespace {

void run_pair(muzha::TcpVariant a, muzha::TcpVariant b, int hops,
              double seconds) {
  using namespace muzha;
  double thr[2] = {0, 0};
  const int seeds = 5;
  for (int s = 1; s <= seeds; ++s) {
    ExperimentConfig cfg;
    cfg.topology = TopologyKind::kCross;
    cfg.hops = hops;
    cfg.duration = SimTime::from_seconds(seconds);
    cfg.seed = static_cast<std::uint64_t>(s);
    cfg.flows.push_back(
        {a, 0, static_cast<std::size_t>(hops), SimTime::zero(), 32});
    cfg.flows.push_back({b, static_cast<std::size_t>(hops) + 1,
                         static_cast<std::size_t>(2 * hops), SimTime::zero(),
                         32});
    auto res = run_experiment(cfg);
    thr[0] += res.flows[0].throughput.value() / 1e3 / seeds;
    thr[1] += res.flows[1].throughput.value() / 1e3 / seeds;
  }
  std::printf("%-8s vs %-8s : %8.1f vs %8.1f kbps   (Jain index %.3f)\n",
              variant_name(a), variant_name(b), thr[0], thr[1],
              jain_fairness_index(thr));
}

}  // namespace

int main(int argc, char** argv) {
  int hops = argc > 1 ? std::atoi(argv[1]) : 4;
  double seconds = argc > 2 ? std::atof(argv[2]) : 50.0;

  std::printf("Two crossing flows, %d-hop cross topology, %.0f s, "
              "5-seed average\n\n", hops, seconds);
  run_pair(muzha::TcpVariant::kNewReno, muzha::TcpVariant::kVegas, hops,
           seconds);
  run_pair(muzha::TcpVariant::kNewReno, muzha::TcpVariant::kMuzha, hops,
           seconds);
  run_pair(muzha::TcpVariant::kMuzha, muzha::TcpVariant::kMuzha, hops,
           seconds);
  return 0;
}
