// muzha_cli: run an arbitrary experiment from the command line and dump the
// results (optionally as CSV + gnuplot for the time series).
//
//   muzha_cli --variant muzha,newreno --topology chain --hops 8
//             --window 32 --duration 30 --seed 1 --loss 0.01
//             [--static-routing] [--csv prefix]
//
// One flow is created per comma-separated variant, all sharing the
// first-to-last path (chain) or the two arms (cross, first two variants).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "stats/export.h"
#include "stats/fairness.h"

namespace {

using namespace muzha;

bool parse_variant(const std::string& s, TcpVariant* out) {
  const struct {
    const char* name;
    TcpVariant v;
  } table[] = {
      {"tahoe", TcpVariant::kTahoe},     {"reno", TcpVariant::kReno},
      {"newreno", TcpVariant::kNewReno}, {"sack", TcpVariant::kSack},
      {"vegas", TcpVariant::kVegas},     {"muzha", TcpVariant::kMuzha},
      {"door", TcpVariant::kDoor},       {"adtcp", TcpVariant::kAdtcp},
      {"jersey", TcpVariant::kJersey},   {"rovegas", TcpVariant::kRoVegas},
  };
  for (const auto& e : table) {
    if (s == e.name) {
      *out = e.v;
      return true;
    }
  }
  return false;
}

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--variant v1,v2,...] [--topology chain|cross]\n"
      "          [--hops N] [--window N] [--duration SECONDS] [--seed N]\n"
      "          [--loss RATE] [--static-routing] [--csv PREFIX]\n"
      "variants: tahoe reno newreno sack vegas muzha door adtcp jersey "
      "rovegas\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<TcpVariant> variants{TcpVariant::kMuzha};
  ExperimentConfig cfg;
  cfg.hops = 4;
  cfg.duration = SimTime::from_seconds(30.0);
  int window = 32;
  std::string csv_prefix;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--variant") {
      variants.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        TcpVariant v;
        if (!parse_variant(tok, &v)) {
          std::fprintf(stderr, "unknown variant '%s'\n", tok.c_str());
          return 2;
        }
        variants.push_back(v);
      }
    } else if (arg == "--topology") {
      std::string t = next();
      cfg.topology =
          t == "cross" ? TopologyKind::kCross : TopologyKind::kChain;
    } else if (arg == "--hops") {
      cfg.hops = std::atoi(next());
    } else if (arg == "--window") {
      window = std::atoi(next());
    } else if (arg == "--duration") {
      cfg.duration = SimTime::from_seconds(std::atof(next()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--loss") {
      cfg.uniform_error_rate = std::atof(next());
    } else if (arg == "--static-routing") {
      cfg.static_routing = true;
    } else if (arg == "--csv") {
      csv_prefix = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (variants.empty()) {
    usage(argv[0]);
    return 2;
  }

  // Flow placement: chain => all flows end-to-end; cross => first flow on
  // the horizontal arm, second on the vertical, rest alternate.
  for (std::size_t i = 0; i < variants.size(); ++i) {
    FlowSpec f;
    f.variant = variants[i];
    f.window = window;
    if (cfg.topology == TopologyKind::kCross && i % 2 == 1) {
      f.src = static_cast<std::size_t>(cfg.hops) + 1;
      f.dst = static_cast<std::size_t>(2 * cfg.hops);
    } else {
      f.src = 0;
      f.dst = static_cast<std::size_t>(cfg.hops);
    }
    cfg.flows.push_back(f);
  }

  ExperimentResult res = run_experiment(cfg);

  std::printf("%-10s %12s %10s %8s %8s\n", "variant", "kbps", "sent", "retx",
              "timeouts");
  for (const FlowResult& f : res.flows) {
    std::printf("%-10s %12.1f %10llu %8llu %8llu\n", variant_name(f.variant),
                f.throughput.value() / 1e3,
                static_cast<unsigned long long>(f.packets_sent),
                static_cast<unsigned long long>(f.retransmissions),
                static_cast<unsigned long long>(f.timeouts));
  }
  if (res.flows.size() > 1) {
    auto thr = res.flow_throughputs();
    std::printf("Jain fairness index: %.3f\n", jain_fairness_index(thr));
  }
  std::printf("substrate: %llu IFQ drops, %llu MAC retry drops, "
              "%llu collisions\n",
              static_cast<unsigned long long>(res.ifq_drops),
              static_cast<unsigned long long>(res.mac_retry_drops),
              static_cast<unsigned long long>(res.phy_collisions));

  if (!csv_prefix.empty()) {
    std::vector<NamedSeries> cwnd, thrput;
    for (const FlowResult& f : res.flows) {
      std::string name = variant_name(f.variant);
      cwnd.push_back({name + "_cwnd", f.cwnd_trace});
      thrput.push_back({name + "_bps", f.throughput_series});
    }
    bool ok = write_csv(csv_prefix + "_cwnd.csv", cwnd) &&
              write_csv(csv_prefix + "_throughput.csv", thrput) &&
              write_gnuplot_script(csv_prefix + "_cwnd.gp",
                                   csv_prefix + "_cwnd.csv",
                                   "congestion window", cwnd, "segments") &&
              write_gnuplot_script(csv_prefix + "_throughput.gp",
                                   csv_prefix + "_throughput.csv",
                                   "throughput", thrput, "bits/s");
    std::printf("%s CSV/gnuplot files with prefix '%s'\n",
                ok ? "wrote" : "FAILED to write", csv_prefix.c_str());
    if (!ok) return 1;
  }
  return 0;
}
