// Compare every TCP variant over a multihop 802.11 chain — the scenario the
// paper's introduction motivates: how much of the scarce multihop wireless
// bandwidth does each congestion controller actually capture, and at what
// retransmission cost?
//
// Usage: chain_comparison [hops] [window] [seconds]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.h"

int main(int argc, char** argv) {
  using namespace muzha;

  int hops = argc > 1 ? std::atoi(argv[1]) : 8;
  int window = argc > 2 ? std::atoi(argv[2]) : 32;
  double seconds = argc > 3 ? std::atof(argv[3]) : 30.0;

  std::printf("Single FTP flow over a %d-hop chain, window_=%d, %.0f s\n\n",
              hops, window, seconds);
  std::printf("%-12s %12s %8s %8s %8s %10s %10s\n", "variant", "kbps", "sent",
              "retx", "timeouts", "IFQ drops", "MAC drops");

  for (TcpVariant v :
       {TcpVariant::kTahoe, TcpVariant::kReno, TcpVariant::kNewReno,
        TcpVariant::kNewRenoEcn, TcpVariant::kSack, TcpVariant::kVegas,
        TcpVariant::kWestwood, TcpVariant::kDoor, TcpVariant::kAdtcp,
        TcpVariant::kJersey, TcpVariant::kRoVegas, TcpVariant::kMuzha}) {
    ExperimentConfig cfg;
    cfg.hops = hops;
    cfg.duration = SimTime::from_seconds(seconds);
    cfg.seed = 1;
    cfg.flows.push_back(
        {v, 0, static_cast<std::size_t>(hops), SimTime::zero(), window});
    auto res = run_experiment(cfg);
    const FlowResult& f = res.flows[0];
    std::printf("%-12s %12.1f %8llu %8llu %8llu %10llu %10llu\n",
                variant_name(v), f.throughput.value() / 1e3,
                static_cast<unsigned long long>(f.packets_sent),
                static_cast<unsigned long long>(f.retransmissions),
                static_cast<unsigned long long>(f.timeouts),
                static_cast<unsigned long long>(res.ifq_drops),
                static_cast<unsigned long long>(res.mac_retry_drops));
  }
  std::printf(
      "\nThe paper's headline: Muzha above NewReno/SACK everywhere, Vegas\n"
      "ahead on short chains but fading on long ones (Sec. 5.4).\n");
  return 0;
}
